//! Design-space exploration at methodology scale — the BENCH_10 workload.
//!
//! Seven clinically-motivated panels, each explored over the standard
//! 168 960-point box ([`bios_explore::ExploreSpace::standard_box`]):
//! 1 182 720 candidate designs in total, pruned to their exact Pareto
//! bands by the static pass pipeline with only the surviving bands
//! simulated. Four kinds of evidence are collected:
//!
//! 1. **Static leverage** — per panel and overall, the fraction of the
//!    space refuted by closed-form analysis ([`evaluate_static`] applied
//!    class-wise, never per point). The binary gates this at
//!    [`REJECTION_FLOOR`].
//! 2. **Bit-identical reruns** — every panel is explored cold and then
//!    warm; the warm run must replay every shard from the content-hash
//!    cache and reproduce the frontier digest bit for bit.
//! 3. **Incremental re-exploration** — the fig4 space is *edited* (one
//!    nanostructure dropped) and re-explored against the warm cache;
//!    the digest must equal a cold run of the same edited spec, with the
//!    unaffected shards replayed rather than re-simulated.
//! 4. **Ground truth** — on a brute-force-sized subspace the pipeline's
//!    band is checked rank-for-rank, bit-for-bit against the O(n²)
//!    per-point oracle ([`brute_force_band`]).
//!
//! [`evaluate_static`]: bios_explore::evaluate_static
//! [`brute_force_band`]: bios_explore::brute_force_band

use bios_biochem::Analyte;
use bios_explore::{
    brute_force_band, clear_explore_cache, explore, explore_cache_stats, ExploreSpace,
    ExploreSpec,
};
use bios_platform::{ExecPolicy, PanelSpec, TargetSpec};

/// Minimum fraction of the space that must be statically rejected for
/// the run to count as "compiler-style": simulating more than 1% of a
/// million-point space is no longer static pruning.
pub const REJECTION_FLOOR: f64 = 0.99;

/// The seven benchmark panels. Together with the standard 168 960-point
/// box they span 1 182 720 candidate designs.
pub fn panels() -> Vec<(&'static str, PanelSpec)> {
    let of = |analytes: &[Analyte]| {
        analytes
            .iter()
            .map(|&a| TargetSpec::typical(a))
            .collect::<PanelSpec>()
    };
    vec![
        ("fig4-biointerface", PanelSpec::paper_fig4()),
        (
            "metabolic-trio",
            of(&[Analyte::Glucose, Analyte::Lactate, Analyte::Cholesterol]),
        ),
        ("neuro-pair", of(&[Analyte::Glutamate, Analyte::Lactate])),
        (
            "p450-pair",
            of(&[Analyte::Benzphetamine, Analyte::Aminopyrine]),
        ),
        ("tight-lod-fig4", {
            // The fig4 panel with the glucose LOD requirement tightened
            // to half its typical value: same analytes, harder
            // constraints, a different calibration fingerprint.
            let mut p = PanelSpec::paper_fig4();
            p.push(
                TargetSpec::typical(Analyte::Glucose)
                    .with_lod(bios_units::Molar::from_micromolar(290.0)),
            );
            p
        }),
        ("glucose-only", of(&[Analyte::Glucose])),
        (
            "oxidase-quartet",
            of(&[
                Analyte::Glucose,
                Analyte::Lactate,
                Analyte::Glutamate,
                Analyte::Cholesterol,
            ]),
        ),
    ]
}

/// One panel's cold-then-warm exploration evidence.
#[derive(Debug, Clone)]
pub struct PanelRun {
    /// Panel label.
    pub name: &'static str,
    /// Targets in the panel.
    pub targets: usize,
    /// Points in the explored space.
    pub points: u64,
    /// Points refuted by the static passes (cold run).
    pub statically_rejected: u64,
    /// `statically_rejected / points`.
    pub rejection_ratio: f64,
    /// Surviving Pareto band size.
    pub band: usize,
    /// Shards the band partitioned into.
    pub shards: u64,
    /// Frontier digest of the cold run.
    pub digest: u64,
    /// Frontier digest of the warm rerun (must equal `digest`).
    pub warm_digest: u64,
    /// Shards the warm rerun replayed from the cache (must equal
    /// `shards`).
    pub warm_replayed: u64,
}

impl PanelRun {
    /// True when the warm rerun reproduced the cold run bit for bit and
    /// replayed every shard.
    pub fn rerun_identical(&self) -> bool {
        self.digest == self.warm_digest && self.warm_replayed == self.shards
    }
}

/// The incremental re-exploration evidence: an *edited* space explored
/// against the warm cache vs the same edit explored cold.
#[derive(Debug, Clone)]
pub struct IncrementalRun {
    /// Points in the edited space.
    pub points: u64,
    /// Shards of the edited space's band.
    pub shards: u64,
    /// Shards the incremental (warm-cache) run replayed.
    pub replayed: u64,
    /// Frontier digest of the incremental run.
    pub incremental_digest: u64,
    /// Frontier digest of the cold run of the same edited spec.
    pub cold_digest: u64,
}

impl IncrementalRun {
    /// True when incremental and cold agree on every bit.
    pub fn digests_match(&self) -> bool {
        self.incremental_digest == self.cold_digest
    }
}

/// The BENCH_10 report.
#[derive(Debug, Clone)]
pub struct ExploreBenchReport {
    /// The [`ExecPolicy`] the sweep ran under, rendered.
    pub exec_policy: String,
    /// Per-panel evidence.
    pub panels: Vec<PanelRun>,
    /// Candidate designs across all panels.
    pub total_points: u64,
    /// Statically rejected designs across all panels.
    pub total_rejected: u64,
    /// `total_rejected / total_points`.
    pub overall_rejection_ratio: f64,
    /// Wall-clock seconds for the cold sweep over every panel.
    pub cold_sweep_s: f64,
    /// Wall-clock seconds for the warm rerun over every panel.
    pub warm_sweep_s: f64,
    /// Shard-cache hits and misses after the whole workload.
    pub cache_hits: u64,
    /// See `cache_hits`.
    pub cache_misses: u64,
    /// Incremental re-exploration evidence.
    pub incremental: IncrementalRun,
    /// Points in the brute-force spot-check subspace.
    pub brute_points: u64,
    /// Band size of the spot check.
    pub brute_band: usize,
    /// True when the pipeline matched the O(n²) oracle bit for bit.
    pub brute_matches: bool,
}

impl ExploreBenchReport {
    /// True when every panel's warm rerun was bit-identical with full
    /// shard replay.
    pub fn all_reruns_identical(&self) -> bool {
        self.panels.iter().all(PanelRun::rerun_identical)
    }
}

/// The edited fig4 spec for the incrementality demo: the standard box
/// with the largest electrode area dropped. The edit invalidates the
/// shards whose surviving point sets it touches; the rest replay from
/// the content-hash cache (3 of 6, on the seed model).
fn edited_fig4_spec() -> ExploreSpec {
    let mut spec = ExploreSpec::standard(PanelSpec::paper_fig4());
    spec.space.area_pct.retain(|&a| a != 400);
    spec
}

/// A brute-force-sized subspace (3 456 points, well under
/// [`bios_explore::BRUTE_FORCE_CAP`]) for the ground-truth spot check.
fn spot_check_spec() -> ExploreSpec {
    let mut spec = ExploreSpec::standard(PanelSpec::paper_fig4());
    spec.space = ExploreSpace {
        adc_bits: vec![8, 12, 16],
        oversampling: vec![1, 16, 256],
        area_pct: vec![50, 100, 200, 400],
        ..ExploreSpace::standard_box()
    };
    spec
}

/// Runs the whole BENCH_10 workload: cold sweep, warm sweep,
/// incremental edit, brute-force spot check.
pub fn run(policy: ExecPolicy) -> Result<ExploreBenchReport, Box<dyn std::error::Error>> {
    clear_explore_cache();
    let panel_set = panels();

    let cold_start = std::time::Instant::now();
    let mut runs: Vec<PanelRun> = Vec::with_capacity(panel_set.len());
    for (name, panel) in &panel_set {
        let spec = ExploreSpec::standard(panel.clone());
        let outcome = explore(&spec, policy)?;
        runs.push(PanelRun {
            name,
            targets: panel.targets().len(),
            points: outcome.total_points,
            statically_rejected: outcome.statically_rejected,
            rejection_ratio: outcome.rejection_ratio,
            band: outcome.band.len(),
            shards: outcome.shard_count,
            digest: outcome.frontier_digest,
            warm_digest: 0,
            warm_replayed: 0,
        });
    }
    let cold_sweep_s = cold_start.elapsed().as_secs_f64();

    let warm_start = std::time::Instant::now();
    for (run, (_, panel)) in runs.iter_mut().zip(&panel_set) {
        let spec = ExploreSpec::standard(panel.clone());
        let outcome = explore(&spec, policy)?;
        run.warm_digest = outcome.frontier_digest;
        run.warm_replayed = outcome.replayed_shards;
    }
    let warm_sweep_s = warm_start.elapsed().as_secs_f64();

    // Incremental: edited space against the warm cache, then the same
    // edit cold. Shards the edit did not touch must replay; the answer
    // must not depend on which path produced it.
    let edited = edited_fig4_spec();
    let incremental_outcome = explore(&edited, policy)?;
    let (cache_hits, cache_misses) = explore_cache_stats();
    clear_explore_cache();
    let cold_edited = explore(&edited, policy)?;
    let incremental = IncrementalRun {
        points: incremental_outcome.total_points,
        shards: incremental_outcome.shard_count,
        replayed: incremental_outcome.replayed_shards,
        incremental_digest: incremental_outcome.frontier_digest,
        cold_digest: cold_edited.frontier_digest,
    };

    // Ground truth: pipeline band vs the O(n²) per-point oracle, bit for
    // bit on ranks, costs and margins.
    let spot = spot_check_spec();
    let spot_outcome = explore(&spot, policy)?;
    let oracle = brute_force_band(&spot)?;
    let brute_matches = spot_outcome.band.len() == oracle.len()
        && spot_outcome
            .band
            .iter()
            .zip(oracle.iter())
            .all(|(d, &(rank, cost, margin))| {
                d.rank == rank
                    && d.surrogate_cost.to_bits() == cost.to_bits()
                    && d.surrogate_margin.to_bits() == margin.to_bits()
            });

    let total_points: u64 = runs.iter().map(|r| r.points).sum();
    let total_rejected: u64 = runs.iter().map(|r| r.statically_rejected).sum();
    Ok(ExploreBenchReport {
        exec_policy: format!("{policy:?}"),
        panels: runs,
        total_points,
        total_rejected,
        overall_rejection_ratio: if total_points == 0 {
            0.0
        } else {
            total_rejected as f64 / total_points as f64
        },
        cold_sweep_s,
        warm_sweep_s,
        cache_hits,
        cache_misses,
        incremental,
        brute_points: spot.space.len(),
        brute_band: oracle.len(),
        brute_matches,
    })
}

/// Renders the report as pretty-printed JSON (hand-rolled, like
/// [`perf::to_json`](crate::perf::to_json), for stable committed
/// output).
pub fn to_json(report: &ExploreBenchReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"exec_policy\": \"{}\",\n  \"total_points\": {},\n  \"total_rejected\": {},\n  \"overall_rejection_ratio\": {:.6},\n",
        report.exec_policy, report.total_points, report.total_rejected, report.overall_rejection_ratio
    ));
    out.push_str(&format!(
        "  \"rejection_floor\": {REJECTION_FLOOR:.2},\n  \"cold_sweep_s\": {:.3},\n  \"warm_sweep_s\": {:.3},\n",
        report.cold_sweep_s, report.warm_sweep_s
    ));
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}}},\n",
        report.cache_hits, report.cache_misses
    ));
    out.push_str("  \"panels\": [\n");
    for (i, p) in report.panels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"targets\": {}, \"points\": {}, \"statically_rejected\": {}, \"rejection_ratio\": {:.6}, \"band\": {}, \"shards\": {}, \"frontier_digest\": \"{:016x}\", \"warm_digest\": \"{:016x}\", \"warm_replayed\": {}, \"rerun_identical\": {}}}{}\n",
            p.name,
            p.targets,
            p.points,
            p.statically_rejected,
            p.rejection_ratio,
            p.band,
            p.shards,
            p.digest,
            p.warm_digest,
            p.warm_replayed,
            p.rerun_identical(),
            if i + 1 < report.panels.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"incremental\": {{\"points\": {}, \"shards\": {}, \"replayed\": {}, \"incremental_digest\": \"{:016x}\", \"cold_digest\": \"{:016x}\", \"digests_match\": {}}},\n",
        report.incremental.points,
        report.incremental.shards,
        report.incremental.replayed,
        report.incremental.incremental_digest,
        report.incremental.cold_digest,
        report.incremental.digests_match(),
    ));
    out.push_str(&format!(
        "  \"brute_force\": {{\"points\": {}, \"band\": {}, \"matches\": {}}},\n",
        report.brute_points, report.brute_band, report.brute_matches
    ));
    out.push_str(&format!(
        "  \"all_reruns_identical\": {}\n}}\n",
        report.all_reruns_identical()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_panel_builds() {
        for (name, panel) in panels() {
            assert!(panel.validate().is_ok(), "panel {name} does not validate");
        }
    }

    #[test]
    fn spot_check_space_is_under_the_oracle_cap() {
        assert!(spot_check_spec().space.len() <= bios_explore::BRUTE_FORCE_CAP);
    }

    #[test]
    fn json_rendering_is_valid_shape() {
        let report = ExploreBenchReport {
            exec_policy: String::from("Auto"),
            panels: vec![PanelRun {
                name: "fig4-biointerface",
                targets: 6,
                points: 168_960,
                statically_rejected: 168_729,
                rejection_ratio: 0.998_632,
                band: 231,
                shards: 6,
                digest: 7,
                warm_digest: 7,
                warm_replayed: 6,
            }],
            total_points: 168_960,
            total_rejected: 168_729,
            overall_rejection_ratio: 0.998_632,
            cold_sweep_s: 1.5,
            warm_sweep_s: 0.5,
            cache_hits: 6,
            cache_misses: 8,
            incremental: IncrementalRun {
                points: 126_720,
                shards: 5,
                replayed: 3,
                incremental_digest: 9,
                cold_digest: 9,
            },
            brute_points: 3_456,
            brute_band: 12,
            brute_matches: true,
        };
        assert!(report.all_reruns_identical());
        assert!(report.incremental.digests_match());
        let json = to_json(&report);
        assert!(json.contains("\"rerun_identical\": true"));
        assert!(json.contains("\"digests_match\": true"));
        assert!(json.contains("\"matches\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
