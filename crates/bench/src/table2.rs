//! Table II reproduction: the reduction potentials of eleven CYP450/drug
//! pairs, recovered from simulated cyclic voltammograms through the full
//! chain (sensor model → AFE → peak detection → signature matching).

use bios_afe::{ChainConfig, CurrentRange, ReadoutChain};
use bios_biochem::{tables::TABLE_II, Analyte, CypIsoform, CypSensor};
use bios_electrochem::Electrode;
use bios_instrument::{run_cv, CvProtocol};

/// One reproduced row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// The isoform.
    pub isoform: CypIsoform,
    /// The drug.
    pub target: Analyte,
    /// Paper reduction potential (mV vs Ag/AgCl).
    pub paper_mv: f64,
    /// Peak position recovered from the simulated voltammogram (mV), if
    /// the signature matcher identified it.
    pub measured_mv: Option<f64>,
}

/// Measures one isoform/drug pair: CV at 20 mV/s with the drug at its
/// half-saturation concentration (`Km`, a robust mid-wave operating point)
/// and the readout auto-ranged to the expected peak amplitude — exactly
/// what a bench chemist's autoranging potentiostat does. Peak detection
/// plus signature matching recover the position.
pub fn measure_pair(isoform: CypIsoform, target: Analyte, seed: u64) -> Option<f64> {
    let sensor = CypSensor::from_registry(isoform).expect("registry isoform");
    let electrode = Electrode::paper_gold_we();
    let area = electrode.geometric_area().value();
    let km = sensor.kinetics(target).expect("registered substrate").km();
    let c = km; // half saturation
    let s_si = sensor.sensitivity_si(target).expect("registered substrate");
    // Expected apex amplitude: S·Km·sat(Km) = S·Km/2, plus ~1 nA of heme
    // baseline headroom.
    let expected_peak = s_si * km.value() * 0.5 * area + 1e-9;
    let full_scale = 3.0 * expected_peak;
    let range = CurrentRange::new(
        bios_units::Amps::new(full_scale),
        bios_units::Amps::new(full_scale / 2000.0),
    );
    let chain = ReadoutChain::new(ChainConfig::for_range(range).expect("range is realizable"));
    let m = run_cv(
        &sensor,
        &electrode,
        &chain,
        &[(target, c)],
        &CvProtocol::default(),
        seed,
    )
    .expect("simulation parameters are valid");
    // Match the prepared drug directly against the detected peaks (the
    // sample contains only this drug, so the full-panel signature matcher
    // — which would tie-break same-potential pairs like bupropion vs
    // lidocaine — is not the right tool here).
    let nominal = sensor
        .nominal_peak_potential(target)
        .expect("registered substrate");
    m.peaks
        .iter()
        .find(|p| (p.potential - nominal).abs().as_millivolts() <= 30.0)
        .map(|p| p.potential.as_millivolts())
}

/// Runs the full Table II reproduction.
pub fn run() -> Vec<Table2Row> {
    TABLE_II
        .iter()
        .enumerate()
        .map(|(k, row)| Table2Row {
            isoform: row.isoform,
            target: row.target,
            paper_mv: row.reduction_potential.as_millivolts(),
            measured_mv: measure_pair(row.isoform, row.target, 4000 + k as u64),
        })
        .collect()
}

/// Renders the rows in the paper's format.
pub fn render(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<9} {:<15} {:>10} {:>12} {:>7}\n",
        "CYP", "Target drug", "paper(mV)", "measured(mV)", "Δ(mV)"
    ));
    for r in rows {
        match r.measured_mv {
            Some(m) => out.push_str(&format!(
                "{:<9} {:<15} {:>10.0} {:>12.0} {:>7.0}\n",
                r.isoform.to_string(),
                r.target.to_string(),
                r.paper_mv,
                m,
                m - r.paper_mv
            )),
            None => out.push_str(&format!(
                "{:<9} {:<15} {:>10.0} {:>12} {:>7}\n",
                r.isoform.to_string(),
                r.target.to_string(),
                r.paper_mv,
                "missed",
                "—"
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eleven_pairs_are_identified_near_their_potentials() {
        let rows = run();
        assert_eq!(rows.len(), 11);
        for r in &rows {
            let m = r
                .measured_mv
                .unwrap_or_else(|| panic!("{} {} not identified", r.isoform, r.target));
            assert!(
                (m - r.paper_mv).abs() <= 25.0,
                "{} {}: measured {m} vs paper {}",
                r.isoform,
                r.target,
                r.paper_mv
            );
        }
    }

    #[test]
    fn potential_span_covers_the_table() {
        // From torsemide's −19 mV to indinavir's −750 mV.
        let rows = run();
        let measured: Vec<f64> = rows.iter().filter_map(|r| r.measured_mv).collect();
        let min = measured.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = measured.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < -700.0, "deepest peak {min}");
        assert!(max > -60.0, "shallowest peak {max}");
    }
}
