//! Reproduction harness for every table and figure of the DATE 2011 paper.
//!
//! Each module implements one experiment as a pure function returning
//! structured rows; the `repro_*` binaries print them in the paper's
//! format and the Criterion benches time the same kernels. See
//! `EXPERIMENTS.md` at the workspace root for paper-vs-measured numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod batch;
pub mod explore;
pub mod fault_matrix;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod perf;
pub mod service;
pub mod table1;
pub mod table2;
pub mod table3;

/// Prints a centered section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
