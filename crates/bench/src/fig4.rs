//! Fig. 4 reproduction: the five-working-electrode biointerface running a
//! full multi-panel session — glucose, lactate, glutamate on oxidase WEs,
//! benzphetamine + aminopyrine on one CYP2B4 WE (two peaks), cholesterol
//! on a CYP11A1 WE, all behind one multiplexed readout.

use bios_biochem::Analyte;
use bios_platform::{PanelSpec, Platform, PlatformBuilder, SessionReport};
use bios_units::Molar;

/// The reference sample for the Fig. 4 session (all targets above their
/// Table III LODs).
pub fn reference_sample() -> Vec<(Analyte, Molar)> {
    vec![
        (Analyte::Glucose, Molar::from_millimolar(3.0)),
        (Analyte::Lactate, Molar::from_millimolar(1.5)),
        (Analyte::Glutamate, Molar::from_millimolar(3.2)),
        (Analyte::Benzphetamine, Molar::from_millimolar(0.9)),
        (Analyte::Aminopyrine, Molar::from_millimolar(4.0)),
        (Analyte::Cholesterol, Molar::from_micromolar(50.0)),
    ]
}

/// Builds the paper's platform instance.
pub fn build_platform() -> Platform {
    PlatformBuilder::new(PanelSpec::paper_fig4())
        .build()
        .expect("the paper panel builds")
}

/// Runs the full session.
pub fn run(seed: u64) -> (Platform, SessionReport) {
    let platform = build_platform();
    let report = platform
        .run_session(&reference_sample(), seed)
        .expect("session runs");
    (platform, report)
}

/// Renders the experiment report.
pub fn render(platform: &Platform, report: &SessionReport) -> String {
    let mut out = String::new();
    out.push_str(&platform.datasheet());
    out.push('\n');
    out.push_str(&format!(
        "{:<15} {:>4} {:>11} {:>13} {:>12} {:>6}\n",
        "analyte", "WE", "true", "estimated", "response", "found"
    ));
    let truth = reference_sample();
    for r in report.readings() {
        let t = truth
            .iter()
            .find(|(a, _)| *a == r.analyte)
            .map(|(_, c)| c.to_string())
            .unwrap_or_default();
        out.push_str(&format!(
            "{:<15} {:>4} {:>11} {:>13} {:>12} {:>6}\n",
            r.analyte.to_string(),
            r.we,
            t,
            r.estimated
                .map(|c| c.to_string())
                .unwrap_or_else(|| "—".into()),
            r.response.to_string(),
            if r.identified { "yes" } else { "no" }
        ));
    }
    out.push_str(&format!(
        "\nworst relative concentration error: {:.1}%\n",
        report.worst_relative_error(&truth) * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_session_identifies_everything() {
        let (_platform, report) = run(2011);
        assert_eq!(report.readings().len(), 6);
        for r in report.readings() {
            assert!(r.identified, "{} missed", r.analyte);
        }
    }

    #[test]
    fn two_drugs_resolved_on_the_shared_we() {
        let (platform, report) = run(5);
        // Benzphetamine and aminopyrine share a WE index.
        let b = report
            .reading_for(Analyte::Benzphetamine)
            .expect("on panel");
        let a = report.reading_for(Analyte::Aminopyrine).expect("on panel");
        assert_eq!(b.we, a.we, "both drugs must come from the CYP2B4 electrode");
        assert!(b.identified && a.identified);
        let _ = platform;
    }

    #[test]
    fn estimates_track_truth_within_50_percent() {
        let (_p, report) = run(77);
        let err = report.worst_relative_error(&reference_sample());
        assert!(err < 0.5, "worst error {err}");
    }
}
