//! Table III reproduction: sensitivity, LOD and linear range for all six
//! functionalized electrodes, re-derived from full simulated calibration
//! campaigns (blank replicates + concentration series through sensor, AFE
//! and calibration statistics).

use bios_afe::{ChainConfig, CurrentRange, ReadoutChain};
use bios_biochem::{
    tables::{PerformanceRow, ProbeRef},
    Analyte, CypSensor, OxidaseSensor,
};
use bios_electrochem::Electrode;
use bios_instrument::{
    analyze_calibration, cathodic_segment, peak_readout, run_chrono, run_cv, CalibrationOutcome,
    CalibrationPoint, ChronoProtocol, CvProtocol,
};
use bios_units::{Molar, QRange};

/// One reproduced row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Target analyte.
    pub target: Analyte,
    /// Probe name.
    pub probe: String,
    /// Paper sensitivity, µA/(mM·cm²).
    pub paper_sensitivity: f64,
    /// Measured sensitivity, µA/(mM·cm²).
    pub measured_sensitivity: f64,
    /// Paper LOD, µM (`None` where the paper prints "—").
    pub paper_lod_um: Option<f64>,
    /// Measured LOD, µM.
    pub measured_lod_um: f64,
    /// Paper linear range, mM.
    pub paper_range_mm: (f64, f64),
    /// Measured linear range, mM.
    pub measured_range_mm: (f64, f64),
    /// Calibration R² over the measured linear range.
    pub r2: f64,
}

/// The concentration series for a row: the paper's linear range plus two
/// points beyond it, so the linear-range detector has saturation to find.
fn series(row: &PerformanceRow) -> Vec<Molar> {
    let range: QRange<Molar> = row.linear_range();
    let mut concs = range.linspace(5);
    concs.push(range.hi() * 1.6);
    concs.push(range.hi() * 2.4);
    concs
}

/// Replicate multiplier for low-SNR rows. The glutamate sensor's blank
/// noise is comparable to its whole linear-range signal (its LOD of
/// 1574 µM sits *above* the 500 µM range bottom in the paper's own data),
/// so its slope needs more averaging than glucose's. Boost = ⌈(5/SNR)²⌉
/// clamped to [1, 8], with SNR evaluated at the range midpoint.
fn replicate_boost(row: &PerformanceRow) -> usize {
    let c_mid = row.linear_range().midpoint().value();
    let signal = row.sensitivity_si() * c_mid;
    let snr = signal / row.blank_sd().value().max(1e-30);
    ((5.0 / snr).powi(2).ceil() as usize).clamp(1, 8)
}

/// Calibrates one oxidase row through the chronoamperometric chain.
///
/// Blank responses are individual measurements (the LOD is a
/// single-measurement statistic); concentration points average
/// `replicates` runs for slope stability.
pub fn calibrate_oxidase_row(
    oxidase: bios_biochem::Oxidase,
    row: &PerformanceRow,
    replicates: usize,
    seed: u64,
) -> CalibrationOutcome {
    let sensor = OxidaseSensor::from_registry(oxidase).expect("registry oxidase");
    let electrode = Electrode::paper_gold_we();
    let chain =
        ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase()).expect("paper range"));
    let protocol = ChronoProtocol::default();

    let blanks: Vec<f64> = (0..10)
        .map(|k| {
            run_chrono(
                &sensor,
                &electrode,
                &chain,
                Molar::ZERO,
                &protocol,
                seed + k,
            )
            .expect("valid protocol")
            .delta()
            .value()
        })
        .collect();
    let points: Vec<CalibrationPoint> = series(row)
        .iter()
        .enumerate()
        .map(|(j, c)| {
            let mean = (0..replicates)
                .map(|r| {
                    run_chrono(
                        &sensor,
                        &electrode,
                        &chain,
                        *c,
                        &protocol,
                        seed + 100 + (j * replicates + r) as u64,
                    )
                    .expect("valid protocol")
                    .delta()
                    .value()
                })
                .sum::<f64>()
                / replicates as f64;
            CalibrationPoint {
                concentration: *c,
                response: mean,
            }
        })
        .collect();
    analyze_calibration(&blanks, &points, 0.10).expect("well-formed campaign")
}

/// Calibrates one cytochrome row through the CV chain using the linear
/// [`peak_readout`] statistic at the drug's Table II potential.
pub fn calibrate_cyp_row(
    isoform: bios_biochem::CypIsoform,
    target: Analyte,
    row: &PerformanceRow,
    replicates: usize,
    seed: u64,
) -> CalibrationOutcome {
    let sensor = CypSensor::from_registry(isoform).expect("registry isoform");
    let electrode = Electrode::paper_gold_we();
    let range = CurrentRange::cytochrome().scaled(electrode.geometric_area().value());
    let chain = ReadoutChain::new(ChainConfig::for_range(range).expect("range is realizable"));
    let protocol = CvProtocol::default();
    let expected = sensor
        .nominal_peak_potential(target)
        .expect("registered substrate");
    let response_of = |m: &bios_instrument::CvMeasurement| {
        let seg = cathodic_segment(&m.voltammogram);
        peak_readout(&seg, expected)
            .map(|a| a.value())
            .unwrap_or(0.0)
    };

    let blanks: Vec<f64> = (0..10)
        .map(|k| {
            let m = run_cv(&sensor, &electrode, &chain, &[], &protocol, seed + k)
                .expect("valid protocol");
            response_of(&m)
        })
        .collect();
    let points: Vec<CalibrationPoint> = series(row)
        .iter()
        .enumerate()
        .map(|(j, c)| {
            let mean = (0..replicates)
                .map(|r| {
                    let m = run_cv(
                        &sensor,
                        &electrode,
                        &chain,
                        &[(target, *c)],
                        &protocol,
                        seed + 100 + (j * replicates + r) as u64,
                    )
                    .expect("valid protocol");
                    response_of(&m)
                })
                .sum::<f64>()
                / replicates as f64;
            CalibrationPoint {
                concentration: *c,
                response: mean,
            }
        })
        .collect();
    analyze_calibration(&blanks, &points, 0.10).expect("well-formed campaign")
}

/// Runs the full Table III reproduction with the given per-point replicate
/// count (3 reproduces the paper comfortably; 1 is faster for benches).
pub fn run(replicates: usize, seed: u64) -> Vec<Table3Row> {
    let area = Electrode::paper_gold_we().geometric_area().value();
    bios_biochem::tables::TABLE_III
        .iter()
        .enumerate()
        .map(|(k, row)| {
            let reps = replicates * replicate_boost(row);
            let outcome = match row.probe {
                ProbeRef::Oxidase(o) => calibrate_oxidase_row(o, row, reps, seed + 1000 * k as u64),
                ProbeRef::Cytochrome(c) => {
                    calibrate_cyp_row(c, row.target, row, reps, seed + 1000 * k as u64)
                }
            };
            Table3Row {
                target: row.target,
                probe: row.probe.to_string(),
                paper_sensitivity: row.sensitivity_ua_per_mm_cm2,
                measured_sensitivity: outcome.fit.slope / area * 1e3,
                paper_lod_um: row.lod_um,
                measured_lod_um: outcome.lod.as_micromolar(),
                paper_range_mm: (row.linear_lo_mm, row.linear_hi_mm),
                measured_range_mm: (
                    outcome.linear_range.lo().as_millimolar(),
                    outcome.linear_range.hi().as_millimolar(),
                ),
                r2: outcome.fit.r2,
            }
        })
        .collect()
}

/// Renders the rows in the paper's format, paper value above measured.
pub fn render(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<22} {:>18} {:>16} {:>19} {:>7}\n",
        "Target", "Probe", "S (µA/(mM·cm²))", "LOD (µM)", "Linear range (mM)", "R²"
    ));
    for r in rows {
        let paper_lod = r
            .paper_lod_um
            .map(|l| format!("{l:.0}"))
            .unwrap_or_else(|| "—".to_string());
        out.push_str(&format!(
            "{:<14} {:<22} {:>8.2}/{:<8.2} {:>7}/{:<7.0} {:>7.2}-{:<4.2}/{:.2}-{:<5.2} {:>6.3}\n",
            r.target.to_string().to_uppercase(),
            r.probe,
            r.paper_sensitivity,
            r.measured_sensitivity,
            paper_lod,
            r.measured_lod_um,
            r.paper_range_mm.0,
            r.paper_range_mm.1,
            r.measured_range_mm.0,
            r.measured_range_mm.1,
            r.r2,
        ));
    }
    out.push_str("(each cell: paper/measured)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_biochem::tables::performance_of;

    #[test]
    fn sensitivities_match_within_20_percent() {
        for r in run(3, 99) {
            let rel = (r.measured_sensitivity - r.paper_sensitivity).abs() / r.paper_sensitivity;
            assert!(
                rel < 0.20,
                "{}: measured {} vs paper {}",
                r.target,
                r.measured_sensitivity,
                r.paper_sensitivity
            );
        }
    }

    #[test]
    fn lods_match_within_a_factor_of_three() {
        // The LOD is a statistic of 10 simulated blanks — factor-level
        // agreement is the meaningful criterion.
        for r in run(3, 123) {
            if let Some(paper) = r.paper_lod_um {
                let ratio = r.measured_lod_um / paper;
                assert!(
                    (0.33..3.0).contains(&ratio),
                    "{}: measured {} µM vs paper {paper} µM",
                    r.target,
                    r.measured_lod_um
                );
            } else {
                assert!(r.measured_lod_um > 0.0);
            }
        }
    }

    #[test]
    fn sensitivity_ordering_is_preserved() {
        let rows = run(2, 7);
        let s = |a: Analyte| {
            rows.iter()
                .find(|r| r.target == a)
                .expect("all rows present")
                .measured_sensitivity
        };
        assert!(s(Analyte::Cholesterol) > s(Analyte::Lactate));
        assert!(s(Analyte::Lactate) > s(Analyte::Glucose));
        assert!(s(Analyte::Glucose) > s(Analyte::Aminopyrine));
        assert!(s(Analyte::Aminopyrine) > s(Analyte::Benzphetamine));
    }

    #[test]
    fn linear_ranges_end_near_the_paper_values() {
        for r in run(2, 55) {
            // The measured top must be within the series granularity of the
            // paper's (the detector can keep the 1.6×hi point when noise
            // masks the ~14% saturation there, but never the 2.4× point).
            assert!(
                r.measured_range_mm.1 <= r.paper_range_mm.1 * 1.7,
                "{}: linear top {} vs paper {}",
                r.target,
                r.measured_range_mm.1,
                r.paper_range_mm.1
            );
        }
    }

    #[test]
    fn registry_rows_cover_all_six_targets() {
        assert!(performance_of(Analyte::Glucose).is_some());
        assert_eq!(run(1, 1).len(), 6);
    }
}
