//! Fig. 1 reproduction: the potentiostat + transimpedance amplifier.
//!
//! The figure is a circuit block diagram; the reproducible content is the
//! behaviour it promises — the potentiostat holds the cell potential and
//! the TIA converts the cell current linearly. Experiment: drive a Randles
//! dummy cell, report (a) potential-control error vs open-loop gain,
//! (b) TIA integral nonlinearity across the oxidase range, (c) the step
//! settling time of the composed front-end.

use bios_afe::{Potentiostat, RandlesCell, Tia};
use bios_units::{Amps, Farads, Hertz, Ohms, Seconds, Volts};

/// Control-error row: open-loop gain vs residual potential error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlErrorRow {
    /// Amplifier open-loop gain.
    pub gain: f64,
    /// Static RE–WE error at a 650 mV setpoint.
    pub static_error: Volts,
}

/// Sweeps the control amplifier gain.
pub fn control_error_sweep() -> Vec<ControlErrorRow> {
    [1e2, 1e3, 1e4, 1e5, 1e6]
        .iter()
        .map(|&gain| {
            let pstat = Potentiostat::new(
                gain,
                Hertz::from_megahertz(1.0),
                Volts::new(1.5),
                Ohms::new(100.0),
            )
            .expect("parameters are valid");
            ControlErrorRow {
                gain,
                static_error: pstat.static_error(Volts::from_millivolts(650.0)),
            }
        })
        .collect()
}

/// The Fig. 1 TIA sized for the oxidase class.
pub fn paper_tia() -> Tia {
    Tia::new(
        Ohms::from_kiloohms(150.0),
        Hertz::from_kilohertz(1.0),
        Volts::new(1.65),
    )
    .expect("parameters are valid")
    .inverted()
}

/// Maximum TIA integral nonlinearity (fraction of full scale) over the
/// ±10 µA oxidase range, from a 101-point static sweep against the
/// best-fit line through the endpoints.
pub fn tia_inl() -> f64 {
    let tia = paper_tia();
    let fs = 10e-6;
    let gain = tia.convert_static(Amps::new(fs)).value() / fs;
    let mut worst: f64 = 0.0;
    for k in 0..=100 {
        let i = -fs + 2.0 * fs * k as f64 / 100.0;
        let v = tia.convert_static(Amps::new(i)).value();
        worst = worst.max((v - gain * i).abs() / (gain * fs).abs());
    }
    worst
}

/// Step response of potentiostat + Randles cell + TIA: time for the
/// recorded output to settle within 1% after a 100 mV setpoint step.
pub fn frontend_settling_time() -> Seconds {
    let pstat = Potentiostat::typical_cmos().expect("constants are valid");
    let mut cell = RandlesCell::new(
        Ohms::new(100.0),
        Ohms::from_kiloohms(100.0),
        Farads::from_nanofarads(46.0),
    )
    .expect("constants are valid");
    let tia = paper_tia();
    let mut tia_stream = tia.streamer();
    let mut pstat_stream = pstat.streamer(Volts::ZERO);
    let dt = Seconds::from_micros(0.5);
    let setpoint = Volts::from_millivolts(100.0);
    // Final value: DC current through the cell × gain.
    let v_final = tia
        .convert_static(Amps::new(
            pstat.applied(setpoint).value() / cell.dc_resistance().value(),
        ))
        .value();
    let mut settled_at = Seconds::ZERO;
    for k in 0..2_000_000u64 {
        let e = pstat_stream.step(setpoint, dt);
        let i = cell.step(e, dt);
        let v = tia_stream.process(i, dt);
        let t = Seconds::new(k as f64 * dt.value());
        if (v.value() - v_final).abs() > 0.01 * v_final.abs() {
            settled_at = t;
        }
        if t.value() > 0.1 {
            break;
        }
    }
    settled_at
}

/// Renders the Fig. 1 experiment report.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("potentiostat static control error at 650 mV setpoint:\n");
    out.push_str(&format!("{:>10} {:>14}\n", "gain", "error"));
    for row in control_error_sweep() {
        out.push_str(&format!(
            "{:>10.0} {:>14}\n",
            row.gain,
            row.static_error.to_string()
        ));
    }
    out.push_str(&format!(
        "\nTIA integral nonlinearity over ±10 µA: {:.2e} of full scale\n",
        tia_inl()
    ));
    out.push_str(&format!(
        "front-end 1% settling after a 100 mV step: {}\n",
        frontend_settling_time()
    ));
    out.push_str("(biology responds in ~30 s — readout never limits, as the paper argues)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_error_inverse_in_gain() {
        let rows = control_error_sweep();
        for pair in rows.windows(2) {
            // 10× gain → ~10× smaller error.
            let ratio = pair[0].static_error.value() / pair[1].static_error.value();
            assert!((ratio - 10.0).abs() < 1.0, "ratio {ratio}");
        }
        // 100 dB gain: sub-10 µV error.
        assert!(rows[3].static_error.as_microvolts() < 10.0);
    }

    #[test]
    fn tia_is_linear_to_a_part_in_1e6() {
        assert!(tia_inl() < 1e-6, "INL {}", tia_inl());
    }

    #[test]
    fn frontend_settles_in_milliseconds() {
        // The 1 kHz TIA dominates: ~1.3 ms to 1% — still 4 orders of
        // magnitude below the ~30 s biology.
        let t = frontend_settling_time();
        assert!(t.value() < 5e-3, "settling {t}");
        assert!(t.value() > 0.0);
    }
}
