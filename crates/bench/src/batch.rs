//! Batched SoA diffusion-kernel throughput — the BENCH_7 workload.
//!
//! One electrode fleet, one Thomas sweep per species per step
//! ([`simulate_chrono_fleet`]), timed against the per-lane scalar driver
//! on the standard grid. Three digest pairs guard the result:
//!
//! 1. fleet vs per-lane scalar, standard grid — SoA batching alone must
//!    be bit-identical;
//! 2. fleet vs per-lane scalar, coarse grid — batching stays
//!    bit-identical on the reduced grid;
//! 3. single-dispatch fleet vs [`par_map_chunks`]-chunked fleet, coarse
//!    grid — how the fleet is partitioned across workers must not change
//!    one bit of any lane.
//!
//! Digests use [`digest_debug`](crate::perf::digest_debug): FNV-1a over
//! shortest-roundtrip float rendering, so equality ⇔ bit identity.
//!
//! The headline `batch_gain` compares the coarse-grid batched kernel
//! against the standard-grid scalar baseline — it deliberately combines
//! the SoA win and the expanding-grid node reduction, because together
//! they are the single-thread speedup a serving host actually gets.
//! `batched_standard_steps_per_s` isolates the SoA share.

use crate::perf::digest_debug;
use bios_electrochem::{
    clear_solver_cache, simulate_chrono_fleet, simulate_chrono_with, Cell, Electrode,
    ElectrodeMaterial, Grid, PotentialProgram, RedoxCouple, SimOptions, Transient,
};
use bios_platform::{par_map_chunks, ExecPolicy};
use bios_units::{DiffusionCoefficient, Molar, Seconds, SquareCentimeters, Volts};
use criterion::measure;

/// Electrode lanes in the fleet workload.
pub const LANES: usize = 32;

/// Expanding-grid ratio for the coarse (batched) variants; the standard
/// variants use [`Grid::DEFAULT_GAMMA`].
pub const COARSE_GAMMA: f64 = 1.4;

/// Timed samples per variant (min is reported).
const SAMPLES: usize = 3;

/// Gate disposition recorded in the report (see
/// [`BatchKernelReport::speedup_gate`]).
pub const GATE_ENFORCED: &str = "enforced";
/// See [`GATE_ENFORCED`].
pub const GATE_SKIPPED_SINGLE_CORE: &str = "skipped_single_core_host";

/// The BENCH_7 report: batched-kernel throughput plus the digest
/// evidence that batching changed nothing.
#[derive(Debug, Clone)]
pub struct BatchKernelReport {
    /// `std::thread::available_parallelism` on the measuring host.
    pub host_cores: usize,
    /// Worker count the multi-threaded variant resolved to.
    pub threads: usize,
    /// The [`ExecPolicy`] of the multi-threaded variant, rendered.
    pub exec_policy: String,
    /// Electrode lanes in the fleet.
    pub lanes: usize,
    /// Backward-Euler time steps per run, summed across lanes (identical
    /// for every variant — the physical workload is fixed).
    pub steps: usize,
    /// Spatial nodes of the standard grid ([`Grid::DEFAULT_GAMMA`]).
    pub grid_nodes_standard: usize,
    /// Spatial nodes of the coarse grid ([`COARSE_GAMMA`]).
    pub grid_nodes_coarse: usize,
    /// Per-lane scalar driver, standard grid — the BENCH_2-comparable
    /// baseline.
    pub scalar_steps_per_s: f64,
    /// Fleet kernel, standard grid, one dispatch: the SoA gain alone.
    pub batched_standard_steps_per_s: f64,
    /// Fleet kernel, coarse grid, one dispatch: the headline number.
    pub batched_steps_per_s: f64,
    /// Fleet kernel, coarse grid, chunked across workers.
    pub batched_mt_steps_per_s: f64,
    /// Digest of the per-lane scalar run, standard grid.
    pub digest_scalar_standard: u64,
    /// Digest of the fleet run, standard grid.
    pub digest_fleet_standard: u64,
    /// Digest of the per-lane scalar run, coarse grid.
    pub digest_scalar_coarse: u64,
    /// Digest of the fleet run, coarse grid.
    pub digest_fleet_coarse: u64,
    /// Digest of the worker-chunked fleet run, coarse grid.
    pub digest_fleet_coarse_mt: u64,
    /// [`GATE_ENFORCED`] when the host can express a multi-thread
    /// speedup, [`GATE_SKIPPED_SINGLE_CORE`] otherwise — so a committed
    /// report can never pass a speedup gate it never ran.
    pub speedup_gate: &'static str,
}

impl BatchKernelReport {
    /// True iff all three digest pairs agree (bit-identical lanes).
    pub fn all_digests_match(&self) -> bool {
        self.digest_scalar_standard == self.digest_fleet_standard
            && self.digest_scalar_coarse == self.digest_fleet_coarse
            && self.digest_fleet_coarse == self.digest_fleet_coarse_mt
    }

    /// Single-thread gain of the batched coarse-grid kernel over the
    /// scalar standard-grid baseline (SoA × grid reduction).
    pub fn batch_gain(&self) -> f64 {
        self.batched_steps_per_s / self.scalar_steps_per_s
    }

    /// Multi-thread speedup of the chunked fleet over one dispatch.
    pub fn mt_speedup(&self) -> f64 {
        self.batched_mt_steps_per_s / self.batched_steps_per_s
    }
}

/// The fleet: heterogeneous electrode areas and bulk concentrations, so
/// no lane is a copy of another and digest checks exercise real per-lane
/// state.
fn fleet() -> (Vec<Cell>, Vec<Molar>, Vec<Molar>) {
    let cells: Vec<Cell> = (0..LANES)
        .map(|k| {
            let mm2 = 0.1 + 0.07 * k as f64;
            let we = Electrode::new(
                ElectrodeMaterial::Gold,
                SquareCentimeters::from_square_millimeters(mm2),
            )
            .expect("positive area");
            Cell::builder(we).build().expect("cell")
        })
        .collect();
    let bulk_ox: Vec<Molar> = (0..LANES)
        .map(|k| Molar::from_millimolar(0.2 + 0.05 * k as f64))
        .collect();
    let bulk_red = vec![Molar::ZERO; LANES];
    (cells, bulk_ox, bulk_red)
}

fn options(gamma: Option<f64>) -> SimOptions {
    SimOptions {
        dt: None,
        include_charging: true,
        grid_gamma: gamma,
    }
}

/// Runs the batched-kernel workload under `policy` (the multi-threaded
/// variant; the baseline and single-dispatch variants are always
/// sequential) and returns the BENCH_7 report.
pub fn run(policy: ExecPolicy) -> BatchKernelReport {
    let (cells, bulk_ox, bulk_red) = fleet();
    let couple = RedoxCouple::ferrocyanide();
    let program = PotentialProgram::Hold {
        potential: Volts::new(0.65),
        duration: Seconds::new(0.5),
    };

    let scalar = |gamma: Option<f64>| -> Vec<Transient> {
        cells
            .iter()
            .zip(bulk_ox.iter().zip(&bulk_red))
            .map(|(cell, (&ox, &red))| {
                simulate_chrono_with(cell, &couple, ox, red, &program, options(gamma))
                    .expect("scalar transient")
            })
            .collect()
    };
    let fleet_once = |gamma: Option<f64>| -> Vec<Transient> {
        simulate_chrono_fleet(
            &cells,
            &couple,
            &bulk_ox,
            &bulk_red,
            &program,
            options(gamma),
        )
        .expect("fleet transients")
    };
    let fleet_chunked = |gamma: Option<f64>| -> Vec<Transient> {
        par_map_chunks(policy, &cells, |start, chunk| {
            let end = start + chunk.len();
            simulate_chrono_fleet(
                chunk,
                &couple,
                &bulk_ox[start..end],
                &bulk_red[start..end],
                &program,
                options(gamma),
            )
            .expect("fleet chunk transients")
        })
    };

    // Digest evidence first (untimed, warm or cold is irrelevant).
    clear_solver_cache();
    let digest_scalar_standard = digest_debug(&scalar(None));
    let digest_fleet_standard = digest_debug(&fleet_once(None));
    let digest_scalar_coarse = digest_debug(&scalar(Some(COARSE_GAMMA)));
    let reference_fleet = fleet_once(Some(COARSE_GAMMA));
    let digest_fleet_coarse = digest_debug(&reference_fleet);
    let digest_fleet_coarse_mt = digest_debug(&fleet_chunked(Some(COARSE_GAMMA)));

    let steps = reference_fleet[0].len() * LANES;
    let dt = program.suggested_dt();
    let d_max = couple
        .diffusion_ox()
        .value()
        .max(couple.diffusion_red().value());
    let grid_nodes = |gamma: f64| {
        Grid::for_experiment_with(
            DiffusionCoefficient::new(d_max),
            program.duration(),
            dt,
            gamma,
        )
        .expect("grid")
        .len()
    };

    // Timings: every variant runs against a warm prefactorization cache
    // (the serving steady state). The digest runs above already warmed
    // each variant's grid.
    let scalar_t = measure(SAMPLES, || criterion::black_box(scalar(None)));
    let fleet_std_t = measure(SAMPLES, || criterion::black_box(fleet_once(None)));
    let fleet_t = measure(SAMPLES, || {
        criterion::black_box(fleet_once(Some(COARSE_GAMMA)))
    });
    let fleet_mt_t = measure(SAMPLES, || {
        criterion::black_box(fleet_chunked(Some(COARSE_GAMMA)))
    });

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    BatchKernelReport {
        host_cores,
        threads: policy.threads_for(LANES),
        exec_policy: format!("{policy:?}"),
        lanes: LANES,
        steps,
        grid_nodes_standard: grid_nodes(Grid::DEFAULT_GAMMA),
        grid_nodes_coarse: grid_nodes(COARSE_GAMMA),
        scalar_steps_per_s: steps as f64 / scalar_t.min_s(),
        batched_standard_steps_per_s: steps as f64 / fleet_std_t.min_s(),
        batched_steps_per_s: steps as f64 / fleet_t.min_s(),
        batched_mt_steps_per_s: steps as f64 / fleet_mt_t.min_s(),
        digest_scalar_standard,
        digest_fleet_standard,
        digest_scalar_coarse,
        digest_fleet_coarse,
        digest_fleet_coarse_mt,
        speedup_gate: if host_cores < 2 {
            GATE_SKIPPED_SINGLE_CORE
        } else {
            GATE_ENFORCED
        },
    }
}

/// Renders the report as pretty-printed JSON (hand-rolled, like
/// [`perf::to_json`](crate::perf::to_json), for stable committed output).
pub fn to_json(report: &BatchKernelReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"host_cores\": {},\n  \"threads\": {},\n  \"exec_policy\": \"{}\",\n",
        report.host_cores, report.threads, report.exec_policy
    ));
    out.push_str(&format!(
        "  \"lanes\": {},\n  \"steps\": {},\n",
        report.lanes, report.steps
    ));
    out.push_str(&format!(
        "  \"grid\": {{\"standard_nodes\": {}, \"coarse_nodes\": {}, \"coarse_gamma\": {:.2}}},\n",
        report.grid_nodes_standard, report.grid_nodes_coarse, COARSE_GAMMA
    ));
    out.push_str(&format!(
        "  \"kernel\": {{\"scalar_steps_per_s\": {:.0}, \"batched_standard_steps_per_s\": {:.0}, \"batched_steps_per_s\": {:.0}, \"batched_mt_steps_per_s\": {:.0}, \"batch_gain\": {:.2}, \"mt_speedup\": {:.2}}},\n",
        report.scalar_steps_per_s,
        report.batched_standard_steps_per_s,
        report.batched_steps_per_s,
        report.batched_mt_steps_per_s,
        report.batch_gain(),
        report.mt_speedup(),
    ));
    out.push_str(&format!(
        "  \"digests\": {{\"scalar_standard\": \"{:016x}\", \"fleet_standard\": \"{:016x}\", \"scalar_coarse\": \"{:016x}\", \"fleet_coarse\": \"{:016x}\", \"fleet_coarse_mt\": \"{:016x}\"}},\n",
        report.digest_scalar_standard,
        report.digest_fleet_standard,
        report.digest_scalar_coarse,
        report.digest_fleet_coarse,
        report.digest_fleet_coarse_mt,
    ));
    out.push_str(&format!(
        "  \"all_digests_match\": {},\n  \"speedup_gate\": \"{}\"\n}}\n",
        report.all_digests_match(),
        report.speedup_gate
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_valid_shape() {
        let report = BatchKernelReport {
            host_cores: 4,
            threads: 4,
            exec_policy: String::from("Auto"),
            lanes: 32,
            steps: 6432,
            grid_nodes_standard: 46,
            grid_nodes_coarse: 14,
            scalar_steps_per_s: 1_000_000.0,
            batched_standard_steps_per_s: 1_500_000.0,
            batched_steps_per_s: 3_500_000.0,
            batched_mt_steps_per_s: 7_000_000.0,
            digest_scalar_standard: 7,
            digest_fleet_standard: 7,
            digest_scalar_coarse: 9,
            digest_fleet_coarse: 9,
            digest_fleet_coarse_mt: 9,
            speedup_gate: GATE_ENFORCED,
        };
        assert!(report.all_digests_match());
        assert!((report.batch_gain() - 3.5).abs() < 1e-12);
        assert!((report.mt_speedup() - 2.0).abs() < 1e-12);
        let json = to_json(&report);
        assert!(json.contains("\"batch_gain\": 3.50"));
        assert!(json.contains("\"speedup_gate\": \"enforced\""));
        assert!(json.contains("\"all_digests_match\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn digest_mismatch_is_detected_per_pair() {
        let mut report = BatchKernelReport {
            host_cores: 1,
            threads: 1,
            exec_policy: String::from("Sequential"),
            lanes: 2,
            steps: 10,
            grid_nodes_standard: 40,
            grid_nodes_coarse: 12,
            scalar_steps_per_s: 1.0,
            batched_standard_steps_per_s: 1.0,
            batched_steps_per_s: 1.0,
            batched_mt_steps_per_s: 1.0,
            digest_scalar_standard: 1,
            digest_fleet_standard: 1,
            digest_scalar_coarse: 2,
            digest_fleet_coarse: 2,
            digest_fleet_coarse_mt: 2,
            speedup_gate: GATE_SKIPPED_SINGLE_CORE,
        };
        assert!(report.all_digests_match());
        report.digest_fleet_coarse_mt = 3;
        assert!(!report.all_digests_match(), "mt divergence must fail");
    }

    /// The real workload at reduced scale: every digest pair must agree.
    #[test]
    fn small_fleet_digests_agree() {
        use bios_electrochem::{simulate_chrono_fleet, simulate_chrono_with};

        let (cells, bulk_ox, bulk_red) = fleet();
        let couple = RedoxCouple::ferrocyanide();
        let program = PotentialProgram::Hold {
            potential: Volts::new(0.65),
            duration: Seconds::new(0.05),
        };
        let take = 4usize;
        for gamma in [None, Some(COARSE_GAMMA)] {
            let scalar: Vec<Transient> = cells[..take]
                .iter()
                .zip(bulk_ox[..take].iter().zip(&bulk_red[..take]))
                .map(|(cell, (&ox, &red))| {
                    simulate_chrono_with(cell, &couple, ox, red, &program, options(gamma))
                        .expect("scalar")
                })
                .collect();
            let batched = simulate_chrono_fleet(
                &cells[..take],
                &couple,
                &bulk_ox[..take],
                &bulk_red[..take],
                &program,
                options(gamma),
            )
            .expect("fleet");
            assert_eq!(
                digest_debug(&scalar),
                digest_debug(&batched),
                "gamma {gamma:?}"
            );
        }
    }
}
