//! Ablation A4: chopper/CDS conditioning vs LOD.
fn main() {
    bios_bench::banner("A4 — conditioning vs predicted glucose LOD (paper: 575 µM)");
    for r in bios_bench::ablations::noise_ablation() {
        println!("{:<14} {:>8.0} µM", r.label, r.lod_um);
    }
}
