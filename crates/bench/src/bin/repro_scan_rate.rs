//! Ablation A1: scan-rate accuracy (the paper's 20 mV/s guidance).
fn main() {
    bios_bench::banner("A1 — scan rate vs CYP peak position");
    let rows = bios_bench::ablations::scan_rate_sweep();
    println!(
        "{:>10} {:>10} {:>9} {:>12}",
        "v (mV/s)", "peak (mV)", "drift", "identified?"
    );
    for r in rows {
        println!(
            "{:>10.0} {:>10.0} {:>9.0} {:>12}",
            r.rate_mv_s,
            r.peak_mv,
            r.drift_mv,
            if r.still_identified { "yes" } else { "NO" }
        );
    }
}
