//! Regenerates the paper's Table I (oxidase working potentials).
fn main() {
    bios_bench::banner("Table I — oxidase chronoamperometric working potentials (vs Ag/AgCl)");
    let rows = bios_bench::table1::run();
    print!("{}", bios_bench::table1::render(&rows));
}
