//! Compiler-style design-space exploration at scale — the BENCH_10
//! reproduction (see [`bios_bench::explore`] for the workload).
//!
//! Seven panels × the standard 168 960-point box = 1 182 720 candidate
//! designs, statically pruned to their exact Pareto bands with only the
//! bands simulated. Flags:
//!
//! * `--json <path>` — write the report (default `BENCH_10.json`);
//! * `--min-reject <ratio>` — exit nonzero if the overall static
//!   rejection ratio falls below `ratio` (CI passes `0.99`).
//!
//! Three correctness gates are always enforced, on every host:
//!
//! * every panel's warm rerun must replay every shard and reproduce the
//!   cold frontier digest bit for bit;
//! * the incremental (edited-space, warm-cache) run must match a cold
//!   run of the same edit bit for bit;
//! * the pipeline band must equal the O(n²) brute-force oracle on the
//!   spot-check subspace.

use bios_platform::ExecPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = String::from("BENCH_10.json");
    let mut min_reject: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = args.get(i).ok_or("--json needs a path")?.clone();
            }
            "--min-reject" => {
                i += 1;
                min_reject = Some(args.get(i).ok_or("--min-reject needs a value")?.parse()?);
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
        i += 1;
    }

    bios_bench::banner("Design-space exploration — static pass pipeline (BENCH_10)");
    let report = bios_bench::explore::run(ExecPolicy::Auto)?;

    println!(
        "{:<18} {:>3} {:>9} {:>10} {:>8} {:>6} {:>7}  {:<6}",
        "panel", "tgt", "points", "rejected", "reject%", "band", "shards", "rerun"
    );
    for p in &report.panels {
        println!(
            "{:<18} {:>3} {:>9} {:>10} {:>7.3}% {:>6} {:>7}  {}",
            p.name,
            p.targets,
            p.points,
            p.statically_rejected,
            100.0 * p.rejection_ratio,
            p.band,
            p.shards,
            if p.rerun_identical() {
                "match"
            } else {
                "MISMATCH"
            },
        );
    }
    println!(
        "\n{} of {} designs statically rejected ({:.4}%) across {} panels",
        report.total_rejected,
        report.total_points,
        100.0 * report.overall_rejection_ratio,
        report.panels.len(),
    );
    println!(
        "cold sweep {:.2} s, warm sweep {:.2} s   shard cache: {} hits / {} misses",
        report.cold_sweep_s, report.warm_sweep_s, report.cache_hits, report.cache_misses
    );
    println!(
        "incremental edit: {} points, {} shards, {} replayed, digests {}",
        report.incremental.points,
        report.incremental.shards,
        report.incremental.replayed,
        if report.incremental.digests_match() {
            "match"
        } else {
            "MISMATCH"
        },
    );
    println!(
        "brute-force spot check: {} points, band {}, {}",
        report.brute_points,
        report.brute_band,
        if report.brute_matches {
            "pipeline matches oracle bit-for-bit"
        } else {
            "PIPELINE DIVERGED FROM ORACLE"
        },
    );

    std::fs::write(&json_path, bios_bench::explore::to_json(&report))?;
    println!("wrote {json_path}");

    if !report.all_reruns_identical() {
        return Err("warm rerun diverged from cold run (digest or replay mismatch)".into());
    }
    if !report.incremental.digests_match() {
        return Err("incremental re-exploration diverged from a cold run of the same spec".into());
    }
    if !report.brute_matches {
        return Err("pipeline band diverged from the brute-force oracle".into());
    }
    if let Some(floor) = min_reject {
        if report.overall_rejection_ratio < floor {
            return Err(format!(
                "static rejection gate failed: {:.4} < required {floor:.4}",
                report.overall_rejection_ratio
            )
            .into());
        }
        println!(
            "static rejection gate passed: {:.4} >= {floor:.4}",
            report.overall_rejection_ratio
        );
    }
    Ok(())
}
