//! Serving reproduction: sustained fleet load, chaos matrix, overload and
//! quarantine probes against `bios-server` (see [`bios_bench::service`]).
//!
//! Flags:
//!
//! * `--sessions <n>` — sustained-load fleet size (default 10000);
//! * `--json <path>` — write the report (default `BENCH_6.json`);
//! * `--min-concurrent <n>` — exit nonzero if the fleet never held at
//!   least `n` sessions in flight simultaneously.
//!
//! Three gates are always enforced, flags or not — each one is a
//! robustness claim, not a perf number:
//!
//! 1. zero silent corruptions across every phase;
//! 2. every induced chaos failure surfaced or absorbed within tolerance;
//! 3. the admission contract held (queue bound never exceeded, every
//!    refusal typed).

use bios_platform::ExecPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sessions = 10_000usize;
    let mut json_path = String::from("BENCH_6.json");
    let mut min_concurrent: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sessions" => {
                i += 1;
                sessions = args.get(i).ok_or("--sessions needs a value")?.parse()?;
            }
            "--json" => {
                i += 1;
                json_path = args.get(i).ok_or("--json needs a path")?.clone();
            }
            "--min-concurrent" => {
                i += 1;
                min_concurrent = Some(
                    args.get(i)
                        .ok_or("--min-concurrent needs a value")?
                        .parse()?,
                );
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
        i += 1;
    }

    bios_bench::banner("Diagnostics service — sustained load, chaos, admission");
    let report = bios_bench::service::run(ExecPolicy::Auto, sessions);

    let l = &report.load;
    println!(
        "host cores: {}   threads: {}   policy: {}",
        report.host_cores, report.threads, report.exec_policy
    );
    if report.host_cores < 2 {
        eprintln!("╔═══════════════════════════════════════════════════════════════════╗");
        eprintln!("║ WARNING: single-core host — serving throughput and latency numbers");
        eprintln!("║ below carry NO parallel signal (shards cannot fan out). The JSON");
        eprintln!("║ records \"parallelism\": \"single_core_host_no_parallel_signal\".");
        eprintln!("║ Robustness gates (corruption, chaos, admission) still run in full.");
        eprintln!("╚═══════════════════════════════════════════════════════════════════╝");
    }
    println!(
        "load: {} sessions over {} shards, peak {} concurrent, {} ticks, {} steps",
        l.sessions, l.shards, l.concurrent_peak, l.ticks, l.steps
    );
    println!(
        "      {} completed, {} non-completed, {} baseline mismatches",
        l.completed, l.non_completed, l.mismatches
    );
    println!(
        "      step latency p50 {:.1} us   p99 {:.1} us   max {:.1} us   ({:.0} sessions/s, {:.3} s wall)",
        l.p50_step_us,
        l.p99_step_us,
        l.max_step_us,
        l.sessions_per_s(),
        l.wall_s
    );
    println!("chaos matrix (induced -> surfaced/recovered, silent must be 0):");
    for c in &report.chaos {
        println!(
            "  {:<12} afe={:<5} devices {:>3}   induced {:>3} -> surfaced {:>3} + recovered {:>2}, silent {}, quarantined {}",
            c.server_fault,
            c.afe_overlay,
            c.devices,
            c.induced,
            c.surfaced,
            c.recovered,
            c.silent,
            c.quarantined,
        );
    }
    let o = &report.overload;
    println!(
        "overload: {} burst -> {} admitted + {} typed rejections, peak queue {}/{} (bound {}), {} shed",
        o.attempted,
        o.admitted,
        o.rejected_overloaded,
        o.peak_queue,
        o.queue_capacity,
        if o.bound_respected { "held" } else { "EXCEEDED" },
        o.shed,
    );
    println!(
        "quarantine: device tripped after {} failed sessions, typed rejection: {}",
        report.quarantine.sessions_to_quarantine, report.quarantine.rejection_typed
    );
    println!(
        "silent corruptions: {} [target: 0]",
        report.silent_corruptions()
    );

    std::fs::write(&json_path, bios_bench::service::to_json(&report))?;
    println!("wrote {json_path}");

    if report.silent_corruptions() != 0 {
        return Err(format!(
            "{} silent corruption(s) — a wrong result was presented as clean",
            report.silent_corruptions()
        )
        .into());
    }
    if !report.all_chaos_surfaced() {
        return Err("an induced chaos failure neither surfaced nor recovered".into());
    }
    if !report.admission_contract_held() {
        return Err("admission contract violated (queue bound or untyped refusal)".into());
    }
    if let Some(floor) = min_concurrent {
        if l.concurrent_peak < floor {
            return Err(format!(
                "concurrency gate failed: peak {} < required {floor}",
                l.concurrent_peak
            )
            .into());
        }
        println!(
            "concurrency gate passed: peak {} >= {floor}",
            l.concurrent_peak
        );
    }
    Ok(())
}
