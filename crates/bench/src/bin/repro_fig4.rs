//! Regenerates the paper's Fig. 4 platform instance (5-WE biointerface).
fn main() {
    bios_bench::banner("Fig. 4 — five-working-electrode multi-panel platform session");
    let (platform, report) = bios_bench::fig4::run(2011);
    print!("{}", bios_bench::fig4::render(&platform, &report));
}
