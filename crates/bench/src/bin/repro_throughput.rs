//! Throughput reproduction, two layers:
//!
//! 1. §II-B sample throughput — repeated sample/wash cycles on the
//!    glucose WE (the paper's samples-per-hour figure);
//! 2. execution-engine throughput — the perf harness in
//!    [`bios_bench::perf`]: session batches, design-space exploration and
//!    the fault matrix timed sequentially vs in parallel, with
//!    byte-identity digest checks and solver/memo cache statistics.
//!
//! Flags:
//!
//! * `--json <path>` — write the perf report (default `BENCH_2.json`);
//! * `--min-speedup <x>` — exit nonzero if any workload's parallel
//!   speedup falls below `x` (skipped — loudly — on 1-core hosts,
//!   where no speedup is possible);
//! * `--batch-json <path>` — write the batched-kernel report (default
//!   `BENCH_7.json`);
//! * `--min-batch-speedup <x>` — exit nonzero if the batched kernel's
//!   multi-thread speedup falls below `x` (same 1-core skip rule);
//! * `--skip-sample-throughput` — perf harness only (what CI runs).
//!
//! Digest equality — sequential vs parallel, scalar vs batched, whole
//! fleet vs worker-chunked fleet — is always enforced, on every host:
//! a mismatch is a correctness bug, not a perf miss. Only the speedup
//! gates are skipped on single-core hosts, and the skip is recorded in
//! the JSON (`"speedup_gate"`) so a committed report can't silently
//! claim a gate it never ran.

use bios_afe::{ChainConfig, CurrentRange, ReadoutChain};
use bios_biochem::{Oxidase, OxidaseSensor};
use bios_electrochem::Electrode;
use bios_instrument::{run_injection_series, InjectionSchedule};
use bios_platform::ExecPolicy;
use bios_units::{Molar, Seconds};

fn sample_throughput() -> Result<(), Box<dyn std::error::Error>> {
    bios_bench::banner("Sample throughput — glucose WE, sample/wash cycles (§II-B)");
    let sensor = OxidaseSensor::from_registry(Oxidase::Glucose)?;
    let chain = ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase())?);
    let schedule = InjectionSchedule::sample_wash_cycles(
        4,
        Molar::from_millimolar(2.0),
        Seconds::new(70.0),
        Seconds::new(70.0),
    )?;
    let result = run_injection_series(
        &sensor,
        &Electrode::paper_gold_we(),
        &chain,
        &schedule,
        Seconds::new(0.5),
        2011,
    )?;
    println!(
        "response t90 per injection (s): {:?}",
        result
            .response_times
            .iter()
            .map(|t| t.round())
            .collect::<Vec<_>>()
    );
    println!(
        "recovery t90 per wash (s):      {:?}",
        result
            .recovery_times
            .iter()
            .map(|t| t.round())
            .collect::<Vec<_>>()
    );
    if let Some(tph) = result.throughput_per_hour {
        println!("sample throughput: {tph:.0} samples/hour");
    }
    Ok(())
}

/// Prints the satellite warning for a gate that cannot run: a 1-core
/// host can express no parallel speedup, so "skipped" must be loud and
/// unmistakable — not a quiet `host_cores: 1` buried in a JSON file.
fn warn_single_core(gate: &str) {
    eprintln!("╔═══════════════════════════════════════════════════════════════════╗");
    eprintln!("║ WARNING: single-core host — the {gate} gate CANNOT run.");
    eprintln!("║ No multi-thread speedup is expressible with 1 core; the gate is");
    eprintln!("║ SKIPPED (not passed). The JSON records \"speedup_gate\":");
    eprintln!("║ \"skipped_single_core_host\". Re-run on a >=2-core host (or CI,");
    eprintln!("║ which pins ADVDIAG_THREADS=2) for an enforced result.");
    eprintln!("╚═══════════════════════════════════════════════════════════════════╝");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = String::from("BENCH_2.json");
    let mut batch_json_path = String::from("BENCH_7.json");
    let mut min_speedup: Option<f64> = None;
    let mut min_batch_speedup: Option<f64> = None;
    let mut skip_sample = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = args.get(i).ok_or("--json needs a path")?.clone();
            }
            "--batch-json" => {
                i += 1;
                batch_json_path = args.get(i).ok_or("--batch-json needs a path")?.clone();
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = Some(args.get(i).ok_or("--min-speedup needs a value")?.parse()?);
            }
            "--min-batch-speedup" => {
                i += 1;
                min_batch_speedup = Some(
                    args.get(i)
                        .ok_or("--min-batch-speedup needs a value")?
                        .parse()?,
                );
            }
            "--skip-sample-throughput" => skip_sample = true,
            other => return Err(format!("unknown flag: {other}").into()),
        }
        i += 1;
    }

    if !skip_sample {
        sample_throughput()?;
    }

    bios_bench::banner("Execution-engine throughput — sequential vs parallel");
    let report = bios_bench::perf::run(ExecPolicy::Auto);
    println!(
        "host threads: {}   parallel policy resolved to: {}",
        report.host_threads, report.parallel_threads
    );
    for w in &report.workloads {
        println!(
            "{:<14} {:>3} units   seq {:>8.3} s   par {:>8.3} s   speedup {:>5.2}x   digests {}",
            w.name,
            w.units,
            w.sequential_s,
            w.parallel_s,
            w.speedup(),
            if w.digests_match() {
                "match"
            } else {
                "MISMATCH"
            },
        );
    }
    println!(
        "diffusion kernel: {} steps/run, {:.0} steps/s cold, {:.0} steps/s warm ({} cache hits / {} misses)",
        report.kernel.steps,
        report.kernel.cold_steps_per_s,
        report.kernel.warm_steps_per_s,
        report.kernel.cache_hits,
        report.kernel.cache_misses,
    );
    println!(
        "memo caches over repeated faulted sessions: {} hits / {} misses",
        report.memo_hits, report.memo_misses
    );

    std::fs::write(&json_path, bios_bench::perf::to_json(&report))?;
    println!("wrote {json_path}");

    if !report.all_digests_match() {
        return Err("parallel output diverged from sequential (digest mismatch)".into());
    }
    if let Some(floor) = min_speedup {
        if report.host_threads < 2 {
            warn_single_core("min-speedup");
        } else if report.min_speedup() < floor {
            return Err(format!(
                "speedup gate failed: min {:.2}x < required {floor:.2}x",
                report.min_speedup()
            )
            .into());
        } else {
            println!(
                "speedup gate passed: min {:.2}x >= {floor:.2}x",
                report.min_speedup()
            );
        }
    }

    bios_bench::banner("Batched SoA diffusion kernel — fleet vs scalar");
    let batch = bios_bench::batch::run(ExecPolicy::Auto);
    println!(
        "fleet: {} lanes, {} steps/run   grid: {} nodes standard, {} nodes coarse (gamma {:.2})",
        batch.lanes,
        batch.steps,
        batch.grid_nodes_standard,
        batch.grid_nodes_coarse,
        bios_bench::batch::COARSE_GAMMA,
    );
    println!(
        "scalar baseline     {:>12.0} steps/s   (per-lane driver, standard grid)",
        batch.scalar_steps_per_s
    );
    println!(
        "batched, std grid   {:>12.0} steps/s   (SoA gain alone: {:.2}x)",
        batch.batched_standard_steps_per_s,
        batch.batched_standard_steps_per_s / batch.scalar_steps_per_s,
    );
    println!(
        "batched, coarse     {:>12.0} steps/s   (batch gain: {:.2}x)",
        batch.batched_steps_per_s,
        batch.batch_gain(),
    );
    println!(
        "batched, {} threads {:>12.0} steps/s   (mt speedup: {:.2}x)",
        batch.threads,
        batch.batched_mt_steps_per_s,
        batch.mt_speedup(),
    );
    println!(
        "digests: scalar/fleet std {}, scalar/fleet coarse {}, fleet/chunked {}",
        if batch.digest_scalar_standard == batch.digest_fleet_standard {
            "match"
        } else {
            "MISMATCH"
        },
        if batch.digest_scalar_coarse == batch.digest_fleet_coarse {
            "match"
        } else {
            "MISMATCH"
        },
        if batch.digest_fleet_coarse == batch.digest_fleet_coarse_mt {
            "match"
        } else {
            "MISMATCH"
        },
    );
    std::fs::write(&batch_json_path, bios_bench::batch::to_json(&batch))?;
    println!("wrote {batch_json_path}");

    if !batch.all_digests_match() {
        return Err("batched kernel diverged from scalar (digest mismatch)".into());
    }
    if let Some(floor) = min_batch_speedup {
        if batch.host_cores < 2 {
            warn_single_core("min-batch-speedup");
        } else if batch.mt_speedup() < floor {
            return Err(format!(
                "batch speedup gate failed: {:.2}x < required {floor:.2}x",
                batch.mt_speedup()
            )
            .into());
        } else {
            println!(
                "batch speedup gate passed: {:.2}x >= {floor:.2}x",
                batch.mt_speedup()
            );
        }
    }
    Ok(())
}
