//! §II-B sample throughput: repeated sample/wash cycles on the glucose WE.
use bios_afe::{ChainConfig, CurrentRange, ReadoutChain};
use bios_biochem::{Oxidase, OxidaseSensor};
use bios_electrochem::Electrode;
use bios_instrument::{run_injection_series, InjectionSchedule};
use bios_units::{Molar, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    bios_bench::banner("Sample throughput — glucose WE, sample/wash cycles");
    let sensor = OxidaseSensor::from_registry(Oxidase::Glucose)?;
    let chain = ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase())?);
    let schedule = InjectionSchedule::sample_wash_cycles(
        4,
        Molar::from_millimolar(2.0),
        Seconds::new(70.0),
        Seconds::new(70.0),
    )?;
    let result = run_injection_series(
        &sensor,
        &Electrode::paper_gold_we(),
        &chain,
        &schedule,
        Seconds::new(0.5),
        2011,
    )?;
    println!(
        "response t90 per injection (s): {:?}",
        result
            .response_times
            .iter()
            .map(|t| t.round())
            .collect::<Vec<_>>()
    );
    println!(
        "recovery t90 per wash (s):      {:?}",
        result
            .recovery_times
            .iter()
            .map(|t| t.round())
            .collect::<Vec<_>>()
    );
    if let Some(tph) = result.throughput_per_hour {
        println!("sample throughput: {tph:.0} samples/hour");
    }
    Ok(())
}
