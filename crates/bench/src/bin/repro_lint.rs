//! Self-test for the invariant lint engine (DESIGN.md §6).
//!
//! Seeds one violation per shipped rule into a synthetic source file,
//! asserts the rule fires, then asserts an inline
//! `// advdiag::allow(ID, reason)` suppresses it. Also exercises the
//! crate-applicability exemptions (the bench harness and
//! `bios-platform::exec`), the auto-fix engine (rewrites land, fixpoint
//! is idempotent), and finishes by linting the live workspace against
//! the checked-in baseline, which must leave zero new findings — then
//! times a cold vs warm (cached) full-workspace lint and writes the
//! speedup with cold/warm finding digests to `BENCH_8.json`
//! (`--json <path>` overrides). The timing gate covers the hot-path
//! call-graph analysis (H1-H4): the workspace-grained pass must replay
//! from cache digest-equal to cold, at >= 5x.

use std::path::Path;
use std::time::Instant;

use bios_lint::cache::findings_digest;
use bios_lint::fixer::{fix_source, unified_diff};
use bios_lint::{
    gather, lint_files, lint_files_cached, lint_source, lint_workspace, Baseline, FileContext,
    FixSafety, LintCache, MemFile, Severity, RULE_IDS,
};

/// A seeded violation: where it lives, the offending code, and the rule it
/// must trigger.
struct Seed {
    rule: &'static str,
    crate_name: &'static str,
    rel_path: &'static str,
    code: &'static str,
    /// 0-based index of the line the finding must land on (the line the
    /// suppression comment is attached to).
    hot_line: usize,
}

const SEEDS: &[Seed] = &[
    Seed {
        rule: "D1",
        crate_name: "bios-platform",
        rel_path: "crates/core/src/seeded.rs",
        code: "use std::collections::BTreeMap;\npub fn f() -> std::collections::HashMap<u32, u32> {\n    unreachable_stub()\n}\n",
        hot_line: 1,
    },
    Seed {
        rule: "D2",
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/seeded.rs",
        code: "pub fn f() -> u64 {\n    std::time::Instant::now().elapsed().as_nanos() as u64\n}\n",
        hot_line: 1,
    },
    Seed {
        rule: "P1",
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/seeded.rs",
        code: "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        hot_line: 1,
    },
    Seed {
        rule: "U1",
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/seeded.rs",
        code: "pub fn set_length(length_cm: f64) -> f64 {\n    length_cm\n}\n",
        hot_line: 0,
    },
    Seed {
        rule: "S1",
        crate_name: "bios-units",
        rel_path: "crates/units/src/seeded.rs",
        code: "pub fn f(p: *const u8) -> u8 {\n    unsafe { p.read() }\n}\n",
        hot_line: 1,
    },
    Seed {
        rule: "F1",
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/seeded.rs",
        code: "pub fn f(x: f64) -> bool {\n    x == 0.25\n}\n",
        hot_line: 1,
    },
    Seed {
        rule: "U2",
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/seeded.rs",
        code: "pub fn f(v: Volts) -> Amps {\n    let raw = v.as_millivolts();\n    Amps::from_nanoamps(raw)\n}\n",
        hot_line: 2,
    },
    Seed {
        rule: "D3",
        crate_name: "bios-platform",
        rel_path: "crates/core/src/seeded.rs",
        code: "pub fn f(xs: &[f64]) -> f64 {\n    let mut sum = 0.0;\n    par_map(policy, xs, |_, x| { sum += x; 0.0 });\n    sum\n}\n",
        hot_line: 2,
    },
    Seed {
        rule: "N1",
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/seeded.rs",
        code: "fn f(x: f64) -> f64 {\n    let d = 0.0;\n    x / d\n}\n",
        hot_line: 2,
    },
    Seed {
        rule: "N2",
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/seeded.rs",
        code: "fn f() -> f64 {\n    let eta = 1200.0;\n    eta.exp()\n}\n",
        hot_line: 2,
    },
    Seed {
        rule: "N3",
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/seeded.rs",
        code: "fn f() -> f64 {\n    let a = 1.0000001;\n    let b = 1.0;\n    a - b\n}\n",
        hot_line: 3,
    },
    Seed {
        rule: "H1",
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/seeded.rs",
        code: "pub fn step_with_rate_constants(n: usize) -> usize {\n    let scratch: Vec<f64> = Vec::new();\n    scratch.len() + n\n}\n",
        hot_line: 1,
    },
    Seed {
        rule: "H2",
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/seeded.rs",
        code: "pub fn step_wave(xs: &[f64]) -> f64 {\n    xs.iter().sum()\n}\n",
        hot_line: 1,
    },
    Seed {
        rule: "H3",
        crate_name: "bios-server",
        rel_path: "crates/server/src/seeded.rs",
        code: "pub fn step_active(d: Duration) {\n    std::thread::sleep(d);\n}\n",
        hot_line: 1,
    },
    Seed {
        rule: "H4",
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/seeded.rs",
        code: "pub fn step_wave(n: usize) -> f64 {\n    let grid = Grid::uniform(n);\n    grid.len() as f64\n}\n",
        hot_line: 1,
    },
    Seed {
        rule: "M1",
        crate_name: "bios-server",
        rel_path: "crates/server/src/seeded.rs",
        code: "pub fn f(t: ServiceTier) -> u8 {\n    match t {\n        ServiceTier::Stat => 0,\n        _ => 9,\n    }\n}\n",
        hot_line: 3,
    },
];

fn findings_for(seed: &Seed, code: &str) -> Vec<&'static str> {
    let ctx = FileContext {
        crate_name: seed.crate_name,
        rel_path: seed.rel_path,
    };
    lint_source(&ctx, code).iter().map(|f| f.rule).collect()
}

/// Inserts `// advdiag::allow(rule, reason)` on its own line directly above
/// the hot line.
fn suppressed(seed: &Seed) -> String {
    let mut lines: Vec<&str> = seed.code.lines().collect();
    let allow = format!("// advdiag::allow({}, seeded self-test)", seed.rule);
    lines.insert(seed.hot_line, &allow);
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

fn main() {
    bios_bench::banner("repro_lint — invariant lint engine self-test");
    let mut failures = 0u32;
    let mut check = |name: &str, ok: bool| {
        println!("  {} {}", if ok { "PASS" } else { "FAIL" }, name);
        if !ok {
            failures += 1;
        }
    };

    // 1. Every rule fires on its seeded violation, and only on its own
    //    hot line.
    for seed in SEEDS {
        let fired = findings_for(seed, seed.code);
        check(
            &format!("{} fires on seeded violation", seed.rule),
            fired.contains(&seed.rule),
        );
    }

    // 2. An inline allow with a reason silences exactly that finding.
    for seed in SEEDS {
        let fired = findings_for(seed, &suppressed(seed));
        check(
            &format!("{} honours advdiag::allow", seed.rule),
            !fired.contains(&seed.rule),
        );
    }

    // 3. An allow *without* a reason does not suppress (the reason is
    //    mandatory).
    {
        let seed = &SEEDS[2]; // P1
        let bare = seed.code.replace(
            "    x.unwrap()",
            "    // advdiag::allow(P1)\n    x.unwrap()",
        );
        check(
            "allow without a reason is rejected",
            findings_for(seed, &bare).contains(&"P1"),
        );
    }

    // 4. Applicability exemptions: the bench harness may unwrap; the
    //    parallel engine may spawn threads; test regions are skipped.
    check(
        "bench harness is exempt from P1",
        !lint_source(
            &FileContext {
                crate_name: "bios-bench",
                rel_path: "crates/bench/src/seeded.rs",
            },
            SEEDS[2].code,
        )
        .iter()
        .any(|f| f.rule == "P1"),
    );
    check(
        "core exec module is exempt from D2",
        !lint_source(
            &FileContext {
                crate_name: "bios-platform",
                rel_path: "crates/core/src/exec.rs",
            },
            "pub fn f() { std::thread::spawn(|| ()); }\n",
        )
        .iter()
        .any(|f| f.rule == "D2"),
    );
    check(
        "cfg(test) regions are skipped by P1",
        lint_source(
            &FileContext {
                crate_name: "bios-electrochem",
                rel_path: "crates/electrochem/src/seeded.rs",
            },
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1u8).unwrap(); }\n}\n",
        )
        .is_empty(),
    );

    // 4b. Semantic-rule exemptions: the bench harness is unit-code-free
    //     test infrastructure (no U2), and cfg(test) regions may use
    //     captured accumulators (no D3).
    check(
        "bench harness is exempt from U2",
        !lint_source(
            &FileContext {
                crate_name: "bios-bench",
                rel_path: "crates/bench/src/seeded.rs",
            },
            SEEDS.iter().find(|s| s.rule == "U2").expect("U2 seed").code,
        )
        .iter()
        .any(|f| f.rule == "U2"),
    );
    check(
        "cfg(test) regions are skipped by D3",
        !lint_source(
            &FileContext {
                crate_name: "bios-platform",
                rel_path: "crates/core/src/seeded.rs",
            },
            "#[cfg(test)]\nmod t {\n    fn g(xs: &[f64]) {\n        let mut s = 0.0;\n        par_map(p, xs, |_, x| { s += x; 0.0 });\n    }\n}\n",
        )
        .iter()
        .any(|f| f.rule == "D3"),
    );

    // 4c. W0: a well-formed suppression that silences nothing is itself
    //     a finding, and is in turn suppressible one level deep.
    {
        let ctx = FileContext {
            crate_name: "bios-electrochem",
            rel_path: "crates/electrochem/src/seeded.rs",
        };
        let stale =
            "// advdiag::allow(P1, nothing left to suppress here)\npub fn f() -> u8 {\n    7\n}\n";
        check(
            "W0 fires on a stale suppression",
            lint_source(&ctx, stale).iter().any(|f| f.rule == "W0"),
        );
        let allowed = format!("// advdiag::allow(W0, kept while the migration lands)\n{stale}");
        check(
            "W0 honours advdiag::allow",
            !lint_source(&ctx, &allowed).iter().any(|f| f.rule == "W0"),
        );
    }

    // 4d. Workspace rules on an in-memory module set: an upward crate
    //     reference is an A1 error; a pub item no other crate mentions
    //     is an A2 warning.
    {
        let files = vec![
            MemFile {
                crate_name: "bios-units".to_string(),
                rel_path: "crates/units/src/seeded.rs".to_string(),
                source: "pub fn peek() -> u32 {\n    bios_instrument::session::SLOTS\n}\n"
                    .to_string(),
                lintable: true,
            },
            MemFile {
                crate_name: "bios-afe".to_string(),
                rel_path: "crates/afe/src/seeded.rs".to_string(),
                source: "pub fn orphan_gain() -> f64 {\n    40.0\n}\n".to_string(),
                lintable: true,
            },
        ];
        let findings = lint_files(&files);
        check(
            "A1 flags an upward crate dependency as an error",
            findings
                .iter()
                .any(|f| f.rule == "A1" && f.severity == Severity::Error),
        );
        check(
            "A2 warns on dead public API",
            findings.iter().any(|f| {
                f.rule == "A2"
                    && f.severity == Severity::Warning
                    && f.message.contains("orphan_gain")
            }),
        );
        let mut suppressed = files;
        suppressed[0].source = suppressed[0].source.replace(
            "    bios_instrument",
            "    // advdiag::allow(A1, staged migration tracked in DESIGN.md)\n    bios_instrument",
        );
        check(
            "A1 honours advdiag::allow",
            !lint_files(&suppressed).iter().any(|f| f.rule == "A1"),
        );
    }

    // 5. The baseline machinery grandfathers exactly what it is told to.
    {
        let seed = &SEEDS[0];
        let ctx = FileContext {
            crate_name: seed.crate_name,
            rel_path: seed.rel_path,
        };
        let found = lint_source(&ctx, seed.code);
        let baseline = Baseline::from_findings(&found);
        let reparsed = Baseline::parse(&baseline.to_json()).expect("round-trip");
        let (grandfathered, fresh) = reparsed.partition(&found);
        check(
            "baseline grandfathers recorded findings",
            fresh.is_empty() && grandfathered.len() == found.len(),
        );
        let (_, fresh) = Baseline::default().partition(&found);
        check(
            "empty baseline leaves findings new",
            fresh.len() == found.len(),
        );
    }

    // 6. The live workspace is clean against the checked-in baseline.
    {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let findings = lint_workspace(root).expect("workspace lints");
        let baseline_path = root.join("lint-baseline.json");
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text).expect("baseline parses"),
            Err(_) => Baseline::default(),
        };
        let (_, fresh) = baseline.partition(&findings);
        // Warn-level findings (A2 dead-API reports) surface without
        // failing; only error-severity findings gate, mirroring the CLI
        // exit code.
        let errors: Vec<_> = fresh
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        for f in &errors {
            println!("    new finding: {}:{} [{}]", f.file, f.line, f.rule);
        }
        println!(
            "    workspace: {} fresh finding(s), {} error(s)",
            fresh.len(),
            errors.len()
        );
        check("workspace has zero unbaselined errors", errors.is_empty());
    }

    // 7. The auto-fix engine: machine-applicable rewrites land, the
    //    fixpoint is idempotent, and nothing fixable is left behind.
    {
        let ctx = FileContext {
            crate_name: "bios-electrochem",
            rel_path: "crates/electrochem/src/seeded.rs",
        };
        let src = "use std::collections::HashMap;\n\
             fn classify(x: f64) -> bool {\n    x == 0.5\n}\n\
             fn tally() -> usize {\n    let m: HashMap<u32, f64> = HashMap::new();\n    m.len()\n}\n\
             // advdiag::allow(F1, long since fixed)\nfn settled() {}\n";
        let (fixed, applied) = fix_source(&ctx, src);
        check("fixer applies machine-applicable rewrites", applied >= 3);
        check(
            "F1 comparison rewritten to total_cmp",
            fixed.contains("x.total_cmp(&0.5).is_eq()"),
        );
        check(
            "D1 HashMap with Ord key converted to BTreeMap",
            !fixed.contains("HashMap") && fixed.contains("BTreeMap"),
        );
        check(
            "stale allow deleted by W0 fix",
            !fixed.contains("advdiag::allow"),
        );
        let (again, more) = fix_source(&ctx, &fixed);
        check("fix fixpoint is idempotent", more == 0 && again == fixed);
        let leftovers = lint_source(&ctx, &fixed)
            .into_iter()
            .filter(|f| {
                f.fix
                    .as_ref()
                    .is_some_and(|fx| fx.safety == FixSafety::MachineApplicable)
            })
            .count();
        check(
            "no machine-applicable debt survives the fixpoint",
            leftovers == 0,
        );
        check(
            "unified diff renders the rewrite",
            unified_diff(ctx.rel_path, src, &fixed).contains("-    x == 0.5"),
        );
    }

    // 8. The incremental cache: a warm full-workspace lint must replay
    //    every file, reproduce the cold findings bit-for-bit (including
    //    the workspace-grained hot-path pass), and be at least 5×
    //    faster. Written to BENCH_8.json for CI.
    {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let files = gather(root).expect("workspace gathers");
        let (_, _, cache, _) = lint_files_cached(&files, &LintCache::default(), &[]);
        let runs = 3;
        let (mut cold_s, mut warm_s) = (f64::MAX, f64::MAX);
        let (mut cold_digest, mut warm_digest) = (0u64, 0u64);
        for _ in 0..runs {
            let t = Instant::now();
            let (found, _, _, _) = lint_files_cached(&files, &LintCache::default(), &[]);
            cold_s = cold_s.min(t.elapsed().as_secs_f64());
            cold_digest = findings_digest(&found);
        }
        let mut stats = bios_lint::LintStats::default();
        for _ in 0..runs {
            let t = Instant::now();
            let (found, _, _, s) = lint_files_cached(&files, &cache, &[]);
            warm_s = warm_s.min(t.elapsed().as_secs_f64());
            warm_digest = findings_digest(&found);
            stats = s;
        }
        let speedup = cold_s / warm_s;
        check(
            "warm run replays every file and crate",
            stats.files_reused == stats.files_total && stats.crates_analyzed == 0,
        );
        check(
            "cold and warm finding digests match",
            cold_digest == warm_digest,
        );
        check("warm cache lint is >= 5x faster than cold", speedup >= 5.0);
        println!(
            "    incremental: {} file(s), cold {:.1} ms, warm {:.1} ms, {:.1}x",
            stats.files_total,
            cold_s * 1e3,
            warm_s * 1e3,
            speedup
        );
        let json = format!(
            "{{\n  \"files\": {},\n  \"crates\": {},\n  \"cold_s\": {:.6},\n  \"warm_s\": {:.6},\n  \"speedup\": {:.2},\n  \"digest_cold\": \"{:016x}\",\n  \"digest_warm\": \"{:016x}\",\n  \"digests_match\": {},\n  \"files_reused\": {},\n  \"files_total\": {}\n}}\n",
            stats.files_total,
            stats.crates_reused + stats.crates_analyzed,
            cold_s,
            warm_s,
            speedup,
            cold_digest,
            warm_digest,
            cold_digest == warm_digest,
            stats.files_reused,
            stats.files_total,
        );
        let json_path = {
            let args: Vec<String> = std::env::args().collect();
            args.iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1).cloned())
                .unwrap_or_else(|| "BENCH_8.json".to_string())
        };
        match std::fs::write(&json_path, &json) {
            Ok(()) => println!("    wrote {json_path}"),
            Err(e) => check(&format!("write {json_path}: {e}"), false),
        }
    }

    println!(
        "\n{} rule(s) exercised: {}",
        RULE_IDS.len(),
        RULE_IDS.join(", ")
    );
    if failures > 0 {
        println!("{failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("all checks passed");
}
