//! Ablation A2: electrode scaling (background current, response time).
fn main() {
    bios_bench::banner("A2 — microelectrode advantages");
    let rows = bios_bench::ablations::microelectrode_sweep();
    println!(
        "{:>11} {:>16} {:>13}",
        "area (mm²)", "background (nA)", "settling (s)"
    );
    for r in rows {
        println!(
            "{:>11.4} {:>16.3} {:>13.3}",
            r.area_mm2, r.background_na, r.settling_s
        );
    }
}
