//! Regenerates the paper's Fig. 2 experiment (full acquisition chain).
fn main() {
    bios_bench::banner("Fig. 2 — acquisition chain signal integrity and noise budget");
    let results = bios_bench::fig2::run(8);
    print!("{}", bios_bench::fig2::render(&results));
}
