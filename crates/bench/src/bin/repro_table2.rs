//! Regenerates the paper's Table II (CYP450 reduction potentials).
fn main() {
    bios_bench::banner("Table II — cytochrome P450 reduction potentials (vs Ag/AgCl)");
    let rows = bios_bench::table2::run();
    print!("{}", bios_bench::table2::render(&rows));
}
