//! Regenerates the paper's Fig. 1 experiment (potentiostat + TIA behaviour).
fn main() {
    bios_bench::banner("Fig. 1 — potentiostat and transimpedance amplifier");
    print!("{}", bios_bench::fig1::render());
}
