//! Regenerates the paper's Fig. 3 (glucose biosensor time response).
fn main() {
    bios_bench::banner("Fig. 3 — glucose biosensor time response");
    let m = bios_bench::fig3::run(2011);
    print!("{}", bios_bench::fig3::render(&m));
}
