//! Extension A6: square-wave voltammetry vs CV detectability.
fn main() {
    bios_bench::banner("A6 — SWV vs CV signal-to-charging-background");
    println!("{:>10} {:>10} {:>10}", "conc (µM)", "CV S/B", "SWV S/B");
    for r in bios_bench::ablations::swv_advantage() {
        println!(
            "{:>10.0} {:>10.1} {:>10.1}",
            r.conc_um, r.cv_signal_to_background, r.swv_signal_to_background
        );
    }
}
