//! Ablation A5: design-space exploration with Pareto front.
fn main() {
    bios_bench::banner("A5 — design-space exploration (96 designs, paper panel)");
    let mut designs = bios_bench::ablations::design_space();
    designs.sort_by(|a, b| {
        a.cost
            .scalar()
            .partial_cmp(&b.cost.scalar())
            .expect("finite")
    });
    let feasible = designs.iter().filter(|d| d.feasible).count();
    println!(
        "{feasible}/{} designs feasible; Pareto front marked with *\n",
        designs.len()
    );
    println!(
        "{:<3} {:<5} {:<10} {:<6} {:<5} {:<5} {:>10} {:>9} {:>8} {:>8}",
        "", "nano", "sharing", "chop", "cds", "bits", "power", "area", "time", "margin"
    );
    for d in designs.iter().filter(|d| d.feasible) {
        println!(
            "{:<3} {:<5} {:<10} {:<6} {:<5} {:<5} {:>10} {:>7.2}mm² {:>7.0}s {:>8.2}",
            if d.pareto { "*" } else { "" },
            d.point.nanostructure.to_string(),
            format!("{:?}", d.point.sharing),
            d.point.chopper,
            d.point.cds,
            d.point.adc_bits,
            d.cost.power.to_string(),
            d.cost.total_area_mm2(),
            d.cost.session_time.value(),
            d.worst_lod_margin,
        );
    }
}
