//! Sweeps every fault kind × severity against the Fig. 4 platform and
//! reports detection/recovery/silent-corruption rates. Exits nonzero if
//! any silent corruption occurs — the acceptance target is zero.
fn main() {
    bios_bench::banner("Fault matrix — detection / recovery / silent-corruption rates");
    let report = bios_bench::fault_matrix::run(&[2011, 7, 42]);
    print!("{}", bios_bench::fault_matrix::render(&report));
    if report.silent_corruptions() > 0 {
        std::process::exit(1);
    }
}
