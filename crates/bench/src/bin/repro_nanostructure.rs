//! Ablation A3: nanostructuring vs sensitivity.
fn main() {
    bios_bench::banner("A3 — nanostructuring vs glucose sensitivity");
    let rows = bios_bench::ablations::nanostructure_sweep();
    println!("{:>6} {:>18} {:>6}", "stack", "S (µA/(mM·cm²))", "gain");
    for r in rows {
        println!(
            "{:>6} {:>18.2} {:>6.1}",
            r.nanostructure.to_string(),
            r.sensitivity,
            r.gain
        );
    }
}
