//! Runs every reproduction experiment in sequence (the full EXPERIMENTS.md
//! regeneration).
fn main() {
    bios_bench::banner("Table I — oxidase chronoamperometric working potentials (vs Ag/AgCl)");
    print!("{}", bios_bench::table1::render(&bios_bench::table1::run()));
    bios_bench::banner("Table II — cytochrome P450 reduction potentials (vs Ag/AgCl)");
    print!("{}", bios_bench::table2::render(&bios_bench::table2::run()));
    bios_bench::banner("Table III — metabolite biosensor performance");
    print!(
        "{}",
        bios_bench::table3::render(&bios_bench::table3::run(3, 2011))
    );
    bios_bench::banner("Fig. 1 — potentiostat and transimpedance amplifier");
    print!("{}", bios_bench::fig1::render());
    bios_bench::banner("Fig. 2 — acquisition chain noise budget");
    print!("{}", bios_bench::fig2::render(&bios_bench::fig2::run(8)));
    bios_bench::banner("Fig. 3 — glucose biosensor time response");
    let m = bios_bench::fig3::run(2011);
    print!("{}", bios_bench::fig3::render(&m));
    bios_bench::banner("Fig. 4 — five-WE multi-panel platform session");
    let (platform, report) = bios_bench::fig4::run(2011);
    print!("{}", bios_bench::fig4::render(&platform, &report));
    bios_bench::banner("Ablations A1–A4, A6, A7");
    print!("{}", bios_bench::ablations::render_all());
    bios_bench::banner("Selectivity matrix (§II-B)");
    let m = platform.selectivity_matrix(2025).expect("matrix");
    print!("{}", m.render());
    println!(
        "false positives: {}   worst cross-response: {:.1}%",
        m.false_positives(),
        m.worst_cross_response() * 100.0
    );
    bios_bench::banner("Fault matrix — detection / recovery / silent-corruption rates");
    print!(
        "{}",
        bios_bench::fault_matrix::render(&bios_bench::fault_matrix::run(&[2011, 7, 42]))
    );
}
