//! Regenerates the paper's Table III (per-target biosensor performance).
fn main() {
    bios_bench::banner("Table III — metabolite biosensor performance (full calibration campaigns)");
    let rows = bios_bench::table3::run(3, 2011);
    print!("{}", bios_bench::table3::render(&rows));
}
