//! §II-B selectivity: the platform's stimulus × readout response matrix.
fn main() {
    bios_bench::banner("Selectivity matrix — one single-analyte session per target");
    let platform = bios_bench::fig4::build_platform();
    let m = platform.selectivity_matrix(2025).expect("matrix");
    print!("{}", m.render());
    println!(
        "\nfalse positives: {}   worst cross-response: {:.1}% of own signal",
        m.false_positives(),
        m.worst_cross_response() * 100.0
    );
}
