//! Ablation A7: diffusion-solver grid choice (DESIGN.md §4).
fn main() {
    bios_bench::banner("A7 — uniform vs expanding grid on the Cottrell benchmark");
    println!(
        "{:>6} {:>7} {:>14} {:>16}",
        "level", "nodes", "uniform err", "expanding err"
    );
    for r in bios_bench::ablations::grid_ablation() {
        println!(
            "{:>6} {:>7} {:>13.2}% {:>15.2}%",
            r.level,
            r.uniform_nodes,
            r.uniform_error * 100.0,
            r.expanding_error * 100.0
        );
    }
    println!("\n(the ~1.5% floor at fine grids is the backward-Euler time error at dt = 5 ms)");
}
