//! `repro_model` — bounded exhaustive model checking of the
//! session/server protocol, self-tested end to end.
//!
//! Five stages, each gated:
//!
//! 1. **Session sweep** — BFS over every reachable session state for a
//!    grid of electrode counts and retry budgets; every invariant
//!    (stuck-state, budget monotonicity, backoff termination,
//!    checkpoint closure) must hold on every state.
//! 2. **Flagship server run** — the 3-session × 2-shard chaos config
//!    explored to fixpoint under DPOR-style pruning with empirical
//!    commutation checks; gates on ≥ 100 000 canonical states, zero
//!    violations and no truncation.
//! 3. **Full-vs-pruned twin** — the same small universe explored with
//!    *every* shard interleaving and with the pruned schedule; the full
//!    run proves the single-digest theorem (`terminal_states ==
//!    terminal_classes`), the twin quantifies the pruning ratio.
//! 4. **Seeded mutations** — two deliberate protocol bugs
//!    (`SkipAttemptIncrement`, `SilentShed`) must each be caught, and
//!    the minimal counterexample must survive a disk round-trip and
//!    replay deterministically to its recorded violation
//!    ([`TraceArtifact::verify`]).
//! 5. **Reproducibility** — the flagship run is executed twice; every
//!    statistic must match bit-for-bit.
//!
//! Writes `BENCH_9.json` (`--json <path>` overrides) with canonical
//! states/sec, dedup ratio and interleaving counts, plus the two
//! counterexample artifacts (`model_cx_session.json`,
//! `model_cx_server.json`). `--emit-dot <path>` additionally renders
//! the small universe's state graph to Graphviz, terminal states
//! colored by outcome.

use std::time::Instant;

use bios_model::{
    explore, render_dot, ExploreLimits, ExploreReport, Interleave, MRequest, MVerdict, Mutation,
    ServerModel, ServerModelConfig, SessionModel, SessionModelConfig, TraceArtifact,
};
use bios_platform::RetryPolicy;
use bios_server::ServiceTier;

/// Retry policy for model universes: small budgets keep the state space
/// bounded while still exercising backoff, exhaustion and quarantine.
fn model_retry(max_retries: usize) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        quarantine_after: 2,
        ..RetryPolicy::default()
    }
}

/// The flagship bounded universe: three sessions over two shards with
/// the full verdict alphabet and a chaos menu of stalls and mid-session
/// aborts.
fn flagship_config() -> ServerModelConfig {
    let session = SessionModelConfig::new(1, model_retry(1)).with_alphabet(vec![
        MVerdict::Pass,
        MVerdict::Fail,
        MVerdict::Err,
    ]);
    let requests = vec![
        MRequest {
            device: 0,
            tier: ServiceTier::Stat,
        },
        MRequest {
            device: 1,
            tier: ServiceTier::Routine,
        },
        MRequest {
            device: 2,
            tier: ServiceTier::BestEffort,
        },
    ];
    ServerModelConfig::new(2, requests, session)
        .with_stall_choices(vec![0, 1, 3])
        .with_abort_choices(vec![None, Some(2), Some(5)])
}

/// The small universe used for the full-vs-pruned twin and the DOT
/// artifact: two sessions, two shards, binary verdicts, no chaos.
fn twin_config(interleave: Interleave) -> ServerModelConfig {
    let session = SessionModelConfig::new(1, model_retry(1))
        .with_alphabet(vec![MVerdict::Pass, MVerdict::Fail]);
    let requests = vec![
        MRequest {
            device: 0,
            tier: ServiceTier::Stat,
        },
        MRequest {
            device: 1,
            tier: ServiceTier::Routine,
        },
    ];
    ServerModelConfig::new(2, requests, session).with_interleave(interleave)
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn explore_server(cfg: ServerModelConfig, limits: &ExploreLimits) -> Option<ExploreReport> {
    match ServerModel::new(cfg) {
        Ok(model) => Some(explore(&model, limits)),
        Err(e) => {
            println!("  FAIL server model rejected its config: {e}");
            None
        }
    }
}

fn main() {
    bios_bench::banner("repro_model — protocol model checker self-test");
    let mut failures = 0u32;
    let mut check = |name: &str, ok: bool| {
        println!("  {} {}", if ok { "PASS" } else { "FAIL" }, name);
        if !ok {
            failures += 1;
        }
    };
    let limits = ExploreLimits::default();

    // 1. Session-level sweep: electrodes × retry budgets, full verdict
    //    alphabet. Checkpoint closure is re-proved on every state.
    let mut session_states = 0u64;
    for electrodes in 1..=2u8 {
        for retries in 1..=2usize {
            let cfg = SessionModelConfig::new(electrodes, model_retry(retries))
                .with_alphabet(vec![MVerdict::Pass, MVerdict::Fail, MVerdict::Err]);
            let name = format!("session sweep e={electrodes} r={retries} is exhaustive and clean");
            match SessionModel::new(cfg) {
                Ok(model) => {
                    let report = explore(&model, &limits);
                    session_states += report.stats.states;
                    check(
                        &name,
                        report.violation.is_none()
                            && !report.truncated
                            && report.stats.terminal_states > 0,
                    );
                }
                Err(e) => check(&format!("{name}: {e}"), false),
            }
        }
    }
    println!("    session sweep: {session_states} canonical states");

    // 2 + 5. Flagship chaos run, twice: exhaustive, clean, large, and
    //    bit-identical between runs.
    let t = Instant::now();
    let first = explore_server(flagship_config(), &limits);
    let flagship_s = t.elapsed().as_secs_f64();
    let second = explore_server(flagship_config(), &limits);
    let (states, edges, dedup_hits, interleavings, states_per_sec) = match (&first, &second) {
        (Some(a), Some(b)) => {
            check(
                "flagship run is clean and untruncated",
                a.violation.is_none() && !a.truncated,
            );
            check(
                "flagship run covers >= 1e5 canonical states",
                a.stats.states >= 100_000,
            );
            check(
                "flagship terminal digests are one-per-chaos-class",
                a.stats.terminal_states == a.stats.terminal_classes,
            );
            check("rerun reproduces every statistic", a.stats == b.stats);
            println!(
                "    flagship: {} states, {} edges, {} dedup hits, {} terminals in {:.2}s ({:.0} states/s)",
                a.stats.states,
                a.stats.edges,
                a.stats.dedup_hits,
                a.stats.terminal_states,
                flagship_s,
                a.stats.states as f64 / flagship_s,
            );
            (
                a.stats.states,
                a.stats.edges,
                a.stats.dedup_hits,
                a.stats.terminal_states,
                a.stats.states as f64 / flagship_s,
            )
        }
        _ => {
            check("flagship run constructs", false);
            (0, 0, 0, 0, 0.0)
        }
    };

    // 3. Full-vs-pruned twin: every interleaving of the small universe
    //    reaches one digest per chaos class; the pruned schedule reaches
    //    the same classes with fewer states.
    let full = explore_server(twin_config(Interleave::Full), &limits);
    let pruned = explore_server(twin_config(Interleave::Pruned), &limits);
    let (full_states, pruned_states, full_dedup) = match (&full, &pruned) {
        (Some(f), Some(p)) => {
            check(
                "full interleaving run is clean (single-digest theorem)",
                f.violation.is_none() && !f.truncated,
            );
            check(
                "full run: one terminal digest per chaos class",
                f.stats.terminal_states == f.stats.terminal_classes,
            );
            check(
                "pruned run reaches the same terminal classes",
                p.violation.is_none() && p.stats.terminal_classes == f.stats.terminal_classes,
            );
            check(
                "pruning shrinks the interleaving space",
                p.stats.states < f.stats.states,
            );
            println!(
                "    twin: full {} states vs pruned {} states ({:.2}x)",
                f.stats.states,
                p.stats.states,
                f.stats.states as f64 / p.stats.states as f64,
            );
            (f.stats.states, p.stats.states, f.stats.dedup_hits)
        }
        _ => {
            check("twin runs construct", false);
            (0, 0, 0)
        }
    };

    // 4. Seeded mutations: each deliberate bug is caught, and its
    //    counterexample artifact survives disk and replays to the
    //    recorded violation.
    {
        let cfg = SessionModelConfig::new(1, model_retry(1))
            .with_mutation(Mutation::SkipAttemptIncrement);
        let caught = SessionModel::new(cfg.clone()).ok().and_then(|m| {
            explore(&m, &limits)
                .violation
                .map(|cx| TraceArtifact::Session {
                    config: cfg,
                    counterexample: cx,
                })
        });
        check("mutation SkipAttemptIncrement is caught", caught.is_some());
        if let Some(artifact) = caught {
            let path = "model_cx_session.json";
            let roundtrip = artifact
                .to_json()
                .map_err(|e| e.to_string())
                .and_then(|json| std::fs::write(path, &json).map_err(|e| e.to_string()))
                .and_then(|()| std::fs::read_to_string(path).map_err(|e| e.to_string()))
                .and_then(|json| TraceArtifact::from_json(&json).map_err(|e| e.to_string()))
                .and_then(|back| back.verify().map_err(|e| e.to_string()));
            match roundtrip {
                Ok(_) => {
                    check("session counterexample replays from disk", true);
                    println!("    {}: {}", path, artifact.describe());
                }
                Err(e) => check(&format!("session counterexample replay: {e}"), false),
            }
        }
    }
    {
        let session =
            SessionModelConfig::new(1, model_retry(1)).with_mutation(Mutation::SilentShed);
        let requests: Vec<MRequest> = (0..3)
            .map(|d| MRequest {
                device: d * 2, // all route to shard 0 to force a shed
                tier: ServiceTier::BestEffort,
            })
            .collect();
        let cfg = ServerModelConfig::new(2, requests, session).with_shed_watermark(1);
        let caught = ServerModel::new(cfg.clone()).ok().and_then(|m| {
            explore(&m, &limits)
                .violation
                .map(|cx| TraceArtifact::Server {
                    config: cfg,
                    counterexample: cx,
                })
        });
        check("mutation SilentShed is caught", caught.is_some());
        if let Some(artifact) = caught {
            let path = "model_cx_server.json";
            let roundtrip = artifact
                .to_json()
                .map_err(|e| e.to_string())
                .and_then(|json| std::fs::write(path, &json).map_err(|e| e.to_string()))
                .and_then(|()| std::fs::read_to_string(path).map_err(|e| e.to_string()))
                .and_then(|json| TraceArtifact::from_json(&json).map_err(|e| e.to_string()))
                .and_then(|back| back.verify().map_err(|e| e.to_string()));
            match roundtrip {
                Ok(_) => {
                    check("server counterexample replays from disk", true);
                    println!("    {}: {}", path, artifact.describe());
                }
                Err(e) => check(&format!("server counterexample replay: {e}"), false),
            }
        }
    }

    // Optional DOT artifact: the small universe with the graph recorded.
    if let Some(dot_path) = arg_value("--emit-dot") {
        let graph_limits = ExploreLimits {
            record_graph: true,
            ..ExploreLimits::default()
        };
        match explore_server(twin_config(Interleave::Pruned), &graph_limits) {
            Some(report) => match report.graph {
                Some(graph) => {
                    let dot = render_dot(&graph, "bios-model: pruned server universe");
                    match std::fs::write(&dot_path, &dot) {
                        Ok(()) => println!("    wrote {dot_path} ({} nodes)", graph.nodes.len()),
                        Err(e) => check(&format!("write {dot_path}: {e}"), false),
                    }
                }
                None => check("state graph recorded", false),
            },
            None => check("state graph run constructs", false),
        }
    }

    let dedup_ratio = if states > 0 {
        dedup_hits as f64 / (states + dedup_hits) as f64
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"session_sweep_states\": {session_states},\n  \"flagship_states\": {states},\n  \"flagship_edges\": {edges},\n  \"flagship_dedup_hits\": {dedup_hits},\n  \"flagship_dedup_ratio\": {dedup_ratio:.4},\n  \"flagship_terminals\": {interleavings},\n  \"flagship_states_per_sec\": {states_per_sec:.0},\n  \"full_twin_states\": {full_states},\n  \"full_twin_dedup_hits\": {full_dedup},\n  \"pruned_twin_states\": {pruned_states},\n  \"pruning_ratio\": {:.2}\n}}\n",
        if pruned_states > 0 {
            full_states as f64 / pruned_states as f64
        } else {
            0.0
        },
    );
    let json_path = arg_value("--json").unwrap_or_else(|| "BENCH_9.json".to_string());
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("    wrote {json_path}"),
        Err(e) => check(&format!("write {json_path}: {e}"), false),
    }

    if failures > 0 {
        println!("{failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!("all checks passed");
}
