//! Fig. 3 reproduction: the glucose biosensor's time response — "the
//! signal takes around 30 seconds to reach the steady-state after an
//! injection of the target molecule".

use bios_afe::{ChainConfig, CurrentRange, ReadoutChain};
use bios_biochem::{Oxidase, OxidaseSensor};
use bios_electrochem::Electrode;
use bios_instrument::{run_chrono, ChronoMeasurement, ChronoProtocol};
use bios_units::{Molar, Seconds};

/// Runs the Fig. 3 experiment: 2 mM glucose injected at t = 10 s.
pub fn run(seed: u64) -> ChronoMeasurement {
    let sensor = OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry oxidase");
    let electrode = Electrode::paper_gold_we();
    let chain =
        ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase()).expect("paper range"));
    let protocol = ChronoProtocol {
        settle: Seconds::new(10.0),
        measure: Seconds::new(80.0),
        dt: Seconds::new(0.25),
    };
    run_chrono(
        &sensor,
        &electrode,
        &chain,
        Molar::from_millimolar(2.0),
        &protocol,
        seed,
    )
    .expect("valid protocol")
}

/// Renders the transient as an ASCII time-series plus the §II-B metrics.
pub fn render(m: &ChronoMeasurement) -> String {
    let mut out = String::new();
    out.push_str("glucose biosensor time response (2 mM injection at t = 10 s):\n\n");
    // Decimated ASCII profile.
    let max_i = m.steady_state.value().max(1e-30);
    for (t, i) in m.transient.iter() {
        let frac = (t.value() / 0.25) as u64;
        if !frac.is_multiple_of(20) {
            continue; // one line per 5 s
        }
        let bars = ((i.value() / max_i).clamp(0.0, 1.2) * 50.0) as usize;
        out.push_str(&format!(
            "{:>5.0} s | {:<62} {:>10}\n",
            t.value(),
            "#".repeat(bars),
            i.to_string()
        ));
    }
    out.push('\n');
    out.push_str(&format!("baseline        : {}\n", m.baseline));
    out.push_str(&format!("steady state    : {}\n", m.steady_state));
    if let Some(t90) = m.t90 {
        out.push_str(&format!(
            "t90             : {:.1} s   (paper Fig. 3: ≈30 s)\n",
            t90.value()
        ));
    }
    if let Some(tr) = m.transient_response_time {
        out.push_str(&format!(
            "(dI/dt)max time : {:.1} s after injection\n",
            tr.value()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t90_is_about_30_seconds() {
        let m = run(2011);
        let t90 = m.t90.expect("response settles").value();
        assert!((t90 - 30.0).abs() < 6.0, "t90 = {t90} s, paper shows ≈30 s");
    }

    #[test]
    fn transient_time_precedes_t90() {
        let m = run(7);
        let tr = m.transient_response_time.expect("slope found").value();
        let t90 = m.t90.expect("response settles").value();
        assert!(tr < t90);
        assert!(
            tr > 1.0,
            "the membrane delays the inflection past the first second"
        );
    }

    #[test]
    fn signal_rises_monotonically_after_injection() {
        let m = run(3);
        // Compare 5 s / 15 s / 40 s after injection.
        let at = |t: f64| {
            m.transient
                .current_at(Seconds::new(10.0 + t))
                .expect("sampled")
                .value()
        };
        assert!(at(15.0) > at(5.0));
        assert!(at(40.0) > at(15.0));
    }
}
