//! Serving harness: sustained fleet load, chaos matrix and admission
//! probes against `bios-server`, written as `BENCH_6.json`.
//!
//! Four phases, one report:
//!
//! 1. **Sustained load** — thousands of concurrent sessions driven to
//!    completion, every served report compared bit-for-bit against a
//!    same-seed blocking baseline (any mismatch is a silent corruption),
//!    with p50/p99/max per-step latency sampled through a wall
//!    [`bios_server::Clock`].
//! 2. **Chaos matrix** — server-level faults (device stalls, mid-session
//!    aborts) crossed with AFE fault overlays; every induced failure must
//!    surface (typed outcome, flagged report or fleet quarantine) or be
//!    absorbed within the fault-matrix tolerance. Anything materially
//!    wrong yet presented as clean counts as a silent corruption.
//! 3. **Overload probe** — a queue-full storm past the admission bound;
//!    rejections must be typed [`ServerError::Overloaded`], the bound
//!    must never be exceeded, and shed work must be reported.
//! 4. **Quarantine probe** — a chronically failing device must be
//!    fleet-quarantined and then refused with a typed
//!    [`ServerError::Quarantined`].
//!
//! The acceptance target across all phases is **zero** silent
//! corruptions: under load, chaos and overload, every degradation carries
//! provenance.

use crate::fault_matrix::TOLERANCE;
use bios_afe::{Fault, FaultKind, FaultPlan};
use bios_biochem::Analyte;
use bios_instrument::{QcClass, QcGate};
use bios_platform::{par_map, ExecPolicy, SessionOptions, SessionReport};
use bios_server::{
    ChaosPlan, Clock, DiagnosticsServer, ServerConfig, ServerError, ServiceTier, SessionOutcome,
    SessionRequest,
};

/// A real monotonic clock for latency telemetry. Lives here — not in
/// `bios-server` — because `bios-bench` is the one crate exempt from the
/// workspace determinism lint (D2): the serving control path must never
/// read wall time itself.
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// A clock anchored at construction.
    pub fn new() -> Self {
        Self {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Distinct session seeds cycled across the fleet (keeps the baseline set
/// small while still exercising seed diversity).
const LOAD_SEED_CYCLE: u64 = 64;

/// Devices per chaos-matrix cell.
const CHAOS_DEVICES: u64 = 32;

/// Phase 1 result: sustained concurrent load.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// Sessions submitted (= devices).
    pub sessions: usize,
    /// Shards the fleet ran on.
    pub shards: usize,
    /// Most sessions simultaneously in flight after any tick.
    pub concurrent_peak: usize,
    /// Virtual ticks to drain the fleet.
    pub ticks: u64,
    /// State-machine steps executed.
    pub steps: u64,
    /// Sessions served as `Completed`.
    pub completed: usize,
    /// Sessions served as anything else (must be 0 under clean load).
    pub non_completed: usize,
    /// Served reports that were NOT bit-identical to their same-seed
    /// blocking baseline — silent corruptions; the gate is 0.
    pub mismatches: usize,
    /// Median per-step latency, microseconds.
    pub p50_step_us: f64,
    /// 99th-percentile per-step latency, microseconds.
    pub p99_step_us: f64,
    /// Worst per-step latency, microseconds.
    pub max_step_us: f64,
    /// Wall time to serve the whole fleet, seconds.
    pub wall_s: f64,
}

impl LoadResult {
    /// Sessions served per wall second.
    pub fn sessions_per_s(&self) -> f64 {
        self.sessions as f64 / self.wall_s.max(1e-9)
    }
}

/// One cell of the chaos matrix: a server-fault mix crossed with an AFE
/// overlay setting.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Server-level fault mix injected ("none", "stall", "abort",
    /// "stall+abort").
    pub server_fault: &'static str,
    /// Whether randomized AFE fault plans were laid over the sessions.
    pub afe_overlay: bool,
    /// Devices driven through the cell.
    pub devices: usize,
    /// Devices the chaos plan actually scheduled a fault on.
    pub induced: usize,
    /// Induced failures that surfaced with provenance (typed non-clean
    /// outcome, flagged/degraded report, or fleet quarantine).
    pub surfaced: usize,
    /// Induced faults absorbed within tolerance (reading matched the
    /// fault-free baseline) with a clean outcome.
    pub recovered: usize,
    /// Materially wrong results presented as clean — the count that must
    /// be 0.
    pub silent: usize,
    /// Devices fleet-quarantined during the cell.
    pub quarantined: usize,
}

/// Phase 3 result: the queue-full storm.
#[derive(Debug, Clone)]
pub struct OverloadProbe {
    /// Requests burst at the server.
    pub attempted: usize,
    /// Requests admitted within the bound.
    pub admitted: usize,
    /// Requests refused with a typed `Overloaded` error.
    pub rejected_overloaded: usize,
    /// The configured per-shard queue bound.
    pub queue_capacity: usize,
    /// Highest queue occupancy observed.
    pub peak_queue: usize,
    /// Queued work shed (typed, tier-ordered) while draining.
    pub shed: usize,
    /// Admitted sessions that reached a terminal outcome.
    pub drained: usize,
    /// True iff `peak_queue <= queue_capacity` and every refusal was the
    /// typed error.
    pub bound_respected: bool,
}

/// Phase 4 result: fleet quarantine of a chronically failing device.
#[derive(Debug, Clone)]
pub struct QuarantineProbe {
    /// Failed sessions before the device was quarantined.
    pub sessions_to_quarantine: usize,
    /// Whether the post-quarantine submission was refused with the typed
    /// `Quarantined` error.
    pub rejection_typed: bool,
}

/// The full serving-harness report (rendered to `BENCH_6.json`).
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// `std::thread::available_parallelism` on the measuring host.
    pub host_cores: usize,
    /// Worker count the policy resolved to.
    pub threads: usize,
    /// The `ExecPolicy` the fleet ran under, rendered.
    pub exec_policy: String,
    /// Phase 1.
    pub load: LoadResult,
    /// Phase 2, all cells.
    pub chaos: Vec<ChaosCell>,
    /// Phase 3.
    pub overload: OverloadProbe,
    /// Phase 4.
    pub quarantine: QuarantineProbe,
}

impl ServiceReport {
    /// Silent corruptions across every phase — the number that must be 0.
    pub fn silent_corruptions(&self) -> usize {
        self.load.mismatches + self.chaos.iter().map(|c| c.silent).sum::<usize>()
    }

    /// True iff every induced chaos failure either surfaced with
    /// provenance or was absorbed within tolerance.
    pub fn all_chaos_surfaced(&self) -> bool {
        self.chaos
            .iter()
            .all(|c| c.surfaced + c.recovered == c.induced && c.silent == 0)
    }

    /// True iff the admission contract held: bound never exceeded, every
    /// refusal typed, quarantine rejection typed.
    pub fn admission_contract_held(&self) -> bool {
        self.overload.bound_respected && self.quarantine.rejection_typed
    }

    /// Host-parallelism disposition recorded in the JSON: throughput and
    /// latency figures measured on a single-core host carry no parallel
    /// signal, and a committed report must say so explicitly rather than
    /// leave a silent `host_cores: 1` next to numbers that look like
    /// fleet-level parallelism.
    pub fn parallelism_disposition(&self) -> &'static str {
        if self.host_cores < 2 {
            "single_core_host_no_parallel_signal"
        } else {
            "multi_core"
        }
    }
}

/// Runs all four phases. `sessions` sizes the sustained-load fleet; the
/// chaos matrix and probes are fixed-size.
pub fn run(policy: ExecPolicy, sessions: usize) -> ServiceReport {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    ServiceReport {
        host_cores,
        threads: policy.threads_for(usize::MAX),
        exec_policy: format!("{policy:?}"),
        load: run_load(policy, sessions),
        chaos: run_chaos_matrix(policy),
        overload: run_overload_probe(),
        quarantine: run_quarantine_probe(),
    }
}

fn load_seed(device: u64) -> u64 {
    4000 + (device % LOAD_SEED_CYCLE) * 97
}

/// Phase 1: submit `sessions` sessions at once, drive the whole fleet to
/// completion, and verify every served report bit-for-bit.
fn run_load(policy: ExecPolicy, sessions: usize) -> LoadResult {
    let platform = crate::fig4::build_platform();
    let sample = crate::fig4::reference_sample();
    let shards = 8usize;
    let per_shard = sessions.div_ceil(shards);
    let config = ServerConfig::default()
        .with_shards(shards)
        .with_queue_capacity(per_shard.max(1))
        .with_shed_watermark(per_shard.max(1))
        .with_max_active(per_shard.max(1))
        .with_steps_per_tick(2)
        .with_deadline_ticks(1_000_000)
        .with_exec(policy);
    let mut server = DiagnosticsServer::new(&platform, config);
    for device in 0..sessions as u64 {
        server
            .submit(SessionRequest {
                device,
                tier: ServiceTier::Routine,
                sample: sample.clone(),
                seed: load_seed(device),
            })
            .expect("load fleet sized to fit the queues");
    }

    let clock = WallClock::new();
    let t0 = clock.now_nanos();
    let mut concurrent_peak = 0usize;
    let mut steps = 0u64;
    let mut ticks = 0u64;
    while !server.is_idle() {
        let summary = server.tick(&clock);
        steps += summary.steps;
        ticks += 1;
        concurrent_peak = concurrent_peak.max(server.in_flight());
    }
    let wall_s = (clock.now_nanos() - t0) as f64 / 1e9;

    let mut latencies = server.drain_latencies();
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx] as f64 / 1e3
    };
    let (p50_step_us, p99_step_us, max_step_us) = (pct(0.50), pct(0.99), pct(1.0));

    // Bit-exact verification: one blocking baseline per distinct seed
    // (sessions are pure functions of (sample, seed, options), and the
    // server pins per-session exec to sequential).
    let baseline_opts = SessionOptions::default().with_exec(ExecPolicy::Sequential);
    let seed_cycle: Vec<u64> = (0..LOAD_SEED_CYCLE.min(sessions as u64))
        .map(load_seed)
        .collect();
    let baselines: Vec<SessionReport> = par_map(policy, &seed_cycle, |_, &s| {
        platform
            .run_session_with(&sample, s, &baseline_opts)
            .expect("baseline session")
    });
    let baseline_for = |seed: u64| -> &SessionReport {
        &baselines[seed_cycle
            .iter()
            .position(|&s| s == seed)
            .expect("seed from cycle")]
    };

    let mut completed = 0usize;
    let mut non_completed = 0usize;
    let mut mismatches = 0usize;
    for served in server.drain_completed() {
        match &served.outcome {
            SessionOutcome::Completed(report) => {
                completed += 1;
                if report != baseline_for(served.seed) {
                    mismatches += 1;
                }
            }
            SessionOutcome::DeadlineMiss(_)
            | SessionOutcome::Aborted(_)
            | SessionOutcome::Shed
            | SessionOutcome::Failed { .. } => non_completed += 1,
        }
    }

    LoadResult {
        sessions,
        shards,
        concurrent_peak,
        ticks,
        steps,
        completed,
        non_completed,
        mismatches,
        p50_step_us,
        p99_step_us,
        max_step_us,
        wall_s,
    }
}

/// Phase 2: server faults × AFE overlay, every induced failure judged
/// against a same-seed fault-free baseline.
fn run_chaos_matrix(policy: ExecPolicy) -> Vec<ChaosCell> {
    let platform = crate::fig4::build_platform();
    let sample = crate::fig4::reference_sample();
    let options = SessionOptions::default().with_qc(QcGate::default());
    let baseline_opts = options.clone().with_exec(ExecPolicy::Sequential);

    // (label, stall rate, abort rate) × AFE overlay on/off. Stall length
    // exceeds the deadline so an un-surfaced stall cannot hide.
    let server_faults: [(&'static str, f64, f64); 4] = [
        ("none", 0.0, 0.0),
        ("stall", 0.6, 0.0),
        ("abort", 0.0, 0.6),
        ("stall+abort", 0.6, 0.6),
    ];
    let grid: Vec<(usize, &'static str, f64, f64, bool)> = server_faults
        .iter()
        .flat_map(|&(label, stall, abort)| {
            [false, true]
                .into_iter()
                .map(move |afe| (label, stall, abort, afe))
        })
        .enumerate()
        .map(|(i, (label, stall, abort, afe))| (i, label, stall, abort, afe))
        .collect();

    grid.iter()
        .map(|&(cell_idx, label, stall_rate, abort_rate, afe)| {
            let chaos = ChaosPlan::new(900 + cell_idx as u64)
                .with_stalls(stall_rate, 64)
                .with_aborts(abort_rate)
                .with_afe_faults(if afe { 0.8 } else { 0.0 });
            let config = ServerConfig::default()
                .with_shards(4)
                .with_deadline_ticks(24)
                .with_steps_per_tick(4)
                .with_exec(policy);
            let mut server = DiagnosticsServer::with_options(&platform, config, options.clone())
                .with_chaos(chaos.clone());
            let seed_of = |device: u64| 10_000 + cell_idx as u64 * 1000 + device;
            for device in 0..CHAOS_DEVICES {
                server
                    .submit(SessionRequest {
                        device,
                        tier: ServiceTier::Routine,
                        sample: sample.clone(),
                        seed: seed_of(device),
                    })
                    .expect("chaos fleet fits the default queues");
            }
            server.run_until_idle(&bios_server::NullClock, 1_000_000);
            let quarantined = server.quarantined_devices();

            let devices: Vec<u64> = (0..CHAOS_DEVICES).collect();
            let wes = platform.assignments().len();
            let baselines: Vec<SessionReport> = par_map(policy, &devices, |_, &d| {
                platform
                    .run_session_with(&sample, seed_of(d), &baseline_opts)
                    .expect("baseline session")
            });

            let mut cell = ChaosCell {
                server_fault: label,
                afe_overlay: afe,
                devices: CHAOS_DEVICES as usize,
                induced: 0,
                surfaced: 0,
                recovered: 0,
                silent: 0,
                quarantined: quarantined.len(),
            };
            for served in server.drain_completed() {
                let device = served.device;
                let induced = !chaos.faults_for(device).is_empty()
                    || chaos.fault_plan_for(device, wes).is_some();
                let baseline = &baselines[device as usize];
                let clean_outcome = served.outcome.is_clean();
                // Flagged readings (Suspect/Fail class) are surfaced
                // degradation even when the session itself completed
                // cleanly — same rule the fault matrix applies.
                let flagged = served
                    .outcome
                    .report()
                    .is_some_and(|r| r.qualities().iter().any(|q| q.class != QcClass::Pass));
                let surfaced = !clean_outcome || flagged || quarantined.contains(&device);
                if induced {
                    cell.induced += 1;
                    if surfaced {
                        cell.surfaced += 1;
                    } else if within_tolerance(
                        served.outcome.report().expect("clean ⇒ report"),
                        baseline,
                    ) {
                        cell.recovered += 1;
                    } else {
                        cell.silent += 1;
                    }
                } else {
                    // An unfaulted device must come back bit-identical —
                    // scheduling alone corrupting a result is the worst
                    // kind of silent failure.
                    let intact = matches!(
                        &served.outcome,
                        SessionOutcome::Completed(report) if report == baseline
                    );
                    if !intact {
                        cell.silent += 1;
                    }
                }
            }
            cell
        })
        .collect()
}

/// Whether every panel reading in `report` matches the baseline within
/// the fault-matrix tolerance (same identification, same estimability).
fn within_tolerance(report: &SessionReport, baseline: &SessionReport) -> bool {
    baseline.readings().iter().all(|b| {
        let analyte = b.analyte;
        let Some(f) = report.reading_for(analyte) else {
            return false;
        };
        let deviation =
            (f.response.value() - b.response.value()).abs() / b.response.value().abs().max(1e-15);
        deviation <= TOLERANCE
            && f.identified == b.identified
            && f.estimated.is_some() == b.estimated.is_some()
    })
}

/// Phase 3: burst far past the queue bound, then drain.
fn run_overload_probe() -> OverloadProbe {
    let platform = crate::fig4::build_platform();
    let sample = crate::fig4::reference_sample();
    let capacity = 24usize;
    let config = ServerConfig::default()
        .with_shards(2)
        .with_queue_capacity(capacity)
        .with_shed_watermark(16)
        .with_max_active(8)
        .with_steps_per_tick(4);
    let mut server = DiagnosticsServer::new(&platform, config);

    let attempted = 120usize;
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    let mut all_typed = true;
    for k in 0..attempted as u64 {
        let tier = match k % 3 {
            0 => ServiceTier::Stat,
            1 => ServiceTier::Routine,
            _ => ServiceTier::BestEffort,
        };
        match server.submit(SessionRequest {
            device: k,
            tier,
            sample: sample.clone(),
            seed: 70_000 + k,
        }) {
            Ok(()) => admitted += 1,
            Err(ServerError::Overloaded {
                queue_len,
                capacity: cap,
                ..
            }) => {
                rejected += 1;
                all_typed &= queue_len == cap;
            }
            Err(_) => all_typed = false,
        }
    }
    let peak_queue = server.peak_queue_len();
    server.run_until_idle(&bios_server::NullClock, 1_000_000);
    let served = server.drain_completed();
    let shed = served
        .iter()
        .filter(|c| matches!(c.outcome, SessionOutcome::Shed))
        .count();
    OverloadProbe {
        attempted,
        admitted,
        rejected_overloaded: rejected,
        queue_capacity: capacity,
        peak_queue,
        shed,
        drained: served.len(),
        bound_respected: all_typed && peak_queue <= capacity && served.len() == admitted,
    }
}

/// Phase 4: a device whose electrode is dead fails every session; the
/// fleet must quarantine it and refuse further work with a typed error.
fn run_quarantine_probe() -> QuarantineProbe {
    let platform = crate::fig4::build_platform();
    let sample = crate::fig4::reference_sample();
    let glucose_we = platform
        .assignments()
        .iter()
        .find(|a| a.targets().contains(&Analyte::Glucose))
        .map(|a| a.index())
        .unwrap_or(0);
    let plan = FaultPlan::new(31).with_fault(
        glucose_we,
        Fault::immediate(FaultKind::ElectrodeOpen, 1.0).expect("valid fault"),
    );
    let options = SessionOptions::default()
        .with_fault_plan(plan)
        .with_qc(QcGate::default());
    let config = ServerConfig::default()
        .with_shards(1)
        .with_quarantine_threshold(3);
    let mut server = DiagnosticsServer::with_options(&platform, config, options);

    let device = 5u64;
    let mut failed_sessions = 0usize;
    let mut rejection_typed = false;
    for k in 0..16u64 {
        match server.submit(SessionRequest {
            device,
            tier: ServiceTier::Routine,
            sample: sample.clone(),
            seed: 80_000 + k,
        }) {
            Ok(()) => {
                failed_sessions += 1;
                server.run_until_idle(&bios_server::NullClock, 1_000_000);
            }
            Err(ServerError::Quarantined { device: d }) => {
                rejection_typed = d == device;
                break;
            }
            Err(_) => break,
        }
    }
    QuarantineProbe {
        sessions_to_quarantine: failed_sessions,
        rejection_typed,
    }
}

/// Renders the report as pretty-printed JSON (hand-rolled, same rationale
/// as [`crate::perf::to_json`]: the vendored `serde_json` shim has no
/// pretty printer and the file is committed).
pub fn to_json(report: &ServiceReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"host_cores\": {},\n  \"threads\": {},\n  \"exec_policy\": \"{}\",\n  \"parallelism\": \"{}\",\n",
        report.host_cores,
        report.threads,
        report.exec_policy,
        report.parallelism_disposition()
    ));
    let l = &report.load;
    out.push_str(&format!(
        "  \"load\": {{\"sessions\": {}, \"shards\": {}, \"concurrent_peak\": {}, \"ticks\": {}, \"steps\": {}, \"completed\": {}, \"non_completed\": {}, \"mismatches\": {}, \"p50_step_us\": {:.2}, \"p99_step_us\": {:.2}, \"max_step_us\": {:.2}, \"wall_s\": {:.3}, \"sessions_per_s\": {:.0}}},\n",
        l.sessions,
        l.shards,
        l.concurrent_peak,
        l.ticks,
        l.steps,
        l.completed,
        l.non_completed,
        l.mismatches,
        l.p50_step_us,
        l.p99_step_us,
        l.max_step_us,
        l.wall_s,
        l.sessions_per_s(),
    ));
    out.push_str("  \"chaos_matrix\": [\n");
    for (i, c) in report.chaos.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"server_fault\": \"{}\", \"afe_overlay\": {}, \"devices\": {}, \"induced\": {}, \"surfaced\": {}, \"recovered\": {}, \"silent\": {}, \"quarantined\": {}}}{}\n",
            c.server_fault,
            c.afe_overlay,
            c.devices,
            c.induced,
            c.surfaced,
            c.recovered,
            c.silent,
            c.quarantined,
            if i + 1 < report.chaos.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let o = &report.overload;
    out.push_str(&format!(
        "  \"overload\": {{\"attempted\": {}, \"admitted\": {}, \"rejected_overloaded\": {}, \"queue_capacity\": {}, \"peak_queue\": {}, \"shed\": {}, \"drained\": {}, \"bound_respected\": {}}},\n",
        o.attempted,
        o.admitted,
        o.rejected_overloaded,
        o.queue_capacity,
        o.peak_queue,
        o.shed,
        o.drained,
        o.bound_respected,
    ));
    let q = &report.quarantine;
    out.push_str(&format!(
        "  \"quarantine\": {{\"sessions_to_quarantine\": {}, \"rejection_typed\": {}}},\n",
        q.sessions_to_quarantine, q.rejection_typed
    ));
    out.push_str(&format!(
        "  \"silent_corruptions\": {},\n  \"all_chaos_surfaced\": {},\n  \"admission_contract_held\": {}\n}}\n",
        report.silent_corruptions(),
        report.all_chaos_surfaced(),
        report.admission_contract_held(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_serves_clean_and_bit_identical() {
        let load = run_load(ExecPolicy::Sequential, 40);
        assert_eq!(load.completed, 40);
        assert_eq!(load.non_completed, 0);
        assert_eq!(load.mismatches, 0, "served reports must match baselines");
        assert!(load.concurrent_peak >= 40, "whole fleet in flight at once");
    }

    #[test]
    fn chaos_matrix_surfaces_every_induced_failure() {
        let cells = run_chaos_matrix(ExecPolicy::Sequential);
        assert_eq!(cells.len(), 8, "4 server-fault mixes x AFE on/off");
        for c in &cells {
            assert_eq!(
                c.silent, 0,
                "{} afe={}: silent corruption",
                c.server_fault, c.afe_overlay
            );
            assert_eq!(
                c.surfaced + c.recovered,
                c.induced,
                "{} afe={}: unaccounted induced failure",
                c.server_fault,
                c.afe_overlay
            );
        }
        // The stall and abort cells must actually induce something.
        assert!(cells.iter().any(|c| c.induced > 0 && c.surfaced > 0));
    }

    #[test]
    fn overload_probe_respects_the_bound_with_typed_rejections() {
        let probe = run_overload_probe();
        assert!(probe.bound_respected);
        assert!(
            probe.rejected_overloaded > 0,
            "storm must overflow the bound"
        );
        assert_eq!(probe.admitted + probe.rejected_overloaded, probe.attempted);
        assert!(probe.shed > 0, "watermark below capacity must shed");
    }

    #[test]
    fn quarantine_probe_trips_after_the_threshold() {
        let probe = run_quarantine_probe();
        assert_eq!(probe.sessions_to_quarantine, 3);
        assert!(probe.rejection_typed);
    }

    #[test]
    fn json_rendering_is_balanced_and_carries_the_gates() {
        let report = ServiceReport {
            host_cores: 4,
            threads: 4,
            exec_policy: String::from("Auto"),
            load: LoadResult {
                sessions: 10,
                shards: 2,
                concurrent_peak: 10,
                ticks: 5,
                steps: 200,
                completed: 10,
                non_completed: 0,
                mismatches: 0,
                p50_step_us: 20.0,
                p99_step_us: 40.0,
                max_step_us: 50.0,
                wall_s: 0.01,
            },
            chaos: vec![ChaosCell {
                server_fault: "stall",
                afe_overlay: true,
                devices: 8,
                induced: 5,
                surfaced: 5,
                recovered: 0,
                silent: 0,
                quarantined: 1,
            }],
            overload: OverloadProbe {
                attempted: 12,
                admitted: 8,
                rejected_overloaded: 4,
                queue_capacity: 4,
                peak_queue: 4,
                shed: 2,
                drained: 8,
                bound_respected: true,
            },
            quarantine: QuarantineProbe {
                sessions_to_quarantine: 3,
                rejection_typed: true,
            },
        };
        let json = to_json(&report);
        assert!(json.contains("\"silent_corruptions\": 0"));
        assert!(json.contains("\"all_chaos_surfaced\": true"));
        assert!(json.contains("\"admission_contract_held\": true"));
        assert!(json.contains("\"exec_policy\": \"Auto\""));
        assert!(json.contains("\"parallelism\": \"multi_core\""));
        let single = ServiceReport {
            host_cores: 1,
            ..report.clone()
        };
        assert!(to_json(&single).contains("single_core_host_no_parallel_signal"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
