//! Fault-matrix characterization: every [`FaultKind`] at severities
//! 0–1 injected into the Fig. 4 platform's glucose electrode, each run
//! compared against a same-seed fault-free baseline.
//!
//! Per cell the platform must do one of two acceptable things: *recover*
//! (the merged reading matches the baseline within tolerance) or *detect*
//! (the reading is flagged Suspect/Fail, retried, or the electrode is
//! quarantined — degradation with provenance). The one unacceptable
//! outcome is *silent corruption*: a materially wrong value presented as
//! trustworthy. The acceptance target is zero silent corruptions over the
//! whole matrix.

use bios_afe::{Fault, FaultKind, FaultPlan};
use bios_biochem::Analyte;
use bios_instrument::{QcClass, QcGate};
use bios_platform::{par_map, ExecPolicy, Platform, SessionOptions, SessionReport};
use bios_units::Molar;

/// The severity grid swept per fault kind.
pub const SEVERITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Relative response deviation beyond which a reading counts as
/// materially corrupted.
pub const TOLERANCE: f64 = 0.30;

/// How one faulted session compared against its fault-free twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The merged reading matched the baseline within tolerance — the
    /// fault was absorbed (or was a no-op).
    Recovered,
    /// The reading was materially wrong but flagged: QC class, retries,
    /// quarantine or a failed target recorded the degradation.
    Detected,
    /// The reading was materially wrong and presented as trustworthy.
    SilentCorruption,
}

/// One (kind, severity) cell of the matrix, over all seeds.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// The injected fault kind.
    pub kind: FaultKind,
    /// The injected severity.
    pub severity: f64,
    /// Per-seed outcomes.
    pub outcomes: Vec<Outcome>,
    /// Retry slots spent across the cell's runs.
    pub retries: usize,
    /// Electrodes quarantined across the cell's runs.
    pub quarantines: usize,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// All cells, kind-major.
    pub cells: Vec<MatrixCell>,
    /// Seeds per cell.
    pub runs_per_cell: usize,
}

impl MatrixReport {
    /// Total runs with the given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.cells
            .iter()
            .map(|c| c.outcomes.iter().filter(|&&o| o == outcome).count())
            .sum()
    }

    /// Runs that ended in silent corruption — the number that must be 0.
    pub fn silent_corruptions(&self) -> usize {
        self.count(Outcome::SilentCorruption)
    }

    /// Fraction of all runs that recovered.
    pub fn recovery_rate(&self) -> f64 {
        self.count(Outcome::Recovered) as f64 / self.total_runs() as f64
    }

    /// Fraction of non-recovered runs that were detected.
    pub fn detection_rate(&self) -> f64 {
        let detected = self.count(Outcome::Detected);
        let corrupted = detected + self.silent_corruptions();
        if corrupted == 0 {
            1.0
        } else {
            detected as f64 / corrupted as f64
        }
    }

    fn total_runs(&self) -> usize {
        self.cells.iter().map(|c| c.outcomes.len()).sum()
    }
}

/// Runs the full matrix: every fault kind × [`SEVERITIES`], one faulted
/// session per seed, each judged against the same-seed fault-free
/// baseline.
pub fn run(seeds: &[u64]) -> MatrixReport {
    run_with(seeds, ExecPolicy::Auto)
}

/// [`run`] with an explicit execution policy. Every `(kind, severity)`
/// cell — and every baseline session — is independent, so they fan out
/// across the engine; cells merge back kind-major, making the report
/// identical to [`ExecPolicy::Sequential`] for any thread count. Sessions
/// inside a cell stay sequential: the matrix-level fan-out already
/// saturates the workers, and nested fan-out would only add scheduling
/// overhead (the *results* would be identical either way).
pub fn run_with(seeds: &[u64], policy: ExecPolicy) -> MatrixReport {
    let platform = crate::fig4::build_platform();
    let sample = crate::fig4::reference_sample();
    let target = Analyte::Glucose;
    let we = target_we(&platform, target);
    // All panel targets are present in the reference sample, so the full
    // gate (minimum-response check included) applies.
    let clean = SessionOptions::default()
        .with_qc(QcGate::default())
        .with_exec(ExecPolicy::Sequential);
    let baselines: Vec<SessionReport> = par_map(policy, seeds, |_, &s| {
        platform
            .run_session_with(&sample, s, &clean)
            .expect("baseline session")
    });

    let grid: Vec<(FaultKind, f64)> = FaultKind::ALL
        .iter()
        .flat_map(|&kind| SEVERITIES.iter().map(move |&severity| (kind, severity)))
        .collect();
    let cells = par_map(policy, &grid, |_, &(kind, severity)| {
        let mut outcomes = Vec::new();
        let mut retries = 0;
        let mut quarantines = 0;
        for (i, &seed) in seeds.iter().enumerate() {
            let plan = FaultPlan::new(seed ^ 0xfa_0172)
                .with_fault(we, Fault::immediate(kind, severity).expect("valid fault"));
            let options = clean.clone().with_fault_plan(plan);
            let report = platform
                .run_session_with(&sample, seed, &options)
                .expect("faulted sessions degrade, not error");
            retries += report.degradation().retries;
            quarantines += report.degradation().quarantined.len();
            outcomes.push(classify(&baselines[i], &report, target));
        }
        MatrixCell {
            kind,
            severity,
            outcomes,
            retries,
            quarantines,
        }
    });
    MatrixReport {
        cells,
        runs_per_cell: seeds.len(),
    }
}

/// The working electrode carrying `target` in the Fig. 4 panel.
fn target_we(platform: &Platform, target: Analyte) -> usize {
    platform
        .assignments()
        .iter()
        .find(|a| a.targets().contains(&target))
        .expect("target on panel")
        .index()
}

fn classify(baseline: &SessionReport, faulted: &SessionReport, target: Analyte) -> Outcome {
    let b = baseline.reading_for(target).expect("on panel");
    let f = faulted.reading_for(target).expect("on panel");
    let deviation =
        (f.response.value() - b.response.value()).abs() / b.response.value().abs().max(1e-15);
    let value_intact = deviation <= TOLERANCE
        && f.identified == b.identified
        && f.estimated.is_some() == b.estimated.is_some();
    if value_intact {
        return Outcome::Recovered;
    }
    let flagged = faulted
        .quality_for(target)
        .is_some_and(|q| q.class != QcClass::Pass);
    if flagged || faulted.is_degraded() {
        Outcome::Detected
    } else {
        Outcome::SilentCorruption
    }
}

/// Renders the matrix: one row per kind, one column per severity, with
/// `R`/`D`/`S!` letters (worst outcome across seeds) and summary rates.
pub fn render(report: &MatrixReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<18}", "fault \\ severity"));
    for s in SEVERITIES {
        out.push_str(&format!("{s:>7.2}"));
    }
    out.push('\n');
    for kind in FaultKind::ALL {
        out.push_str(&format!("{:<18}", kind.name()));
        for severity in SEVERITIES {
            let cell = report
                .cells
                .iter()
                .find(|c| c.kind == kind && c.severity == severity)
                .expect("cell present");
            let letter = if cell.outcomes.contains(&Outcome::SilentCorruption) {
                "S!"
            } else if cell.outcomes.contains(&Outcome::Detected) {
                "D"
            } else {
                "R"
            };
            out.push_str(&format!("{letter:>7}"));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "\n{} runs ({} per cell): {:.0}% recovered, {:.0}% of corruptions detected, {} silent corruption(s) [target: 0]\n",
        report.total_runs(),
        report.runs_per_cell,
        report.recovery_rate() * 100.0,
        report.detection_rate() * 100.0,
        report.silent_corruptions(),
    ));
    out
}

/// A concentration helper kept for parity with other experiment modules.
pub fn glucose_truth() -> Molar {
    Molar::from_millimolar(3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_zero_silent_corruptions() {
        let report = run(&[2011, 7]);
        assert_eq!(
            report.cells.len(),
            FaultKind::ALL.len() * SEVERITIES.len(),
            "full sweep"
        );
        let silent: Vec<String> = report
            .cells
            .iter()
            .filter(|c| c.outcomes.contains(&Outcome::SilentCorruption))
            .map(|c| format!("{} @ {}", c.kind, c.severity))
            .collect();
        assert!(silent.is_empty(), "silent corruption in: {silent:?}");
    }

    #[test]
    fn severity_zero_column_is_bit_identical_to_baseline() {
        let platform = crate::fig4::build_platform();
        let sample = crate::fig4::reference_sample();
        let clean = SessionOptions::default().with_qc(QcGate::default());
        let baseline = platform
            .run_session_with(&sample, 2011, &clean)
            .expect("session");
        // A plan carrying only zero-severity faults on every electrode
        // must be an exact no-op.
        let mut plan = FaultPlan::new(1);
        for we in 0..platform.assignments().len() {
            for kind in FaultKind::ALL {
                plan = plan.with_fault(we, Fault::immediate(kind, 0.0).expect("valid"));
            }
        }
        let zeroed = platform
            .run_session_with(&sample, 2011, &clean.clone().with_fault_plan(plan))
            .expect("session");
        assert_eq!(baseline, zeroed, "severity 0 must be an exact no-op");
    }

    #[test]
    fn hard_faults_are_detected_not_absorbed() {
        let report = run(&[3]);
        for kind in [
            FaultKind::ElectrodeOpen,
            FaultKind::ElectrodeShort,
            FaultKind::MuxStuck,
        ] {
            let cell = report
                .cells
                .iter()
                .find(|c| c.kind == kind && c.severity == 1.0)
                .expect("cell");
            assert!(
                cell.outcomes.iter().all(|&o| o == Outcome::Detected),
                "{kind} @ 1.0 must be detected: {:?}",
                cell.outcomes
            );
            assert!(cell.quarantines > 0, "{kind} @ 1.0 must quarantine");
        }
    }
}
