//! Properties of the hot-path call-graph analysis (DESIGN.md §6e).
//!
//! Two contracts keep the analysis trustworthy: reachability is
//! *monotone* in the edge set (adding a call can only grow the hot
//! region and raise cadence levels — so a refactor that introduces a
//! call path can never silently un-guard a kernel), and the
//! workspace-grained incremental cache is *transparent* (invalidating
//! one hot-region file and relinting warm reproduces a cold lint of the
//! same tree bit-for-bit, even when the edit rewires the call graph).

use bios_lint::cache::findings_digest;
use bios_lint::{lint_files_cached, CallGraph, Level, LintCache, MemFile};
use proptest::prelude::*;

/// Deterministically builds a call graph from packed u64 seeds over a
/// small closed name universe, so shrinking stays meaningful.
const NAMES: &[&str] = &[
    "kernel_a", "kernel_b", "helper_0", "helper_1", "helper_2", "twin", "shared", "leaf",
];

fn graph_from(def_bits: u64, edges: &[u64], roots: u64, cold_bits: u64) -> CallGraph {
    let mut g = CallGraph::new();
    for (i, name) in NAMES.iter().enumerate() {
        // 1..=3 definitions: exercises both sides of the twin bound.
        let defs = ((def_bits >> (2 * i)) % 3 + 1) as usize;
        for _ in 0..defs {
            g.add_def(name);
        }
    }
    for &e in edges {
        let caller = NAMES[(e % NAMES.len() as u64) as usize];
        let callee = NAMES[((e >> 8) % NAMES.len() as u64) as usize];
        g.add_call(caller, callee, (e >> 16) & 1 == 1);
    }
    // At least one root; cold names that collide with roots are simply
    // skipped by the fixpoint, which is itself part of the contract.
    g.add_root(NAMES[(roots % NAMES.len() as u64) as usize], Level::PerIter);
    g.add_root(
        NAMES[((roots >> 8) % NAMES.len() as u64) as usize],
        Level::Warm,
    );
    for (i, name) in NAMES.iter().enumerate() {
        if (cold_bits >> i) & 1 == 1 {
            g.add_cold(name);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding one call edge never shrinks the hot region and never
    /// lowers a cadence level: reachability is monotone, so lossiness
    /// stays in the false-negative direction as the graph grows.
    fn adding_an_edge_never_shrinks_the_hot_region(
        def_bits in 0u64..1u64 << 48,
        edges in prop::collection::vec(0u64..1u64 << 48, 0..24),
        roots in 0u64..1u64 << 48,
        cold_bits in 0u64..1 << NAMES.len(),
        extra_edge in 0u64..1u64 << 48,
    ) {
        let before = graph_from(def_bits, &edges, roots, cold_bits).hot_levels();
        let mut grown_edges = edges.clone();
        grown_edges.push(extra_edge);
        let after = graph_from(def_bits, &grown_edges, roots, cold_bits).hot_levels();
        for (name, level) in &before {
            let now = after.get(name);
            prop_assert!(
                now.is_some_and(|l| l >= level),
                "{name} was {level:?}, now {now:?} after adding an edge"
            );
        }
    }

    /// The fixpoint is deterministic: the same graph built from the same
    /// seeds yields the same levels, and edge insertion order is
    /// irrelevant (edges OR-merge).
    fn hot_levels_are_order_independent(
        def_bits in 0u64..1u64 << 48,
        edges in prop::collection::vec(0u64..1u64 << 48, 0..24),
        roots in 0u64..1u64 << 48,
    ) {
        let forward = graph_from(def_bits, &edges, roots, 0).hot_levels();
        let reversed: Vec<u64> = edges.iter().rev().copied().collect();
        let backward = graph_from(def_bits, &reversed, roots, 0).hot_levels();
        prop_assert_eq!(forward, backward);
    }
}

// ---------------------------------------------------------------------
// Incremental-cache transparency for the workspace-grained hot pass.
// ---------------------------------------------------------------------

fn mem(crate_name: &str, rel_path: &str, source: &str) -> MemFile {
    MemFile {
        crate_name: crate_name.to_string(),
        rel_path: rel_path.to_string(),
        source: source.to_string(),
        lintable: true,
    }
}

/// A three-file synthetic workspace whose hot-path findings span file
/// boundaries: the kernel root lives in one file, the allocating helper
/// it reaches in another, so invalidating either must rerun the
/// workspace-grained analysis.
fn base_files() -> Vec<MemFile> {
    vec![
        mem(
            "bios-electrochem",
            "crates/electrochem/src/kernel.rs",
            "pub fn step_with_rate_constants(xs: &[f64]) -> f64 {\n    helper_accumulate(xs)\n}\n",
        ),
        mem(
            "bios-electrochem",
            "crates/electrochem/src/helper.rs",
            "pub fn helper_accumulate(xs: &[f64]) -> f64 {\n    let buf = xs.to_vec();\n    buf.len() as f64\n}\n",
        ),
        mem(
            "bios-server",
            "crates/server/src/shard.rs",
            "pub fn step_active(n: usize) -> usize {\n    n + 1\n}\n",
        ),
    ]
}

/// Edits appended to the invalidated file. Each changes the content
/// hash; several also rewire the call graph or hot region, so a warm
/// replay that kept stale workspace facts would diverge from cold.
const EDITS: &[&str] = &[
    "\n// cache-buster comment, findings unchanged\n",
    "\npub fn step_wave(xs: &[f64]) -> f64 {\n    let v = xs.to_vec();\n    v.len() as f64\n}\n",
    "\npub fn cold_report(n: usize) -> f64 {\n    n as f64\n}\n",
    "\npub fn step_active(xs: &[f64]) -> f64 {\n    let m = std::sync::Mutex::new(0.0);\n    *m.lock()\n}\n",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invalidating a single hot-region file and relinting warm yields
    /// the same findings digest as a cold lint of the edited tree, and
    /// the untouched files still replay from cache.
    fn warm_relint_after_single_file_edit_matches_cold(
        file_idx in 0usize..3,
        edit_idx in 0usize..EDITS.len(),
    ) {
        let base = base_files();
        let (_, _, cache, _) = lint_files_cached(&base, &LintCache::default(), &[]);

        let mut edited = base;
        edited[file_idx].source.push_str(EDITS[edit_idx]);

        let (warm_findings, _, _, stats) = lint_files_cached(&edited, &cache, &[]);
        let (cold_findings, _, _, _) = lint_files_cached(&edited, &LintCache::default(), &[]);

        prop_assert_eq!(
            findings_digest(&warm_findings),
            findings_digest(&cold_findings),
            "warm {:?} != cold {:?}",
            warm_findings,
            cold_findings
        );
        prop_assert_eq!(stats.files_total, 3);
        prop_assert_eq!(stats.files_reused, 2, "only the edited file should re-analyze");
    }
}
