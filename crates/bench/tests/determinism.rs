//! Fault-matrix determinism: the parallel fan-out over matrix cells must
//! reproduce the sequential report byte-for-byte.

use bios_bench::fault_matrix;
use bios_platform::ExecPolicy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// Random seed and thread count: `run_with(Threads(n))` produces the
    /// same report (via its full `Debug` rendering — every float, count
    /// and verdict) as `run_with(Sequential)`.
    fn parallel_fault_matrix_matches_sequential(
        seed in 0u64..100_000,
        threads in 2usize..7,
    ) {
        let seeds = [seed];
        let seq = fault_matrix::run_with(&seeds, ExecPolicy::Sequential);
        let par = fault_matrix::run_with(&seeds, ExecPolicy::Threads(threads));
        prop_assert_eq!(
            format!("{seq:?}"), format!("{par:?}"),
            "seed {} threads {}", seed, threads
        );
    }
}

/// The public `run` entry point (policy `Auto`) also matches sequential,
/// whatever the host's core count resolves `Auto` to.
#[test]
fn auto_fault_matrix_matches_sequential() {
    let seeds = [2011u64];
    let auto = fault_matrix::run(&seeds);
    let seq = fault_matrix::run_with(&seeds, ExecPolicy::Sequential);
    assert_eq!(format!("{auto:?}"), format!("{seq:?}"));
}
