//! Baseline round-trip properties for the invariant lint engine.
//!
//! The baseline is the contract that lets new rules land without a
//! flag day: grandfathered findings stay silent, anything a new rule
//! reports stays fresh. These properties drive randomized finding
//! multisets (duplicate keys, awkward excerpts, µ-laden messages)
//! through serialize → parse → partition and assert the contract holds
//! when several rules' findings are added concurrently.

use bios_lint::{Baseline, Finding, Severity, RULE_IDS};
use proptest::prelude::*;

const FILES: &[&str] = &[
    "crates/electrochem/src/voltammetry.rs",
    "crates/afe/src/adc.rs",
    "crates/core/src/exec.rs",
    "crates/units/src/types.rs",
];

/// Excerpts exercise the hand-rolled JSON escaping: quotes, backslashes
/// and non-ASCII all round-trip through the baseline file.
const EXCERPTS: &[&str] = &[
    "let x = map.get(&k).unwrap();",
    "let path = \"C:\\\\data\\\\run\";",
    "let i_uA = i.as_microamps(); // µA",
    "sum += dt * f(t);",
];

/// Deterministically expands one u64 into a synthetic finding. Low bits
/// pick the rule so a seed range covers several rules at once — the
/// "concurrent rule additions" half of the property.
fn synth(seed: u64) -> Finding {
    let rule = RULE_IDS[(seed % RULE_IDS.len() as u64) as usize];
    let file = FILES[((seed >> 4) % FILES.len() as u64) as usize];
    let excerpt = EXCERPTS[((seed >> 8) % EXCERPTS.len() as u64) as usize];
    let col = ((seed >> 24) % 120 + 1) as u32;
    Finding {
        rule,
        file: file.to_string(),
        line: ((seed >> 16) % 500 + 1) as u32,
        col,
        end_col: col + ((seed >> 32) % 40) as u32,
        severity: if seed.is_multiple_of(7) {
            Severity::Warning
        } else {
            Severity::Error
        },
        message: format!("synthetic finding #{seed}"),
        excerpt: excerpt.to_string(),
        fix: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Writing a baseline from any finding multiset and reading it back
    /// grandfathers exactly that multiset — nothing fresh, nothing lost,
    /// duplicates budgeted per occurrence.
    fn baseline_round_trips_any_finding_multiset(
        seeds in prop::collection::vec(0u64..1u64 << 40, 0..40),
    ) {
        let findings: Vec<Finding> = seeds.iter().copied().map(synth).collect();
        let baseline = Baseline::from_findings(&findings);
        let reparsed = Baseline::parse(&baseline.to_json())
            .map_err(TestCaseError::fail)?;
        let (old, fresh) = reparsed.partition(&findings);
        prop_assert!(fresh.is_empty(), "fresh after round-trip: {fresh:?}");
        prop_assert_eq!(old.len(), findings.len());
        // Serialization is a fixed point: parse(to_json) re-serializes
        // byte-identically, so rewriting a baseline never churns the
        // checked-in file.
        prop_assert_eq!(reparsed.to_json(), baseline.to_json());
    }

    /// Rules added after the baseline was written stay fresh: partition
    /// of (grandfathered ++ new-rule findings) keeps the two sets
    /// disjoint, whatever interleaving the new rules report in.
    fn new_rule_findings_stay_fresh_under_concurrent_additions(
        old_seeds in prop::collection::vec(0u64..1u64 << 40, 1..24),
        new_seeds in prop::collection::vec(0u64..1u64 << 40, 1..24),
        interleave in 0u64..1u64 << 16,
    ) {
        let old: Vec<Finding> = old_seeds.iter().copied().map(synth).collect();
        // New-rule findings carry an excerpt no old finding can have, as
        // a freshly-added rule's excerpts are new code shapes.
        let new: Vec<Finding> = new_seeds
            .iter()
            .copied()
            .map(|s| {
                let mut f = synth(s);
                f.excerpt = format!("freshly_reported_shape_{s};");
                f
            })
            .collect();
        let baseline = Baseline::from_findings(&old);
        let reparsed = Baseline::parse(&baseline.to_json())
            .map_err(TestCaseError::fail)?;
        // Interleave old and new findings pseudo-randomly — the order the
        // linter happens to report in must not matter.
        let mut merged: Vec<Finding> = Vec::new();
        let (mut i, mut j, mut bits) = (0usize, 0usize, interleave);
        while i < old.len() || j < new.len() {
            let take_old = j >= new.len() || (i < old.len() && bits & 1 == 0);
            if take_old {
                merged.push(old[i].clone());
                i += 1;
            } else {
                merged.push(new[j].clone());
                j += 1;
            }
            bits = bits.rotate_right(1);
        }
        let (grandfathered, fresh) = reparsed.partition(&merged);
        prop_assert_eq!(grandfathered.len(), old.len());
        prop_assert_eq!(fresh.len(), new.len());
        prop_assert!(
            fresh.iter().all(|f| f.excerpt.starts_with("freshly_reported_shape_")),
            "a grandfathered finding leaked into fresh: {fresh:?}"
        );
    }
}
