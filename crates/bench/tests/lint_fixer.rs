//! Property tests for the auto-fix engine: randomized source files are
//! assembled from fragment pools (fixable violations, unfixable ones,
//! suppressions, clean code) and driven through the fixpoint. The core
//! contract is idempotence — applying the fixer twice is the same as
//! applying it once — plus "no machine-applicable debt survives": after
//! a fixpoint, re-linting reports nothing the fixer would touch.

use bios_lint::fixer::{fix_files, fix_source};
use bios_lint::{lint_source, Baseline, FileContext, FixSafety, MemFile};
use proptest::prelude::*;

/// Top-level fragments the generator concatenates. Each is
/// self-contained; several carry machine-applicable violations (F1
/// float comparison, D1 provably-Ord HashMap, stale W0 allows), several
/// carry suggested-only ones the fixer must leave alone (U1 raw-f64
/// pub params, D1 with an unprovable key type), and the rest are inert.
const FRAGMENTS: &[&str] = &[
    // F1, machine-applicable.
    "fn cmp_a(x: f64) -> bool {\n    x == 0.5\n}\n",
    "fn cmp_b(y: f64) -> bool {\n    y != 2.5\n}\n",
    // D1 with a provably-Ord key: converts atomically.
    "use std::collections::HashMap;\nfn tally() -> usize {\n    let m: HashMap<u32, f64> = HashMap::new();\n    m.len()\n}\n",
    // D1 with an unprovable key type: suggested only, must survive.
    "use std::collections::HashMap;\nfn opaque_tally(k: ProbeId) -> usize {\n    let m: HashMap<ProbeId, f64> = HashMap::new();\n    m.len()\n}\n",
    // Stale allow: W0 deletes the line.
    "// advdiag::allow(F1, grandfathered during a long-finished migration)\nfn settled() {}\n",
    // Used allow: suppresses the unwrap below it, must survive.
    "fn checked() -> u32 {\n    // advdiag::allow(P1, fixture models a fallible probe read)\n    maybe().unwrap()\n}\n",
    // U1: suggested newtype, never auto-applied.
    "pub fn integrate(current_a: f64, dt_s: f64) -> f64 {\n    current_a * dt_s\n}\n",
    // Inert code.
    "fn plain(a: u32, b: u32) -> u32 {\n    a + b\n}\n",
    "const SPAN: usize = 64;\nfn window(i: usize) -> usize {\n    i % SPAN\n}\n",
];

fn assemble(picks: &[usize]) -> String {
    let mut src = String::new();
    for &p in picks {
        src.push_str(FRAGMENTS[p % FRAGMENTS.len()]);
    }
    src
}

fn ctx() -> FileContext<'static> {
    FileContext {
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/generated.rs",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Apply-twice == apply-once, for any fragment composition and
    /// order: the second pass must change nothing and apply nothing.
    fn fix_source_is_idempotent(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..12),
    ) {
        let src = assemble(&picks);
        let (once, _) = fix_source(&ctx(), &src);
        let (twice, applied_again) = fix_source(&ctx(), &once);
        prop_assert_eq!(applied_again, 0, "second pass applied fixes");
        prop_assert_eq!(&twice, &once, "second pass changed bytes");
    }

    /// After a fixpoint, no machine-applicable fix survives re-linting
    /// — and suggested-only fixes are reported but never applied (the
    /// suggested fragments' text is still present verbatim).
    fn fixpoint_leaves_no_machine_applicable_debt(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 1..12),
    ) {
        let src = assemble(&picks);
        let (fixed, _) = fix_source(&ctx(), &src);
        let leftovers: Vec<_> = lint_source(&ctx(), &fixed)
            .into_iter()
            .filter(|f| {
                f.fix
                    .as_ref()
                    .is_some_and(|fx| fx.safety == FixSafety::MachineApplicable)
            })
            .collect();
        prop_assert!(leftovers.is_empty(), "{leftovers:#?}");
        if picks.iter().any(|&p| p % FRAGMENTS.len() == 3) {
            prop_assert!(
                fixed.contains("HashMap<ProbeId, f64>"),
                "suggested-only D1 was applied:\n{fixed}"
            );
        }
        if picks.iter().any(|&p| p % FRAGMENTS.len() == 6) {
            prop_assert!(
                fixed.contains("current_a: f64"),
                "suggested-only U1 was applied:\n{fixed}"
            );
        }
    }

    /// The workspace fixpoint is idempotent too, with fragments spread
    /// over several files (fixes in one file must not disturb another).
    fn fix_files_is_idempotent(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..12),
        split in 0usize..12,
    ) {
        let cut = split.min(picks.len());
        let mut files = vec![
            MemFile {
                crate_name: "bios-electrochem".to_string(),
                rel_path: "crates/electrochem/src/gen_a.rs".to_string(),
                source: assemble(&picks[..cut]),
                lintable: true,
            },
            MemFile {
                crate_name: "bios-units".to_string(),
                rel_path: "crates/units/src/gen_b.rs".to_string(),
                source: assemble(&picks[cut..]),
                lintable: true,
            },
        ];
        fix_files(&mut files, &Baseline::default())
            .map_err(TestCaseError::fail)?;
        let snapshot: Vec<String> = files.iter().map(|f| f.source.clone()).collect();
        let outcome = fix_files(&mut files, &Baseline::default())
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(outcome.applied, 0, "second workspace pass applied fixes");
        let after: Vec<String> = files.iter().map(|f| f.source.clone()).collect();
        prop_assert_eq!(snapshot, after);
    }

    /// Baselined findings are grandfathered: the fixer must not touch a
    /// violation the baseline covers, however the file is composed
    /// around it.
    fn baselined_violations_are_left_alone(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..8),
    ) {
        let mut src = String::from("fn legacy(x: f64) -> bool {\n    x == 0.25\n}\n");
        src.push_str(&assemble(&picks));
        let files = vec![MemFile {
            crate_name: "bios-electrochem".to_string(),
            rel_path: "crates/electrochem/src/gen.rs".to_string(),
            source: src.clone(),
            lintable: true,
        }];
        // Baseline exactly the legacy comparison.
        let all = bios_lint::lint_files(&files);
        let legacy: Vec<_> = all
            .into_iter()
            .filter(|f| f.excerpt.contains("x == 0.25"))
            .collect();
        prop_assert!(!legacy.is_empty());
        let baseline = Baseline::from_findings(&legacy);
        let mut working = files;
        fix_files(&mut working, &baseline).map_err(TestCaseError::fail)?;
        prop_assert!(
            working[0].source.contains("x == 0.25"),
            "baselined F1 was rewritten:\n{}",
            working[0].source
        );
    }
}
