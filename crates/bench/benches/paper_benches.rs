//! Criterion benchmarks: one per paper table/figure, timing the simulation
//! kernel behind each reproduction (plus the two numerical hot loops).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bios_biochem::{Analyte, CypIsoform, Oxidase};
use bios_electrochem::{
    simulate_cv_with, Cell, DiffusionSim, Electrode, Grid, PotentialProgram, RedoxCouple,
    SimOptions,
};
use bios_units::{DiffusionCoefficient, Molar, MolesPerCm3, Seconds, Volts, VoltsPerSecond};

fn bench_table1(c: &mut Criterion) {
    let couple = bios_bench::table1::h2o2_couple_for(Oxidase::Glucose);
    c.bench_function("table1_single_potential_point", |b| {
        b.iter(|| {
            bios_bench::table1::current_at_potential(
                black_box(&couple),
                black_box(Volts::from_millivolts(650.0)),
            )
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_single_pair_cv", |b| {
        b.iter(|| {
            bios_bench::table2::measure_pair(
                black_box(CypIsoform::Cyp2B4),
                black_box(Analyte::Benzphetamine),
                black_box(42),
            )
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let row = bios_biochem::tables::performance_of(Analyte::Glucose).expect("registered");
    c.bench_function("table3_oxidase_calibration", |b| {
        b.iter(|| bios_bench::table3::calibrate_oxidase_row(Oxidase::Glucose, black_box(row), 1, 7))
    });
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_frontend_settling", |b| {
        b.iter(bios_bench::fig1::frontend_settling_time)
    });
}

fn bench_fig2(c: &mut Criterion) {
    let cfg =
        bios_afe::ChainConfig::for_range(bios_afe::CurrentRange::oxidase()).expect("paper range");
    c.bench_function("fig2_chain_acquisition", |b| {
        b.iter(|| bios_bench::fig2::measure_chain("plain", black_box(cfg), 11))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_glucose_transient", |b| {
        b.iter(|| bios_bench::fig3::run(3))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let platform = bios_bench::fig4::build_platform();
    let sample = bios_bench::fig4::reference_sample();
    c.bench_function("fig4_full_session", |b| {
        b.iter(|| {
            platform
                .run_session(black_box(&sample), black_box(5))
                .expect("session")
        })
    });
}

fn bench_ablations(c: &mut Criterion) {
    c.bench_function("a5_design_space_96_points", |b| {
        b.iter(bios_bench::ablations::design_space)
    });
}

fn bench_extensions(c: &mut Criterion) {
    // A6: one SWV scan.
    let cell = Cell::builder(Electrode::paper_gold_we())
        .build()
        .expect("cell");
    let couple = RedoxCouple::ferrocyanide();
    let params = bios_electrochem::SwvParams::typical(Volts::new(0.53), Volts::new(-0.07));
    c.bench_function("a6_swv_scan", |b| {
        b.iter(|| {
            bios_electrochem::simulate_swv(
                black_box(&cell),
                black_box(&couple),
                Molar::from_millimolar(1.0),
                Molar::ZERO,
                black_box(&params),
            )
            .expect("simulation")
        })
    });
    // Selectivity matrix (6 sessions).
    let platform = bios_bench::fig4::build_platform();
    c.bench_function("selectivity_matrix_6x6", |b| {
        b.iter(|| platform.selectivity_matrix(black_box(3)).expect("matrix"))
    });
}

fn bench_solver_kernels(c: &mut Criterion) {
    // The diffusion stepper: 1000 implicit steps on an experiment-sized grid.
    let d = DiffusionCoefficient::new(1e-5);
    let dt = Seconds::new(0.01);
    let grid = Grid::for_experiment(d, Seconds::new(10.0), dt).expect("grid");
    c.bench_function("diffusion_1000_steps", |b| {
        b.iter(|| {
            let mut sim = DiffusionSim::new(
                grid.clone(),
                d,
                d,
                MolesPerCm3::new(1e-6),
                MolesPerCm3::ZERO,
                dt,
            )
            .expect("sim");
            for _ in 0..1000 {
                black_box(sim.step_with_rate_constants(black_box(1e2), black_box(1e-2)));
            }
        })
    });

    // A full reversible CV (the Randles–Ševčík validation workload).
    let cell = Cell::builder(Electrode::paper_gold_we())
        .build()
        .expect("cell");
    let couple = RedoxCouple::ferrocyanide();
    let program = PotentialProgram::cyclic_single(
        Volts::new(0.53),
        Volts::new(-0.07),
        VoltsPerSecond::from_millivolts_per_second(50.0),
    );
    let options = SimOptions {
        dt: None,
        include_charging: true,
        grid_gamma: None,
    };
    c.bench_function("cv_reversible_full_cycle", |b| {
        b.iter(|| {
            simulate_cv_with(
                black_box(&cell),
                black_box(&couple),
                Molar::from_millimolar(1.0),
                Molar::ZERO,
                black_box(&program),
                options,
            )
            .expect("simulation")
        })
    });
}

criterion_group!(
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3, bench_fig1, bench_fig2, bench_fig3,
        bench_fig4, bench_ablations, bench_extensions, bench_solver_kernels
);
criterion_main!(paper);
