//! Property-based tests for the analog front-end.

use bios_afe::{
    Adc, AnalogMux, ChainConfig, CurrentRange, Fault, FaultKind, FaultPlan, NoiseConfig,
    NoiseSource, RandlesCell, ReadoutChain, Tia, VoltageGenerator,
};
use bios_electrochem::PotentialProgram;
use bios_units::{Amps, Farads, Hertz, Ohms, QRange, Seconds, Volts, VoltsPerSecond};
use proptest::prelude::*;

/// Runs a short deterministic acquisition through `chain` and returns the
/// raw samples. The active current is a fixed function of time, so any
/// sample-level difference between two runs comes from the chain itself.
fn acquire_trace(chain: &ReadoutChain, noise_seed: u64) -> Vec<bios_afe::Sample> {
    let program = PotentialProgram::Hold {
        potential: Volts::ZERO,
        duration: Seconds::new(2.0),
    };
    chain
        .acquire(
            &program,
            Seconds::from_millis(100.0),
            noise_seed,
            |t, _e| Amps::from_nanoamps(150.0 + 40.0 * (3.0 * t.value()).sin()),
            |_t, _e| Amps::ZERO,
        )
        .expect("acquire")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ADC quantize→to_volts round-trips within one LSB for any in-range
    /// voltage and resolution.
    #[test]
    fn adc_round_trip_within_lsb(bits in 6u8..16, frac in -0.999f64..0.999) {
        let adc = Adc::new(bits, Volts::new(1.65), Hertz::new(100.0)).expect("valid");
        let v = Volts::new(1.65 * frac);
        let back = adc.to_volts(adc.quantize(v));
        prop_assert!((back.value() - v.value()).abs() <= adc.lsb().value());
    }

    /// ADC codes are monotone in the input voltage.
    #[test]
    fn adc_codes_monotone(v1 in -1.6f64..1.6, dv in 0.001f64..0.2) {
        let adc = Adc::new(12, Volts::new(1.65), Hertz::new(100.0)).expect("valid");
        let c1 = adc.quantize(Volts::new(v1));
        let c2 = adc.quantize(Volts::new(v1 + dv));
        prop_assert!(c2 >= c1);
    }

    /// TIA static conversion is linear until it saturates, for any gain.
    #[test]
    fn tia_linear_until_rails(rf_exp in 4.0f64..7.0, i_na in -2000.0f64..2000.0) {
        let tia = Tia::new(Ohms::new(10f64.powf(rf_exp)), Hertz::new(1e3), Volts::new(1.65))
            .expect("valid");
        let i = Amps::from_nanoamps(i_na);
        let v = tia.convert_static(i);
        prop_assert!(v.value().abs() <= 1.65 + 1e-12);
        if !tia.saturates(i) {
            prop_assert!((v.value() + i.value() * 10f64.powf(rf_exp)).abs() < 1e-12);
        }
    }

    /// DAC quantization error is bounded by half an LSB everywhere in range.
    #[test]
    fn vgen_quantization_bounded(bits in 6u8..16, frac in 0.0f64..1.0) {
        let range = QRange::new(Volts::new(-1.0), Volts::new(1.0)).expect("range");
        let g = VoltageGenerator::new(bits, range, VoltsPerSecond::new(1.0)).expect("valid");
        let v = Volts::new(-1.0 + 2.0 * frac);
        let q = g.quantize(v);
        prop_assert!((q.value() - v.value()).abs() <= g.lsb().value() / 2.0 + 1e-12);
        prop_assert!(range.contains(q));
    }

    /// Randles cell current is bounded by E/Rs and approaches E/(Rs+Rct).
    #[test]
    fn randles_current_bounded(
        e_mv in 1.0f64..1000.0,
        rs in 10.0f64..1e4,
        rct_factor in 2.0f64..1e4,
    ) {
        let rct = rs * rct_factor;
        let mut cell = RandlesCell::new(
            Ohms::new(rs),
            Ohms::new(rct),
            Farads::from_nanofarads(50.0),
        ).expect("valid");
        let e = Volts::from_millivolts(e_mv);
        let tau = cell.time_constant().value();
        let dt = Seconds::new(tau / 10.0);
        let mut last = Amps::ZERO;
        for _ in 0..200 {
            last = cell.step(e, dt);
            prop_assert!(last.value() <= e.value() / rs * (1.0 + 1e-9));
            prop_assert!(last.value() >= e.value() / (rs + rct) * (1.0 - 1e-9));
        }
        // 20 τ later: within 1% of the DC value.
        let dc = e.value() / (rs + rct);
        prop_assert!((last.value() - dc).abs() / dc < 0.01);
    }

    /// Mux round-robin visits channels uniformly.
    #[test]
    fn mux_round_robin_uniform(channels in 1usize..12, slots in 1usize..60) {
        let m = AnalogMux::typical_cmos(channels).expect("valid");
        let dwell = Seconds::new(10.0);
        let slot = dwell.value() + m.switch_time().value();
        let mut counts = vec![0usize; channels];
        for k in 0..slots {
            let t = Seconds::new(k as f64 * slot + 0.5);
            counts[m.channel_at(t, dwell)] += 1;
        }
        let max = *counts.iter().max().expect("nonempty");
        let min = *counts.iter().min().expect("nonempty");
        prop_assert!(max - min <= 1, "unfair schedule: {counts:?}");
    }

    /// Noise is reproducible per seed and zero for the silent config.
    #[test]
    fn noise_seed_determinism(seed in 0u64..1000, n in 1usize..100) {
        let cfg = NoiseConfig::typical_cmos();
        let mut a = NoiseSource::new(cfg, seed);
        let mut b = NoiseSource::new(cfg, seed);
        let dt = Seconds::from_millis(10.0);
        for _ in 0..n {
            prop_assert_eq!(a.sample(dt).value(), b.sample(dt).value());
        }
    }

    /// Current-range bit requirements grow monotonically with dynamic range.
    #[test]
    fn range_bits_monotone(fs_ua in 1.0f64..1000.0, res_frac in 1e-4f64..0.1) {
        let fs = Amps::from_microamps(fs_ua);
        let res = Amps::new(fs.value() * res_frac);
        let r = CurrentRange::new(fs, res);
        let finer = CurrentRange::new(fs, Amps::new(res.value() / 4.0));
        prop_assert!(finer.required_bits() >= r.required_bits() + 2);
        prop_assert!(r.fits(Amps::new(fs.value() * 0.99)));
        prop_assert!(!r.fits(Amps::new(fs.value() * 1.01)));
    }

    /// Fault plans are bit-reproducible under one seed, both as data and
    /// through a full faulted acquisition: the same `(plan, noise seed)`
    /// replays the chain sample for sample.
    #[test]
    fn fault_plan_same_seed_bit_reproducible(seed in 0u64..100_000, wes in 1usize..12) {
        let a = FaultPlan::randomized(seed, wes);
        let b = FaultPlan::randomized(seed, wes);
        prop_assert_eq!(&a, &b);

        let cfg = ChainConfig::for_range(CurrentRange::oxidase()).expect("config");
        let chain = ReadoutChain::new(cfg).with_faults(a.faults_for(0), a.chain_seed(0));
        prop_assert_eq!(
            acquire_trace(&chain, seed ^ 0x5eed),
            acquire_trace(&chain, seed ^ 0x5eed)
        );
    }

    /// Severity-0 faults of every kind, at any onset, are exact no-ops:
    /// the faulted chain's samples are bit-identical to a fault-free one.
    #[test]
    fn zero_severity_faults_are_exact_noops(seed in 0u64..100_000, onset_s in 0.0f64..5.0) {
        let cfg = ChainConfig::for_range(CurrentRange::oxidase()).expect("config");
        let clean = ReadoutChain::new(cfg);
        let faults: Vec<Fault> = FaultKind::ALL
            .iter()
            .map(|&k| Fault::new(k, Seconds::new(onset_s), 0.0).expect("fault"))
            .collect();
        let faulted = ReadoutChain::new(cfg).with_faults(faults, seed.wrapping_mul(3));
        prop_assert_eq!(acquire_trace(&clean, seed), acquire_trace(&faulted, seed));
    }
}
