//! Property-based tests for the analog front-end.

use bios_afe::{
    Adc, AnalogMux, CurrentRange, NoiseConfig, NoiseSource, RandlesCell, Tia, VoltageGenerator,
};
use bios_units::{Amps, Farads, Hertz, Ohms, QRange, Seconds, Volts, VoltsPerSecond};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ADC quantize→to_volts round-trips within one LSB for any in-range
    /// voltage and resolution.
    #[test]
    fn adc_round_trip_within_lsb(bits in 6u8..16, frac in -0.999f64..0.999) {
        let adc = Adc::new(bits, Volts::new(1.65), Hertz::new(100.0)).expect("valid");
        let v = Volts::new(1.65 * frac);
        let back = adc.to_volts(adc.quantize(v));
        prop_assert!((back.value() - v.value()).abs() <= adc.lsb().value());
    }

    /// ADC codes are monotone in the input voltage.
    #[test]
    fn adc_codes_monotone(v1 in -1.6f64..1.6, dv in 0.001f64..0.2) {
        let adc = Adc::new(12, Volts::new(1.65), Hertz::new(100.0)).expect("valid");
        let c1 = adc.quantize(Volts::new(v1));
        let c2 = adc.quantize(Volts::new(v1 + dv));
        prop_assert!(c2 >= c1);
    }

    /// TIA static conversion is linear until it saturates, for any gain.
    #[test]
    fn tia_linear_until_rails(rf_exp in 4.0f64..7.0, i_na in -2000.0f64..2000.0) {
        let tia = Tia::new(Ohms::new(10f64.powf(rf_exp)), Hertz::new(1e3), Volts::new(1.65))
            .expect("valid");
        let i = Amps::from_nanoamps(i_na);
        let v = tia.convert_static(i);
        prop_assert!(v.value().abs() <= 1.65 + 1e-12);
        if !tia.saturates(i) {
            prop_assert!((v.value() + i.value() * 10f64.powf(rf_exp)).abs() < 1e-12);
        }
    }

    /// DAC quantization error is bounded by half an LSB everywhere in range.
    #[test]
    fn vgen_quantization_bounded(bits in 6u8..16, frac in 0.0f64..1.0) {
        let range = QRange::new(Volts::new(-1.0), Volts::new(1.0)).expect("range");
        let g = VoltageGenerator::new(bits, range, VoltsPerSecond::new(1.0)).expect("valid");
        let v = Volts::new(-1.0 + 2.0 * frac);
        let q = g.quantize(v);
        prop_assert!((q.value() - v.value()).abs() <= g.lsb().value() / 2.0 + 1e-12);
        prop_assert!(range.contains(q));
    }

    /// Randles cell current is bounded by E/Rs and approaches E/(Rs+Rct).
    #[test]
    fn randles_current_bounded(
        e_mv in 1.0f64..1000.0,
        rs in 10.0f64..1e4,
        rct_factor in 2.0f64..1e4,
    ) {
        let rct = rs * rct_factor;
        let mut cell = RandlesCell::new(
            Ohms::new(rs),
            Ohms::new(rct),
            Farads::from_nanofarads(50.0),
        ).expect("valid");
        let e = Volts::from_millivolts(e_mv);
        let tau = cell.time_constant().value();
        let dt = Seconds::new(tau / 10.0);
        let mut last = Amps::ZERO;
        for _ in 0..200 {
            last = cell.step(e, dt);
            prop_assert!(last.value() <= e.value() / rs * (1.0 + 1e-9));
            prop_assert!(last.value() >= e.value() / (rs + rct) * (1.0 - 1e-9));
        }
        // 20 τ later: within 1% of the DC value.
        let dc = e.value() / (rs + rct);
        prop_assert!((last.value() - dc).abs() / dc < 0.01);
    }

    /// Mux round-robin visits channels uniformly.
    #[test]
    fn mux_round_robin_uniform(channels in 1usize..12, slots in 1usize..60) {
        let m = AnalogMux::typical_cmos(channels).expect("valid");
        let dwell = Seconds::new(10.0);
        let slot = dwell.value() + m.switch_time().value();
        let mut counts = vec![0usize; channels];
        for k in 0..slots {
            let t = Seconds::new(k as f64 * slot + 0.5);
            counts[m.channel_at(t, dwell)] += 1;
        }
        let max = *counts.iter().max().expect("nonempty");
        let min = *counts.iter().min().expect("nonempty");
        prop_assert!(max - min <= 1, "unfair schedule: {counts:?}");
    }

    /// Noise is reproducible per seed and zero for the silent config.
    #[test]
    fn noise_seed_determinism(seed in 0u64..1000, n in 1usize..100) {
        let cfg = NoiseConfig::typical_cmos();
        let mut a = NoiseSource::new(cfg, seed);
        let mut b = NoiseSource::new(cfg, seed);
        let dt = Seconds::from_millis(10.0);
        for _ in 0..n {
            prop_assert_eq!(a.sample(dt).value(), b.sample(dt).value());
        }
    }

    /// Current-range bit requirements grow monotonically with dynamic range.
    #[test]
    fn range_bits_monotone(fs_ua in 1.0f64..1000.0, res_frac in 1e-4f64..0.1) {
        let fs = Amps::from_microamps(fs_ua);
        let res = Amps::new(fs.value() * res_frac);
        let r = CurrentRange::new(fs, res);
        let finer = CurrentRange::new(fs, Amps::new(res.value() / 4.0));
        prop_assert!(finer.required_bits() >= r.required_bits() + 2);
        prop_assert!(r.fits(Amps::new(fs.value() * 0.99)));
        prop_assert!(!r.fits(Amps::new(fs.value() * 1.01)));
    }
}
