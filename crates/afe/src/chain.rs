//! The full acquisition chain of Fig. 2: voltage generator → potentiostat →
//! cell → transimpedance amplifier → conditioning (chopper/CDS) → ADC.

use crate::adc::Adc;
use crate::cds::CorrelatedDoubleSampler;
use crate::current_range::CurrentRange;
use crate::error::AfeError;
use crate::fault::{Fault, FaultRuntime};
use crate::noise::{NoiseConfig, NoiseSource};
use crate::potentiostat::Potentiostat;
use crate::tia::Tia;
use crate::vgen::VoltageGenerator;
use bios_electrochem::PotentialProgram;
use bios_units::{Amps, Hertz, Ohms, Seconds, Volts};

/// Flicker suppression a practical chopper achieves.
pub const CHOPPER_SUPPRESSION: f64 = 50.0;

/// Static configuration of a readout chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainConfig {
    /// The current-to-voltage stage.
    pub tia: Tia,
    /// The digitizer.
    pub adc: Adc,
    /// Input-referred noise (amplifier white + flicker, electrode drift).
    pub noise: NoiseConfig,
    /// Whether chopper stabilization is enabled (suppresses amplifier
    /// flicker ×[`CHOPPER_SUPPRESSION`], costs √2 white noise).
    pub chopper: bool,
    /// Correlated double sampling against a blank electrode, if any.
    pub cds: Option<CorrelatedDoubleSampler>,
    /// The waveform DAC.
    pub vgen: VoltageGenerator,
    /// The cell-potential control loop.
    pub potentiostat: Potentiostat,
}

impl ChainConfig {
    /// A chain sized for the given current readout class: the TIA feedback
    /// is chosen so the class's full scale spans the ADC range, and the ADC
    /// has one bit of margin over the class's requirement.
    ///
    /// # Errors
    ///
    /// Propagates block construction errors (cannot occur for the paper's
    /// two classes).
    pub fn for_range(range: CurrentRange) -> Result<Self, AfeError> {
        let rail = Volts::new(1.65);
        let feedback = Ohms::new(rail.value() / range.full_scale().value());
        let tia = Tia::new(feedback, Hertz::from_kilohertz(1.0), rail)?.inverted();
        let adc = Adc::new(
            (range.required_bits() + 1).clamp(8, 16),
            rail,
            Hertz::new(100.0),
        )?;
        Ok(Self {
            tia,
            adc,
            noise: NoiseConfig::typical_cmos(),
            chopper: false,
            cds: None,
            vgen: VoltageGenerator::paper_default()?,
            potentiostat: Potentiostat::typical_cmos()?,
        })
    }

    /// Enables the chopper.
    pub fn with_chopper(mut self) -> Self {
        self.chopper = true;
        self
    }

    /// Enables CDS with the given sampler.
    pub fn with_cds(mut self, cds: CorrelatedDoubleSampler) -> Self {
        self.cds = Some(cds);
        self
    }

    /// Overrides the noise model.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// The input current that exactly spans the chain: the TIA's
    /// full-scale input. Fault models and QC gates use this as the
    /// "rail" reference for saturation and spike amplitudes.
    pub fn full_scale_current(&self) -> Amps {
        self.tia.full_scale_input()
    }
}

/// One digitized sample out of the chain.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// Sample time.
    pub t: Seconds,
    /// Programmed setpoint potential.
    pub setpoint: Volts,
    /// Potential actually applied to the cell.
    pub applied: Volts,
    /// Raw ADC code.
    pub code: i32,
    /// Code converted back to volts.
    pub volts: Volts,
    /// Input current estimate (volts ÷ TIA gain) — what the instrument
    /// layer analyzes.
    pub current: Amps,
}

/// A runnable acquisition chain.
///
/// # Example
///
/// ```
/// use bios_afe::{ChainConfig, CurrentRange, ReadoutChain};
/// use bios_electrochem::PotentialProgram;
/// use bios_units::{Amps, Seconds, Volts};
///
/// # fn main() -> Result<(), bios_afe::AfeError> {
/// let chain = ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase())?);
/// let program = PotentialProgram::Hold {
///     potential: Volts::from_millivolts(650.0),
///     duration: Seconds::new(2.0),
/// };
/// // A fake 100 nA cell.
/// let samples = chain.acquire(&program, Seconds::from_millis(100.0), 42,
///     |_t, _e| Amps::from_nanoamps(100.0), |_t, _e| Amps::ZERO)?;
/// assert_eq!(samples.len(), 21);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReadoutChain {
    config: ChainConfig,
    faults: Vec<Fault>,
    fault_seed: u64,
}

impl ReadoutChain {
    /// Wraps a configuration.
    pub fn new(config: ChainConfig) -> Self {
        Self {
            config,
            faults: Vec::new(),
            fault_seed: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Injects faults into every subsequent acquisition. `fault_seed`
    /// drives the faults' per-sample randomness (spikes, dropouts) —
    /// typically [`FaultPlan::chain_seed`](crate::FaultPlan::chain_seed)
    /// — independently of the acquisition noise seed.
    pub fn with_faults(mut self, faults: Vec<Fault>, fault_seed: u64) -> Self {
        self.faults = faults;
        self.fault_seed = fault_seed;
        self
    }

    /// The faults this chain injects.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// A stable content hash of everything that determines this chain's
    /// response to a given `(program, dt, seed)`: the full block
    /// configuration, the injected faults and the fault seed.
    ///
    /// Two chains with equal hashes produce bit-identical acquisitions for
    /// identical inputs, which is what makes the platform layer's trace
    /// memoization sound. Rust's `Debug` float formatting is
    /// shortest-roundtrip (lossless), so distinct configurations cannot
    /// collide through formatting.
    pub fn content_hash(&self) -> u64 {
        let repr = format!("{:?}|{:?}|{}", self.config, self.faults, self.fault_seed);
        // FNV-1a over the canonical representation.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Measures the chain's own input-referred baseline noise: a dry
    /// acquisition with grounded inputs held at 0 V over `window`,
    /// returning the standard deviation of the recorded current.
    ///
    /// This is the commissioning number a QC gate compares live baselines
    /// against. Injected faults are exercised by the dry run too, so a
    /// faulted chain's self-noise diverges from its fault-free twin's —
    /// signal-path attenuation (open electrode, stale mux) shows up as an
    /// implausibly quiet channel. Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError`] if `dt` or `window` is non-positive.
    pub fn baseline_noise_reference(
        &self,
        dt: Seconds,
        window: Seconds,
        seed: u64,
    ) -> Result<Amps, AfeError> {
        if window.value() <= 0.0 {
            return Err(AfeError::invalid("window", "must be positive"));
        }
        let program = PotentialProgram::Hold {
            potential: Volts::ZERO,
            duration: window,
        };
        let samples = self.acquire(&program, dt, seed, |_t, _e| Amps::ZERO, |_t, _e| Amps::ZERO)?;
        let n = samples.len() as f64;
        let mean = samples.iter().map(|s| s.current.value()).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|s| (s.current.value() - mean).powi(2))
            .sum::<f64>()
            / n;
        Ok(Amps::new(var.sqrt()))
    }

    /// Built-in self-test: drives the chain with a known synthetic input
    /// current (half of full scale, the dummy-cell trick) and returns the
    /// mean recovered current over the hold, skipping the first quarter
    /// for settling.
    ///
    /// Comparing a live chain's response against its commissioning value
    /// exposes gain errors the noise floor cannot — signal-path
    /// attenuation hides below one ADC code at quiescent input, but not
    /// under a half-scale test signal. Injected faults are exercised by
    /// the self-test. Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError`] if `dt` or `window` is non-positive.
    pub fn self_test_response(
        &self,
        dt: Seconds,
        window: Seconds,
        seed: u64,
    ) -> Result<Amps, AfeError> {
        if window.value() <= 0.0 {
            return Err(AfeError::invalid("window", "must be positive"));
        }
        let program = PotentialProgram::Hold {
            potential: Volts::ZERO,
            duration: window,
        };
        let test = Amps::new(0.5 * self.config.full_scale_current().value());
        let samples = self.acquire(&program, dt, seed, |_t, _e| test, |_t, _e| Amps::ZERO)?;
        let skip = samples.len() / 4;
        let tail = &samples[skip..];
        let mean = tail.iter().map(|s| s.current.value()).sum::<f64>() / tail.len() as f64;
        Ok(Amps::new(mean))
    }

    /// Runs the chain over `program`, sampling every `dt`.
    ///
    /// `active` maps `(t, applied potential)` to the active working
    /// electrode's current; `blank` to the enzyme-free blank electrode's
    /// (only consulted when CDS is enabled — pass a closure returning
    /// [`Amps::ZERO`] otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`AfeError`] if the program violates the voltage generator's
    /// range or slew limits, or `dt` is non-positive.
    pub fn acquire<A, B>(
        &self,
        program: &PotentialProgram,
        dt: Seconds,
        seed: u64,
        mut active: A,
        mut blank: B,
    ) -> Result<Vec<Sample>, AfeError>
    where
        A: FnMut(Seconds, Volts) -> Amps,
        B: FnMut(Seconds, Volts) -> Amps,
    {
        if dt.value() <= 0.0 {
            return Err(AfeError::invalid("dt", "must be positive"));
        }
        self.config.vgen.check(program)?;

        // Amplifier-side noise (white + flicker): chopped if enabled.
        let amp_cfg = NoiseConfig {
            drift_per_sqrt_s: 0.0,
            ..self.config.noise
        };
        let amp_cfg = if self.config.chopper {
            amp_cfg.chopped(CHOPPER_SUPPRESSION)
        } else {
            amp_cfg
        };
        // Electrode-side drift: shared between active and blank electrodes,
        // untouched by the chopper, attenuated by CDS matching.
        let drift_cfg = NoiseConfig {
            white_density: 0.0,
            flicker_density_1hz: 0.0,
            drift_per_sqrt_s: self.config.noise.drift_per_sqrt_s,
        };
        let mut amp_active = NoiseSource::new(amp_cfg, seed);
        let mut amp_blank = NoiseSource::new(amp_cfg, seed.wrapping_add(1));
        let mut drift = NoiseSource::new(drift_cfg, seed.wrapping_add(2));

        let mut pstat = self
            .config
            .potentiostat
            .streamer(program.potential_at(Seconds::ZERO));
        let mut tia = self.config.tia.streamer();

        // Fault injection sits between the ideal blocks: currents are
        // perturbed before the TIA, compliance collapse clips its output,
        // and code faults hit after quantization. A no-op runtime (all
        // severities zero) is skipped entirely so fault-free acquisitions
        // stay bit-identical to the pre-fault-model chain.
        let mut fault_rt = FaultRuntime::new(
            &self.faults,
            self.fault_seed,
            self.config.full_scale_current(),
        );
        let inject = !fault_rt.is_noop();
        let max_code = (1i32 << (self.config.adc.bits() - 1)) - 1;

        // Hoisted loop invariants: a Hold program's DAC setpoint is the
        // same at every sample (realize = quantize(potential), independent
        // of t), and the CDS residual fraction never changes mid-run.
        // Both used to be recomputed per step.
        let hold_setpoint = match program {
            PotentialProgram::Hold { .. } => {
                Some(self.config.vgen.realize(program, Seconds::ZERO)?)
            }
            _ => None,
        };
        let cds_residual = self
            .config
            .cds
            .as_ref()
            .map(|c| c.residual_drift_fraction());

        let duration = program.duration();
        let steps = (duration.value() / dt.value()).round() as usize;
        let mut out = Vec::with_capacity(steps + 1);
        for k in 0..=steps {
            let t = Seconds::new((k as f64 * dt.value()).min(duration.value()));
            let setpoint = match hold_setpoint {
                Some(v) => v,
                None => self.config.vgen.realize(program, t)?,
            };
            let applied = pstat.step(setpoint, dt);
            let drift_now = drift.sample(dt);
            let i_active = active(t, applied) + amp_active.sample(dt);
            let i_meas = match cds_residual {
                Some(residual) => {
                    let i_blank = blank(t, applied) + amp_blank.sample(dt);
                    // Shared drift attenuates by the matching rejection.
                    i_active - i_blank + drift_now * residual
                }
                None => i_active + drift_now,
            };
            let i_meas = if inject {
                fault_rt.apply_current(k, t, i_meas)
            } else {
                i_meas
            };
            let v = tia.process(i_meas, dt);
            let v = if inject {
                fault_rt.apply_voltage(t, v, self.config.tia.rail())
            } else {
                v
            };
            let code = self.config.adc.quantize(v);
            let code = if inject {
                fault_rt.apply_code(k, t, code, max_code)
            } else {
                code
            };
            let volts = self.config.adc.to_volts(code);
            let current = Amps::new(volts.value() / self.config.tia.gain());
            out.push(Sample {
                t,
                setpoint,
                applied,
                code,
                volts,
                current,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cds::MatchingQuality;

    fn hold(mv: f64, secs: f64) -> PotentialProgram {
        PotentialProgram::Hold {
            potential: Volts::from_millivolts(mv),
            duration: Seconds::new(secs),
        }
    }

    fn chain() -> ReadoutChain {
        ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase()).expect("config"))
    }

    fn sd(samples: &[f64]) -> f64 {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt()
    }

    #[test]
    fn recovers_dc_current_within_resolution() {
        let c = chain();
        let truth = Amps::from_nanoamps(500.0);
        let samples = c
            .acquire(
                &hold(650.0, 5.0),
                Seconds::from_millis(100.0),
                1,
                |_, _| truth,
                |_, _| Amps::ZERO,
            )
            .expect("acquire");
        // Average the tail to beat the noise.
        let tail: Vec<f64> = samples[10..].iter().map(|s| s.current.value()).collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - truth.value()).abs() < CurrentRange::oxidase().resolution().value(),
            "mean {mean}"
        );
    }

    #[test]
    fn acquisition_is_reproducible_by_seed() {
        // Typical CMOS noise sits below one ADC LSB (≈2.4 nA of input
        // current here), so use electrode-scale noise to make the seed
        // visible in the codes.
        let cfg = ChainConfig::for_range(CurrentRange::oxidase())
            .expect("config")
            .with_noise(NoiseConfig {
                white_density: 2e-9,
                flicker_density_1hz: 0.0,
                drift_per_sqrt_s: 0.0,
            });
        let c = ReadoutChain::new(cfg);
        let run = |seed| {
            c.acquire(
                &hold(650.0, 1.0),
                Seconds::from_millis(50.0),
                seed,
                |_, _| Amps::from_nanoamps(100.0),
                |_, _| Amps::ZERO,
            )
            .expect("acquire")
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn chopper_reduces_low_frequency_noise() {
        // Flicker-dominated noise scaled above the ADC LSB so the effect
        // survives quantization.
        let cfg = ChainConfig::for_range(CurrentRange::oxidase())
            .expect("config")
            .with_noise(NoiseConfig {
                white_density: 1e-10,
                flicker_density_1hz: 1e-8,
                drift_per_sqrt_s: 0.0,
            });
        let noisy = ReadoutChain::new(cfg);
        let chopped = ReadoutChain::new(cfg.with_chopper());
        let measure = |c: &ReadoutChain, seed: u64| {
            let s = c
                .acquire(
                    &hold(650.0, 60.0),
                    Seconds::from_millis(250.0),
                    seed,
                    |_, _| Amps::ZERO,
                    |_, _| Amps::ZERO,
                )
                .expect("acquire");
            sd(&s.iter().map(|x| x.current.value()).collect::<Vec<_>>())
        };
        // Average over several seeds for a stable comparison.
        let n_runs = 8;
        let mean_noisy: f64 =
            (0..n_runs).map(|k| measure(&noisy, 100 + k)).sum::<f64>() / n_runs as f64;
        let mean_chop: f64 =
            (0..n_runs).map(|k| measure(&chopped, 200 + k)).sum::<f64>() / n_runs as f64;
        assert!(
            mean_chop < mean_noisy * 0.6,
            "chopper must cut 1/f-dominated noise: {mean_chop} vs {mean_noisy}"
        );
    }

    #[test]
    fn cds_subtracts_blank_interferent() {
        let cfg = ChainConfig::for_range(CurrentRange::oxidase())
            .expect("config")
            .with_noise(NoiseConfig::NONE)
            .with_cds(CorrelatedDoubleSampler::new(MatchingQuality::Monolithic));
        let c = ReadoutChain::new(cfg);
        let signal = Amps::from_nanoamps(300.0);
        let interferent = Amps::from_nanoamps(80.0);
        let samples = c
            .acquire(
                &hold(650.0, 2.0),
                Seconds::from_millis(100.0),
                3,
                move |_, _| signal + interferent,
                move |_, _| interferent,
            )
            .expect("acquire");
        let last = samples.last().expect("nonempty");
        assert!(
            (last.current.value() - signal.value()).abs()
                < 2.0 * CurrentRange::oxidase().resolution().value(),
            "cds output {}",
            last.current.value()
        );
    }

    #[test]
    fn rejects_bad_programs_and_dt() {
        let c = chain();
        let over_range = hold(1500.0, 1.0);
        assert!(c
            .acquire(
                &over_range,
                Seconds::from_millis(10.0),
                1,
                |_, _| Amps::ZERO,
                |_, _| { Amps::ZERO }
            )
            .is_err());
        assert!(c
            .acquire(
                &hold(0.0, 1.0),
                Seconds::ZERO,
                1,
                |_, _| Amps::ZERO,
                |_, _| Amps::ZERO
            )
            .is_err());
    }

    #[test]
    fn saturation_clips_codes_not_panics() {
        let c = chain();
        let samples = c
            .acquire(
                &hold(650.0, 1.0),
                Seconds::from_millis(100.0),
                1,
                |_, _| Amps::from_microamps(100.0), // 10× over range
                |_, _| Amps::ZERO,
            )
            .expect("acquire");
        let max_code = (1 << (c.config().adc.bits() - 1)) - 1;
        // Codes approach (or pin at) the positive rail without overflow.
        assert!(samples.iter().all(|s| s.code <= max_code));
        assert!(samples.last().expect("nonempty").code >= max_code - 1);
    }

    #[test]
    fn cv_program_passes_through_dac_staircase() {
        let c =
            ReadoutChain::new(ChainConfig::for_range(CurrentRange::cytochrome()).expect("config"));
        let cv = PotentialProgram::cyclic_single(
            Volts::new(0.1),
            Volts::new(-0.8),
            bios_units::VoltsPerSecond::from_millivolts_per_second(20.0),
        );
        let samples = c
            .acquire(
                &cv,
                Seconds::from_millis(500.0),
                4,
                |_, _| Amps::ZERO,
                |_, _| Amps::ZERO,
            )
            .expect("acquire");
        // The setpoint follows the triangle within one DAC LSB.
        for s in &samples {
            let ideal = cv.potential_at(s.t);
            assert!(
                (s.setpoint.value() - ideal.value()).abs()
                    <= c.config().vgen.lsb().value() / 2.0 + 1e-12
            );
        }
    }
}
