//! Transimpedance amplifier: the current-to-voltage converter of Fig. 1.

use crate::error::AfeError;
use bios_units::{Amps, Hertz, Ohms, Seconds, Volts};

/// A single-pole transimpedance amplifier with output saturation.
///
/// `v = −(i + i_offset)·R_f` filtered through a one-pole response at the
/// configured bandwidth and clipped at the rails. The inverting sign is the
/// standard feedback-TIA convention (Fig. 1): anodic current into the
/// virtual ground gives a negative output. Call [`Tia::inverted`] if you
/// want the follow-up inverter stage folded in.
///
/// # Example
///
/// ```
/// use bios_afe::Tia;
/// use bios_units::{Amps, Hertz, Ohms, Volts};
///
/// # fn main() -> Result<(), bios_afe::AfeError> {
/// let tia = Tia::new(Ohms::from_megaohms(1.0), Hertz::from_kilohertz(10.0), Volts::new(1.65))?;
/// // 100 nA × 1 MΩ = 100 mV (static, inverting).
/// let v = tia.convert_static(Amps::from_nanoamps(100.0));
/// assert!((v.as_millivolts() + 100.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tia {
    feedback: Ohms,
    bandwidth: Hertz,
    rail: Volts,
    input_offset: Amps,
    inverted: bool,
}

impl Tia {
    /// Creates a TIA with feedback resistance, bandwidth and symmetric
    /// output rails `±rail`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::InvalidParameter`] for non-positive feedback,
    /// bandwidth or rail.
    pub fn new(feedback: Ohms, bandwidth: Hertz, rail: Volts) -> Result<Self, AfeError> {
        if feedback.value() <= 0.0 || !feedback.value().is_finite() {
            return Err(AfeError::invalid("feedback", "must be positive and finite"));
        }
        if bandwidth.value() <= 0.0 || !bandwidth.value().is_finite() {
            return Err(AfeError::invalid(
                "bandwidth",
                "must be positive and finite",
            ));
        }
        if rail.value() <= 0.0 || !rail.value().is_finite() {
            return Err(AfeError::invalid("rail", "must be positive and finite"));
        }
        Ok(Self {
            feedback,
            bandwidth,
            rail,
            input_offset: Amps::ZERO,
            inverted: false,
        })
    }

    /// Adds an input offset (bias) current.
    pub fn with_input_offset(mut self, offset: Amps) -> Self {
        self.input_offset = offset;
        self
    }

    /// Folds in the follow-up inverting stage so anodic currents map to
    /// positive voltages (convenient for readability of recorded data).
    pub fn inverted(mut self) -> Self {
        self.inverted = true;
        self
    }

    /// Feedback resistance.
    pub fn feedback(&self) -> Ohms {
        self.feedback
    }

    /// −3 dB bandwidth.
    pub fn bandwidth(&self) -> Hertz {
        self.bandwidth
    }

    /// Output rail magnitude.
    pub fn rail(&self) -> Volts {
        self.rail
    }

    /// The output voltage per ampere of input, including sign.
    pub fn gain(&self) -> f64 {
        let sign = if self.inverted { 1.0 } else { -1.0 };
        sign * self.feedback.value()
    }

    /// Static (DC) conversion with saturation, no dynamics.
    pub fn convert_static(&self, i: Amps) -> Volts {
        let v = (i + self.input_offset).value() * self.gain();
        Volts::new(v.clamp(-self.rail.value(), self.rail.value()))
    }

    /// Whether a current would clip the output.
    pub fn saturates(&self, i: Amps) -> bool {
        ((i + self.input_offset).value() * self.gain()).abs() > self.rail.value()
    }

    /// Largest input current magnitude that stays inside the rails.
    pub fn full_scale_input(&self) -> Amps {
        Amps::new(self.rail.value() / self.feedback.value())
    }

    /// Creates a streaming state for dynamic (one-pole) conversion.
    pub fn streamer(&self) -> TiaStream {
        TiaStream {
            tia: *self,
            state: 0.0,
        }
    }
}

/// Streaming one-pole TIA state for sample-by-sample processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiaStream {
    tia: Tia,
    state: f64,
}

impl TiaStream {
    /// Processes one input sample of duration `dt`, returning the filtered,
    /// clipped output voltage.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn process(&mut self, i: Amps, dt: Seconds) -> Volts {
        assert!(dt.value() > 0.0, "time step must be positive");
        let target = (i + self.tia.input_offset).value() * self.tia.gain();
        let tau = 1.0 / (2.0 * core::f64::consts::PI * self.tia.bandwidth.value());
        let alpha = 1.0 - (-dt.value() / tau).exp();
        self.state += alpha * (target - self.state);
        Volts::new(
            self.state
                .clamp(-self.tia.rail.value(), self.tia.rail.value()),
        )
    }

    /// The present (unclipped) internal state.
    pub fn state(&self) -> Volts {
        Volts::new(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tia() -> Tia {
        Tia::new(
            Ohms::from_megaohms(1.0),
            Hertz::from_kilohertz(10.0),
            Volts::new(1.65),
        )
        .expect("valid")
    }

    #[test]
    fn construction_validates() {
        assert!(Tia::new(Ohms::ZERO, Hertz::new(1.0), Volts::new(1.0)).is_err());
        assert!(Tia::new(Ohms::new(1e6), Hertz::ZERO, Volts::new(1.0)).is_err());
        assert!(Tia::new(Ohms::new(1e6), Hertz::new(1.0), Volts::ZERO).is_err());
    }

    #[test]
    fn static_gain_and_sign() {
        let t = tia();
        let v = t.convert_static(Amps::from_nanoamps(100.0));
        assert!((v.as_millivolts() + 100.0).abs() < 1e-9);
        let vi = t.inverted().convert_static(Amps::from_nanoamps(100.0));
        assert!((vi.as_millivolts() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_clips_at_rails() {
        let t = tia();
        let v = t.convert_static(Amps::from_microamps(10.0)); // would be 10 V
        assert_eq!(v.value(), -1.65);
        assert!(t.saturates(Amps::from_microamps(10.0)));
        assert!(!t.saturates(Amps::from_nanoamps(100.0)));
        assert!((t.full_scale_input().as_microamps() - 1.65).abs() < 1e-9);
    }

    #[test]
    fn offset_current_shifts_output() {
        let t = tia().with_input_offset(Amps::from_nanoamps(10.0));
        let v = t.convert_static(Amps::ZERO);
        assert!((v.as_millivolts() + 10.0).abs() < 1e-9);
    }

    #[test]
    fn stream_settles_to_static_value() {
        let t = tia();
        let mut s = t.streamer();
        let i = Amps::from_nanoamps(100.0);
        let dt = Seconds::from_micros(10.0);
        let mut v = Volts::ZERO;
        for _ in 0..200 {
            v = s.process(i, dt);
        }
        let expected = t.convert_static(i);
        assert!((v.value() - expected.value()).abs() < 1e-6);
    }

    #[test]
    fn stream_bandwidth_sets_rise_time() {
        // One-pole: after one time constant the response reaches 63%.
        let t = tia();
        let mut s = t.streamer();
        let i = Amps::from_nanoamps(100.0);
        let tau = 1.0 / (2.0 * core::f64::consts::PI * t.bandwidth().value());
        // Step in small increments up to exactly tau.
        let n = 1000;
        let dt = Seconds::new(tau / n as f64);
        let mut v = Volts::ZERO;
        for _ in 0..n {
            v = s.process(i, dt);
        }
        let frac = v.value() / t.convert_static(i).value();
        assert!((frac - 0.632).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn paper_oxidase_range_fits_1meg_tia() {
        // §II-C: ±10 µA range with 10 nA resolution for oxidases. A 150 kΩ
        // feedback with ±1.65 V rails covers ±11 µA.
        let t = Tia::new(
            Ohms::from_kiloohms(150.0),
            Hertz::from_kilohertz(1.0),
            Volts::new(1.65),
        )
        .expect("valid");
        assert!(t.full_scale_input().as_microamps() > 10.0);
        // 10 nA resolves to 1.5 mV — comfortably above a 12-bit LSB.
        let v_res = t.convert_static(Amps::from_nanoamps(10.0)).abs();
        assert!(v_res.as_millivolts() > 1.0);
    }
}
