//! Power and silicon-area cost models for the AFE blocks — the "small,
//! low energy consumption, low-cost" axis of the paper's design-space
//! exploration (§I).

use bios_units::{Hertz, Watts};

/// A named block with its power draw and silicon area.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BlockCost {
    /// Block name for reports.
    pub name: String,
    /// Power draw.
    pub power: Watts,
    /// Silicon area in mm².
    pub area_mm2: f64,
}

/// Cost of one potentiostat control amplifier.
pub fn potentiostat_cost() -> BlockCost {
    BlockCost {
        name: "potentiostat".to_string(),
        power: Watts::from_microwatts(50.0),
        area_mm2: 0.05,
    }
}

/// Cost of one transimpedance amplifier at the given bandwidth (power rises
/// gently with bandwidth).
pub fn tia_cost(bandwidth: Hertz) -> BlockCost {
    let base_uw = 60.0;
    let speed_uw = 10.0 * (bandwidth.value() / 1e3).max(0.0).sqrt();
    BlockCost {
        name: "tia".to_string(),
        power: Watts::from_microwatts(base_uw + speed_uw),
        area_mm2: 0.04,
    }
}

/// Cost of a SAR ADC from the Walden figure of merit
/// (≈100 fJ/conversion-step): `P = FoM·2^bits·f_s`.
pub fn adc_cost(bits: u8, sample_rate: Hertz) -> BlockCost {
    let fom_j = 100e-15;
    let dynamic = fom_j * (1u64 << bits) as f64 * sample_rate.value();
    // Always-on bias grows with resolution (comparator/reference accuracy).
    let static_w = 1e-6 + 0.2e-6 * f64::from(bits);
    BlockCost {
        name: format!("adc-{bits}b"),
        power: Watts::new(static_w + dynamic),
        area_mm2: 0.02 + 0.004 * f64::from(bits.saturating_sub(8)),
    }
}

/// Cost of the waveform DAC.
pub fn dac_cost(bits: u8) -> BlockCost {
    BlockCost {
        name: format!("dac-{bits}b"),
        power: Watts::from_microwatts(20.0 + f64::from(bits)),
        area_mm2: 0.015 + 0.002 * f64::from(bits.saturating_sub(8)),
    }
}

/// Cost of an analog mux with `channels` inputs.
pub fn mux_cost(channels: usize) -> BlockCost {
    BlockCost {
        name: format!("mux-{channels}"),
        power: Watts::from_microwatts(5.0 + channels as f64),
        area_mm2: 0.008 + 0.002 * channels as f64,
    }
}

/// Extra cost of chopper clocks and switches.
pub fn chopper_cost() -> BlockCost {
    BlockCost {
        name: "chopper".to_string(),
        power: Watts::from_microwatts(15.0),
        area_mm2: 0.01,
    }
}

/// A bill of blocks with totals.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostBudget {
    blocks: Vec<BlockCost>,
}

impl CostBudget {
    /// Creates an empty budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a block.
    pub fn add(&mut self, block: BlockCost) -> &mut Self {
        self.blocks.push(block);
        self
    }

    /// The blocks accumulated so far.
    pub fn blocks(&self) -> &[BlockCost] {
        &self.blocks
    }

    /// Total power.
    pub fn total_power(&self) -> Watts {
        self.blocks.iter().map(|b| b.power).sum()
    }

    /// Total silicon area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.blocks.iter().map(|b| b.area_mm2).sum()
    }

    /// Renders a one-line-per-block report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for b in &self.blocks {
            out.push_str(&format!(
                "{:<14} {:>10} {:>8.3} mm²\n",
                b.name,
                b.power.to_string(),
                b.area_mm2
            ));
        }
        out.push_str(&format!(
            "{:<14} {:>10} {:>8.3} mm²\n",
            "TOTAL",
            self.total_power().to_string(),
            self.total_area_mm2()
        ));
        out
    }
}

impl Extend<BlockCost> for CostBudget {
    fn extend<T: IntoIterator<Item = BlockCost>>(&mut self, iter: T) {
        self.blocks.extend(iter);
    }
}

impl FromIterator<BlockCost> for CostBudget {
    fn from_iter<T: IntoIterator<Item = BlockCost>>(iter: T) -> Self {
        Self {
            blocks: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_power_scales_with_bits_and_rate() {
        let slow = adc_cost(12, Hertz::new(100.0));
        let fast = adc_cost(12, Hertz::from_kilohertz(100.0));
        assert!(fast.power.value() > slow.power.value());
        let small = adc_cost(8, Hertz::from_kilohertz(100.0));
        let big = adc_cost(14, Hertz::from_kilohertz(100.0));
        // Dynamic power dominates at 100 kS/s: close to the 2⁶ ratio.
        assert!(big.power.value() / small.power.value() > 30.0);
        // And resolution costs power even at slow rates.
        let slow8 = adc_cost(8, Hertz::new(100.0));
        let slow14 = adc_cost(14, Hertz::new(100.0));
        assert!(slow14.power.value() > slow8.power.value());
    }

    #[test]
    fn budget_totals_add_up() {
        let mut b = CostBudget::new();
        b.add(potentiostat_cost());
        b.add(tia_cost(Hertz::from_kilohertz(1.0)));
        b.add(adc_cost(12, Hertz::new(100.0)));
        b.add(dac_cost(12));
        b.add(mux_cost(5));
        let p: f64 = b.blocks().iter().map(|x| x.power.value()).sum();
        assert!((b.total_power().value() - p).abs() < 1e-15);
        assert!(b.total_area_mm2() > 0.1);
        let report = b.report();
        assert!(report.contains("TOTAL"));
        assert_eq!(report.lines().count(), 6);
    }

    #[test]
    fn mux_sharing_beats_replication() {
        // The platform argument: one shared chain + mux is cheaper than
        // five dedicated chains.
        let shared: CostBudget = [
            potentiostat_cost(),
            tia_cost(Hertz::from_kilohertz(1.0)),
            adc_cost(12, Hertz::new(100.0)),
            dac_cost(12),
            mux_cost(5),
        ]
        .into_iter()
        .collect();
        let mut dedicated = CostBudget::new();
        for _ in 0..5 {
            dedicated.add(potentiostat_cost());
            dedicated.add(tia_cost(Hertz::from_kilohertz(1.0)));
            dedicated.add(adc_cost(12, Hertz::new(100.0)));
            dedicated.add(dac_cost(12));
        }
        assert!(shared.total_power().value() < dedicated.total_power().value() / 3.0);
        assert!(shared.total_area_mm2() < dedicated.total_area_mm2() / 3.0);
    }

    #[test]
    fn collection_traits() {
        let blocks = vec![potentiostat_cost(), chopper_cost()];
        let b: CostBudget = blocks.clone().into_iter().collect();
        assert_eq!(b.blocks().len(), 2);
        let mut b2 = CostBudget::new();
        b2.extend(blocks);
        assert_eq!(b2.blocks().len(), 2);
    }

    #[test]
    fn micro_watt_regime() {
        // The whole single-channel chain stays well under a milliwatt —
        // consistent with implantable-sensor budgets the paper cites.
        let b: CostBudget = [
            potentiostat_cost(),
            tia_cost(Hertz::from_kilohertz(1.0)),
            adc_cost(12, Hertz::new(100.0)),
            dac_cost(12),
        ]
        .into_iter()
        .collect();
        assert!(b.total_power().value() < 1e-3);
    }
}
