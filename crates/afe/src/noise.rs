//! Input-referred noise models: white (thermal/shot), flicker (1/f) and
//! low-frequency drift.
//!
//! The paper's §II-C singles out the flicker component — "particular care
//! has to be taken for the Flicker (or 1/f) noise component, which can be
//! reduced by techniques such as chopping and Correlated Double Sampling" —
//! so the model keeps the three components separate and lets the chopper
//! and CDS blocks act on them individually.

use bios_units::{Amps, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of an input-referred current-noise source.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NoiseConfig {
    /// White noise density in A/√Hz (thermal + shot).
    pub white_density: f64,
    /// Flicker noise density at 1 Hz in A/√Hz; PSD ∝ 1/f below the corner.
    pub flicker_density_1hz: f64,
    /// Drift random-walk coefficient in A/√s (electrode fouling, reference
    /// drift — the slow component CDS removes).
    pub drift_per_sqrt_s: f64,
}

impl NoiseConfig {
    /// A noiseless configuration (for deterministic tests).
    pub const NONE: NoiseConfig = NoiseConfig {
        white_density: 0.0,
        flicker_density_1hz: 0.0,
        drift_per_sqrt_s: 0.0,
    };

    /// A typical CMOS potentiostat front-end: ~50 fA/√Hz white,
    /// ~2 pA/√Hz flicker at 1 Hz, ~1 pA/√s drift.
    pub fn typical_cmos() -> Self {
        Self {
            white_density: 50e-15,
            flicker_density_1hz: 2e-12,
            drift_per_sqrt_s: 1e-12,
        }
    }

    /// Applies ideal chopper stabilization: the signal is modulated above
    /// the 1/f corner before amplification, suppressing flicker by
    /// `suppression` (typically 50×) at the cost of √2 more white noise
    /// (ripple folding).
    pub fn chopped(self, suppression: f64) -> Self {
        Self {
            white_density: self.white_density * core::f64::consts::SQRT_2,
            flicker_density_1hz: self.flicker_density_1hz / suppression.max(1.0),
            drift_per_sqrt_s: self.drift_per_sqrt_s / suppression.max(1.0),
        }
    }
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self::typical_cmos()
    }
}

/// A streaming noise sample generator (seeded, reproducible).
///
/// Flicker noise uses the Voss–McCartney octave-bank algorithm: `N` random
/// sources, source `k` refreshed every `2^k` samples, summed — the classic
/// O(1)-per-sample pink-noise generator.
///
/// # Example
///
/// ```
/// use bios_afe::{NoiseConfig, NoiseSource};
/// use bios_units::Seconds;
///
/// let mut n = NoiseSource::new(NoiseConfig::typical_cmos(), 42);
/// let sample = n.sample(Seconds::from_millis(10.0));
/// assert!(sample.value().abs() < 1e-6); // noise, not signal
/// ```
#[derive(Debug, Clone)]
pub struct NoiseSource {
    config: NoiseConfig,
    rng: StdRng,
    // Voss–McCartney state.
    rows: [f64; 16],
    counter: u64,
    drift: f64,
}

impl NoiseSource {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: NoiseConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = [0.0; 16];
        for r in &mut rows {
            *r = rng.gen_range(-1.0..1.0);
        }
        Self {
            config,
            rng,
            rows,
            counter: 0,
            drift: 0.0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> NoiseConfig {
        self.config
    }

    /// Draws the next input-referred noise current for a sample of duration
    /// `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn sample(&mut self, dt: Seconds) -> Amps {
        assert!(dt.value() > 0.0, "sample interval must be positive");
        let bandwidth = 0.5 / dt.value(); // Nyquist bandwidth of the sample
        let white_sd = self.config.white_density * bandwidth.sqrt();
        let white = self.gaussian() * white_sd;

        // Pink noise: refresh row k every 2^k samples.
        self.counter = self.counter.wrapping_add(1);
        let flips = self.counter.trailing_zeros().min(15);
        let idx = flips as usize;
        self.rows[idx] = self.rng.gen_range(-1.0..1.0);
        let pink_raw: f64 = self.rows.iter().sum::<f64>() / (16f64).sqrt();
        // Scale so the density near 1 Hz matches the configured value for
        // this sample rate (empirical Voss–McCartney normalization).
        let pink = pink_raw * self.config.flicker_density_1hz * (bandwidth.ln().max(1.0)).sqrt();

        // Random-walk drift.
        self.drift += self.gaussian() * self.config.drift_per_sqrt_s * dt.value().sqrt();

        Amps::new(white + pink + self.drift)
    }

    /// The accumulated drift component alone (shared between matched
    /// channels; the CDS model subtracts it).
    pub fn drift(&self) -> Amps {
        Amps::new(self.drift)
    }

    /// Resets the drift walk (e.g. after an electrode refresh).
    pub fn reset_drift(&mut self) {
        self.drift = 0.0;
    }

    fn gaussian(&mut self) -> f64 {
        // Box–Muller.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd(samples: &[f64]) -> f64 {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64).sqrt()
    }

    #[test]
    fn zero_config_is_silent() {
        let mut n = NoiseSource::new(NoiseConfig::NONE, 1);
        for _ in 0..100 {
            assert_eq!(n.sample(Seconds::from_millis(1.0)).value(), 0.0);
        }
    }

    #[test]
    fn same_seed_reproduces() {
        let mut a = NoiseSource::new(NoiseConfig::typical_cmos(), 7);
        let mut b = NoiseSource::new(NoiseConfig::typical_cmos(), 7);
        for _ in 0..50 {
            assert_eq!(
                a.sample(Seconds::from_millis(5.0)).value(),
                b.sample(Seconds::from_millis(5.0)).value()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseSource::new(NoiseConfig::typical_cmos(), 1);
        let mut b = NoiseSource::new(NoiseConfig::typical_cmos(), 2);
        let same = (0..20).all(|_| {
            a.sample(Seconds::from_millis(5.0)).value()
                == b.sample(Seconds::from_millis(5.0)).value()
        });
        assert!(!same);
    }

    #[test]
    fn white_noise_sd_scales_with_bandwidth() {
        let cfg = NoiseConfig {
            white_density: 1e-12,
            flicker_density_1hz: 0.0,
            drift_per_sqrt_s: 0.0,
        };
        let collect = |dt_s: f64, seed: u64| {
            let mut n = NoiseSource::new(cfg, seed);
            (0..4000)
                .map(|_| n.sample(Seconds::new(dt_s)).value())
                .collect::<Vec<_>>()
        };
        let fast = sd(&collect(1e-4, 3)); // 5 kHz bandwidth
        let slow = sd(&collect(1e-2, 4)); // 50 Hz bandwidth
        let ratio = fast / slow;
        assert!((ratio - 10.0).abs() < 1.5, "ratio {ratio}");
    }

    #[test]
    fn chopping_suppresses_flicker_and_drift() {
        let cfg = NoiseConfig::typical_cmos();
        let chopped = cfg.chopped(50.0);
        assert!(chopped.flicker_density_1hz < cfg.flicker_density_1hz / 40.0);
        assert!(chopped.drift_per_sqrt_s < cfg.drift_per_sqrt_s / 40.0);
        assert!(chopped.white_density > cfg.white_density);
    }

    #[test]
    fn flicker_dominates_at_slow_sampling() {
        // Biosensing samples slowly (paper: signals take ~30 s), exactly the
        // regime where 1/f dwarfs white noise.
        let cfg = NoiseConfig::typical_cmos();
        let mut n = NoiseSource::new(
            NoiseConfig {
                drift_per_sqrt_s: 0.0,
                ..cfg
            },
            11,
        );
        let samples: Vec<f64> = (0..2000)
            .map(|_| n.sample(Seconds::from_millis(100.0)).value())
            .collect();
        let total_sd = sd(&samples);
        let white_only_sd = cfg.white_density * (0.5f64 / 0.1).sqrt();
        assert!(
            total_sd > 5.0 * white_only_sd,
            "flicker must dominate: {total_sd} vs white {white_only_sd}"
        );
    }

    #[test]
    fn drift_accumulates_and_resets() {
        let cfg = NoiseConfig {
            white_density: 0.0,
            flicker_density_1hz: 0.0,
            drift_per_sqrt_s: 1e-12,
        };
        let mut n = NoiseSource::new(cfg, 5);
        for _ in 0..1000 {
            let _ = n.sample(Seconds::new(1.0));
        }
        assert!(n.drift().value().abs() > 0.0);
        n.reset_drift();
        assert_eq!(n.drift().value(), 0.0);
    }
}
