//! Analog multiplexer: shares one readout chain across several working
//! electrodes (paper §II-C and §III — "a multiplexer, which switches
//! sequentially among the different working electrodes").

use crate::error::AfeError;
use bios_units::{Amps, Coulombs, Seconds};

/// An analog mux with switching time, settling and charge injection.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnalogMux {
    channels: usize,
    switch_time: Seconds,
    settle_tau: Seconds,
    charge_injection: Coulombs,
}

impl AnalogMux {
    /// Creates a mux with `channels` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::InvalidParameter`] for zero channels or negative
    /// timing/charge parameters.
    pub fn new(
        channels: usize,
        switch_time: Seconds,
        settle_tau: Seconds,
        charge_injection: Coulombs,
    ) -> Result<Self, AfeError> {
        if channels == 0 {
            return Err(AfeError::invalid("channels", "must be at least 1"));
        }
        if switch_time.value() < 0.0 || settle_tau.value() < 0.0 {
            return Err(AfeError::invalid("timing", "must be non-negative"));
        }
        if charge_injection.value() < 0.0 {
            return Err(AfeError::invalid(
                "charge_injection",
                "must be non-negative",
            ));
        }
        Ok(Self {
            channels,
            switch_time,
            settle_tau,
            charge_injection,
        })
    }

    /// A typical integrated CMOS mux: 1 µs switch, 10 µs settle,
    /// 1 pC injection.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::InvalidParameter`] only for `channels == 0`.
    pub fn typical_cmos(channels: usize) -> Result<Self, AfeError> {
        Self::new(
            channels,
            Seconds::from_micros(1.0),
            Seconds::from_micros(10.0),
            Coulombs::new(1e-12),
        )
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Time to open one switch and close another.
    pub fn switch_time(&self) -> Seconds {
        self.switch_time
    }

    /// Settling time constant after a switch event.
    pub fn settle_tau(&self) -> Seconds {
        self.settle_tau
    }

    /// Validates a channel index.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::BadChannel`] for out-of-range indices.
    pub fn check_channel(&self, channel: usize) -> Result<(), AfeError> {
        if channel >= self.channels {
            return Err(AfeError::BadChannel {
                requested: channel,
                available: self.channels,
            });
        }
        Ok(())
    }

    /// Dead time before a channel's signal is trustworthy after switching:
    /// switch time + 5 settling constants.
    pub fn acquisition_delay(&self) -> Seconds {
        Seconds::new(self.switch_time.value() + 5.0 * self.settle_tau.value())
    }

    /// The transient artifact current a time `t` after a switch event:
    /// the injected charge discharging through the settle time constant.
    pub fn switching_artifact(&self, t: Seconds) -> Amps {
        // advdiag::allow(F1, exact sentinel: zero settle tau models an ideal switch with no artifact)
        if t.value() < 0.0 || self.settle_tau.value() == 0.0 {
            return Amps::ZERO;
        }
        let i0 = self.charge_injection.value() / self.settle_tau.value();
        Amps::new(i0 * (-t.value() / self.settle_tau.value()).exp())
    }

    /// Round-robin schedule: which channel is selected at time `t` when
    /// each channel is observed for `dwell` (plus switch time).
    ///
    /// # Panics
    ///
    /// Panics if `dwell` is not strictly positive.
    pub fn channel_at(&self, t: Seconds, dwell: Seconds) -> usize {
        assert!(dwell.value() > 0.0, "dwell must be positive");
        let slot = dwell.value() + self.switch_time.value();
        let idx = (t.value().max(0.0) / slot) as usize;
        idx % self.channels
    }

    /// Total time for one full scan of all channels at the given dwell.
    pub fn scan_period(&self, dwell: Seconds) -> Seconds {
        Seconds::new((dwell.value() + self.switch_time.value()) * self.channels as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux() -> AnalogMux {
        AnalogMux::typical_cmos(5).expect("valid")
    }

    #[test]
    fn construction_validates() {
        assert!(AnalogMux::typical_cmos(0).is_err());
        assert!(AnalogMux::new(1, Seconds::new(-1.0), Seconds::ZERO, Coulombs::ZERO).is_err());
    }

    #[test]
    fn channel_bounds_checked() {
        let m = mux();
        assert!(m.check_channel(4).is_ok());
        assert!(matches!(
            m.check_channel(5),
            Err(AfeError::BadChannel {
                requested: 5,
                available: 5
            })
        ));
    }

    #[test]
    fn round_robin_covers_all_channels() {
        let m = mux();
        let dwell = Seconds::new(60.0);
        let mut seen = std::collections::HashSet::new();
        for k in 0..5 {
            let t = Seconds::new(k as f64 * (60.0 + 1e-6) + 1.0);
            seen.insert(m.channel_at(t, dwell));
        }
        assert_eq!(seen.len(), 5);
        // Wraps around.
        assert_eq!(
            m.channel_at(Seconds::new(5.0 * (60.0 + 1e-6) + 1.0), dwell),
            0
        );
    }

    #[test]
    fn artifact_decays_below_resolution_after_delay() {
        let m = mux();
        // After the acquisition delay the artifact must be below the
        // paper's 10 nA oxidase resolution.
        let i = m.switching_artifact(m.acquisition_delay());
        assert!(i.as_nanoamps() < 10.0, "artifact {} nA", i.as_nanoamps());
        // At t = 0 the artifact is large (100 nA for 1 pC / 10 µs).
        assert!(m.switching_artifact(Seconds::ZERO).as_nanoamps() > 50.0);
    }

    #[test]
    fn scan_period_scales_with_channels() {
        let m5 = mux();
        let m10 = AnalogMux::typical_cmos(10).expect("valid");
        let dwell = Seconds::new(30.0);
        assert!(
            (m10.scan_period(dwell).value() / m5.scan_period(dwell).value() - 2.0).abs() < 1e-9
        );
    }

    #[test]
    fn acquisition_delay_is_microseconds() {
        // Mux overhead is negligible against 30 s measurements — the reason
        // sharing one readout across 5 WEs costs almost nothing in time.
        assert!(mux().acquisition_delay().value() < 1e-4);
    }
}
