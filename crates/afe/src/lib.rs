//! Behavioral analog front-end models for the `advdiag` biosensing
//! platform — the electronics half of the paper's Fig. 1 and Fig. 2.
//!
//! Blocks:
//!
//! * [`Potentiostat`] — the control loop holding the RE–WE potential,
//! * [`RandlesCell`] — the dummy cell used to exercise it,
//! * [`Tia`] — transimpedance current-to-voltage conversion,
//! * [`NoiseSource`] — white + flicker + drift input-referred noise,
//! * [`CorrelatedDoubleSampler`] — blank-electrode CDS (§II-C),
//! * chopper stabilization via [`NoiseConfig::chopped`],
//! * [`Adc`] / [`VoltageGenerator`] — data converters,
//! * [`AnalogMux`] — sharing one chain across working electrodes,
//! * [`CurrentRange`] — the paper's ±10 µA/10 nA and ±100 µA/100 nA classes,
//! * [`ReadoutChain`] — the composed Fig. 2 chain,
//! * [`FaultPlan`] — seeded electrode/mux/converter fault injection, and
//! * [`CostBudget`] — power/area cost models for design-space exploration.
//!
//! # Example: digitize a fake sensor current
//!
//! ```
//! use bios_afe::{ChainConfig, CurrentRange, ReadoutChain};
//! use bios_electrochem::PotentialProgram;
//! use bios_units::{Amps, Seconds, Volts};
//!
//! # fn main() -> Result<(), bios_afe::AfeError> {
//! let chain = ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase())?);
//! let hold = PotentialProgram::Hold {
//!     potential: Volts::from_millivolts(650.0),
//!     duration: Seconds::new(1.0),
//! };
//! let samples = chain.acquire(&hold, Seconds::from_millis(100.0), 7,
//!     |_t, _e| Amps::from_nanoamps(250.0), |_t, _e| Amps::ZERO)?;
//! assert!(samples.last().expect("nonempty").current.as_nanoamps() > 200.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod cds;
mod chain;
mod current_range;
mod error;
mod fault;
mod mux;
mod noise;
mod potentiostat;
mod power;
mod randles;
mod tia;
mod vgen;

pub use adc::Adc;
pub use cds::{CorrelatedDoubleSampler, MatchingQuality};
pub use chain::{ChainConfig, ReadoutChain, Sample, CHOPPER_SUPPRESSION};
pub use current_range::CurrentRange;
pub use error::AfeError;
pub use fault::{Fault, FaultKind, FaultPlan};
pub use mux::AnalogMux;
pub use noise::{NoiseConfig, NoiseSource};
pub use potentiostat::{Potentiostat, PotentiostatStream};
pub use power::{
    adc_cost, chopper_cost, dac_cost, mux_cost, potentiostat_cost, tia_cost, BlockCost, CostBudget,
};
pub use randles::RandlesCell;
pub use tia::{Tia, TiaStream};
pub use vgen::VoltageGenerator;
