//! Seeded fault injection for the readout chain.
//!
//! Real multi-electrode platforms fail in characteristic ways: working
//! electrodes detach or short, enzyme membranes foul progressively, the
//! reference electrode drifts, the analog mux sticks or couples switching
//! charge into neighbours, and the TIA/ADC saturate or drop codes. A
//! [`FaultPlan`] describes such faults — each with an onset time and a
//! severity in `[0, 1]` — per working electrode, and the chain applies
//! them *inside* [`acquire`](crate::ReadoutChain::acquire) so every
//! downstream layer sees exactly what a damaged front end would produce.
//!
//! Two invariants make the model usable for robustness benchmarks:
//!
//! * **Bit-reproducibility** — every stochastic choice derives from the
//!   plan seed and the sample index through a counter-based hash, never
//!   from shared-stream RNG state, so the same seed yields the same
//!   corrupted traces regardless of evaluation order.
//! * **Severity 0 is an exact no-op** — a fault with zero severity leaves
//!   every sample bit-identical to the fault-free chain, which pins down
//!   the no-op threshold for silent-corruption accounting.

use crate::error::AfeError;
use bios_units::{Amps, Seconds, Volts};

/// What kind of physical failure a fault models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum FaultKind {
    /// Working electrode losing contact: the faradaic current scales by
    /// `1 − severity` (fully open at severity 1, leaving only noise).
    ElectrodeOpen,
    /// Working electrode shorting toward a supply: a parasitic current of
    /// `severity × 10 ×` full scale is added, pinning the chain at a rail.
    ElectrodeShort,
    /// Progressive membrane fouling: sensitivity decays exponentially
    /// after onset with time constant `30 s ÷ severity`.
    Fouling,
    /// Reference-electrode drift: a slowly growing square-root-of-time
    /// offset current, reaching `severity ×` full scale after 100 s.
    ReferenceDrift,
    /// Analog mux stuck on a stale channel: from onset the chain replays
    /// the current sampled at onset instead of the live electrode.
    MuxStuck,
    /// Mux cross-talk: periodic charge-injection spikes of amplitude
    /// `severity ×` half full scale every second after onset.
    CrosstalkSpike,
    /// TIA output compliance collapsing: the available voltage swing
    /// shrinks by up to 90% at severity 1, clipping large signals.
    TiaSaturation,
    /// ADC stuck code: every ⌈1/severity⌉-th sample's code is replaced by
    /// a constant code derived from the plan seed.
    AdcStuckCode,
    /// Random transient spikes: each sample is hit with probability
    /// `severity ÷ 20` by a full-scale spike of hash-derived sign.
    TransientSpike,
    /// Sample dropouts: each sample is zeroed (code 0) with probability
    /// `severity ÷ 20`, as if the acquisition briefly lost the chain.
    Dropout,
}

impl FaultKind {
    /// All modeled kinds, in a stable order (used by sweep benches).
    pub const ALL: [FaultKind; 10] = [
        FaultKind::ElectrodeOpen,
        FaultKind::ElectrodeShort,
        FaultKind::Fouling,
        FaultKind::ReferenceDrift,
        FaultKind::MuxStuck,
        FaultKind::CrosstalkSpike,
        FaultKind::TiaSaturation,
        FaultKind::AdcStuckCode,
        FaultKind::TransientSpike,
        FaultKind::Dropout,
    ];

    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ElectrodeOpen => "electrode-open",
            FaultKind::ElectrodeShort => "electrode-short",
            FaultKind::Fouling => "fouling",
            FaultKind::ReferenceDrift => "reference-drift",
            FaultKind::MuxStuck => "mux-stuck",
            FaultKind::CrosstalkSpike => "crosstalk-spike",
            FaultKind::TiaSaturation => "tia-saturation",
            FaultKind::AdcStuckCode => "adc-stuck-code",
            FaultKind::TransientSpike => "transient-spike",
            FaultKind::Dropout => "dropout",
        }
    }
}

impl core::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One parameterized fault: a kind, when it starts, and how bad it is.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fault {
    /// The failure mechanism.
    pub kind: FaultKind,
    /// Time after which the fault is active.
    pub onset: Seconds,
    /// Severity in `[0, 1]`; 0 is an exact no-op, 1 the worst modeled case.
    pub severity: f64,
}

impl Fault {
    /// A fault active from `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::InvalidParameter`] for severity outside
    /// `[0, 1]` or NaN.
    pub fn immediate(kind: FaultKind, severity: f64) -> Result<Self, AfeError> {
        Self::new(kind, Seconds::ZERO, severity)
    }

    /// A fault activating at `onset`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::InvalidParameter`] for severity outside
    /// `[0, 1]`, NaN severity, or negative/non-finite onset.
    pub fn new(kind: FaultKind, onset: Seconds, severity: f64) -> Result<Self, AfeError> {
        if !(0.0..=1.0).contains(&severity) {
            return Err(AfeError::invalid("severity", "must lie in [0, 1]"));
        }
        if !onset.value().is_finite() || onset.value() < 0.0 {
            return Err(AfeError::invalid(
                "onset",
                "must be finite and non-negative",
            ));
        }
        Ok(Self {
            kind,
            onset,
            severity,
        })
    }

    fn active(&self, t: Seconds) -> bool {
        self.severity > 0.0 && t.value() >= self.onset.value()
    }
}

/// A seeded, per-electrode fault schedule for a whole platform.
///
/// # Example
///
/// ```
/// use bios_afe::{Fault, FaultKind, FaultPlan};
/// use bios_units::Seconds;
///
/// # fn main() -> Result<(), bios_afe::AfeError> {
/// let plan = FaultPlan::new(42)
///     .with_fault(0, Fault::immediate(FaultKind::Fouling, 0.5)?)
///     .with_fault(2, Fault::new(FaultKind::ElectrodeOpen, Seconds::new(30.0), 1.0)?);
/// assert_eq!(plan.faults_for(0).len(), 1);
/// assert!(plan.faults_for(1).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    seed: u64,
    entries: Vec<(usize, Fault)>,
}

impl FaultPlan {
    /// An empty plan whose stochastic faults derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            entries: Vec::new(),
        }
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a fault on working electrode `we`.
    pub fn with_fault(mut self, we: usize, fault: Fault) -> Self {
        self.entries.push((we, fault));
        self
    }

    /// All scheduled `(electrode, fault)` pairs.
    pub fn entries(&self) -> &[(usize, Fault)] {
        &self.entries
    }

    /// The faults scheduled on electrode `we`, in insertion order.
    pub fn faults_for(&self, we: usize) -> Vec<Fault> {
        self.entries
            .iter()
            .filter(|(w, _)| *w == we)
            .map(|(_, f)| *f)
            .collect()
    }

    /// A randomized plan: each of `working_electrodes` draws one fault
    /// with probability ½, of hash-derived kind, onset and severity. The
    /// same `(seed, working_electrodes)` always yields the same plan.
    pub fn randomized(seed: u64, working_electrodes: usize) -> Self {
        let mut plan = Self::new(seed);
        for we in 0..working_electrodes {
            let h = mix(seed, we as u64, 0xfa017);
            if h & 1 == 0 {
                continue;
            }
            let kind = FaultKind::ALL[((h >> 8) % FaultKind::ALL.len() as u64) as usize];
            let severity = 0.25 + 0.75 * unit_f64(mix(seed, we as u64, 0xfa018));
            let onset = Seconds::new(30.0 * unit_f64(mix(seed, we as u64, 0xfa019)));
            plan.entries.push((
                we,
                Fault {
                    kind,
                    onset,
                    severity,
                },
            ));
        }
        plan
    }

    /// The seed the chain on electrode `we` should use for hash-derived
    /// fault randomness.
    pub fn chain_seed(&self, we: usize) -> u64 {
        mix(self.seed, we as u64, 0xc4a1)
    }

    /// Composes two plans into one: entries concatenate (this plan's
    /// first, preserving per-electrode insertion order) and the combined
    /// seed mixes both, so a chaos harness layering server-level faults
    /// on top of a base AFE plan stays bit-reproducible. Composition with
    /// an empty `FaultPlan::new(0)` is *not* the identity — the seed
    /// still mixes — so compose once, deterministically, not
    /// conditionally.
    #[must_use]
    pub fn compose(mut self, other: FaultPlan) -> FaultPlan {
        self.seed = mix(self.seed, other.seed, 0xc0_50_5e);
        self.entries.extend(other.entries);
        self
    }
}

/// SplitMix64-style counter hash: all per-sample fault randomness flows
/// through this, keeping injection independent of evaluation order.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from a hash word.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Per-acquisition fault applicator, constructed by the chain at the top
/// of `acquire` and stepped once per sample.
#[derive(Debug, Clone)]
pub(crate) struct FaultRuntime {
    faults: Vec<Fault>,
    seed: u64,
    full_scale: Amps,
    /// `MuxStuck` sample-and-hold state.
    held: Option<Amps>,
}

impl FaultRuntime {
    pub(crate) fn new(faults: &[Fault], seed: u64, full_scale: Amps) -> Self {
        // Severity-0 faults are exact no-ops by contract, so drop them here
        // instead of re-testing them in every per-sample apply loop. This
        // also pins the contract down for `AdcStuckCode`, whose stride
        // formula degenerates at zero severity.
        Self {
            faults: faults
                .iter()
                .filter(|f| f.severity > 0.0)
                .copied()
                .collect(),
            seed,
            full_scale,
            held: None,
        }
    }

    /// Whether any fault can perturb anything at all.
    pub(crate) fn is_noop(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies current-domain faults (electrode, mux, drift, spikes).
    pub(crate) fn apply_current(&mut self, k: usize, t: Seconds, i: Amps) -> Amps {
        let fs = self.full_scale.value();
        let mut out = i.value();
        for f in &self.faults {
            if !f.active(t) {
                continue;
            }
            let dt = t.value() - f.onset.value();
            match f.kind {
                FaultKind::ElectrodeOpen => out *= 1.0 - f.severity,
                FaultKind::ElectrodeShort => out += f.severity * 10.0 * fs,
                FaultKind::Fouling => out *= (-f.severity * dt / 30.0).exp(),
                FaultKind::ReferenceDrift => out += f.severity * fs * (dt / 100.0).sqrt(),
                FaultKind::CrosstalkSpike => {
                    // Charge-injection spike at each whole second, decaying
                    // over ~50 ms.
                    let phase = dt - dt.floor();
                    out += f.severity * 0.5 * fs * (-phase / 0.05).exp();
                }
                FaultKind::TransientSpike => {
                    let h = mix(self.seed, k as u64, 0x59143);
                    if unit_f64(h) < f.severity / 20.0 {
                        let sign = if h & 4 == 0 { 1.0 } else { -1.0 };
                        out += sign * fs;
                    }
                }
                FaultKind::MuxStuck
                | FaultKind::TiaSaturation
                | FaultKind::AdcStuckCode
                | FaultKind::Dropout => {}
            }
        }
        // Mux stuck applies last: with probability `severity` the switch
        // fails to advance for a sample and the chain replays whatever it
        // captured at onset, including other faults' contributions. At
        // severity 1 the channel freezes outright. Stale samples replace —
        // rather than attenuate — the signal, the way a digital switch
        // actually fails, which also keeps the fault detectable from the
        // measurement alone.
        if let Some(f) = self
            .faults
            .iter()
            .find(|f| f.kind == FaultKind::MuxStuck && f.active(t))
        {
            match self.held {
                Some(h) => {
                    if f.severity >= 1.0 || unit_f64(mix(self.seed, k as u64, 0x5caf)) < f.severity
                    {
                        out = h.value();
                    }
                }
                None => self.held = Some(Amps::new(out)),
            }
        }
        Amps::new(out)
    }

    /// Applies voltage-domain faults (TIA compliance collapse).
    pub(crate) fn apply_voltage(&self, t: Seconds, v: Volts, rail: Volts) -> Volts {
        let mut out = v.value();
        for f in &self.faults {
            if f.kind == FaultKind::TiaSaturation && f.active(t) {
                let limit = rail.value() * (1.0 - 0.9 * f.severity);
                out = out.clamp(-limit, limit);
            }
        }
        Volts::new(out)
    }

    /// Applies code-domain faults (stuck codes, dropouts). Returns the
    /// possibly-replaced code.
    pub(crate) fn apply_code(&self, k: usize, t: Seconds, code: i32, max_code: i32) -> i32 {
        let mut out = code;
        for f in &self.faults {
            if !f.active(t) {
                continue;
            }
            match f.kind {
                FaultKind::AdcStuckCode => {
                    let stride = (1.0 / f.severity).ceil() as usize;
                    if k.is_multiple_of(stride) {
                        // A constant mid-range-ish code derived from the seed.
                        out = (mix(self.seed, 0, 0xadc) % (max_code as u64 + 1)) as i32;
                    }
                }
                FaultKind::Dropout
                    if unit_f64(mix(self.seed, k as u64, 0xd209)) < f.severity / 20.0 =>
                {
                    out = 0;
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_validated() {
        assert!(Fault::immediate(FaultKind::Fouling, 0.0).is_ok());
        assert!(Fault::immediate(FaultKind::Fouling, 1.0).is_ok());
        assert!(Fault::immediate(FaultKind::Fouling, -0.1).is_err());
        assert!(Fault::immediate(FaultKind::Fouling, 1.1).is_err());
        assert!(Fault::immediate(FaultKind::Fouling, f64::NAN).is_err());
        assert!(Fault::new(FaultKind::Fouling, Seconds::new(-1.0), 0.5).is_err());
    }

    #[test]
    fn randomized_plans_are_reproducible() {
        let a = FaultPlan::randomized(77, 8);
        let b = FaultPlan::randomized(77, 8);
        assert_eq!(a, b);
        let c = FaultPlan::randomized(78, 8);
        assert_ne!(a, c);
        for (_, f) in a.entries() {
            assert!((0.0..=1.0).contains(&f.severity));
            assert!(f.onset.value() >= 0.0);
        }
    }

    #[test]
    fn faults_for_filters_by_electrode() {
        let plan = FaultPlan::new(1)
            .with_fault(0, Fault::immediate(FaultKind::Fouling, 0.5).expect("fault"))
            .with_fault(2, Fault::immediate(FaultKind::Dropout, 0.3).expect("fault"))
            .with_fault(
                0,
                Fault::immediate(FaultKind::MuxStuck, 1.0).expect("fault"),
            );
        assert_eq!(plan.faults_for(0).len(), 2);
        assert_eq!(plan.faults_for(1).len(), 0);
        assert_eq!(plan.faults_for(2).len(), 1);
    }

    #[test]
    fn zero_severity_is_identity_everywhere() {
        let faults: Vec<Fault> = FaultKind::ALL
            .iter()
            .map(|&k| Fault::immediate(k, 0.0).expect("fault"))
            .collect();
        let mut rt = FaultRuntime::new(&faults, 99, Amps::from_microamps(1.0));
        assert!(rt.is_noop());
        for k in 0..50 {
            let t = Seconds::new(k as f64 * 0.1);
            let i = Amps::from_nanoamps(120.0 + k as f64);
            assert_eq!(rt.apply_current(k, t, i), i);
            let v = Volts::new(0.3);
            assert_eq!(rt.apply_voltage(t, v, Volts::new(1.65)), v);
            assert_eq!(rt.apply_code(k, t, 1234, 32767), 1234);
        }
    }

    #[test]
    fn open_kills_and_short_rails_the_current() {
        let fs = Amps::from_microamps(1.0);
        let open = [Fault::immediate(FaultKind::ElectrodeOpen, 1.0).expect("fault")];
        let mut rt = FaultRuntime::new(&open, 5, fs);
        let out = rt.apply_current(0, Seconds::new(1.0), Amps::from_nanoamps(300.0));
        assert_eq!(out, Amps::ZERO);

        let short = [Fault::immediate(FaultKind::ElectrodeShort, 1.0).expect("fault")];
        let mut rt = FaultRuntime::new(&short, 5, fs);
        let out = rt.apply_current(0, Seconds::new(1.0), Amps::ZERO);
        assert!(out.value() >= 10.0 * fs.value());
    }

    #[test]
    fn fouling_decays_progressively() {
        let faults = [Fault::immediate(FaultKind::Fouling, 1.0).expect("fault")];
        let mut rt = FaultRuntime::new(&faults, 5, Amps::from_microamps(1.0));
        let i = Amps::from_nanoamps(100.0);
        let early = rt.apply_current(0, Seconds::new(1.0), i).value();
        let late = rt.apply_current(100, Seconds::new(60.0), i).value();
        assert!(early > 0.9 * i.value());
        assert!(late < 0.2 * i.value());
        assert!(late > 0.0);
    }

    #[test]
    fn mux_stuck_replays_onset_value() {
        let faults = [Fault::new(FaultKind::MuxStuck, Seconds::new(1.0), 1.0).expect("fault")];
        let mut rt = FaultRuntime::new(&faults, 5, Amps::from_microamps(1.0));
        // Before onset: passthrough.
        let a = rt.apply_current(0, Seconds::new(0.5), Amps::from_nanoamps(100.0));
        assert_eq!(a, Amps::from_nanoamps(100.0));
        // At onset the value is captured...
        let b = rt.apply_current(1, Seconds::new(1.0), Amps::from_nanoamps(200.0));
        assert_eq!(b, Amps::from_nanoamps(200.0));
        // ...and replayed afterwards regardless of the live current.
        let c = rt.apply_current(2, Seconds::new(2.0), Amps::from_nanoamps(900.0));
        assert_eq!(c, Amps::from_nanoamps(200.0));
    }

    #[test]
    fn partial_mux_stuck_is_intermittent_not_attenuating() {
        let faults = [Fault::immediate(FaultKind::MuxStuck, 0.5).expect("fault")];
        let mut rt = FaultRuntime::new(&faults, 9, Amps::from_microamps(1.0));
        let held = rt.apply_current(0, Seconds::ZERO, Amps::from_nanoamps(10.0));
        assert_eq!(held, Amps::from_nanoamps(10.0));
        let live = Amps::from_nanoamps(500.0);
        let outs: Vec<f64> = (1..=400)
            .map(|k| {
                rt.apply_current(k, Seconds::new(k as f64 * 0.1), live)
                    .value()
            })
            .collect();
        // Every sample is either live or the held value — never a blend.
        for v in &outs {
            assert!(
                (v - 10e-9).abs() < 1e-15 || (v - 500e-9).abs() < 1e-15,
                "blended sample {v}"
            );
        }
        let stale = outs.iter().filter(|&&v| (v - 10e-9).abs() < 1e-15).count();
        let frac = stale as f64 / outs.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "stale fraction {frac}");
    }

    #[test]
    fn stuck_code_stride_matches_severity() {
        let faults = [Fault::immediate(FaultKind::AdcStuckCode, 0.25).expect("fault")];
        let rt = FaultRuntime::new(&faults, 5, Amps::from_microamps(1.0));
        let stuck: Vec<bool> = (0..12)
            .map(|k| rt.apply_code(k, Seconds::new(k as f64), 7, 32767) != 7)
            .collect();
        // Stride ⌈1/0.25⌉ = 4: samples 0, 4, 8 are replaced.
        assert_eq!(
            stuck,
            [true, false, false, false, true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn composed_plans_merge_entries_and_mix_seeds() {
        let base = FaultPlan::new(7)
            .with_fault(0, Fault::immediate(FaultKind::Fouling, 0.5).expect("fault"));
        let overlay = FaultPlan::new(11)
            .with_fault(0, Fault::immediate(FaultKind::Dropout, 0.3).expect("fault"));
        let composed = base.clone().compose(overlay.clone());
        assert_eq!(composed.faults_for(0).len(), 2);
        assert_ne!(composed.seed(), base.seed(), "seeds must mix");
        // Deterministic: composing the same plans yields the same plan.
        assert_eq!(composed, base.compose(overlay));
    }

    #[test]
    fn runtime_is_order_independent() {
        // Hash-based randomness: evaluating sample k alone gives the same
        // perturbation as evaluating it inside a sweep.
        let faults = [Fault::immediate(FaultKind::TransientSpike, 1.0).expect("fault")];
        let mut sweep = FaultRuntime::new(&faults, 13, Amps::from_microamps(1.0));
        let i = Amps::from_nanoamps(50.0);
        let full: Vec<f64> = (0..200)
            .map(|k| {
                sweep
                    .apply_current(k, Seconds::new(k as f64 * 0.1), i)
                    .value()
            })
            .collect();
        let mut solo = FaultRuntime::new(&faults, 13, Amps::from_microamps(1.0));
        let one = solo.apply_current(137, Seconds::new(13.7), i).value();
        assert_eq!(one, full[137]);
        // And severity 1 actually produces spikes somewhere.
        assert!(full.iter().any(|&v| (v - i.value()).abs() > 1e-9));
    }
}
