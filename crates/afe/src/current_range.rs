//! The paper's §II-C current readout requirements as typed range classes:
//! "±10 µA with 10 nA resolution for oxidases, and ±100 µA with 100 nA
//! resolution for CYP".

use bios_units::Amps;

/// A programmable current readout range.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CurrentRange {
    full_scale: Amps,
    resolution: Amps,
}

impl CurrentRange {
    /// The oxidase readout class: ±10 µA at 10 nA resolution.
    pub fn oxidase() -> Self {
        Self {
            full_scale: Amps::from_microamps(10.0),
            resolution: Amps::from_nanoamps(10.0),
        }
    }

    /// The cytochrome P450 readout class: ±100 µA at 100 nA resolution.
    pub fn cytochrome() -> Self {
        Self {
            full_scale: Amps::from_microamps(100.0),
            resolution: Amps::from_nanoamps(100.0),
        }
    }

    /// A custom range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < resolution < full_scale`.
    pub fn new(full_scale: Amps, resolution: Amps) -> Self {
        assert!(
            resolution.value() > 0.0 && resolution.value() < full_scale.value(),
            "need 0 < resolution < full_scale"
        );
        Self {
            full_scale,
            resolution,
        }
    }

    /// Full-scale magnitude (± this value).
    pub fn full_scale(&self) -> Amps {
        self.full_scale
    }

    /// Smallest distinguishable current step.
    pub fn resolution(&self) -> Amps {
        self.resolution
    }

    /// Whether a current fits inside the range.
    pub fn fits(&self, i: Amps) -> bool {
        i.value().abs() <= self.full_scale.value()
    }

    /// Number of ADC bits needed to cover ±full-scale at this resolution:
    /// `ceil(log2(2·FS/res))`.
    pub fn required_bits(&self) -> u8 {
        let codes = 2.0 * self.full_scale.value() / self.resolution.value();
        codes.log2().ceil() as u8
    }

    /// Dynamic range in dB: `20·log10(FS/res)`.
    pub fn dynamic_range_db(&self) -> f64 {
        20.0 * (self.full_scale.value() / self.resolution.value()).log10()
    }

    /// Scales both full scale and resolution by `factor` — the paper's
    /// range classes are specified for ≈1 cm² screen-printed electrodes;
    /// a platform using the 0.23 mm² biointerface WEs scales them by the
    /// area ratio so the dynamic range (and bit count) is preserved while
    /// the absolute currents match the smaller electrode.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        Self {
            full_scale: self.full_scale * factor,
            resolution: self.resolution * factor,
        }
    }

    /// Whether this range also covers `other` (both ends).
    pub fn covers(&self, other: &CurrentRange) -> bool {
        self.full_scale.value() >= other.full_scale.value()
            && self.resolution.value() <= other.resolution.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ranges() {
        let ox = CurrentRange::oxidase();
        assert_eq!(ox.full_scale(), Amps::from_microamps(10.0));
        assert_eq!(ox.resolution(), Amps::from_nanoamps(10.0));
        let cyp = CurrentRange::cytochrome();
        assert_eq!(cyp.full_scale(), Amps::from_microamps(100.0));
        assert_eq!(cyp.resolution(), Amps::from_nanoamps(100.0));
    }

    #[test]
    fn both_paper_ranges_need_11_bits() {
        // 2·10 µA/10 nA = 2000 codes → 11 bits; same for the CYP class.
        assert_eq!(CurrentRange::oxidase().required_bits(), 11);
        assert_eq!(CurrentRange::cytochrome().required_bits(), 11);
    }

    #[test]
    fn dynamic_range_is_60_db() {
        assert!((CurrentRange::oxidase().dynamic_range_db() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn fits_checks_both_signs() {
        let ox = CurrentRange::oxidase();
        assert!(ox.fits(Amps::from_microamps(9.9)));
        assert!(ox.fits(Amps::from_microamps(-9.9)));
        assert!(!ox.fits(Amps::from_microamps(10.1)));
    }

    #[test]
    fn neither_paper_range_covers_the_other() {
        // CYP has more full scale but coarser resolution: a real trade-off
        // the platform's range-switching handles.
        let ox = CurrentRange::oxidase();
        let cyp = CurrentRange::cytochrome();
        assert!(!cyp.covers(&ox));
        assert!(!ox.covers(&cyp));
        // A 100 µA / 10 nA range covers both (at a 14-bit cost).
        let wide = CurrentRange::new(Amps::from_microamps(100.0), Amps::from_nanoamps(10.0));
        assert!(wide.covers(&ox) && wide.covers(&cyp));
        assert_eq!(wide.required_bits(), 15);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn rejects_inverted_range() {
        let _ = CurrentRange::new(Amps::from_nanoamps(1.0), Amps::from_microamps(1.0));
    }
}
