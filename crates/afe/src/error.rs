//! Error type for the analog front-end models.

/// Errors produced while configuring or running AFE blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum AfeError {
    /// A circuit parameter was out of its valid domain.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The requested signal exceeded a block's compliance or full-scale
    /// range.
    RangeExceeded {
        /// Which block clipped.
        block: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A mux channel index was out of bounds.
    BadChannel {
        /// Requested channel.
        requested: usize,
        /// Number of channels available.
        available: usize,
    },
}

impl AfeError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl core::fmt::Display for AfeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            Self::RangeExceeded { block, detail } => {
                write!(f, "{block} range exceeded: {detail}")
            }
            Self::BadChannel {
                requested,
                available,
            } => write!(f, "mux channel {requested} out of range (have {available})"),
        }
    }
}

impl std::error::Error for AfeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            AfeError::invalid("bits", "too many").to_string(),
            "invalid parameter bits: too many"
        );
        let b = AfeError::BadChannel {
            requested: 7,
            available: 5,
        };
        assert!(b.to_string().contains('7'));
        assert!(b.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<AfeError>();
    }
}
