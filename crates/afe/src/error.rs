//! Error type for the analog front-end models.

use bios_units::ErrorSeverity;

/// Errors produced while configuring or running AFE blocks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AfeError {
    /// A circuit parameter was out of its valid domain.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The requested signal exceeded a block's compliance or full-scale
    /// range.
    RangeExceeded {
        /// Which block clipped.
        block: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A mux channel index was out of bounds.
    BadChannel {
        /// Requested channel.
        requested: usize,
        /// Number of channels available.
        available: usize,
    },
}

impl AfeError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }

    /// How badly this error compromises the acquisition.
    ///
    /// Configuration defects are [`ErrorSeverity::Fatal`] (retrying the
    /// same parameters cannot help); signal-range violations are
    /// [`ErrorSeverity::Degraded`] because a lower gain or a retry under
    /// different conditions can succeed.
    pub fn severity(&self) -> ErrorSeverity {
        match self {
            Self::InvalidParameter { .. } | Self::BadChannel { .. } => ErrorSeverity::Fatal,
            Self::RangeExceeded { .. } => ErrorSeverity::Degraded,
        }
    }

    /// Whether an automatic retry is worthwhile.
    pub fn is_recoverable(&self) -> bool {
        self.severity().is_recoverable()
    }
}

impl core::fmt::Display for AfeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            Self::RangeExceeded { block, detail } => {
                write!(f, "{block} range exceeded: {detail}")
            }
            Self::BadChannel {
                requested,
                available,
            } => write!(f, "mux channel {requested} out of range (have {available})"),
        }
    }
}

impl std::error::Error for AfeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            AfeError::invalid("bits", "too many").to_string(),
            "invalid parameter bits: too many"
        );
        let b = AfeError::BadChannel {
            requested: 7,
            available: 5,
        };
        assert!(b.to_string().contains('7'));
        assert!(b.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<AfeError>();
    }

    #[test]
    fn severity_taxonomy() {
        assert_eq!(
            AfeError::invalid("bits", "too many").severity(),
            ErrorSeverity::Fatal
        );
        assert!(!AfeError::invalid("bits", "too many").is_recoverable());
        let clipped = AfeError::RangeExceeded {
            block: "tia",
            detail: "rail".to_string(),
        };
        assert_eq!(clipped.severity(), ErrorSeverity::Degraded);
        assert!(clipped.is_recoverable());
    }
}
