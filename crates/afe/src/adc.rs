//! Analog-to-digital converter model: quantization, saturation, ENOB.

use crate::error::AfeError;
use bios_units::{Hertz, Volts};

/// A bipolar SAR-style ADC with full scale `±vref`.
///
/// # Example
///
/// ```
/// use bios_afe::Adc;
/// use bios_units::{Hertz, Volts};
///
/// # fn main() -> Result<(), bios_afe::AfeError> {
/// let adc = Adc::new(12, Volts::new(1.65), Hertz::new(100.0))?;
/// let code = adc.quantize(Volts::from_millivolts(100.0));
/// let back = adc.to_volts(code);
/// assert!((back.as_millivolts() - 100.0).abs() < adc.lsb().as_millivolts());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Adc {
    bits: u8,
    vref: Volts,
    sample_rate: Hertz,
}

impl Adc {
    /// Creates an ADC with `bits` of resolution over `±vref`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::InvalidParameter`] for `bits` outside 4–24 or
    /// non-positive `vref`/`sample_rate`.
    pub fn new(bits: u8, vref: Volts, sample_rate: Hertz) -> Result<Self, AfeError> {
        if !(4..=24).contains(&bits) {
            return Err(AfeError::invalid("bits", "must be between 4 and 24"));
        }
        if vref.value() <= 0.0 {
            return Err(AfeError::invalid("vref", "must be positive"));
        }
        if sample_rate.value() <= 0.0 {
            return Err(AfeError::invalid("sample_rate", "must be positive"));
        }
        Ok(Self {
            bits,
            vref,
            sample_rate,
        })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Full-scale magnitude.
    pub fn vref(&self) -> Volts {
        self.vref
    }

    /// Sample rate.
    pub fn sample_rate(&self) -> Hertz {
        self.sample_rate
    }

    /// One least-significant bit in volts: `2·vref/2^bits`.
    pub fn lsb(&self) -> Volts {
        Volts::new(2.0 * self.vref.value() / (1u64 << self.bits) as f64)
    }

    /// Quantizes a voltage to a signed code, clamped to the code range.
    pub fn quantize(&self, v: Volts) -> i32 {
        let half = (1i64 << (self.bits - 1)) as f64;
        let code = (v.value() / self.vref.value() * half).round();
        code.clamp(-half, half - 1.0) as i32
    }

    /// Converts a code back to its nominal voltage.
    pub fn to_volts(&self, code: i32) -> Volts {
        let half = (1i64 << (self.bits - 1)) as f64;
        Volts::new(code as f64 / half * self.vref.value())
    }

    /// Whether a voltage would clip.
    pub fn saturates(&self, v: Volts) -> bool {
        v.value().abs() >= self.vref.value()
    }

    /// Effective number of bits when the input carries Gaussian noise of
    /// standard deviation `noise_sd`: quantization and noise powers add.
    pub fn enob(&self, noise_sd: Volts) -> f64 {
        let q = self.lsb().value() / 12f64.sqrt(); // quantization noise RMS
        let total = (q * q + noise_sd.value().powi(2)).sqrt();
        let full_scale_rms = self.vref.value() / 2f64.sqrt();
        ((full_scale_rms / total).log2() - 0.29).max(0.0) // SINAD formula rearranged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adc() -> Adc {
        Adc::new(12, Volts::new(1.65), Hertz::new(100.0)).expect("valid")
    }

    #[test]
    fn construction_validates() {
        assert!(Adc::new(2, Volts::new(1.0), Hertz::new(1.0)).is_err());
        assert!(Adc::new(32, Volts::new(1.0), Hertz::new(1.0)).is_err());
        assert!(Adc::new(12, Volts::ZERO, Hertz::new(1.0)).is_err());
        assert!(Adc::new(12, Volts::new(1.0), Hertz::ZERO).is_err());
    }

    #[test]
    fn lsb_halves_per_bit() {
        let a12 = adc();
        let a13 = Adc::new(13, Volts::new(1.65), Hertz::new(100.0)).expect("valid");
        assert!((a12.lsb().value() / a13.lsb().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantize_round_trips_within_one_lsb() {
        let a = adc();
        for mv in [-1600.0, -3.3, 0.0, 0.4, 123.4, 1500.0] {
            let v = Volts::from_millivolts(mv);
            let back = a.to_volts(a.quantize(v));
            assert!(
                (back.value() - v.value()).abs() <= a.lsb().value(),
                "{mv} mV"
            );
        }
    }

    #[test]
    fn saturation_clamps_codes() {
        let a = adc();
        let top = a.quantize(Volts::new(10.0));
        let bottom = a.quantize(Volts::new(-10.0));
        assert_eq!(top, 2047);
        assert_eq!(bottom, -2048);
        assert!(a.saturates(Volts::new(1.7)));
        assert!(!a.saturates(Volts::new(1.0)));
    }

    #[test]
    fn enob_degrades_with_noise() {
        let a = adc();
        let clean = a.enob(Volts::ZERO);
        assert!(clean > 11.0 && clean <= 12.1, "clean enob {clean}");
        let noisy = a.enob(Volts::from_millivolts(5.0));
        assert!(noisy < clean - 2.0, "noisy enob {noisy}");
    }

    #[test]
    fn zero_maps_to_zero() {
        let a = adc();
        assert_eq!(a.quantize(Volts::ZERO), 0);
        assert_eq!(a.to_volts(0), Volts::ZERO);
    }
}
