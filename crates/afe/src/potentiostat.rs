//! The potentiostat control loop of Fig. 1: keeps the RE–WE potential at
//! the programmed value while the CE supplies the cell current.

use crate::error::AfeError;
use bios_units::{Amps, Hertz, Ohms, Seconds, Volts};

/// A behavioral potentiostat: finite-gain control amplifier with a
/// gain–bandwidth product and counter-electrode compliance limits.
///
/// # Example
///
/// ```
/// use bios_afe::Potentiostat;
/// use bios_units::{Amps, Volts};
///
/// # fn main() -> Result<(), bios_afe::AfeError> {
/// let pstat = Potentiostat::typical_cmos()?;
/// // Static control error at 650 mV setpoint is sub-µV for 10⁵ gain.
/// let err = pstat.static_error(Volts::from_millivolts(650.0));
/// assert!(err.as_microvolts().abs() < 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Potentiostat {
    open_loop_gain: f64,
    gain_bandwidth: Hertz,
    compliance: Volts,
    output_resistance: Ohms,
}

impl Potentiostat {
    /// Creates a potentiostat from its amplifier characteristics.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::InvalidParameter`] for non-positive gain,
    /// gain–bandwidth, compliance or negative output resistance.
    pub fn new(
        open_loop_gain: f64,
        gain_bandwidth: Hertz,
        compliance: Volts,
        output_resistance: Ohms,
    ) -> Result<Self, AfeError> {
        if open_loop_gain <= 1.0 || !open_loop_gain.is_finite() {
            return Err(AfeError::invalid("open_loop_gain", "must exceed 1"));
        }
        if gain_bandwidth.value() <= 0.0 {
            return Err(AfeError::invalid("gain_bandwidth", "must be positive"));
        }
        if compliance.value() <= 0.0 {
            return Err(AfeError::invalid("compliance", "must be positive"));
        }
        if output_resistance.value() < 0.0 {
            return Err(AfeError::invalid(
                "output_resistance",
                "must be non-negative",
            ));
        }
        Ok(Self {
            open_loop_gain,
            gain_bandwidth,
            compliance,
            output_resistance,
        })
    }

    /// A typical integrated CMOS control amplifier: 100 dB gain, 1 MHz GBW,
    /// ±1.5 V compliance, 100 Ω output resistance.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` keeps the constructor
    /// signature uniform.
    pub fn typical_cmos() -> Result<Self, AfeError> {
        Self::new(
            1e5,
            Hertz::from_megahertz(1.0),
            Volts::new(1.5),
            Ohms::new(100.0),
        )
    }

    /// Open-loop DC gain.
    pub fn open_loop_gain(&self) -> f64 {
        self.open_loop_gain
    }

    /// Gain–bandwidth product.
    pub fn gain_bandwidth(&self) -> Hertz {
        self.gain_bandwidth
    }

    /// Counter-electrode voltage compliance (± this value).
    pub fn compliance(&self) -> Volts {
        self.compliance
    }

    /// The actually-applied RE–WE potential for a setpoint, from the finite
    /// loop gain: `E = E_set·A/(1+A)`.
    pub fn applied(&self, setpoint: Volts) -> Volts {
        setpoint * (self.open_loop_gain / (1.0 + self.open_loop_gain))
    }

    /// Static control error `E_set − E` (positive means under-drive).
    pub fn static_error(&self, setpoint: Volts) -> Volts {
        setpoint - self.applied(setpoint)
    }

    /// Closed-loop small-signal settling time constant (unity feedback):
    /// `τ = 1/(2π·GBW)`.
    pub fn settling_tau(&self) -> Seconds {
        Seconds::new(1.0 / (2.0 * core::f64::consts::PI * self.gain_bandwidth.value()))
    }

    /// Checks that the counter electrode can drive `cell_current` through a
    /// cell of total impedance `cell_resistance` while holding `setpoint`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::RangeExceeded`] when the required CE voltage
    /// exceeds the compliance.
    pub fn check_compliance(
        &self,
        setpoint: Volts,
        cell_current: Amps,
        cell_resistance: Ohms,
    ) -> Result<(), AfeError> {
        let ce_voltage = setpoint.value().abs()
            + cell_current.value().abs()
                * (cell_resistance.value() + self.output_resistance.value());
        if ce_voltage > self.compliance.value() {
            return Err(AfeError::RangeExceeded {
                block: "potentiostat",
                detail: format!(
                    "counter electrode needs {:.3} V but compliance is {:.3} V",
                    ce_voltage,
                    self.compliance.value()
                ),
            });
        }
        Ok(())
    }

    /// Creates a streaming state that tracks the setpoint with the loop's
    /// dynamics.
    pub fn streamer(&self, initial: Volts) -> PotentiostatStream {
        PotentiostatStream {
            pstat: *self,
            state: initial.value(),
        }
    }
}

/// Streaming potentiostat state: the applied potential follows the setpoint
/// through the closed-loop pole.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PotentiostatStream {
    pstat: Potentiostat,
    state: f64,
}

impl PotentiostatStream {
    /// Advances one step of length `dt` toward `setpoint`, returning the
    /// applied RE–WE potential.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn step(&mut self, setpoint: Volts, dt: Seconds) -> Volts {
        assert!(dt.value() > 0.0, "time step must be positive");
        let target = self.pstat.applied(setpoint).value();
        let tau = self.pstat.settling_tau().value();
        let alpha = 1.0 - (-dt.value() / tau).exp();
        self.state += alpha * (target - self.state);
        Volts::new(self.state)
    }

    /// The presently applied potential.
    pub fn applied(&self) -> Volts {
        Volts::new(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(
            Potentiostat::new(0.5, Hertz::new(1e6), Volts::new(1.5), Ohms::new(100.0)).is_err()
        );
        assert!(Potentiostat::new(1e5, Hertz::ZERO, Volts::new(1.5), Ohms::new(100.0)).is_err());
        assert!(Potentiostat::new(1e5, Hertz::new(1e6), Volts::ZERO, Ohms::new(100.0)).is_err());
        assert!(Potentiostat::new(1e5, Hertz::new(1e6), Volts::new(1.5), Ohms::new(-1.0)).is_err());
    }

    #[test]
    fn static_error_scales_inversely_with_gain() {
        let lo = Potentiostat::new(1e3, Hertz::new(1e6), Volts::new(1.5), Ohms::new(100.0))
            .expect("valid");
        let hi = Potentiostat::new(1e6, Hertz::new(1e6), Volts::new(1.5), Ohms::new(100.0))
            .expect("valid");
        let set = Volts::from_millivolts(650.0);
        let r = lo.static_error(set).value() / hi.static_error(set).value();
        assert!((r - 1000.0).abs() / 1000.0 < 0.01, "r = {r}");
    }

    #[test]
    fn compliance_check() {
        let p = Potentiostat::typical_cmos().expect("valid");
        // 1 µA through 10 kΩ at 650 mV: fine.
        assert!(p
            .check_compliance(
                Volts::from_millivolts(650.0),
                Amps::from_microamps(1.0),
                Ohms::from_kiloohms(10.0)
            )
            .is_ok());
        // 100 µA through 100 kΩ: needs 10+ V.
        assert!(p
            .check_compliance(
                Volts::from_millivolts(650.0),
                Amps::from_microamps(100.0),
                Ohms::from_kiloohms(100.0)
            )
            .is_err());
    }

    #[test]
    fn stream_settles_within_five_tau() {
        let p = Potentiostat::typical_cmos().expect("valid");
        let mut s = p.streamer(Volts::ZERO);
        let tau = p.settling_tau().value();
        let dt = Seconds::new(tau / 20.0);
        let set = Volts::from_millivolts(650.0);
        let steps = 100; // 5 tau
        let mut v = Volts::ZERO;
        for _ in 0..steps {
            v = s.step(set, dt);
        }
        assert!((v.value() - p.applied(set).value()).abs() < 0.01 * set.value());
    }

    #[test]
    fn settling_is_microseconds_for_mhz_gbw() {
        let p = Potentiostat::typical_cmos().expect("valid");
        // τ = 1/(2π·1 MHz) ≈ 0.16 µs — negligible next to 30 s biology,
        // confirming the paper's note that readout does not limit response.
        assert!(p.settling_tau().as_micros() < 1.0);
    }
}
