//! The voltage generator of §II-C: "generates a fixed or variable voltage to
//! feed the potentiostat circuit" — a DAC with quantization and slew limits.

use crate::error::AfeError;
use bios_electrochem::PotentialProgram;
use bios_units::{QRange, Seconds, Volts, VoltsPerSecond};

/// A DAC-based waveform generator.
///
/// # Example
///
/// ```
/// use bios_afe::VoltageGenerator;
/// use bios_electrochem::PotentialProgram;
/// use bios_units::{QRange, Seconds, Volts, VoltsPerSecond};
///
/// # fn main() -> Result<(), bios_afe::AfeError> {
/// let vgen = VoltageGenerator::new(
///     12,
///     QRange::new(Volts::new(-1.0), Volts::new(1.0)).expect("valid range"),
///     VoltsPerSecond::new(1.0),
/// )?;
/// let program = PotentialProgram::Hold {
///     potential: Volts::from_millivolts(650.0),
///     duration: Seconds::new(10.0),
/// };
/// let e = vgen.realize(&program, Seconds::new(5.0))?;
/// // Quantized to within one DAC LSB (≈0.49 mV here).
/// assert!((e.as_millivolts() - 650.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VoltageGenerator {
    bits: u8,
    range: QRange<Volts>,
    max_slew: VoltsPerSecond,
}

impl VoltageGenerator {
    /// Creates a generator with `bits` of DAC resolution over `range`,
    /// slew-limited to `max_slew`.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::InvalidParameter`] for out-of-range bits,
    /// a zero-width range or non-positive slew.
    pub fn new(bits: u8, range: QRange<Volts>, max_slew: VoltsPerSecond) -> Result<Self, AfeError> {
        if !(4..=20).contains(&bits) {
            return Err(AfeError::invalid("bits", "must be between 4 and 20"));
        }
        if range.width() <= 0.0 {
            return Err(AfeError::invalid("range", "must have positive width"));
        }
        if max_slew.value() <= 0.0 {
            return Err(AfeError::invalid("max_slew", "must be positive"));
        }
        Ok(Self {
            bits,
            range,
            max_slew,
        })
    }

    /// A generator covering both the paper's techniques: ±1 V around
    /// Ag/AgCl at 12 bits, 1 V/s slew.
    ///
    /// # Errors
    ///
    /// Never fails for these constants.
    pub fn paper_default() -> Result<Self, AfeError> {
        Self::new(
            12,
            QRange::between(Volts::new(-1.0), Volts::new(1.0)),
            VoltsPerSecond::new(1.0),
        )
    }

    /// DAC resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Output range.
    pub fn range(&self) -> QRange<Volts> {
        self.range
    }

    /// One DAC step.
    pub fn lsb(&self) -> Volts {
        Volts::new(self.range.width() / ((1u64 << self.bits) - 1) as f64)
    }

    /// Checks a program fits this generator (range and slew).
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::RangeExceeded`] when the program leaves the DAC
    /// range or sweeps faster than the slew limit. Instantaneous steps are
    /// allowed: they realize at the slew rate (checked against the
    /// chronoamperometry settling budget by the caller).
    pub fn check(&self, program: &PotentialProgram) -> Result<(), AfeError> {
        let dur = program.duration();
        let n = 256;
        for k in 0..=n {
            let t = Seconds::new(dur.value() * k as f64 / n as f64);
            let e = program.potential_at(t);
            if !self.range.contains(e) {
                return Err(AfeError::RangeExceeded {
                    block: "voltage generator",
                    detail: format!("program reaches {e} outside the DAC range"),
                });
            }
        }
        let slew = program.max_slew();
        if slew.value().is_finite() && slew.value() > self.max_slew.value() {
            return Err(AfeError::RangeExceeded {
                block: "voltage generator",
                detail: format!("program sweeps at {slew}, above the slew limit"),
            });
        }
        Ok(())
    }

    /// The DAC-quantized potential the generator actually outputs at time
    /// `t` of the program.
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::RangeExceeded`] if the ideal potential leaves
    /// the range.
    pub fn realize(&self, program: &PotentialProgram, t: Seconds) -> Result<Volts, AfeError> {
        let ideal = program.potential_at(t);
        if !self.range.contains(ideal) {
            return Err(AfeError::RangeExceeded {
                block: "voltage generator",
                detail: format!("requested {ideal} outside the DAC range"),
            });
        }
        Ok(self.quantize(ideal))
    }

    /// Quantizes a potential to the nearest DAC level (clamped to range).
    pub fn quantize(&self, v: Volts) -> Volts {
        let clamped = self.range.clamp(v);
        let lsb = self.lsb().value();
        let steps = ((clamped.value() - self.range.lo().value()) / lsb).round();
        Volts::new(self.range.lo().value() + steps * lsb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgen() -> VoltageGenerator {
        VoltageGenerator::paper_default().expect("valid")
    }

    #[test]
    fn construction_validates() {
        let r = QRange::new(Volts::new(-1.0), Volts::new(1.0)).expect("range");
        assert!(VoltageGenerator::new(2, r, VoltsPerSecond::new(1.0)).is_err());
        assert!(VoltageGenerator::new(12, r, VoltsPerSecond::ZERO).is_err());
        let degenerate = QRange::new(Volts::ZERO, Volts::ZERO).expect("range");
        assert!(VoltageGenerator::new(12, degenerate, VoltsPerSecond::new(1.0)).is_err());
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let g = vgen();
        for mv in [-999.0, -650.0, -41.0, -19.0, 0.0, 550.0, 650.0, 700.0] {
            let v = Volts::from_millivolts(mv);
            let q = g.quantize(v);
            assert!(
                (q.value() - v.value()).abs() <= g.lsb().value() / 2.0 + 1e-12,
                "{mv} mV"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_programs() {
        let g = vgen();
        let bad = PotentialProgram::Hold {
            potential: Volts::new(1.5),
            duration: Seconds::new(1.0),
        };
        assert!(g.check(&bad).is_err());
        assert!(g.realize(&bad, Seconds::ZERO).is_err());
    }

    #[test]
    fn rejects_excess_slew() {
        let g = vgen();
        let too_fast = PotentialProgram::LinearSweep {
            from: Volts::new(-0.8),
            to: Volts::new(0.8),
            rate: VoltsPerSecond::new(5.0),
        };
        assert!(g.check(&too_fast).is_err());
        // 20 mV/s CV is fine.
        let cv = PotentialProgram::cyclic_single(
            Volts::new(0.1),
            Volts::new(-0.8),
            VoltsPerSecond::from_millivolts_per_second(20.0),
        );
        assert!(g.check(&cv).is_ok());
    }

    #[test]
    fn staircase_effect_of_dac_on_sweep() {
        // A DAC-realized sweep is a staircase: consecutive realizations
        // differ by integer LSBs.
        let g = vgen();
        let cv = PotentialProgram::cyclic_single(
            Volts::new(0.0),
            Volts::new(-0.5),
            VoltsPerSecond::from_millivolts_per_second(20.0),
        );
        let lsb = g.lsb().value();
        let mut prev = g.realize(&cv, Seconds::ZERO).expect("in range");
        for k in 1..100 {
            let e = g
                .realize(&cv, Seconds::new(k as f64 * 0.01))
                .expect("in range");
            let steps = (e.value() - prev.value()) / lsb;
            assert!((steps - steps.round()).abs() < 1e-6, "non-integer LSB step");
            prev = e;
        }
    }

    #[test]
    fn twelve_bit_lsb_below_one_mv() {
        // 2 V span / 4095 ≈ 0.49 mV: fine-grained enough that the paper's
        // 19 mV-apart CYP2C9 peaks stay distinguishable after quantization.
        assert!(vgen().lsb().as_millivolts() < 1.0);
    }
}
