//! Randles equivalent circuit — the standard dummy cell used to exercise
//! potentiostat + TIA hardware (experiment F1).
//!
//! Topology: solution resistance `R_s` in series with the parallel pair of
//! double-layer capacitance `C_dl` and charge-transfer resistance `R_ct`.

use crate::error::AfeError;
use bios_units::{Amps, Farads, Hertz, Ohms, Seconds, Volts};

/// A Randles dummy cell with exact discrete-time stepping.
///
/// # Example
///
/// ```
/// use bios_afe::RandlesCell;
/// use bios_units::{Farads, Ohms, Seconds, Volts};
///
/// # fn main() -> Result<(), bios_afe::AfeError> {
/// let mut cell = RandlesCell::new(
///     Ohms::new(100.0),
///     Ohms::from_kiloohms(100.0),
///     Farads::from_nanofarads(46.0),
/// )?;
/// // Apply a 100 mV step: the initial current is E/Rs, decaying toward
/// // E/(Rs + Rct).
/// let i0 = cell.step(Volts::from_millivolts(100.0), Seconds::from_micros(0.1));
/// assert!(i0.as_microamps() > 900.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandlesCell {
    rs: Ohms,
    rct: Ohms,
    cdl: Farads,
    /// Voltage across the parallel (Cdl ∥ Rct) branch.
    vc: f64,
}

impl RandlesCell {
    /// Creates the cell at rest (capacitor discharged).
    ///
    /// # Errors
    ///
    /// Returns [`AfeError::InvalidParameter`] for non-positive elements.
    pub fn new(rs: Ohms, rct: Ohms, cdl: Farads) -> Result<Self, AfeError> {
        if rs.value() <= 0.0 {
            return Err(AfeError::invalid("rs", "must be positive"));
        }
        if rct.value() <= 0.0 {
            return Err(AfeError::invalid("rct", "must be positive"));
        }
        if cdl.value() <= 0.0 {
            return Err(AfeError::invalid("cdl", "must be positive"));
        }
        Ok(Self {
            rs,
            rct,
            cdl,
            vc: 0.0,
        })
    }

    /// Solution resistance.
    pub fn rs(&self) -> Ohms {
        self.rs
    }

    /// Charge-transfer resistance.
    pub fn rct(&self) -> Ohms {
        self.rct
    }

    /// Double-layer capacitance.
    pub fn cdl(&self) -> Farads {
        self.cdl
    }

    /// DC resistance `R_s + R_ct`.
    pub fn dc_resistance(&self) -> Ohms {
        self.rs + self.rct
    }

    /// Relaxation time constant `C_dl·(R_s ∥ R_ct)` for a voltage-driven
    /// step.
    pub fn time_constant(&self) -> Seconds {
        let parallel = self.rs.value() * self.rct.value() / (self.rs.value() + self.rct.value());
        Seconds::new(self.cdl.value() * parallel)
    }

    /// Advances one step with applied potential `e`, returning the cell
    /// current (exact exponential update for a constant-over-step drive).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn step(&mut self, e: Volts, dt: Seconds) -> Amps {
        assert!(dt.value() > 0.0, "time step must be positive");
        // The capacitor relaxes toward the divider voltage
        // v∞ = E·Rct/(Rs+Rct) with τ = Cdl·(Rs∥Rct).
        let v_inf = e.value() * self.rct.value() / (self.rs.value() + self.rct.value());
        let tau = self.time_constant().value();
        self.vc = v_inf + (self.vc - v_inf) * (-dt.value() / tau).exp();
        Amps::new((e.value() - self.vc) / self.rs.value())
    }

    /// The present branch voltage (observable for tests).
    pub fn branch_voltage(&self) -> Volts {
        Volts::new(self.vc)
    }

    /// Small-signal impedance at frequency `f`: `Z = R_s + R_ct/(1 + jωR_ctC)`.
    ///
    /// Returns `(magnitude, phase)` with the phase in radians (negative =
    /// capacitive). This is the electrochemical impedance spectroscopy
    /// (EIS) view of the cell — the standard diagnostic for electrode
    /// fouling and membrane degradation in deployed biosensors.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not strictly positive.
    pub fn impedance(&self, f: Hertz) -> (Ohms, f64) {
        assert!(f.value() > 0.0, "frequency must be positive");
        let omega = 2.0 * core::f64::consts::PI * f.value();
        let (rs, rct, c) = (self.rs.value(), self.rct.value(), self.cdl.value());
        // Z_parallel = Rct/(1 + jωRctC)
        let denom = 1.0 + (omega * rct * c).powi(2);
        let re = rs + rct / denom;
        let im = -omega * rct * rct * c / denom;
        (Ohms::new((re * re + im * im).sqrt()), im.atan2(re))
    }

    /// The characteristic frequency of the charge-transfer semicircle,
    /// `f_c = 1/(2π·R_ct·C_dl)` — the apex of the Nyquist arc.
    pub fn characteristic_frequency(&self) -> Hertz {
        Hertz::new(1.0 / (2.0 * core::f64::consts::PI * self.rct.value() * self.cdl.value()))
    }

    /// Samples a full impedance spectrum over `[f_lo, f_hi]`,
    /// logarithmically spaced — a Bode/Nyquist dataset.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f_lo < f_hi` and `points >= 2`.
    pub fn spectrum(&self, f_lo: Hertz, f_hi: Hertz, points: usize) -> Vec<(Hertz, Ohms, f64)> {
        assert!(
            f_lo.value() > 0.0 && f_hi.value() > f_lo.value(),
            "need 0 < f_lo < f_hi"
        );
        assert!(points >= 2, "need at least two points");
        let (llo, lhi) = (f_lo.value().ln(), f_hi.value().ln());
        (0..points)
            .map(|k| {
                let f = Hertz::new((llo + (lhi - llo) * k as f64 / (points - 1) as f64).exp());
                let (mag, phase) = self.impedance(f);
                (f, mag, phase)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> RandlesCell {
        RandlesCell::new(
            Ohms::new(100.0),
            Ohms::from_kiloohms(100.0),
            Farads::from_nanofarads(46.0),
        )
        .expect("valid")
    }

    #[test]
    fn construction_validates() {
        assert!(RandlesCell::new(Ohms::ZERO, Ohms::new(1.0), Farads::new(1e-9)).is_err());
        assert!(RandlesCell::new(Ohms::new(1.0), Ohms::ZERO, Farads::new(1e-9)).is_err());
        assert!(RandlesCell::new(Ohms::new(1.0), Ohms::new(1.0), Farads::ZERO).is_err());
    }

    #[test]
    fn step_response_spans_rs_to_dc_limit() {
        let mut c = cell();
        let e = Volts::from_millivolts(100.0);
        let dt = Seconds::from_micros(0.05);
        let i0 = c.step(e, dt);
        // Initially the capacitor shorts Rct: i ≈ E/Rs = 1 mA.
        assert!(
            (i0.as_milliamps() - 1.0).abs() < 0.05,
            "i0 = {}",
            i0.as_milliamps()
        );
        // After many time constants: i = E/(Rs+Rct) ≈ 1 µA.
        let mut i = i0;
        for _ in 0..100_000 {
            i = c.step(e, Seconds::from_micros(1.0));
        }
        let expected = e.value() / c.dc_resistance().value();
        assert!(
            (i.value() - expected).abs() / expected < 0.01,
            "i = {}",
            i.value()
        );
    }

    #[test]
    fn time_constant_uses_parallel_resistance() {
        let c = cell();
        let parallel = 100.0 * 1e5 / (100.0 + 1e5);
        assert!((c.time_constant().value() - 46e-9 * parallel).abs() < 1e-12);
    }

    #[test]
    fn current_decays_exponentially() {
        let mut c = cell();
        let e = Volts::from_millivolts(100.0);
        let tau = c.time_constant().value();
        let n = 100;
        let dt = Seconds::new(tau / n as f64);
        let mut i_tau = Amps::ZERO;
        for _ in 0..n {
            i_tau = c.step(e, dt);
        }
        // i(τ) = i_∞ + (i0 − i_∞)·e⁻¹.
        let i0 = e.value() / c.rs().value();
        let i_inf = e.value() / c.dc_resistance().value();
        let expected = i_inf + (i0 - i_inf) * (-1.0f64).exp();
        assert!((i_tau.value() - expected).abs() / expected < 0.02);
    }

    #[test]
    fn zero_drive_relaxes_to_zero() {
        let mut c = cell();
        let _ = c.step(Volts::new(1.0), Seconds::from_millis(1.0));
        for _ in 0..10_000 {
            let _ = c.step(Volts::ZERO, Seconds::from_micros(10.0));
        }
        assert!(c.branch_voltage().value().abs() < 1e-9);
    }
}

#[cfg(test)]
mod eis_tests {
    use super::*;

    fn cell() -> RandlesCell {
        RandlesCell::new(
            Ohms::new(100.0),
            Ohms::from_kiloohms(100.0),
            Farads::from_nanofarads(46.0),
        )
        .expect("valid")
    }

    #[test]
    fn impedance_limits_are_rs_and_rs_plus_rct() {
        let c = cell();
        let (lo_mag, lo_phase) = c.impedance(Hertz::new(1e-3));
        assert!(
            (lo_mag.value() - c.dc_resistance().value()).abs() / c.dc_resistance().value() < 0.01
        );
        assert!(lo_phase.abs() < 0.1, "DC limit is resistive");
        let (hi_mag, hi_phase) = c.impedance(Hertz::from_megahertz(10.0));
        assert!(
            (hi_mag.value() - 100.0).abs() < 1.0,
            "high-frequency limit is Rs"
        );
        assert!(hi_phase.abs() < 0.1);
    }

    #[test]
    fn phase_minimum_near_characteristic_frequency() {
        let c = cell();
        let fc = c.characteristic_frequency();
        // Scan around fc: the most negative phase sits within a factor ~3.
        let mut best = (0.0f64, 0.0f64);
        for k in -20..=20 {
            let f = Hertz::new(fc.value() * 10f64.powf(k as f64 / 10.0));
            let (_, phase) = c.impedance(f);
            if phase < best.1 {
                best = (f.value(), phase);
            }
        }
        assert!(best.1 < -0.7, "a capacitive dip must exist, got {}", best.1);
        // The phase extremum of Rs + (Rct ∥ C) sits at fc·√(1 + Rct/Rs),
        // ≈32×fc for this cell.
        let expected = fc.value() * (1.0 + 1e5 / 100.0f64).sqrt();
        let ratio = best.0 / expected;
        assert!(
            (0.2..5.0).contains(&ratio),
            "dip at {ratio}× the expected extremum"
        );
    }

    #[test]
    fn spectrum_is_log_spaced_and_monotone_in_magnitude() {
        let c = cell();
        let spec = c.spectrum(Hertz::new(0.01), Hertz::from_kilohertz(100.0), 40);
        assert_eq!(spec.len(), 40);
        for pair in spec.windows(2) {
            assert!(pair[1].0.value() > pair[0].0.value());
            // |Z| decreases monotonically for a single-arc Randles cell.
            assert!(pair[1].1.value() <= pair[0].1.value() + 1e-9);
        }
    }

    #[test]
    fn fouling_raises_the_low_frequency_arc() {
        // Fouling ≈ larger Rct: the DC magnitude grows, Rs limit unchanged.
        let clean = cell();
        let fouled = RandlesCell::new(
            Ohms::new(100.0),
            Ohms::from_kiloohms(500.0),
            Farads::from_nanofarads(46.0),
        )
        .expect("valid");
        let f = Hertz::new(0.01);
        assert!(fouled.impedance(f).0.value() > 4.0 * clean.impedance(f).0.value());
        let hi = Hertz::from_megahertz(10.0);
        assert!((fouled.impedance(hi).0.value() - clean.impedance(hi).0.value()).abs() < 1.0);
    }
}
