//! Correlated double sampling with a blank working electrode (§II-C).
//!
//! "The output of the sensor is measured twice: once in a known condition
//! and once in an unknown condition. The value measured from the known
//! condition is then subtracted … The latter can be realized using an extra
//! WE without any enzyme on it." The subtraction removes offset and the
//! drift/flicker components *shared* between the matched electrodes, at the
//! cost of √2 more white noise — and it fails for species that oxidize
//! directly on the blank electrode (dopamine, etoposide).

use bios_units::Amps;

/// A correlated double sampler pairing an active and a blank channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CorrelatedDoubleSampler {
    /// Fraction of low-frequency disturbance common to both electrodes
    /// (1.0 = perfectly matched pair).
    matching: MatchingQuality,
}

/// How well the active and blank electrodes are matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MatchingQuality {
    /// Same die, adjacent electrodes: ~99% common-mode rejection.
    Monolithic,
    /// Same substrate, different position: ~90%.
    SameSubstrate,
    /// Separate devices: ~50%.
    Discrete,
}

impl MatchingQuality {
    /// The fraction of drift/offset removed by subtraction.
    pub fn rejection(self) -> f64 {
        match self {
            MatchingQuality::Monolithic => 0.99,
            MatchingQuality::SameSubstrate => 0.90,
            MatchingQuality::Discrete => 0.50,
        }
    }
}

impl CorrelatedDoubleSampler {
    /// Creates a sampler with the given electrode matching.
    pub fn new(matching: MatchingQuality) -> Self {
        Self { matching }
    }

    /// The electrode matching quality.
    pub fn matching(&self) -> MatchingQuality {
        self.matching
    }

    /// Models one corrected sample: the wanted `signal` survives, a shared
    /// low-frequency `disturbance` is attenuated to its residual fraction
    /// (the blank electrode sees `rejection`× of it), and per-channel
    /// uncorrelated noise terms combine by plain subtraction.
    pub fn correct(
        &self,
        signal: Amps,
        shared_disturbance: Amps,
        active_noise: Amps,
        blank_noise: Amps,
    ) -> Amps {
        signal + shared_disturbance * self.residual_drift_fraction() + active_noise - blank_noise
    }

    /// Plain subtraction of synchronized samples — the hardware operation.
    pub fn subtract(&self, active: Amps, blank: Amps) -> Amps {
        active - blank
    }

    /// White-noise penalty of the subtraction (uncorrelated noise adds in
    /// power): √2.
    pub fn white_noise_penalty(&self) -> f64 {
        core::f64::consts::SQRT_2
    }

    /// The drift suppression factor applied to shared low-frequency
    /// disturbance: `1 − rejection`.
    pub fn residual_drift_fraction(&self) -> f64 {
        1.0 - self.matching.rejection()
    }
}

impl Default for CorrelatedDoubleSampler {
    fn default() -> Self {
        Self::new(MatchingQuality::Monolithic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtraction_removes_shared_signal() {
        let cds = CorrelatedDoubleSampler::default();
        let signal = Amps::from_nanoamps(100.0);
        let drift = Amps::from_nanoamps(37.0);
        let active = signal + drift;
        let blank = drift;
        let corrected = cds.subtract(active, blank);
        assert!((corrected.value() - signal.value()).abs() < 1e-18);
    }

    #[test]
    fn interferent_on_blank_cancels_but_sensor_specific_does_not() {
        // Ascorbate oxidizes on both electrodes: subtracting removes it.
        let cds = CorrelatedDoubleSampler::default();
        let glucose_current = Amps::from_nanoamps(200.0);
        let ascorbate = Amps::from_nanoamps(50.0);
        let active = glucose_current + ascorbate;
        let blank = ascorbate;
        assert!((cds.subtract(active, blank).value() - glucose_current.value()).abs() < 1e-18);
    }

    #[test]
    fn matching_quality_ordering() {
        assert!(
            MatchingQuality::Monolithic.rejection() > MatchingQuality::SameSubstrate.rejection()
        );
        assert!(MatchingQuality::SameSubstrate.rejection() > MatchingQuality::Discrete.rejection());
        let mono = CorrelatedDoubleSampler::new(MatchingQuality::Monolithic);
        assert!((mono.residual_drift_fraction() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn white_noise_penalty_is_sqrt2() {
        let cds = CorrelatedDoubleSampler::default();
        assert!((cds.white_noise_penalty() - core::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn correct_attenuates_shared_drift() {
        let cds = CorrelatedDoubleSampler::new(MatchingQuality::Monolithic);
        let out = cds.correct(
            Amps::from_nanoamps(100.0),
            Amps::from_nanoamps(50.0),
            Amps::ZERO,
            Amps::ZERO,
        );
        // 1% residual of the 50 nA drift survives.
        assert!((out.as_nanoamps() - 100.5).abs() < 1e-9);
        let sloppy = CorrelatedDoubleSampler::new(MatchingQuality::Discrete);
        let out2 = sloppy.correct(
            Amps::from_nanoamps(100.0),
            Amps::from_nanoamps(50.0),
            Amps::ZERO,
            Amps::ZERO,
        );
        assert!((out2.as_nanoamps() - 125.0).abs() < 1e-9);
    }
}
