//! Integration tests for the auto-fix engine and the incremental cache
//! at workspace scope: fixes must converge to a lint-clean tree and be
//! idempotent; warm cache runs must reproduce a cold run's findings
//! exactly, re-analyzing only what changed — including the subtle
//! cross-file cases (a stale suppression only detectable because a
//! *different* file changed, and crate-wide range invalidation).

use bios_lint::cache::findings_digest;
use bios_lint::fixer::fix_files;
use bios_lint::{lint_files_cached, Baseline, LintCache, MemFile};

fn mem(crate_name: &str, rel_path: &str, source: &str) -> MemFile {
    MemFile {
        crate_name: crate_name.to_string(),
        rel_path: rel_path.to_string(),
        source: source.to_string(),
        lintable: true,
    }
}

#[test]
fn fix_files_converges_and_is_idempotent() {
    let mut files = vec![
        mem(
            "bios-electrochem",
            "crates/electrochem/src/a.rs",
            "use std::collections::HashMap;\n\
             fn classify(x: f64) -> bool {\n    x == 0.5\n}\n\
             fn tally() -> usize {\n    let m: HashMap<u32, f64> = HashMap::new();\n    m.len()\n}\n",
        ),
        mem(
            "bios-electrochem",
            "crates/electrochem/src/b.rs",
            "// advdiag::allow(F1, grandfathered during the PR3 migration)\nfn f() {}\n",
        ),
    ];
    let before = files.clone();
    let outcome = fix_files(&mut files, &Baseline::default()).expect("fixpoint");
    assert!(outcome.applied >= 3, "{outcome:?}");
    assert_eq!(
        outcome.changed,
        vec![
            "crates/electrochem/src/a.rs".to_string(),
            "crates/electrochem/src/b.rs".to_string()
        ]
    );
    // F1: literal comparison rewritten to total_cmp.
    assert!(
        files[0].source.contains("x.total_cmp(&0.5).is_eq()"),
        "{}",
        files[0].source
    );
    // D1: provably-Ord key type, so HashMap converts everywhere at once.
    assert!(!files[0].source.contains("HashMap"), "{}", files[0].source);
    assert!(files[0].source.contains("BTreeMap"), "{}", files[0].source);
    // W0: the stale allow line is deleted outright.
    assert!(
        !files[1].source.contains("advdiag::allow"),
        "{}",
        files[1].source
    );

    // The repaired tree lints clean at error severity.
    let (findings, _, _, _) = lint_files_cached(&files, &LintCache::default(), &[]);
    let errors: Vec<_> = findings
        .iter()
        .filter(|f| f.severity == bios_lint::Severity::Error)
        .collect();
    assert!(errors.is_empty(), "{errors:#?}");

    // Idempotence: a second pass has nothing left to do.
    let snapshot: Vec<String> = files.iter().map(|f| f.source.clone()).collect();
    let again = fix_files(&mut files, &Baseline::default()).expect("fixpoint");
    assert_eq!(again.applied, 0, "{again:?}");
    let after: Vec<String> = files.iter().map(|f| f.source.clone()).collect();
    assert_eq!(snapshot, after);
    drop(before);
}

fn two_crate_workspace() -> Vec<MemFile> {
    vec![
        mem(
            "bios-electrochem",
            "crates/electrochem/src/kinetics.rs",
            "fn rate(eta: f64) -> f64 {\n    eta.exp()\n}\n\
             fn drive() -> f64 {\n    rate(1.5)\n}\n",
        ),
        mem(
            "bios-units",
            "crates/units/src/convert.rs",
            "fn to_base(v: f64, k: f64) -> f64 {\n    v * k\n}\n\
             fn all() -> f64 {\n    to_base(1.0, 1000.0)\n}\n",
        ),
    ]
}

#[test]
fn warm_run_reproduces_cold_findings_exactly() {
    let files = two_crate_workspace();
    let (cold, _, cache, cold_stats) = lint_files_cached(&files, &LintCache::default(), &[]);
    assert_eq!(cold_stats.files_reused, 0);
    let (warm, _, _, warm_stats) = lint_files_cached(&files, &cache, &[]);
    assert_eq!(warm_stats.files_reused, files.len());
    assert_eq!(warm_stats.files_analyzed, 0);
    assert_eq!(warm_stats.crates_analyzed, 0);
    assert_eq!(findings_digest(&cold), findings_digest(&warm));
    assert_eq!(cold, warm);
}

#[test]
fn editing_one_file_reanalyzes_only_it_and_its_crate_range() {
    let mut files = two_crate_workspace();
    let (_, _, cache, _) = lint_files_cached(&files, &LintCache::default(), &[]);

    // Introduce an N2 overflow in the electrochem crate only.
    files[0].source = "fn rate(eta: f64) -> f64 {\n    eta.exp()\n}\n\
         fn drive() -> f64 {\n    rate(1200.0)\n}\n"
        .to_string();
    let (findings, _, _, stats) = lint_files_cached(&files, &cache, &[]);
    assert_eq!(stats.files_reused, 1, "{stats:?}");
    assert_eq!(stats.files_analyzed, 1, "{stats:?}");
    // bios-units' range entry is replayed; bios-electrochem's is not.
    assert_eq!(stats.crates_reused, 1, "{stats:?}");
    assert_eq!(stats.crates_analyzed, 1, "{stats:?}");
    assert!(
        findings.iter().any(|f| f.rule == "N2"),
        "edit must surface the new overflow: {findings:#?}"
    );

    // The warm result matches a from-scratch run on the edited tree.
    let (cold, _, _, _) = lint_files_cached(&files, &LintCache::default(), &[]);
    assert_eq!(findings_digest(&cold), findings_digest(&findings));
}

#[test]
fn cross_file_staleness_is_not_frozen_by_the_cache() {
    // File b suppresses the A1 layering violation caused by file a's
    // upward reference... which lives in b itself; when b is edited the
    // case is easy. The hard case: the allow lives in a file that does
    // NOT change, and the violation it suppressed disappears because a
    // different run state changes. Model it directly: first run, the
    // allow in `lo.rs` suppresses a real A1; then the edit removes the
    // upward reference *in the same file* — but the point under test is
    // that the *unchanged* peer file's cached entry still participates
    // in the workspace phase correctly.
    let peer = mem("bios-units", "crates/units/src/peer.rs", "fn idle() {}\n");
    let hot = mem(
        "bios-units",
        "crates/units/src/lo.rs",
        "// advdiag::allow(A1, transitional until the QC gate moves down)\n\
         use bios_instrument::qc::QcGate;\n",
    );
    let files = vec![hot.clone(), peer.clone()];
    let (first, _, cache, _) = lint_files_cached(&files, &LintCache::default(), &[]);
    assert!(
        !first.iter().any(|f| f.rule == "A1" || f.rule == "W0"),
        "allow consumed, nothing stale: {first:#?}"
    );

    // Drop the upward reference; the allow in lo.rs goes stale. peer.rs
    // is untouched and must be replayed from cache, yet W0 must fire.
    let edited = vec![
        mem(
            "bios-units",
            "crates/units/src/lo.rs",
            "// advdiag::allow(A1, transitional until the QC gate moves down)\n\
             fn resolved() {}\n",
        ),
        peer,
    ];
    let (second, _, _, stats) = lint_files_cached(&edited, &cache, &[]);
    assert_eq!(stats.files_reused, 1, "{stats:?}");
    assert!(
        second.iter().any(|f| f.rule == "W0"),
        "stale allow must surface on the warm run: {second:#?}"
    );
}

#[test]
fn force_dirty_reanalyzes_clean_files() {
    let files = two_crate_workspace();
    let (_, _, cache, _) = lint_files_cached(&files, &LintCache::default(), &[]);
    let forced = vec!["crates/units/src/convert.rs".to_string()];
    let (_, _, _, stats) = lint_files_cached(&files, &cache, &forced);
    assert_eq!(stats.files_reused, files.len() - 1, "{stats:?}");
    assert_eq!(stats.files_analyzed, 1, "{stats:?}");
}

#[test]
fn cache_round_trips_through_json() {
    let files = two_crate_workspace();
    let (cold, _, cache, _) = lint_files_cached(&files, &LintCache::default(), &[]);
    let reloaded = LintCache::parse(&cache.to_json());
    assert_eq!(reloaded, cache);
    let (warm, _, _, stats) = lint_files_cached(&files, &reloaded, &[]);
    assert_eq!(stats.files_reused, files.len());
    assert_eq!(cold, warm);
}
