//! Fixture-driven integration tests for the hot-path rules (H1
//! allocation, H2 float-reduction order, H3 blocking calls, H4 invariant
//! recomputation): every rule must fire on each seeded site of its
//! positive fixture and stay silent on its negative one. The fixtures
//! under `tests/fixtures/` are linted in memory — they are never
//! compiled, so they can model violations without breaking the build.

use bios_lint::{lint_source, FileContext};

fn ctx() -> FileContext<'static> {
    FileContext {
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/fixture.rs",
    }
}

fn rule_hits(src: &str, rule: &str) -> Vec<String> {
    lint_source(&ctx(), src)
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| format!("{}:{} {}", f.line, f.col, f.message))
        .collect()
}

#[test]
fn h1_fires_on_every_seeded_allocation() {
    let src = include_str!("fixtures/h1_positive.rs");
    let hits = rule_hits(src, "H1");
    // Sites 1-9: Vec::new ×2, vec!, to_vec ×2 (one in the
    // par_map_chunks closure root), clone, Box::new, unreserved push,
    // format! under an `advdiag::hot` marker.
    assert_eq!(hits.len(), 9, "{hits:#?}");
}

#[test]
fn h1_flags_the_par_map_chunks_closure_root() {
    let src = include_str!("fixtures/h1_positive.rs");
    let hits = rule_hits(src, "H1");
    // The cold `dispatch` fn's closure body is a hot root of its own.
    assert!(
        hits.iter()
            .any(|h| h.contains("to_vec") && h.starts_with("32:")),
        "{hits:#?}"
    );
}

#[test]
fn h1_stays_silent_on_negative_fixture() {
    // Covers: warm-driver setup allocation, with_capacity'd push,
    // field-receiver push, cold code, an `advdiag::cold`-marked root
    // name, and the Opaque-recovery zero-false-positive case.
    let src = include_str!("fixtures/h1_negative.rs");
    let hits = rule_hits(src, "H1");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn h2_fires_on_every_seeded_reduction() {
    let src = include_str!("fixtures/h2_positive.rs");
    let hits = rule_hits(src, "H2");
    // sum, product, fold in the kernel + sum in the par_map closure.
    assert_eq!(hits.len(), 4, "{hits:#?}");
}

#[test]
fn h2_stays_silent_on_negative_fixture() {
    let src = include_str!("fixtures/h2_negative.rs");
    let hits = rule_hits(src, "H2");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn h3_fires_on_every_blocking_call_in_the_server_loop() {
    let src = include_str!("fixtures/h3_positive.rs");
    let hits = rule_hits(src, "H3");
    // lock, recv, println!, sleep, Instant::now, fs::read, and a join
    // in a helper reached from `step_active`.
    assert_eq!(hits.len(), 7, "{hits:#?}");
}

#[test]
fn h3_stays_silent_outside_the_server_loop() {
    // `step_wave` is hot but not in `step_active`'s reachability; the
    // injected `Clock` is exempt; cold code may block.
    let src = include_str!("fixtures/h3_negative.rs");
    let hits = rule_hits(src, "H3");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn h4_fires_on_every_recomputed_invariant() {
    let src = include_str!("fixtures/h4_positive.rs");
    let hits = rule_hits(src, "H4");
    // Grid::for_experiment in a for loop, Prefactorized::new in a while
    // loop, Grid::uniform in a PerIter helper.
    assert_eq!(hits.len(), 3, "{hits:#?}");
}

#[test]
fn h4_stays_silent_on_negative_fixture() {
    let src = include_str!("fixtures/h4_negative.rs");
    let hits = rule_hits(src, "H4");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn hot_findings_obey_inline_allows() {
    let src = "pub fn step_active(x: &Thing) -> Thing {\n\
               // advdiag::allow(H1, fixture: the copy is once per admission, not per step)\n\
               x.clone()\n\
               }\n";
    let hits = rule_hits(src, "H1");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn torture_fixture_parses_without_hot_false_positives() {
    // The recovery torture file exercises every parser fallback; none
    // of its fns are hot roots, so the hot pass must stay silent.
    let src = include_str!("fixtures/torture.rs");
    for rule in ["H1", "H2", "H3", "H4"] {
        let hits = rule_hits(src, rule);
        assert!(hits.is_empty(), "{rule}: {hits:#?}");
    }
}
