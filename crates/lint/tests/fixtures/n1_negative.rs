//! N1 negative fixture: no division here may be flagged, even though
//! several are lexically `x / d` shapes. Linted in memory, never
//! compiled.

/// A zero-excluding guard clears the fact inside the branch.
fn guarded(x: f64, d: f64) -> f64 {
    if d != 0.0 {
        x / d
    } else {
        0.0
    }
}

fn guard_driver() -> f64 {
    guarded(3.0, 0.0)
}

/// Every call site passes a nonzero denominator.
fn scaled(x: f64, d: f64) -> f64 {
    x / d
}

fn scale_driver() -> f64 {
    scaled(1.0, 4.0) + scaled(2.0, 8.0)
}

/// The fn escapes as a value: its call sites are not exhaustive, so the
/// zero passed below must not be trusted as the full story.
fn ratio(den: f64) -> f64 {
    1.0 / den
}

fn register() -> f64 {
    publish(ratio);
    ratio(0.0)
}

/// Unknown denominator (no call sites at all): silence, never a guess.
fn freeform(x: f64, d: f64) -> f64 {
    x / d
}
