//! A1 fixture — an application layer consuming a foundation crate.
//! Linted as `bios-instrument`; the `bios_units` reference is a
//! downward edge (layer 3 → 0) and must stay silent.

pub fn excitation() -> f64 {
    bios_units::Volts::new(1.0).value()
}
