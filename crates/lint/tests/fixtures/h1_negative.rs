//! H1 negative fixture: allocations the hot-path rules must NOT flag.

/// Warm driver root: straight-line setup is exactly where hoisted
/// buffers belong; only its loop bodies are per-iteration.
pub fn simulate_chrono_fleet(lanes: usize, steps: usize) -> f64 {
    let mut rates = vec![0.0; lanes]; // setup allocation: silent
    let mut acc = 0.0;
    for _ in 0..steps {
        for r in rates.iter_mut() {
            *r += 1.0;
        }
        acc += rates[0];
    }
    acc
}

/// Reserved push: `with_capacity` in the same region silences H1.
pub fn step_active(items: &[f64]) -> f64 {
    let mut out = Vec::with_capacity(items.len());
    for x in items {
        out.push(*x);
    }
    out.len() as f64
}

/// Field-receiver push: the cold caller owns that buffer's allocation.
pub struct Transient {
    t: Vec<f64>,
}

impl Transient {
    pub fn solve_batch_in_place(&mut self, x: f64) {
        self.t.push(x);
    }
}

/// Cold code allocates freely.
pub fn report_builder(n: usize) -> Vec<f64> {
    vec![0.0; n]
}

// advdiag::cold(fixture: allocating wrapper exercised only by tests)
pub fn step_wave(n: usize) -> Vec<f64> {
    vec![0.0; n]
}

/// Opaque recovery: a prefix range collapses to an `Opaque` node and its
/// operand is discarded, so the allocation inside it can only be
/// *hidden* (a false negative), never reported — lossiness stays in the
/// false-negative direction.
pub fn step_with_rate_constants(n: usize) -> usize {
    let bound = ..mask(Vec::new(), n);
    let _ = bound;
    n
}

fn mask(_v: Vec<f64>, n: usize) -> usize {
    n
}
