//! W0 fixture — both suppressions below are dead weight and must each
//! produce a W0 finding: the first names a rule that no longer fires
//! here, the second names a rule that does not exist.

// advdiag::allow(P1, legacy prototype shim, removed in the cleanup pass)
pub fn tidy() -> u8 {
    7
}

// advdiag::allow(Z9, typo for an id that never existed)
pub fn also_tidy() -> u8 {
    9
}
