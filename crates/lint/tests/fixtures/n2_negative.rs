//! N2 negative fixture: every `exp()` argument is provably bounded
//! below the overflow threshold, or unknown (silence). Linted in
//! memory, never compiled.

/// Well inside range.
fn moderate_rate() -> f64 {
    let exponent = 12.5;
    exponent.exp()
}

/// Bounded through a callee's return value.
fn bounded_term() -> f64 {
    0.5 * 38.9
}

fn bounded_rate() -> f64 {
    bounded_term().exp()
}

/// All call sites stay bounded.
fn arrhenius(scaled: f64) -> f64 {
    scaled.exp()
}

fn rate_table() -> f64 {
    arrhenius(12.0) + arrhenius(700.0)
}

/// Unknown argument (no call sites): silence, never a guess.
fn freeform(eta: f64) -> f64 {
    eta.exp()
}
