//! A1 fixture — a foundation crate reaching *up* into an application
//! layer. Linted as `bios-units` by `tests/semantic.rs`, where the
//! reference to `bios_instrument` is an upward edge (layer 0 → 3).

pub fn peek_schedule() -> u32 {
    bios_instrument::session::DEFAULT_SLOTS
}
