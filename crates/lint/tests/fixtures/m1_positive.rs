//! M1 positive fixture: every function contains exactly one wildcard
//! `_ =>` arm in a `match` whose sibling patterns name a protocol enum.
//! Linted in memory only — never compiled.

fn braced_body_wildcard(outcome: SessionOutcome) {
    match outcome {
        SessionOutcome::Completed(report) => record(report),
        SessionOutcome::Quarantined(device) => isolate(device),
        _ => {}
    }
}

fn expression_body_wildcard(tier: ServiceTier) -> u8 {
    match tier {
        ServiceTier::Stat => 0,
        ServiceTier::Routine => 1,
        _ => 9,
    }
}

fn wildcard_in_reference_match(event: &StepEvent) -> bool {
    match event {
        StepEvent::SessionDone => true,
        StepEvent::BackedOff { delay_ticks, .. } => *delay_ticks > 0,
        _ => false,
    }
}

fn alternation_ending_in_wildcard(err: ServerError) -> &'static str {
    match err {
        ServerError::QueueFull { .. } => "full",
        ServerError::Quarantined(_) | _ => "other",
    }
}

fn wildcard_beside_nested_step_pattern(event: StepEvent) -> usize {
    match event {
        StepEvent::Progressed(SessionStep { attempt, .. }) => attempt,
        _ => 0,
    }
}
