//! H4 positive fixture: known-pure constructors recomputed per iteration.

pub fn step_wave(n: usize) -> f64 {
    let mut acc = 0.0;
    for i in 0..n {
        let g = Grid::for_experiment(i); // site 1: per-iteration rebuild
        acc += g;
    }
    while acc < 10.0 {
        let p = Prefactorized::new(acc); // site 2: per-iteration refactorization
        acc += p;
    }
    acc + helper_ctor(acc)
}

/// PerIter via the call edge: its whole body runs per step, so even a
/// depth-0 constructor call is a per-iteration recomputation.
fn helper_ctor(x: f64) -> f64 {
    let u = Grid::uniform(x); // site 3
    u
}
