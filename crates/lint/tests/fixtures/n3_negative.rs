//! N3 negative fixture: subtractions that look similar to the positive
//! cases but must stay silent. Linted in memory, never compiled.

/// Well-separated constants: no cancellation.
fn well_separated() -> f64 {
    2.0 - 1.0
}

/// Exactly equal operands give an exact zero — that is not a loss of
/// precision, and flagging it would punish deliberate zeroing.
fn exactly_equal() -> f64 {
    let a = 1.25;
    a - 1.25
}

/// One operand unknown: silence, never a guess.
fn unknown_difference(a: f64) -> f64 {
    a - 1.0
}

/// Intervals (joined from multiple sites) are not points; near-equality
/// is only ever claimed for known point values.
fn offset(x: f64) -> f64 {
    x - 1.0
}

fn offset_driver() -> f64 {
    offset(1.0000001) + offset(5.0)
}
