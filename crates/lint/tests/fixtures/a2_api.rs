//! A2 fixture — linted as `bios-afe` alongside the consumer corpus in
//! `a2_consumer.rs`. `used_gain` is referenced there and must stay
//! silent; `orphan_gain` is referenced nowhere outside the crate and
//! must warn.

pub fn used_gain() -> f64 {
    20.0
}

pub fn orphan_gain() -> f64 {
    40.0
}
