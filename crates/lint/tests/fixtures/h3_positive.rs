//! H3 positive fixture: blocking and I/O calls reachable from the shard
//! stepping loop (`step_active`).

pub fn step_active(m: &Mutex, rx: &Receiver, p: &str) -> u64 {
    let guard = m.lock(); // site 1: lock
    let msg = rx.recv(); // site 2: channel receive
    println!("serving"); // site 3: stream I/O macro
    std::thread::sleep(10); // site 4: sleep
    let t = std::time::Instant::now(); // site 5: wall clock
    let data = std::fs::read(p); // site 6: file I/O
    helper_wait(guard, msg, t, data)
}

/// Reached from the stepping loop: still in the H3 region.
fn helper_wait(_g: u64, _m: u64, _t: u64, _d: u64) -> u64 {
    let h = spawn_worker();
    h.join() // site 7: thread join
}
