//! U2 fixture — nothing in this file may produce a U2 finding: every
//! raw value re-enters the dimension and scale it left, or passes
//! through an operation that legitimately forgets the dimension.

pub fn matching_reentry(v: Volts) -> Volts {
    let mv = v.as_millivolts();
    Volts::from_millivolts(mv)
}

pub fn arithmetic_conversion(t: Seconds) -> Seconds {
    let ms = t.as_millis();
    Seconds::new(ms / 1e3)
}

pub fn same_scale_sum(a: Volts, b: Volts) -> f64 {
    a.as_millivolts() + b.as_millivolts()
}

pub fn branch_kills_tracking(v: Volts, c: bool) -> Amps {
    let mut raw = v.as_millivolts();
    if c {
        raw = recalibrated_current();
    }
    Amps::new(raw)
}

pub fn sqrt_forgets(v: Volts) -> Amps {
    let raw = v.as_millivolts().sqrt();
    Amps::new(raw)
}
