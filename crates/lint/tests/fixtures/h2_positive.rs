//! H2 positive fixture: iterator float reductions in per-iteration hot
//! code. Each hides the accumulation order the digest gates pin down.

pub fn step_with_rate_constants(xs: &[f64]) -> f64 {
    let a: f64 = xs.iter().sum(); // site 1
    let b: f64 = xs.iter().product(); // site 2
    let c = xs.iter().fold(0.0, |acc, x| acc + x); // site 3
    a + b + c
}

/// The `par_map` closure is a hot root: reductions in it are flagged.
pub fn dispatch(chunks: &[Vec<f64>]) -> Vec<f64> {
    par_map(chunks, |chunk| {
        let s: f64 = chunk.iter().sum(); // site 4
        s
    })
}
