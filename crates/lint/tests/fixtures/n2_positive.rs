//! N2 positive fixture: each `exp()` here overflows f64 (argument
//! above ln(f64::MAX) ≈ 709.78) — the classic unclamped Butler–Volmer
//! failure. Linted in memory, never compiled.

/// Direct overflow from a local constant exponent.
fn tafel_rate() -> f64 {
    let exponent = 1200.0;
    exponent.exp()
}

/// The overflowing argument arrives through a callee's return value:
/// eta * F / (R T) with a volt-scale overpotential mistakenly in mV.
fn overpotential_term() -> f64 {
    38.9 * 26000.0
}

fn butler_volmer_anodic() -> f64 {
    overpotential_term().exp()
}

/// Overflow at one call site is enough: the joined interval's upper
/// bound crosses the threshold.
fn arrhenius(scaled: f64) -> f64 {
    scaled.exp()
}

fn rate_table() -> f64 {
    arrhenius(12.0) + arrhenius(800.0)
}
