//! H4 negative fixture: invariants constructed once, outside the loop.

/// Warm driver: constructors in straight-line setup are the fix shape.
pub fn simulate_chrono_fleet(n: usize) -> f64 {
    let g = Grid::for_experiment(n);
    let p = Prefactorized::new(0.1);
    let mut acc = 0.0;
    for _ in 0..n {
        acc += g + p; // the invariants are *used* per step, not rebuilt
    }
    acc
}

/// Cold code constructs freely.
pub fn build_grid(n: usize) -> f64 {
    Grid::uniform(n as f64)
}
