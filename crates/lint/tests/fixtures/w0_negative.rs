//! W0 fixture — nothing here may fire. The one suppression is
//! consumed by a real P1 finding, and prose that merely *describes*
//! the `advdiag::allow(rule, reason)` syntax is not an allow site.

pub fn read(x: Option<u8>) -> u8 {
    // advdiag::allow(P1, fixture exercises a consumed suppression)
    x.unwrap()
}
