//! Parser-recovery torture fixture. Everything here is a construct the
//! lossy parser does not fully model — deeply nested generics, async
//! blocks, macro invocation bodies, const generics, trait objects —
//! and the contract is that it all degrades to `Opaque` (or balanced
//! skips) with **zero findings**: lossiness must surface as false
//! negatives, never as false positives. Linted in memory, never
//! compiled.

use std::collections::BTreeMap;

type Handler = Box<dyn Fn(&[u8]) -> Result<Vec<(usize, f64)>, String> + Send + Sync>;

/// Nested generics with const parameters, bounds and a where clause.
struct Registry<const N: usize, T: Clone + Ord>
where
    T: core::fmt::Debug,
{
    routes: BTreeMap<String, Vec<Result<Handler, Box<dyn core::fmt::Debug>>>>,
    markers: [Option<T>; N],
}

impl<const N: usize, T: Clone + Ord + core::fmt::Debug> Registry<N, T> {
    /// Turbofish soup: nested generic arguments in expression position.
    fn nested_turbofish(&self) -> Vec<BTreeMap<u32, Vec<Option<&T>>>> {
        let nested = Vec::<BTreeMap<u32, Vec<Option<&T>>>>::new();
        nested
    }
}

/// Async fn with an async block and awaits inside.
async fn fetch_window(endpoint: &str) -> Result<Vec<f64>, String> {
    let staged = async move {
        let attempt = connect(endpoint).await?;
        decode(attempt).await
    };
    staged.await
}

/// An async block nested inside a closure inside a sync fn.
fn schedule_refresh() -> impl FnOnce() {
    move || {
        let _task = async {
            let window = fetch_window("afe0").await;
            drop(window);
        };
    }
}

/// Macro invocation bodies are opaque: the zero divisions and the huge
/// exponent below would be N1/N2 findings if the parser over-claimed.
fn macro_bodies() {
    let zero = 0.0;
    log_ratio!(1.0 / zero);
    assert_close![sensitivity.exp(), 1.0e9 / zero, epsilon = 1.0e-9];
    register_channels! {
        we: 1.0 / zero,
        ce: 1200.0.exp(),
    }
}

/// A macro definition: its body is token soup by design.
macro_rules! declare_lanes {
    ($($name:ident => $gain:expr),* $(,)?) => {
        $(fn $name() -> f64 { $gain / 0.0 })*
    };
}

declare_lanes! {
    lane_we => 0.5,
    lane_ce => 1.5,
}

/// Pattern-heavy match with guards, bindings, slices and ranges.
fn classify(samples: &[f64]) -> u32 {
    match samples {
        [] => 0,
        [first, .., last] if first < last => 1,
        [_only] => 2,
        rest @ [..] => rest.len() as u32,
    }
}
