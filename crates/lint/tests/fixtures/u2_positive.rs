//! U2 fixture — every function below must produce exactly one U2
//! finding. Linted as `bios-electrochem` by `tests/semantic.rs`; the
//! file never compiles as part of the workspace.

pub fn cross_dimension_reentry(v: Volts) -> Amps {
    let raw = v.as_millivolts();
    Amps::from_nanoamps(raw)
}

pub fn scale_mismatch_reentry(v: Volts) -> Volts {
    let mv = v.as_millivolts();
    Volts::new(mv)
}

pub fn mixed_dimension_addition(v: Volts, i: Amps) -> f64 {
    v.as_millivolts() + i.as_milliamps()
}

pub fn mixed_scale_addition(a: Volts, b: Volts) -> f64 {
    a.as_millivolts() + b.as_microvolts()
}

pub fn tracking_survives_abs(v: Volts) -> Amps {
    let raw = v.as_millivolts().abs();
    Amps::new(raw)
}
