//! A2 fixture corpus — a `bios-instrument` file whose text references
//! `used_gain` from `a2_api.rs`, keeping that item off the dead-API
//! report.

pub fn configure() -> f64 {
    bios_afe::used_gain()
}
