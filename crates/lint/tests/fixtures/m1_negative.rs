//! M1 negative fixture: wildcard shapes the rule must stay silent on —
//! matches over unrelated types, inner-pattern wildcards, guarded
//! catch-alls, and exhaustive protocol matches with no wildcard at all.
//! Linted in memory only — never compiled.

fn unrelated_scrutinee(code: u8) -> &'static str {
    match code {
        0 => "ok",
        1 => "warn",
        _ => "unknown",
    }
}

fn inner_wildcards_are_not_arms(result: Result<SessionOutcome, ParseError>) {
    match result {
        Ok(SessionOutcome::Shed) => shed(),
        Ok(_) => other(),
        Err(e) => fail(e),
    }
}

fn tuple_wildcards_are_not_arms(pair: (ServiceTier, u8)) -> u8 {
    match pair {
        (ServiceTier::Stat, n) => n,
        (_, n) => n / 2,
    }
}

fn guarded_wildcard_is_deliberate(outcome: SessionOutcome) {
    match outcome {
        SessionOutcome::Completed(report) => record(report),
        _ if replaying() => skip(),
        SessionOutcome::Shed => shed(),
        SessionOutcome::Quarantined(device) => isolate(device),
        SessionOutcome::Failed { .. } => fail(),
    }
}

fn exhaustive_protocol_match(event: StepEvent) -> bool {
    match event {
        StepEvent::Progressed(_) => false,
        StepEvent::BackedOff { .. } => false,
        StepEvent::Quarantined(_) => true,
        StepEvent::WeDone(_) => false,
        StepEvent::SessionDone => true,
    }
}

fn nested_unrelated_match(event: StepEvent, x: u8) -> u8 {
    match event {
        StepEvent::SessionDone => match x {
            0 => 1,
            _ => 2,
        },
        StepEvent::Progressed(_) => 3,
        StepEvent::BackedOff { .. } => 4,
        StepEvent::Quarantined(_) => 5,
        StepEvent::WeDone(_) => 6,
    }
}
