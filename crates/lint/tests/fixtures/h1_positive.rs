//! H1 positive fixture: every seeded allocation sits in per-iteration hot
//! code and must produce exactly one finding. Sites are numbered in the
//! comments; `tests/hotpath.rs` pins the count.

/// Per-step kernel entry (PerIter root by name).
pub fn step_with_rate_constants(n: usize) -> f64 {
    let scratch: Vec<f64> = Vec::new(); // site 1: Vec::new in hot code
    let lane = vec![0.0; n]; // site 2: vec! in hot code
    kernel_inner(&lane) + scratch.len() as f64
}

/// Reached from the kernel: PerIter via an unambiguous call edge.
fn kernel_inner(xs: &[f64]) -> f64 {
    let own = xs.to_vec(); // site 3: to_vec in hot code
    let copy = own.clone(); // site 4: clone in hot code
    let boxed = Box::new(copy.len()); // site 5: Box::new in hot code
    *boxed as f64
}

/// Per-tick root: an unreserved region-local vector that gets pushed.
pub fn step_active(items: &[f64]) -> f64 {
    let mut acc = Vec::new(); // site 6: Vec::new in hot code
    for x in items {
        acc.push(*x); // site 7: push onto an unreserved hot-local vec
    }
    acc.len() as f64
}

/// Cold dispatcher: the `par_map_chunks` closure is a hot root — its
/// body runs once per element.
pub fn dispatch(items: &[f64]) -> Vec<Vec<f64>> {
    par_map_chunks(items, |chunk| chunk.to_vec()) // site 8: to_vec in par closure
}

// advdiag::hot
fn custom_kernel(n: usize) -> String {
    format!("{n}") // site 9: format! under an opt-in hot marker
}
