//! N3 positive fixture: each subtraction cancels nearly-equal known
//! constants (relative difference ≤ 1e-6 but nonzero), destroying
//! significant digits. Linted in memory, never compiled.

/// Two locally-known near-equal constants.
fn reference_drift() -> f64 {
    let measured = 0.79999992;
    let nominal = 0.8;
    measured - nominal
}

/// The near-equal operands arrive through callee return values.
fn calibration_a() -> f64 {
    1.0000004
}

fn calibration_b() -> f64 {
    1.0
}

fn calibration_gap() -> f64 {
    calibration_a() - calibration_b()
}
