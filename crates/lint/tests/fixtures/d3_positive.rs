//! D3 fixture — each function below must produce at least one D3
//! finding. Linted as `bios-platform` by `tests/semantic.rs`; the
//! receiver names (not types) carry the unordered-collection markers so
//! the fixture stays focused on D3 and does not also trip D1.

pub fn captured_reduction(policy: &ExecPolicy, xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    par_map(policy, xs, |_, x| {
        sum += x;
        0.0
    });
    sum
}

pub fn captured_product(policy: &ExecPolicy, xs: &[f64]) -> f64 {
    let mut scale = 1.0;
    try_par_map(policy, xs, |_, x| {
        scale *= x;
        Ok(0.0)
    });
    scale
}

pub fn unordered_keys(policy: &ExecPolicy, xs: &[f64], registry: &Registry) {
    try_par_map(policy, xs, |_, _x| {
        for k in registry.hash_map.keys() {
            touch(k);
        }
        Ok(0.0)
    });
}

pub fn unordered_sum(policy: &ExecPolicy, xs: &[f64], hashset: &Members) {
    par_map(policy, xs, |_, _x| hashset.iter().count() as f64);
}
