//! H3 negative fixture: the same calls outside the server loop's
//! reachability, plus the injected-`Clock` exemption, stay silent.

/// Hot (kernel root) but NOT reachable from `step_active`: H3 does not
/// bind here (H1/H2 still would — keep the body allocation-free).
pub fn step_wave(m: &Mutex) -> u64 {
    m.lock()
}

/// In the stepping loop, the injected telemetry clock is exempt.
pub fn step_active(clock: &Clock) -> u64 {
    let t0 = clock.now_nanos();
    t0
}

/// Cold code may block.
pub fn shutdown(h: Handle) {
    h.join();
    println!("done");
}
