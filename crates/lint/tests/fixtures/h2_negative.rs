//! H2 negative fixture: reductions that must stay silent.

/// Cold code may reduce however it likes.
pub fn report_mean(xs: &[f64]) -> f64 {
    let s: f64 = xs.iter().sum();
    s / xs.len() as f64
}

/// Warm driver setup: the reduction runs once per experiment, before
/// the step loop, so the op order is not per-step state.
pub fn simulate_chrono_fleet(xs: &[f64], steps: usize) -> f64 {
    let total: f64 = xs.iter().sum();
    let mut acc = total;
    for _ in 0..steps {
        acc += 1.0;
    }
    acc
}

/// An explicit index loop is the blessed hot accumulation shape.
pub fn step_with_rate_constants(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..xs.len() {
        acc += xs[i];
    }
    acc
}
