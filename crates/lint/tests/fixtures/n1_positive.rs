//! N1 positive fixture: each division here must produce exactly one
//! division-by-zero finding. Linted in memory, never compiled.

/// Local constant denominator that is exactly zero.
fn local_zero(signal: f64) -> f64 {
    let gain = 0.0;
    signal / gain
}

/// The denominator is zero at only one of the two call sites; the
/// interprocedural join over all sites makes the division unsafe.
fn normalize(x: f64, span: f64) -> f64 {
    x / span
}

fn sweep_driver() -> f64 {
    normalize(1.0, 2.0) + normalize(3.0, 0.0)
}

/// The zero arrives through a callee's return value.
fn dead_band() -> f64 {
    0.0
}

fn compensate(reading: f64) -> f64 {
    let width = dead_band();
    reading / width
}
