//! D3 fixture — nothing in this file may produce a D3 finding: every
//! reduction is merged by index, local to one item, or outside a
//! parallel closure entirely.

pub fn merge_by_index(policy: &ExecPolicy, xs: &[f64], out: &mut [f64]) {
    par_map(policy, xs, |i, x| {
        out[i] += x;
        0.0
    });
}

pub fn local_accumulator(policy: &ExecPolicy, xs: &[Trace]) {
    try_par_map(policy, xs, |_, t| {
        let mut acc = 0.0;
        for v in t.samples() {
            acc += v;
        }
        Ok(acc)
    });
}

pub fn ordered_sum(policy: &ExecPolicy, xs: &[Trace]) {
    par_map(policy, xs, |_, t| t.samples().iter().sum::<f64>());
}

pub fn serial_reduction(xs: &[f64]) -> f64 {
    let mut s = 0.0;
    for x in xs {
        s += x;
    }
    s
}
