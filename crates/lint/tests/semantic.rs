//! Fixture-driven integration tests for the semantic rules (U2, A1,
//! A2, D3, W0): every rule must fire on its positive fixture and stay
//! silent on its negative one. The fixtures under `tests/fixtures/`
//! are linted in memory — they are never compiled, so they can model
//! violations without breaking the build.

use bios_lint::{lint_files, lint_source, FileContext, MemFile, Severity};

fn rule_hits(ctx: &FileContext<'_>, src: &str, rule: &str) -> Vec<String> {
    lint_source(ctx, src)
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| format!("{}:{} {}", f.line, f.col, f.message))
        .collect()
}

fn electrochem() -> FileContext<'static> {
    FileContext {
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/fixture.rs",
    }
}

fn platform() -> FileContext<'static> {
    FileContext {
        crate_name: "bios-platform",
        rel_path: "crates/core/src/fixture.rs",
    }
}

#[test]
fn u2_fires_on_every_positive_fixture_fn() {
    let src = include_str!("fixtures/u2_positive.rs");
    let hits = rule_hits(&electrochem(), src, "U2");
    // One finding per function in the fixture.
    assert_eq!(hits.len(), 5, "{hits:#?}");
}

#[test]
fn u2_stays_silent_on_negative_fixture() {
    let src = include_str!("fixtures/u2_negative.rs");
    let hits = rule_hits(&electrochem(), src, "U2");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn d3_fires_on_every_positive_fixture_fn() {
    let src = include_str!("fixtures/d3_positive.rs");
    let hits = rule_hits(&platform(), src, "D3");
    // At least one finding per function; the `for` loop over
    // `registry.hash_map.keys()` legitimately reports twice (the loop
    // and the method call), so the bound is a floor.
    assert!(hits.len() >= 4, "{hits:#?}");
    assert!(
        hits.iter().any(|h| h.contains("captured `sum`")),
        "{hits:#?}"
    );
    assert!(
        hits.iter().any(|h| h.contains("captured `scale`")),
        "{hits:#?}"
    );
    assert!(hits.iter().any(|h| h.contains("hash_map")), "{hits:#?}");
    assert!(hits.iter().any(|h| h.contains("hashset")), "{hits:#?}");
}

#[test]
fn d3_stays_silent_on_negative_fixture() {
    let src = include_str!("fixtures/d3_negative.rs");
    let hits = rule_hits(&platform(), src, "D3");
    assert!(hits.is_empty(), "{hits:#?}");
}

/// The A1/A2 fixtures form a four-file in-memory workspace: an upward
/// reference from `bios-units`, a downward reference from
/// `bios-instrument`, and a `bios-afe` API file with one consumed and
/// one orphaned `pub fn`.
fn layering_workspace() -> Vec<MemFile> {
    vec![
        MemFile {
            crate_name: "bios-units".into(),
            rel_path: "crates/units/src/a1_positive.rs".into(),
            source: include_str!("fixtures/a1_positive.rs").into(),
            lintable: true,
        },
        MemFile {
            crate_name: "bios-instrument".into(),
            rel_path: "crates/instrument/src/a1_negative.rs".into(),
            source: include_str!("fixtures/a1_negative.rs").into(),
            lintable: true,
        },
        MemFile {
            crate_name: "bios-afe".into(),
            rel_path: "crates/afe/src/a2_api.rs".into(),
            source: include_str!("fixtures/a2_api.rs").into(),
            lintable: true,
        },
        MemFile {
            crate_name: "bios-instrument".into(),
            rel_path: "crates/instrument/src/a2_consumer.rs".into(),
            source: include_str!("fixtures/a2_consumer.rs").into(),
            lintable: true,
        },
    ]
}

#[test]
fn a1_flags_only_the_upward_edge() {
    let findings = lint_files(&layering_workspace());
    let a1: Vec<_> = findings.iter().filter(|f| f.rule == "A1").collect();
    assert_eq!(a1.len(), 1, "{a1:#?}");
    assert_eq!(a1[0].file, "crates/units/src/a1_positive.rs");
    assert_eq!(a1[0].severity, Severity::Error);
    assert!(
        a1[0].message.contains("bios-instrument"),
        "{}",
        a1[0].message
    );
}

#[test]
fn a2_warns_on_the_orphan_and_spares_the_consumed_item() {
    let findings = lint_files(&layering_workspace());
    let a2: Vec<_> = findings.iter().filter(|f| f.rule == "A2").collect();
    assert!(
        a2.iter().any(|f| f.message.contains("orphan_gain")),
        "{a2:#?}"
    );
    assert!(
        a2.iter().all(|f| !f.message.contains("used_gain")),
        "{a2:#?}"
    );
    assert!(a2.iter().all(|f| f.severity == Severity::Warning));
}

#[test]
fn w0_fires_on_stale_and_unknown_allows() {
    let src = include_str!("fixtures/w0_positive.rs");
    let hits = rule_hits(&electrochem(), src, "W0");
    assert_eq!(hits.len(), 2, "{hits:#?}");
    assert!(
        hits.iter().any(|h| h.contains("no longer suppresses")),
        "{hits:#?}"
    );
    assert!(
        hits.iter().any(|h| h.contains("names no known rule")),
        "{hits:#?}"
    );
}

#[test]
fn w0_stays_silent_on_consumed_allows_and_doc_prose() {
    let src = include_str!("fixtures/w0_negative.rs");
    let findings = lint_source(&electrochem(), src);
    assert!(findings.is_empty(), "{findings:#?}");
}
