//! Parser-recovery torture test: the fixture packs every construct the
//! lossy parser intentionally does not model — nested generics, async
//! blocks, macro invocation bodies (carrying would-be N1/N2 violations),
//! macro definitions, pattern-heavy matches — and the whole file must
//! lint to **zero findings**. Any finding here means the parser
//! over-claimed on a construct it cannot actually analyze, violating
//! the false-negative-lossy contract.

use bios_lint::{lint_source, parser, FileContext};

fn ctx() -> FileContext<'static> {
    FileContext {
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/torture.rs",
    }
}

#[test]
fn torture_fixture_lints_clean() {
    let src = include_str!("fixtures/torture.rs");
    let findings = lint_source(&ctx(), src);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn torture_fixture_still_parses_items() {
    // Recovery must not mean "give up on the file": the parser still
    // recognizes the plain fns around the unmodeled regions.
    let lexed = bios_lint::lexer::lex(include_str!("fixtures/torture.rs"));
    let items = parser::parse_items(&lexed);
    assert!(!items.is_empty());
}

#[test]
fn torture_fixture_is_stable_under_reparse() {
    // Lint twice; recovery paths must be deterministic.
    let src = include_str!("fixtures/torture.rs");
    let a = lint_source(&ctx(), src);
    let b = lint_source(&ctx(), src);
    assert_eq!(a, b);
}
