//! Fixture-driven integration tests for the interprocedural numeric
//! range rules (N1 division-by-zero, N2 `exp()` overflow, N3
//! catastrophic cancellation): every rule must fire on each seeded
//! site of its positive fixture and stay silent on its negative one.
//! The fixtures under `tests/fixtures/` are linted in memory — they
//! are never compiled, so they can model violations without breaking
//! the build.

use bios_lint::{lint_source, FileContext};

fn ctx() -> FileContext<'static> {
    FileContext {
        crate_name: "bios-electrochem",
        rel_path: "crates/electrochem/src/fixture.rs",
    }
}

fn rule_hits(src: &str, rule: &str) -> Vec<String> {
    lint_source(&ctx(), src)
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| format!("{}:{} {}", f.line, f.col, f.message))
        .collect()
}

#[test]
fn n1_fires_on_every_seeded_division() {
    let src = include_str!("fixtures/n1_positive.rs");
    let hits = rule_hits(src, "N1");
    // local_zero, normalize (via the join over its call sites), and
    // compensate (zero through a return value): one finding each.
    assert_eq!(hits.len(), 3, "{hits:#?}");
}

#[test]
fn n1_stays_silent_on_negative_fixture() {
    let src = include_str!("fixtures/n1_negative.rs");
    let hits = rule_hits(src, "N1");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn n2_fires_on_every_seeded_exp() {
    let src = include_str!("fixtures/n2_positive.rs");
    let hits = rule_hits(src, "N2");
    // tafel_rate, butler_volmer_anodic, arrhenius: one finding each.
    assert_eq!(hits.len(), 3, "{hits:#?}");
}

#[test]
fn n2_stays_silent_on_negative_fixture() {
    let src = include_str!("fixtures/n2_negative.rs");
    let hits = rule_hits(src, "N2");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn n3_fires_on_every_seeded_subtraction() {
    let src = include_str!("fixtures/n3_positive.rs");
    let hits = rule_hits(src, "N3");
    // reference_drift and calibration_gap: one finding each.
    assert_eq!(hits.len(), 2, "{hits:#?}");
}

#[test]
fn n3_stays_silent_on_negative_fixture() {
    let src = include_str!("fixtures/n3_negative.rs");
    let hits = rule_hits(src, "N3");
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn n_rule_findings_are_error_severity_with_spans() {
    let src = include_str!("fixtures/n1_positive.rs");
    let findings = lint_source(&ctx(), src);
    let n1: Vec<_> = findings.iter().filter(|f| f.rule == "N1").collect();
    assert!(!n1.is_empty());
    for f in n1 {
        assert_eq!(f.severity, bios_lint::Severity::Error);
        assert!(f.line > 0 && f.col > 0, "{f:?}");
        assert!(f.end_col > f.col, "{f:?}");
        assert!(!f.excerpt.is_empty(), "{f:?}");
    }
}
