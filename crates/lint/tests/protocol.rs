//! Fixture-driven integration tests for M1, the protocol-enum
//! exhaustiveness rule: every wildcard arm in the positive fixture must
//! fire, and every shape in the negative fixture must stay silent. The
//! fixtures under `tests/fixtures/` are linted in memory — they are
//! never compiled, so they can model violations without breaking the
//! build.

use bios_lint::{lint_source, FileContext, Severity};

fn server() -> FileContext<'static> {
    FileContext {
        crate_name: "bios-server",
        rel_path: "crates/server/src/fixture.rs",
    }
}

fn m1_hits(src: &str) -> Vec<String> {
    lint_source(&server(), src)
        .into_iter()
        .filter(|f| f.rule == "M1")
        .map(|f| format!("{}:{} {}", f.line, f.col, f.message))
        .collect()
}

#[test]
fn m1_fires_on_every_positive_fixture_fn() {
    let src = include_str!("fixtures/m1_positive.rs");
    let hits = m1_hits(src);
    // One wildcard arm per function in the fixture.
    assert_eq!(hits.len(), 5, "{hits:#?}");
}

#[test]
fn m1_stays_silent_on_negative_fixture() {
    let src = include_str!("fixtures/m1_negative.rs");
    let hits = m1_hits(src);
    assert!(hits.is_empty(), "{hits:#?}");
}

#[test]
fn m1_findings_gate_the_build() {
    let src = include_str!("fixtures/m1_positive.rs");
    assert!(lint_source(&server(), src)
        .iter()
        .filter(|f| f.rule == "M1")
        .all(|f| f.severity == Severity::Error));
}
