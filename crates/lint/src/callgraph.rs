//! Workspace-wide call graph and hot-region inference.
//!
//! The graph is name-grained: every non-test `fn` definition registers its
//! bare name, every call site registers an edge from the enclosing
//! definition's name to the callee's last path segment (free calls) or
//! method name (method calls). Names are all the lossy AST gives us — there
//! is no type or impl resolution — so the reachability fixpoint is bounded
//! by a *definition-multiplicity* rule that keeps the lossiness in the
//! false-negative direction:
//!
//! * a **root** name is hot unconditionally (every definition of it);
//! * an edge `hot → callee` makes `callee` hot only when the workspace has
//!   at most [`MAX_TWIN_DEFS`] non-test definitions of that name. One
//!   definition is an unambiguous resolution; two is the batch/scalar twin
//!   pattern this codebase uses throughout (`solve_base`,
//!   `step_with_rate_constants`). Three or more is ambiguous — common
//!   names like `new`, `value`, `len` would otherwise drag the whole
//!   workspace into the hot region — so propagation stops (a false
//!   negative, never a false positive);
//! * a name marked **cold** (the `advdiag::cold` boundary marker, see
//!   [`crate::hotpath`]) never enters the hot set and never propagates.
//!
//! Hotness is two-level (the [`Level`] lattice): a name is
//! [`Level::PerIter`] when some call path from a root crosses a loop body
//! — its whole body executes once per hot-loop iteration — and
//! [`Level::Warm`] when it is only reached by straight-line calls, so its
//! own setup code runs once per invocation and only its *loop bodies* are
//! per-iteration. Call edges therefore carry an `in_loop` flag (true when
//! some call site sits inside a `for`/`while` body): a `PerIter` caller
//! propagates `PerIter` over every edge, a `Warm` caller propagates
//! `PerIter` over in-loop edges and `Warm` over straight-line ones. This
//! is what lets a fleet driver hoist its scratch buffers *above* its step
//! loop — the canonical H1 fix — without the hoisted allocation itself
//! being flagged.
//!
//! Adding a call edge can only grow the hot set and only raise levels
//! (monotonicity — pinned by a proptest in
//! `crates/bench/tests/lint_callgraph.rs`); adding a *definition* can
//! shrink it by pushing a name over the multiplicity bound, which is the
//! intended ambiguity cutoff.

use std::collections::{BTreeMap, BTreeSet};

/// Maximum number of non-test definitions a callee name may have and still
/// receive hotness through a call edge (the batch/scalar twin bound).
pub const MAX_TWIN_DEFS: usize = 2;

/// How often a hot function's own body runs, relative to the kernel loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Reached only by straight-line calls: body runs once per root
    /// invocation; only its loop bodies are per-iteration regions.
    Warm,
    /// Some call path crosses a loop body (or the root is itself a
    /// per-step entry): the whole body is a per-iteration region.
    PerIter,
}

/// A name-grained call graph with declared hot roots and cold boundaries.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Definition multiplicity per name (non-test `fn` items).
    defs: BTreeMap<String, usize>,
    /// Call edges: caller name → callee name → "some call site is inside
    /// a loop body" (merged with OR across sites).
    edges: BTreeMap<String, BTreeMap<String, bool>>,
    /// Declared hot entry points with their cadence.
    roots: BTreeMap<String, Level>,
    /// Names excluded from the hot region (propagation boundaries).
    cold: BTreeSet<String>,
}

impl CallGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one definition of `name` (call once per `fn` item).
    pub fn add_def(&mut self, name: &str) {
        *self.defs.entry(name.to_string()).or_insert(0) += 1;
    }

    /// Registers a call edge from the definition named `caller`.
    /// `in_loop` marks a call site inside a `for`/`while` body; repeated
    /// edges merge with OR, so one looped site makes the edge looped.
    pub fn add_call(&mut self, caller: &str, callee: &str, in_loop: bool) {
        let e = self
            .edges
            .entry(caller.to_string())
            .or_default()
            .entry(callee.to_string())
            .or_insert(false);
        *e |= in_loop;
    }

    /// Declares `name` a hot root (kernel entry, marker, par closure) at
    /// the given cadence. Repeated declarations keep the higher level.
    pub fn add_root(&mut self, name: &str, level: Level) {
        let e = self.roots.entry(name.to_string()).or_insert(level);
        if *e < level {
            *e = level;
        }
    }

    /// Declares `name` a cold boundary: it never becomes hot and hotness
    /// never propagates through it.
    pub fn add_cold(&mut self, name: &str) {
        self.cold.insert(name.to_string());
    }

    /// Number of registered non-test definitions of `name`.
    pub fn def_count(&self, name: &str) -> usize {
        self.defs.get(name).copied().unwrap_or(0)
    }

    /// The declared roots, in sorted order.
    pub fn roots(&self) -> impl Iterator<Item = &str> {
        self.roots.keys().map(String::as_str)
    }

    /// Computes the hot region with cadence levels: every name reachable
    /// from the declared roots under the multiplicity/cold rules, mapped
    /// to the highest [`Level`] any path assigns it. Deterministic (BTree
    /// iteration order) and monotone in the edge set.
    pub fn hot_levels(&self) -> BTreeMap<String, Level> {
        self.hot_levels_from(self.roots.iter().map(|(n, l)| (n.as_str(), *l)))
    }

    /// As [`Self::hot_levels`], but seeded from an explicit root set —
    /// the H3 pass restricts reachability to the shard stepping loop.
    pub fn hot_levels_from<'r>(
        &self,
        seeds: impl IntoIterator<Item = (&'r str, Level)>,
    ) -> BTreeMap<String, Level> {
        let mut hot: BTreeMap<String, Level> = BTreeMap::new();
        let mut work: Vec<String> = Vec::new();
        for (root, level) in seeds {
            if self.cold.contains(root) {
                continue;
            }
            match hot.get_mut(root) {
                Some(old) if *old >= level => {}
                Some(old) => {
                    *old = level;
                    work.push(root.to_string());
                }
                None => {
                    hot.insert(root.to_string(), level);
                    work.push(root.to_string());
                }
            }
        }
        while let Some(name) = work.pop() {
            let level = hot[&name];
            let Some(callees) = self.edges.get(&name) else {
                continue;
            };
            for (callee, &in_loop) in callees {
                if self.cold.contains(callee) {
                    continue;
                }
                let defs = self.def_count(callee);
                if !(1..=MAX_TWIN_DEFS).contains(&defs) {
                    continue;
                }
                let next = if level == Level::PerIter || in_loop {
                    Level::PerIter
                } else {
                    Level::Warm
                };
                match hot.get_mut(callee) {
                    Some(old) if *old >= next => {}
                    Some(old) => {
                        *old = next;
                        work.push(callee.clone());
                    }
                    None => {
                        hot.insert(callee.clone(), next);
                        work.push(callee.clone());
                    }
                }
            }
        }
        hot
    }

    /// The hot region as a plain set (levels dropped).
    pub fn hot_set(&self) -> BTreeSet<String> {
        self.hot_levels().into_keys().collect()
    }

    /// As [`Self::hot_set`], seeded from explicit per-iteration roots.
    pub fn hot_set_from<'r>(&self, roots: impl IntoIterator<Item = &'r str>) -> BTreeSet<String> {
        self.hot_levels_from(roots.into_iter().map(|r| (r, Level::PerIter)))
            .into_keys()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> CallGraph {
        let mut g = CallGraph::new();
        g.add_def("root_kernel");
        g.add_def("unique_helper");
        g.add_def("twin_a");
        g.add_def("twin_a");
        g.add_root("root_kernel", Level::PerIter);
        g
    }

    #[test]
    fn roots_and_unique_callees_are_hot() {
        let mut g = graph();
        g.add_call("root_kernel", "unique_helper", false);
        let hot = g.hot_set();
        assert!(hot.contains("root_kernel"));
        assert!(hot.contains("unique_helper"));
    }

    #[test]
    fn twin_defs_propagate_but_triples_do_not() {
        let mut g = graph();
        g.add_call("root_kernel", "twin_a", false);
        assert!(g.hot_set().contains("twin_a"));
        g.add_def("twin_a"); // third definition: now ambiguous
        assert!(!g.hot_set().contains("twin_a"));
    }

    #[test]
    fn external_names_do_not_propagate() {
        let mut g = graph();
        g.add_call("root_kernel", "with_capacity", false); // no workspace def
        assert!(!g.hot_set().contains("with_capacity"));
    }

    #[test]
    fn cold_boundary_stops_propagation() {
        let mut g = graph();
        g.add_def("dispatch");
        g.add_call("root_kernel", "dispatch", true);
        g.add_call("dispatch", "unique_helper", true);
        g.add_cold("dispatch");
        let hot = g.hot_set();
        assert!(!hot.contains("dispatch"));
        assert!(!hot.contains("unique_helper"));
    }

    #[test]
    fn transitive_reachability_and_cycles_terminate() {
        let mut g = graph();
        g.add_def("a");
        g.add_def("b");
        g.add_call("root_kernel", "a", false);
        g.add_call("a", "b", false);
        g.add_call("b", "a", false); // cycle
        let hot = g.hot_set();
        assert!(hot.contains("a") && hot.contains("b"));
    }

    #[test]
    fn adding_edges_is_monotone() {
        let mut g = graph();
        g.add_call("root_kernel", "twin_a", false);
        let before = g.hot_set();
        g.add_call("twin_a", "unique_helper", true);
        let after = g.hot_set();
        assert!(after.is_superset(&before));
    }

    #[test]
    fn warm_root_propagates_periter_only_through_loops() {
        let mut g = CallGraph::new();
        for n in ["driver", "setup", "kernel", "inner"] {
            g.add_def(n);
        }
        g.add_root("driver", Level::Warm);
        g.add_call("driver", "setup", false); // straight-line: setup code
        g.add_call("driver", "kernel", true); // called inside the step loop
        g.add_call("kernel", "inner", false); // straight-line from per-iter
        let levels = g.hot_levels();
        assert_eq!(levels["driver"], Level::Warm);
        assert_eq!(levels["setup"], Level::Warm);
        assert_eq!(levels["kernel"], Level::PerIter);
        // Everything a per-iteration function calls runs per iteration.
        assert_eq!(levels["inner"], Level::PerIter);
    }

    #[test]
    fn levels_upgrade_when_a_looped_path_appears() {
        let mut g = CallGraph::new();
        for n in ["driver", "helper"] {
            g.add_def(n);
        }
        g.add_root("driver", Level::Warm);
        g.add_call("driver", "helper", false);
        assert_eq!(g.hot_levels()["helper"], Level::Warm);
        g.add_call("driver", "helper", true); // OR-merge: now looped
        assert_eq!(g.hot_levels()["helper"], Level::PerIter);
    }
}
