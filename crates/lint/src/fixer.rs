//! The auto-fix engine: machine-applicable rewrites attached to
//! findings, byte-exact splicing, and a fixpoint driver that re-lints
//! after every application round.
//!
//! The safety taxonomy follows rustc's suggestion applicability:
//! [`FixSafety::MachineApplicable`] fixes preserve the program's meaning
//! (or make an intended meaning explicit) and are applied by `--fix`;
//! [`FixSafety::Suggested`] fixes are API-shape changes (U1's newtype
//! rewrite, D1 with a non-`Ord`-provable key) that are reported but never
//! applied automatically.
//!
//! Idempotence is structural: each round lints, applies every
//! non-overlapping machine-applicable fix, and re-lints; the driver only
//! returns success once a round produces no fixes at all, so running the
//! fixer on its own output is always a no-op. A fix that failed to
//! remove its finding would trip the round limit and surface as an
//! error instead of looping.

use std::collections::{BTreeMap, BTreeSet};

use crate::baseline::Baseline;
use crate::rules::{FileContext, Finding};
use crate::workspace::{lint_files_graph, MemFile};

/// How trustworthy a fix is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FixSafety {
    /// Applying the fix preserves the program's meaning; `--fix` applies
    /// these without asking.
    MachineApplicable,
    /// A starting point that needs human follow-up (signature changes,
    /// types the linter cannot prove `Ord`); reported, never applied.
    Suggested,
}

impl FixSafety {
    /// Label used in reports (`"machine-applicable"` / `"suggested"`).
    pub fn label(self) -> &'static str {
        match self {
            FixSafety::MachineApplicable => "machine-applicable",
            FixSafety::Suggested => "suggested",
        }
    }
}

/// A textual rewrite: replace the source bytes `start..end` with
/// `replacement`. Offsets index the exact file contents the finding was
/// produced from, so splicing is byte-exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Byte offset of the first replaced byte.
    pub start: usize,
    /// Byte offset one past the last replaced byte.
    pub end: usize,
    /// Replacement text (empty for deletions).
    pub replacement: String,
    pub safety: FixSafety,
}

/// Outcome of a workspace fixpoint run.
#[derive(Debug, Default, Clone)]
pub struct FixOutcome {
    /// Total fixes applied across all rounds.
    pub applied: usize,
    /// Lint → apply rounds executed (0 when already clean).
    pub rounds: u32,
    /// Rel-paths of files whose contents changed, sorted.
    pub changed: Vec<String>,
}

/// Rounds before the driver declares the fixpoint divergent. Every
/// shipped fix removes its own finding, so 2 rounds normally suffice
/// (W0 fixes only appear once their neighbours' findings are gone).
const MAX_ROUNDS: u32 = 8;

/// True for fixes `--fix` may apply.
pub fn is_applicable(f: &Finding) -> bool {
    f.fix
        .as_ref()
        .map(|fx| fx.safety == FixSafety::MachineApplicable)
        .unwrap_or(false)
}

/// Applies non-overlapping fixes to one source text; returns the new
/// text and how many fixes were applied. Fixes are ordered by position;
/// a fix overlapping an earlier-accepted one, or carrying offsets that
/// do not index `source` on char boundaries, is skipped deterministically.
/// A deletion whose line would be left all-whitespace consumes the whole
/// line (stale-suppression comments disappear without leaving blanks).
pub fn splice(source: &str, fixes: &[&Fix]) -> (String, usize) {
    let mut sorted: Vec<&Fix> = fixes.to_vec();
    sorted.sort_by_key(|f| (f.start, f.end));
    sorted.dedup();
    let mut accepted: Vec<(usize, usize, &str)> = Vec::new();
    for f in sorted {
        if f.end < f.start
            || f.end > source.len()
            || !source.is_char_boundary(f.start)
            || !source.is_char_boundary(f.end)
        {
            continue;
        }
        let (start, end) = if f.replacement.is_empty() {
            widen_deletion(source, f.start, f.end)
        } else {
            (f.start, f.end)
        };
        if accepted.iter().any(|(s, e, _)| start < *e && *s < end) {
            continue;
        }
        accepted.push((start, end, f.replacement.as_str()));
    }
    accepted.sort_by_key(|(s, e, _)| (*s, *e));
    let n = accepted.len();
    let mut out = source.to_string();
    for (start, end, rep) in accepted.iter().rev() {
        out.replace_range(*start..*end, rep);
    }
    (out, n)
}

/// If deleting `start..end` would leave its line(s) containing only
/// whitespace, widen the span to swallow the whole line including the
/// trailing newline.
fn widen_deletion(source: &str, start: usize, end: usize) -> (usize, usize) {
    let line_start = source[..start].rfind('\n').map(|p| p + 1).unwrap_or(0);
    let line_end = source[end..]
        .find('\n')
        .map(|p| end + p + 1)
        .unwrap_or(source.len());
    let before_ws = source[line_start..start].chars().all(char::is_whitespace);
    let after_ws = source[end..line_end].chars().all(char::is_whitespace);
    if before_ws && after_ws {
        (line_start, line_end)
    } else {
        (start, end)
    }
}

/// Single-file fixpoint: lints `source` in `ctx` (per-file rules + the
/// single-file range analysis + W0), applies every machine-applicable
/// fix, and repeats until a lint pass yields none. Returns the fixed
/// text and the number of fixes applied. Apply-twice equals apply-once
/// by construction — the last round proves the output is fix-free.
pub fn fix_source(ctx: &FileContext<'_>, source: &str) -> (String, usize) {
    let mut text = source.to_string();
    let mut applied = 0usize;
    for _ in 0..MAX_ROUNDS {
        let findings = crate::rules::lint_source(ctx, &text);
        let fixes: Vec<&Fix> = findings
            .iter()
            .filter(|f| is_applicable(f))
            .filter_map(|f| f.fix.as_ref())
            .collect();
        if fixes.is_empty() {
            break;
        }
        let (next, n) = splice(&text, &fixes);
        if n == 0 {
            break;
        }
        applied += n;
        text = next;
    }
    (text, applied)
}

/// Workspace fixpoint: repeatedly runs the full pipeline over `files`,
/// applies machine-applicable fixes from *fresh* (non-baselined)
/// findings, and stops when a pass yields none. Baselined findings are
/// grandfathered debt and left untouched. Errors if the fixpoint does
/// not converge within [`MAX_ROUNDS`].
pub fn fix_files(files: &mut [MemFile], baseline: &Baseline) -> Result<FixOutcome, String> {
    let mut outcome = FixOutcome::default();
    let mut changed = BTreeSet::new();
    for _ in 0..MAX_ROUNDS {
        let (findings, _) = lint_files_graph(files);
        let (_, fresh) = baseline.partition(&findings);
        let mut per_file: BTreeMap<String, Vec<Fix>> = BTreeMap::new();
        for f in fresh {
            if is_applicable(f) {
                if let Some(fx) = &f.fix {
                    per_file.entry(f.file.clone()).or_default().push(fx.clone());
                }
            }
        }
        if per_file.is_empty() {
            outcome.changed = changed.into_iter().collect();
            return Ok(outcome);
        }
        outcome.rounds += 1;
        let mut applied_this_round = 0usize;
        for (path, fixes) in &per_file {
            let Some(mf) = files.iter_mut().find(|f| &f.rel_path == path) else {
                continue;
            };
            let refs: Vec<&Fix> = fixes.iter().collect();
            let (next, n) = splice(&mf.source, &refs);
            if n > 0 {
                mf.source = next;
                changed.insert(path.clone());
                applied_this_round += n;
            }
        }
        if applied_this_round == 0 {
            return Err(
                "fix run stalled: machine-applicable fixes remain but none could be spliced"
                    .to_string(),
            );
        }
        outcome.applied += applied_this_round;
    }
    Err(format!(
        "fix run did not converge in {MAX_ROUNDS} rounds: a fix is re-introducing its own finding"
    ))
}

/// A minimal unified diff between two versions of one file: a single
/// hunk covering the changed region. Empty when the texts are equal.
pub fn unified_diff(path: &str, old: &str, new: &str) -> String {
    if old == new {
        return String::new();
    }
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let mut pre = 0usize;
    while pre < a.len() && pre < b.len() && a[pre] == b[pre] {
        pre += 1;
    }
    let mut post = 0usize;
    while post < a.len().saturating_sub(pre)
        && post < b.len().saturating_sub(pre)
        && a[a.len() - 1 - post] == b[b.len() - 1 - post]
    {
        post += 1;
    }
    let (a_end, b_end) = (a.len() - post, b.len() - post);
    let mut out = format!("--- a/{path}\n+++ b/{path}\n");
    out.push_str(&format!(
        "@@ -{},{} +{},{} @@\n",
        pre + 1,
        a_end - pre,
        pre + 1,
        b_end - pre
    ));
    for l in &a[pre..a_end] {
        out.push_str(&format!("-{l}\n"));
    }
    for l in &b[pre..b_end] {
        out.push_str(&format!("+{l}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(start: usize, end: usize, rep: &str) -> Fix {
        Fix {
            start,
            end,
            replacement: rep.to_string(),
            safety: FixSafety::MachineApplicable,
        }
    }

    #[test]
    fn splice_applies_in_order_and_skips_overlaps() {
        let src = "abc def ghi";
        let f1 = fix(0, 3, "XYZ");
        let f2 = fix(4, 7, "12");
        let overlap = fix(2, 5, "!!");
        let (out, n) = splice(src, &[&f2, &f1, &overlap]);
        assert_eq!(out, "XYZ 12 ghi");
        assert_eq!(n, 2);
    }

    #[test]
    fn splice_rejects_non_boundary_and_oob_spans() {
        let src = "µΩ x";
        let bad = fix(1, 3, "y"); // inside µ
        let oob = fix(0, 99, "y");
        let (out, n) = splice(src, &[&bad, &oob]);
        assert_eq!(out, src);
        assert_eq!(n, 0);
    }

    #[test]
    fn deletion_swallows_whole_blank_line() {
        let src = "keep\n  // advdiag::allow(D1, gone)\nalso\n";
        let start = src.find("//").expect("comment");
        let end = start + "// advdiag::allow(D1, gone)".len();
        let (out, n) = splice(src, &[&fix(start, end, "")]);
        assert_eq!(out, "keep\nalso\n");
        assert_eq!(n, 1);
    }

    #[test]
    fn deletion_preserves_shared_lines() {
        let src = "let x = 1; // advdiag::allow(D1, gone)\n";
        let start = src.find("//").expect("comment");
        let (out, _) = splice(src, &[&fix(start, src.len() - 1, "")]);
        assert_eq!(out, "let x = 1; \n");
    }

    #[test]
    fn unified_diff_covers_changed_region_only() {
        let old = "a\nb\nc\nd\n";
        let new = "a\nB\nc\nd\n";
        let d = unified_diff("f.rs", old, new);
        assert!(d.contains("--- a/f.rs"), "{d}");
        assert!(d.contains("-b\n"), "{d}");
        assert!(d.contains("+B\n"), "{d}");
        assert!(!d.contains("-a\n"), "{d}");
        assert!(unified_diff("f.rs", old, old).is_empty());
    }
}
