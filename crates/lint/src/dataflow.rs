//! Rule D3 — determinism dataflow inside the parallel engine's closures.
//!
//! `bios-platform::exec::par_map`/`try_par_map` guarantee bit-identical
//! results by computing each item independently and merging **by index**.
//! That guarantee dies quietly if the per-item closure smuggles in
//! cross-item state: a captured accumulator (`sum += x`) commits results
//! in scheduler order, and iterating an unordered collection inside the
//! closure varies the per-item op order between runs. This analysis finds
//! closures passed to `par_map`/`try_par_map` and flags:
//!
//! 1. compound assignment (`+=`, `-=`, `*=`, `/=`) to an identifier the
//!    closure does not bind itself — a captured reduction. Writes through
//!    an index (`out[i] += …`) are the sanctioned merge-by-index shape
//!    and stay silent;
//! 2. iteration (`for`, `.iter()`, `.keys()`, `.values()`, `.drain()`,
//!    `.sum()`, `.fold()`, `.into_iter()`) whose receiver chain names an
//!    unordered hash collection (lexically: `hashmap`/`hashset`/…).
//!
//! Bindings introduced by match-arm and `if let` patterns are invisible
//! to the lossy parser, so a compound assignment to such a binding could
//! in principle false-positive; that shape does not occur in this
//! workspace and is suppressible with a reason if it ever does.

use crate::ast::{Expr, Item, Stmt};
use crate::rules::{push, FileContext, Finding, DETERMINISTIC_CRATES};
use std::collections::BTreeSet;

/// The entry points whose closure arguments execute in parallel.
const PAR_FNS: &[&str] = &["par_map", "try_par_map"];

/// Compound assignments whose result depends on commit order across
/// items (float arithmetic is non-associative).
const ORDER_SENSITIVE_OPS: &[&str] = &["+=", "-=", "*=", "/="];

/// Method names that consume or traverse a collection.
const ITERATING_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "sum",
    "fold",
    "product",
];

/// Lexical markers of unordered hash collections.
const UNORDERED_MARKERS: &[&str] = &["hashmap", "hash_map", "hashset", "hash_set"];

/// D3 entry point: finds `par_map`/`try_par_map` call sites in non-test
/// code and inspects their closure arguments.
pub fn rule_d3(ctx: &FileContext<'_>, items: &[Item], findings: &mut Vec<Finding>) {
    if !DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for item in items {
        item.visit_fns(&mut |owner, f| {
            if owner.in_test {
                return;
            }
            let Some(body) = &f.body else { return };
            body.visit(&mut |e| {
                let Expr::Call { callee, args, .. } = e else {
                    return;
                };
                let Expr::Path { segments, .. } = &**callee else {
                    return;
                };
                let Some(par_fn) = segments.last().filter(|s| PAR_FNS.contains(&s.as_str())) else {
                    return;
                };
                for arg in args {
                    if let Expr::Closure { params, body, .. } = arg {
                        check_closure(ctx, par_fn, params, body, findings);
                    }
                }
            });
        });
    }
}

/// Inspects one closure passed to a parallel entry point.
fn check_closure(
    ctx: &FileContext<'_>,
    par_fn: &str,
    params: &[String],
    body: &Expr,
    findings: &mut Vec<Finding>,
) {
    // Everything the closure binds itself: params, lets, for-loop and
    // nested-closure bindings. Writes to those are per-item state.
    let mut bound: BTreeSet<String> = params.iter().cloned().collect();
    body.visit(&mut |e| match e {
        Expr::Block(b) => {
            for stmt in &b.stmts {
                if let Stmt::Let { names, .. } = stmt {
                    bound.extend(names.iter().cloned());
                }
            }
        }
        Expr::For { bindings, .. } => bound.extend(bindings.iter().cloned()),
        Expr::Closure { params, .. } => bound.extend(params.iter().cloned()),
        _ => {}
    });
    body.visit(&mut |e| match e {
        Expr::Assign {
            op, target, span, ..
        } if ORDER_SENSITIVE_OPS.contains(&op.as_str()) => {
            // `out[i] += …` / `acc.field += …` merge by index or through
            // per-item structure; only a bare captured name is flagged.
            if let Expr::Path { segments, .. } = &**target {
                if let [name] = segments.as_slice() {
                    if !bound.contains(name) {
                        push(
                            findings,
                            "D3",
                            ctx,
                            span.line,
                            span.col,
                            format!(
                                "`{op}` into captured `{name}` inside a `{par_fn}` \
                                 closure: cross-item reduction commits in scheduler \
                                 order and breaks bit-reproducibility; return \
                                 per-item values and merge by index"
                            ),
                        );
                    }
                }
            }
        }
        Expr::For { iter, span, .. } => {
            if let Some(name) = unordered_receiver(iter) {
                push(
                    findings,
                    "D3",
                    ctx,
                    span.line,
                    span.col,
                    format!(
                        "iteration over `{name}` (lexically an unordered hash \
                         collection) inside a `{par_fn}` closure: per-item op \
                         order varies between runs; use an ordered collection"
                    ),
                );
            }
        }
        Expr::MethodCall {
            recv, method, span, ..
        } if ITERATING_METHODS.contains(&method.as_str()) => {
            if let Some(name) = unordered_receiver(recv) {
                push(
                    findings,
                    "D3",
                    ctx,
                    span.line,
                    span.col,
                    format!(
                        "`.{method}()` over `{name}` (lexically an unordered hash \
                         collection) inside a `{par_fn}` closure: traversal order \
                         varies between runs; use an ordered collection"
                    ),
                );
            }
        }
        _ => {}
    });
}

/// Finds an identifier lexically naming an unordered collection in the
/// receiver chain of an iteration (`self.hash_map.iter()`, `hashset`, …).
fn unordered_receiver(e: &Expr) -> Option<String> {
    let mut found = None;
    e.visit(&mut |x| {
        if found.is_some() {
            return;
        }
        let candidate = match x {
            Expr::Path { segments, .. } => segments.last(),
            Expr::Field { name, .. } => Some(name),
            _ => None,
        };
        if let Some(name) = candidate {
            let lower = name.to_lowercase();
            if UNORDERED_MARKERS.iter().any(|m| lower.contains(m)) {
                found = Some(name.clone());
            }
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileContext};

    fn ctx() -> FileContext<'static> {
        FileContext {
            crate_name: "bios-platform",
            rel_path: "crates/core/src/x.rs",
        }
    }

    fn d3(src: &str) -> Vec<String> {
        lint_source(&ctx(), src)
            .into_iter()
            .filter(|f| f.rule == "D3")
            .map(|f| f.message)
            .collect()
    }

    #[test]
    fn captured_reduction_fires() {
        let src = "fn f() {\n    let mut sum = 0.0;\n    par_map(policy, &xs, |_, x| { sum += x.value(); 0.0 });\n}\n";
        let hits = d3(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains("captured `sum`"), "{hits:?}");
    }

    #[test]
    fn merge_by_index_and_local_accumulators_are_clean() {
        // Indexed write is the sanctioned merge shape.
        assert!(
            d3("fn f() {\n    par_map(policy, &xs, |i, x| { out[i] += x; 0.0 });\n}\n").is_empty()
        );
        // A closure-local accumulator is per-item state.
        assert!(d3(
            "fn f() {\n    try_par_map(policy, &xs, |_, x| {\n        let mut acc = 0.0;\n        for v in x.samples() { acc += v; }\n        Ok(acc)\n    });\n}\n"
        )
        .is_empty());
        // Reductions outside par closures are not D3's business.
        assert!(
            d3("fn f(xs: &[f64]) {\n    let mut s = 0.0;\n    for x in xs { s += x; }\n}\n")
                .is_empty()
        );
    }

    #[test]
    fn unordered_iteration_fires() {
        let src = "fn f() {\n    try_par_map(policy, &xs, |_, x| {\n        for k in self.hash_map.keys() { touch(k); }\n        Ok(0.0)\n    });\n}\n";
        let hits = d3(src);
        assert!(!hits.is_empty(), "{hits:?}");
        assert!(hits[0].contains("hash_map"), "{hits:?}");
        // Sum over an ordered per-item slice is fine.
        assert!(d3(
            "fn f() {\n    par_map(policy, &xs, |_, x| x.samples().iter().sum::<f64>());\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn d3_respects_tests_and_suppression() {
        let in_test = "#[cfg(test)]\nmod t {\n    fn g() {\n        let mut s = 0.0;\n        par_map(p, &xs, |_, x| { s += x; 0.0 });\n    }\n}\n";
        assert!(d3(in_test).is_empty());
        let suppressed = "fn f() {\n    let mut s = 0.0;\n    // advdiag::allow(D3, prototype path, replaced by merge in #412)\n    par_map(p, &xs, |_, x| { s += x; 0.0 });\n}\n";
        assert!(d3(suppressed).is_empty());
        let wrong_crate = FileContext {
            crate_name: "bios-biochem",
            rel_path: "crates/biochem/src/x.rs",
        };
        let src =
            "fn f() {\n    let mut s = 0.0;\n    par_map(p, &xs, |_, x| { s += x; 0.0 });\n}\n";
        assert!(lint_source(&wrong_crate, src)
            .iter()
            .all(|f| f.rule != "D3"));
    }
}
