//! Workspace discovery: which files get linted, under which crate
//! context.
//!
//! The walk covers the root package's `src/` and every `crates/*/src/`
//! tree, in sorted order so diagnostics and reports are deterministic.
//! The vendored dependency stand-ins under `shims/` are deliberately
//! excluded: they imitate external crates' APIs (panicking included) and
//! are not governed by the platform's invariants. Test (`tests/`) and
//! bench (`benches/`) trees are excluded too — the rules only bind
//! library code, and in-file `#[cfg(test)]` modules are already skipped
//! by the lexer.

use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::{lint_source, FileContext, Finding};

/// One file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Cargo package name owning the file.
    pub crate_name: String,
    /// Repo-relative path with `/` separators.
    pub rel_path: String,
    /// Absolute (or root-joined) path on disk.
    pub path: PathBuf,
}

/// Discovers every lintable source file under `root` (the workspace
/// root), sorted by path.
pub fn discover(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    // Root package.
    collect_package(root, root.join("src"), "src", &mut files)?;
    // Member crates.
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    members.sort();
    for member in members {
        let dir_name = member
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("non-UTF-8 crate dir under {}", crates_dir.display()))?
            .to_string();
        collect_package(
            &member,
            member.join("src"),
            &format!("crates/{dir_name}/src"),
            &mut files,
        )?;
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Lints every discovered file, returning findings sorted by
/// `(file, line, rule)`.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for file in discover(root)? {
        let source = fs::read_to_string(&file.path)
            .map_err(|e| format!("cannot read {}: {e}", file.path.display()))?;
        let ctx = FileContext {
            crate_name: &file.crate_name,
            rel_path: &file.rel_path,
        };
        findings.extend(lint_source(&ctx, &source));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// Adds every `.rs` file under `src_dir` (recursively) for the package
/// rooted at `pkg_dir`.
fn collect_package(
    pkg_dir: &Path,
    src_dir: PathBuf,
    rel_prefix: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    if !src_dir.is_dir() {
        return Ok(());
    }
    let crate_name = package_name(&pkg_dir.join("Cargo.toml"))?;
    let mut stack = vec![(src_dir, rel_prefix.to_string())];
    while let Some((dir, rel)) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name
                .to_str()
                .ok_or_else(|| format!("non-UTF-8 file name under {}", dir.display()))?;
            if path.is_dir() {
                stack.push((path, format!("{rel}/{name}")));
            } else if name.ends_with(".rs") {
                out.push(SourceFile {
                    crate_name: crate_name.clone(),
                    rel_path: format!("{rel}/{name}"),
                    path,
                });
            }
        }
    }
    Ok(())
}

/// Extracts `package.name` from a Cargo manifest with a line scan (the
/// manifests in this workspace put `[package]` first and never nest a
/// `name =` key above it).
fn package_name(manifest: &Path) -> Result<String, String> {
    let text = fs::read_to_string(manifest)
        .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                let value = value.trim().trim_matches('"');
                return Ok(value.to_string());
            }
        }
    }
    Err(format!("no package.name in {}", manifest.display()))
}
