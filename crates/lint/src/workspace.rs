//! Workspace discovery and the workspace-scope lint pipeline.
//!
//! Two kinds of files are gathered:
//!
//! - **lintable** files — the root package's `src/` and every
//!   `crates/*/src/` tree. All per-file rules plus A1 (layering) bind
//!   here.
//! - **corpus-only** files — `tests/`, `benches/` and `examples/` trees
//!   of every package. They are never linted, but their text feeds A2's
//!   reference corpus so an item used only from integration tests is not
//!   reported dead.
//!
//! The walk is sorted so diagnostics, reports and the DOT artifact are
//! deterministic. The vendored dependency stand-ins under `shims/` are
//! deliberately excluded: they imitate external crates' APIs (panicking
//! included) and are not governed by the platform's invariants. In-file
//! `#[cfg(test)]` modules are already skipped by the lexer.
//!
//! Pipeline of [`lint_files`]: a per-file phase (lex, parse, token and
//! semantic rules, per-file suppression, fact extraction) that is
//! skipped for files whose content hash matches a [`LintCache`] entry,
//! then the crate-scope range analysis (N1–N3, cached per crate), then
//! the workspace analyses (A1/A2 over the merged facts) with
//! suppression resolved against each finding's file, then W0 over every
//! allow that no rule — per-file, crate or workspace — ever consumed.
//! Cold and warm runs share every phase past the per-file one, so their
//! findings are identical by construction.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::ast::Item;
use crate::cache::{self, CacheEntry, HotEntry, LintCache, RangeEntry};
use crate::depgraph::{self, DepGraph, FactsRef, FileFacts};
use crate::hotpath;
use crate::lexer::lex;
use crate::parser::parse_items;
use crate::rules::{self, lint_file_prepared, suppress, AllowSite, FileContext, Finding};

/// One file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Cargo package name owning the file.
    pub crate_name: String,
    /// Repo-relative path with `/` separators.
    pub rel_path: String,
    /// Absolute (or root-joined) path on disk.
    pub path: PathBuf,
}

/// An in-memory workspace file: the unit the workspace pipeline operates
/// on. Decoupling from the filesystem lets `repro_lint` drive the full
/// pipeline (A1/A2/W0 included) on synthetic workspaces.
#[derive(Debug, Clone)]
pub struct MemFile {
    /// Cargo package name owning the file.
    pub crate_name: String,
    /// Repo-relative path with `/` separators.
    pub rel_path: String,
    /// Full file contents.
    pub source: String,
    /// True for `src/` files (linted); false for corpus-only files
    /// (`tests/`, `benches/`, `examples/` — A2 reference corpus only).
    pub lintable: bool,
}

/// Discovers every lintable source file under `root` (the workspace
/// root), sorted by path.
pub fn discover(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    for (pkg, dir, rel) in package_dirs(root, &["src"])? {
        collect_tree(&pkg, dir, &rel, &mut files)?;
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Gathers the full in-memory workspace: lintable `src/` trees plus the
/// corpus-only `tests/`/`benches/`/`examples/` trees, sorted by path.
pub fn gather(root: &Path) -> Result<Vec<MemFile>, String> {
    let mut out = Vec::new();
    for (lintable, subdirs) in [
        (true, &["src"][..]),
        (false, &["tests", "benches", "examples"]),
    ] {
        for (pkg, dir, rel) in package_dirs(root, subdirs)? {
            let mut files = Vec::new();
            collect_tree(&pkg, dir, &rel, &mut files)?;
            for f in files {
                let source = fs::read_to_string(&f.path)
                    .map_err(|e| format!("cannot read {}: {e}", f.path.display()))?;
                out.push(MemFile {
                    crate_name: f.crate_name,
                    rel_path: f.rel_path,
                    source,
                    lintable,
                });
            }
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

/// The full workspace lint pipeline over in-memory files: per-file rules,
/// crate-scope range analysis (N1–N3), workspace rules (A1/A2), then
/// stale-suppression detection (W0). Findings come back sorted by
/// `(file, line, col, rule)`.
pub fn lint_files(files: &[MemFile]) -> Vec<Finding> {
    let (findings, _) = lint_files_graph(files);
    findings
}

/// [`lint_files`] plus the dependency graph (for the DOT artifact).
/// Implemented as a cold (empty-cache) run of [`lint_files_cached`], so
/// cached and uncached lints cannot diverge.
pub fn lint_files_graph(files: &[MemFile]) -> (Vec<Finding>, DepGraph) {
    let (findings, graph, _, _) = lint_files_cached(files, &LintCache::default(), &[]);
    (findings, graph)
}

/// Per-run statistics from the incremental pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintStats {
    /// Files presented to the pipeline.
    pub files_total: usize,
    /// Files whose per-file phase was replayed from the cache.
    pub files_reused: usize,
    /// Files lexed, parsed and rule-checked this run.
    pub files_analyzed: usize,
    /// Crates whose range findings were replayed from the cache.
    pub crates_reused: usize,
    /// Crates whose range analysis ran this run.
    pub crates_analyzed: usize,
}

/// One file's per-file-phase output, cached or freshly computed.
struct PerFile<'a> {
    file: &'a MemFile,
    hash: u64,
    /// Findings surviving per-file suppression, finished.
    findings: Vec<Finding>,
    /// Allow sites with per-file-phase `used` flags; the workspace
    /// phase marks further usage on a working copy, never on the
    /// snapshot stored in the outgoing cache.
    allows: Vec<AllowSite>,
    /// Borrowed from the incoming cache for replayed files (the word
    /// lists are the bulkiest per-file state; cloning them would cost a
    /// measurable slice of the warm-run win).
    facts: Cow<'a, FileFacts>,
    /// Parsed AST, kept for freshly-analyzed lintable files and filled
    /// on demand when a cache-missed crate needs a clean file re-parsed
    /// for range analysis.
    items: Option<Vec<Item>>,
}

/// The incremental workspace pipeline. Files whose content hash matches
/// a cache entry skip the per-file phase (the dominant cost); crates
/// whose `(rel_path, hash)` fingerprint matches skip range analysis.
/// `force_dirty` rel-paths are re-analyzed even on a hash match
/// (`--changed-since`). Returns the findings, the dependency graph, the
/// cache to persist for the next run, and reuse statistics.
pub fn lint_files_cached(
    files: &[MemFile],
    cache: &LintCache,
    force_dirty: &[String],
) -> (Vec<Finding>, DepGraph, LintCache, LintStats) {
    let mut stats = LintStats {
        files_total: files.len(),
        ..LintStats::default()
    };

    // Per-file phase: replay or recompute findings, allows and facts.
    let mut per_file: Vec<PerFile<'_>> = Vec::with_capacity(files.len());
    for f in files {
        let hash = cache::fnv1a(f.source.as_bytes());
        let cached = if force_dirty.iter().any(|p| p == &f.rel_path) {
            None
        } else {
            cache.files.get(&f.rel_path).filter(|e| {
                e.hash == hash && e.crate_name == f.crate_name && e.lintable == f.lintable
            })
        };
        if let Some(e) = cached {
            stats.files_reused += 1;
            per_file.push(PerFile {
                file: f,
                hash,
                findings: e.findings.clone(),
                allows: e.allows.clone(),
                facts: Cow::Borrowed(&e.facts),
                items: None,
            });
        } else if f.lintable {
            stats.files_analyzed += 1;
            let ctx = FileContext {
                crate_name: &f.crate_name,
                rel_path: &f.rel_path,
            };
            let lexed = lex(&f.source);
            let items = parse_items(&lexed);
            let fl = lint_file_prepared(&ctx, &f.source, &lexed, &items);
            let facts =
                depgraph::extract_facts(&f.crate_name, &f.source, Some(&lexed), Some(&items));
            per_file.push(PerFile {
                file: f,
                hash,
                findings: fl.findings,
                allows: fl.allows,
                facts: Cow::Owned(facts),
                items: Some(items),
            });
        } else {
            stats.files_analyzed += 1;
            per_file.push(PerFile {
                file: f,
                hash,
                findings: Vec::new(),
                allows: Vec::new(),
                facts: Cow::Owned(depgraph::extract_facts(
                    &f.crate_name,
                    &f.source,
                    None,
                    None,
                )),
                items: None,
            });
        }
    }

    // Snapshot the outgoing cache now: per-file-phase state only, so a
    // later edit elsewhere in the workspace cannot freeze this file's
    // workspace-scope suppression marks.
    let mut new_cache = LintCache::default();
    for pf in &per_file {
        new_cache.files.insert(
            pf.file.rel_path.clone(),
            CacheEntry {
                crate_name: pf.file.crate_name.clone(),
                lintable: pf.file.lintable,
                hash: pf.hash,
                findings: pf.findings.clone(),
                allows: pf.allows.clone(),
                facts: pf.facts.clone().into_owned(),
            },
        );
    }

    // Crate-scope range analysis. Function summaries cross file
    // boundaries, so the cache key covers every lintable file of the
    // crate; a miss re-parses the crate's clean files on demand.
    let mut crate_members: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, pf) in per_file.iter().enumerate() {
        if pf.file.lintable {
            crate_members
                .entry(pf.file.crate_name.as_str())
                .or_default()
                .push(i);
        }
    }
    let mut range_findings: Vec<Finding> = Vec::new();
    for (krate, idxs) in &crate_members {
        let pairs: Vec<(&str, u64)> = idxs
            .iter()
            .map(|&i| (per_file[i].file.rel_path.as_str(), per_file[i].hash))
            .collect();
        let key = cache::crate_key(&pairs);
        if let Some(e) = cache.ranges.get(*krate).filter(|e| e.key == key) {
            stats.crates_reused += 1;
            range_findings.extend(e.findings.iter().cloned());
            new_cache.ranges.insert((*krate).to_string(), e.clone());
            continue;
        }
        stats.crates_analyzed += 1;
        for &i in idxs {
            if per_file[i].items.is_none() {
                let src = per_file[i].file.source.as_str();
                let lexed = lex(src);
                per_file[i].items = Some(parse_items(&lexed));
            }
        }
        let crate_files: Vec<(FileContext<'_>, &[Item])> = idxs
            .iter()
            .map(|&i| {
                (
                    FileContext {
                        crate_name: per_file[i].file.crate_name.as_str(),
                        rel_path: per_file[i].file.rel_path.as_str(),
                    },
                    per_file[i].items.as_deref().unwrap_or(&[]),
                )
            })
            .collect();
        let mut found = crate::range::analyze_crate(&crate_files);
        for f in &mut found {
            if let Some(&i) = idxs.iter().find(|&&i| per_file[i].file.rel_path == f.file) {
                let lines: Vec<&str> = per_file[i].file.source.lines().collect();
                rules::finish(&lines, f);
            }
        }
        new_cache.ranges.insert(
            (*krate).to_string(),
            RangeEntry {
                key,
                findings: found.clone(),
            },
        );
        range_findings.extend(found);
    }

    // Workspace-grained hot-path analysis (H1–H4). The call graph spans
    // crates, so the cache key covers every lintable file: any edit
    // re-runs the analysis, a clean warm run replays it. Findings are
    // cached pre-suppression (like range entries) so warm digests equal
    // cold by construction.
    let all_lintable: Vec<usize> = per_file
        .iter()
        .enumerate()
        .filter(|(_, pf)| pf.file.lintable)
        .map(|(i, _)| i)
        .collect();
    let hot_pairs: Vec<(&str, u64)> = all_lintable
        .iter()
        .map(|&i| (per_file[i].file.rel_path.as_str(), per_file[i].hash))
        .collect();
    let hot_key = cache::crate_key(&hot_pairs);
    let (hot_findings, hot_overlay) = match cache.hot.as_ref().filter(|e| e.key == hot_key) {
        Some(e) => {
            new_cache.hot = Some(e.clone());
            (
                e.findings.clone(),
                depgraph::HotOverlay {
                    roots: e.roots.clone(),
                    hot: e.hot.clone(),
                },
            )
        }
        None => {
            for &i in &all_lintable {
                if per_file[i].items.is_none() {
                    let src = per_file[i].file.source.as_str();
                    let lexed = lex(src);
                    per_file[i].items = Some(parse_items(&lexed));
                }
            }
            let hot_files: Vec<hotpath::HotFile<'_>> = all_lintable
                .iter()
                .map(|&i| hotpath::HotFile {
                    ctx: FileContext {
                        crate_name: per_file[i].file.crate_name.as_str(),
                        rel_path: per_file[i].file.rel_path.as_str(),
                    },
                    items: per_file[i].items.as_deref().unwrap_or(&[]),
                    source: per_file[i].file.source.as_str(),
                })
                .collect();
            let (mut found, overlay) = hotpath::analyze_workspace(&hot_files);
            for f in &mut found {
                if let Some(&i) = all_lintable
                    .iter()
                    .find(|&&i| per_file[i].file.rel_path == f.file)
                {
                    let lines: Vec<&str> = per_file[i].file.source.lines().collect();
                    rules::finish(&lines, f);
                }
            }
            new_cache.hot = Some(HotEntry {
                key: hot_key,
                findings: found.clone(),
                roots: overlay.roots.clone(),
                hot: overlay.hot.clone(),
            });
            (found, overlay)
        }
    };

    // Workspace-scope rules over the merged facts (pure in the facts, so
    // cached and fresh files are indistinguishable here).
    let (ws_findings, mut graph) = {
        let facts_refs: Vec<FactsRef<'_>> = per_file
            .iter()
            .map(|pf| FactsRef {
                crate_name: pf.file.crate_name.as_str(),
                rel_path: pf.file.rel_path.as_str(),
                lintable: pf.file.lintable,
                facts: pf.facts.as_ref(),
            })
            .collect();
        depgraph::analyze_facts(&facts_refs)
    };
    graph.hot = Some(hot_overlay);

    // Suppress crate- and workspace-scope findings against their file's
    // allows (marking usage), then fill excerpts.
    let index: BTreeMap<&str, usize> = per_file
        .iter()
        .enumerate()
        .map(|(i, pf)| (pf.file.rel_path.as_str(), i))
        .collect();
    let mut late = ws_findings;
    late.extend(range_findings);
    late.extend(hot_findings);
    late.retain(|f| {
        let covered = index
            .get(f.file.as_str())
            .map(|&i| suppress(f, &mut per_file[i].allows))
            .unwrap_or(false);
        !covered
    });
    let mut line_cache: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
    for f in &mut late {
        if let Some(&i) = index.get(f.file.as_str()) {
            let lines = line_cache
                .entry(i)
                .or_insert_with(|| per_file[i].file.source.lines().collect());
            rules::finish(lines, f);
        }
    }

    // Every consumer has run: any allow still unused is stale (W0).
    let mut findings = late;
    for pf in &mut per_file {
        findings.append(&mut pf.findings);
        let ctx = FileContext {
            crate_name: &pf.file.crate_name,
            rel_path: &pf.file.rel_path,
        };
        let mut w0 = rules::unused_allow_findings(&ctx, &mut pf.allows, &[]);
        let lines: Vec<&str> = pf.file.source.lines().collect();
        for f in &mut w0 {
            rules::finish(&lines, f);
        }
        findings.append(&mut w0);
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    (findings, graph, new_cache, stats)
}

/// Lints the workspace on disk: [`gather`] + [`lint_files`].
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    Ok(lint_files(&gather(root)?))
}

/// As [`lint_workspace`], also returning the dependency graph.
pub fn lint_workspace_graph(root: &Path) -> Result<(Vec<Finding>, DepGraph), String> {
    Ok(lint_files_graph(&gather(root)?))
}

/// Enumerates `(package_dir, subdir_path, rel_prefix)` for the root
/// package and every `crates/*` member, for each existing `subdir`.
fn package_dirs(root: &Path, subdirs: &[&str]) -> Result<Vec<(PathBuf, PathBuf, String)>, String> {
    let mut pkgs = vec![(root.to_path_buf(), String::new())];
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    members.sort();
    for member in members {
        let dir_name = member
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("non-UTF-8 crate dir under {}", crates_dir.display()))?
            .to_string();
        pkgs.push((member, format!("crates/{dir_name}/")));
    }
    let mut out = Vec::new();
    for (pkg, prefix) in pkgs {
        for sub in subdirs {
            let dir = pkg.join(sub);
            if dir.is_dir() {
                out.push((pkg.clone(), dir, format!("{prefix}{sub}")));
            }
        }
    }
    Ok(out)
}

/// Adds every `.rs` file under `src_dir` (recursively) for the package
/// rooted at `pkg_dir`.
fn collect_tree(
    pkg_dir: &Path,
    src_dir: PathBuf,
    rel_prefix: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    if !src_dir.is_dir() {
        return Ok(());
    }
    let crate_name = package_name(&pkg_dir.join("Cargo.toml"))?;
    let mut stack = vec![(src_dir, rel_prefix.to_string())];
    while let Some((dir, rel)) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name
                .to_str()
                .ok_or_else(|| format!("non-UTF-8 file name under {}", dir.display()))?;
            if path.is_dir() {
                stack.push((path, format!("{rel}/{name}")));
            } else if name.ends_with(".rs") {
                out.push(SourceFile {
                    crate_name: crate_name.clone(),
                    rel_path: format!("{rel}/{name}"),
                    path,
                });
            }
        }
    }
    Ok(())
}

/// Extracts `package.name` from a Cargo manifest with a line scan (the
/// manifests in this workspace put `[package]` first and never nest a
/// `name =` key above it).
fn package_name(manifest: &Path) -> Result<String, String> {
    let text = fs::read_to_string(manifest)
        .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                let value = value.trim().trim_matches('"');
                return Ok(value.to_string());
            }
        }
    }
    Err(format!("no package.name in {}", manifest.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(crate_name: &str, rel_path: &str, source: &str, lintable: bool) -> MemFile {
        MemFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            source: source.to_string(),
            lintable,
        }
    }

    #[test]
    fn workspace_pipeline_resolves_a1_suppression_and_w0() {
        // File 1 has a suppressed upward edge (allow consumed: no W0).
        // File 2 has a stale allow (W0 fires at workspace scope too).
        let files = vec![
            mem(
                "bios-electrochem",
                "crates/electrochem/src/a.rs",
                "// advdiag::allow(A1, transitional until PR5 moves QcGate down)\n\
                 use bios_instrument::qc::QcGate;\n",
                true,
            ),
            mem(
                "bios-electrochem",
                "crates/electrochem/src/b.rs",
                "// advdiag::allow(A1, nothing here references instrument)\nfn f() {}\n",
                true,
            ),
        ];
        let findings = lint_files(&files);
        let rules: Vec<(&str, &str)> = findings.iter().map(|f| (f.rule, f.file.as_str())).collect();
        assert_eq!(
            rules,
            [("W0", "crates/electrochem/src/b.rs")],
            "{findings:?}"
        );
    }

    #[test]
    fn corpus_files_feed_a2_but_are_not_linted() {
        let files = vec![
            mem(
                "bios-afe",
                "crates/afe/src/lib.rs",
                "pub fn bench_only_hook() {}\n",
                true,
            ),
            // Reference from another package's bench tree: item is live.
            // The unwrap() here must NOT be linted (corpus-only file).
            mem(
                "bios-bench",
                "crates/bench/benches/perf.rs",
                "fn main() { bench_only_hook(); x.unwrap(); }\n",
                false,
            ),
        ];
        let findings = lint_files(&files);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
