//! Workspace discovery and the workspace-scope lint pipeline.
//!
//! Two kinds of files are gathered:
//!
//! - **lintable** files — the root package's `src/` and every
//!   `crates/*/src/` tree. All per-file rules plus A1 (layering) bind
//!   here.
//! - **corpus-only** files — `tests/`, `benches/` and `examples/` trees
//!   of every package. They are never linted, but their text feeds A2's
//!   reference corpus so an item used only from integration tests is not
//!   reported dead.
//!
//! The walk is sorted so diagnostics, reports and the DOT artifact are
//! deterministic. The vendored dependency stand-ins under `shims/` are
//! deliberately excluded: they imitate external crates' APIs (panicking
//! included) and are not governed by the platform's invariants. In-file
//! `#[cfg(test)]` modules are already skipped by the lexer.
//!
//! Pipeline of [`lint_files`]: per-file rules via [`rules::lint_file`],
//! then the workspace analyses (A1/A2 from [`crate::depgraph`]) with
//! suppression resolved against each finding's file, then W0 over every
//! allow that no rule — per-file or workspace — ever consumed.

use std::fs;
use std::path::{Path, PathBuf};

use crate::depgraph::{self, DepGraph};
use crate::rules::{self, excerpt_for, lint_file, suppress, FileContext, Finding};

/// One file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Cargo package name owning the file.
    pub crate_name: String,
    /// Repo-relative path with `/` separators.
    pub rel_path: String,
    /// Absolute (or root-joined) path on disk.
    pub path: PathBuf,
}

/// An in-memory workspace file: the unit the workspace pipeline operates
/// on. Decoupling from the filesystem lets `repro_lint` drive the full
/// pipeline (A1/A2/W0 included) on synthetic workspaces.
#[derive(Debug, Clone)]
pub struct MemFile {
    /// Cargo package name owning the file.
    pub crate_name: String,
    /// Repo-relative path with `/` separators.
    pub rel_path: String,
    /// Full file contents.
    pub source: String,
    /// True for `src/` files (linted); false for corpus-only files
    /// (`tests/`, `benches/`, `examples/` — A2 reference corpus only).
    pub lintable: bool,
}

/// Discovers every lintable source file under `root` (the workspace
/// root), sorted by path.
pub fn discover(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    for (pkg, dir, rel) in package_dirs(root, &["src"])? {
        collect_tree(&pkg, dir, &rel, &mut files)?;
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Gathers the full in-memory workspace: lintable `src/` trees plus the
/// corpus-only `tests/`/`benches/`/`examples/` trees, sorted by path.
pub fn gather(root: &Path) -> Result<Vec<MemFile>, String> {
    let mut out = Vec::new();
    for (lintable, subdirs) in [
        (true, &["src"][..]),
        (false, &["tests", "benches", "examples"]),
    ] {
        for (pkg, dir, rel) in package_dirs(root, subdirs)? {
            let mut files = Vec::new();
            collect_tree(&pkg, dir, &rel, &mut files)?;
            for f in files {
                let source = fs::read_to_string(&f.path)
                    .map_err(|e| format!("cannot read {}: {e}", f.path.display()))?;
                out.push(MemFile {
                    crate_name: f.crate_name,
                    rel_path: f.rel_path,
                    source,
                    lintable,
                });
            }
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

/// The full workspace lint pipeline over in-memory files: per-file rules,
/// workspace rules (A1/A2), then stale-suppression detection (W0).
/// Findings come back sorted by `(file, line, col, rule)`.
pub fn lint_files(files: &[MemFile]) -> Vec<Finding> {
    let (findings, _) = lint_files_graph(files);
    findings
}

/// [`lint_files`] plus the dependency graph (for the DOT artifact).
pub fn lint_files_graph(files: &[MemFile]) -> (Vec<Finding>, DepGraph) {
    let mut findings = Vec::new();
    let mut per_file = Vec::new();
    for f in files.iter().filter(|f| f.lintable) {
        let ctx = FileContext {
            crate_name: &f.crate_name,
            rel_path: &f.rel_path,
        };
        let fl = lint_file(&ctx, &f.source);
        findings.extend(fl.findings);
        per_file.push((f, fl.allows));
    }
    // Workspace-scope rules, suppressed against their finding's file.
    let (mut ws_findings, graph) = depgraph::analyze(files);
    ws_findings.retain(|finding| {
        let covered = per_file
            .iter_mut()
            .find(|(f, _)| f.rel_path == finding.file)
            .map(|(_, allows)| suppress(finding, allows))
            .unwrap_or(false);
        !covered
    });
    for f in &mut ws_findings {
        if let Some((mf, _)) = per_file.iter().find(|(mf, _)| mf.rel_path == f.file) {
            let lines: Vec<&str> = mf.source.lines().collect();
            f.excerpt = excerpt_for(&lines, f.line);
        }
    }
    findings.extend(ws_findings);
    // Every consumer has run: any allow still unused is stale (W0).
    for (f, mut allows) in per_file {
        let ctx = FileContext {
            crate_name: &f.crate_name,
            rel_path: &f.rel_path,
        };
        let mut w0 = rules::unused_allow_findings(&ctx, &mut allows, &[]);
        let lines: Vec<&str> = f.source.lines().collect();
        for finding in &mut w0 {
            finding.excerpt = excerpt_for(&lines, finding.line);
        }
        findings.extend(w0);
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    (findings, graph)
}

/// Lints the workspace on disk: [`gather`] + [`lint_files`].
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    Ok(lint_files(&gather(root)?))
}

/// As [`lint_workspace`], also returning the dependency graph.
pub fn lint_workspace_graph(root: &Path) -> Result<(Vec<Finding>, DepGraph), String> {
    Ok(lint_files_graph(&gather(root)?))
}

/// Enumerates `(package_dir, subdir_path, rel_prefix)` for the root
/// package and every `crates/*` member, for each existing `subdir`.
fn package_dirs(root: &Path, subdirs: &[&str]) -> Result<Vec<(PathBuf, PathBuf, String)>, String> {
    let mut pkgs = vec![(root.to_path_buf(), String::new())];
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    members.sort();
    for member in members {
        let dir_name = member
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("non-UTF-8 crate dir under {}", crates_dir.display()))?
            .to_string();
        pkgs.push((member, format!("crates/{dir_name}/")));
    }
    let mut out = Vec::new();
    for (pkg, prefix) in pkgs {
        for sub in subdirs {
            let dir = pkg.join(sub);
            if dir.is_dir() {
                out.push((pkg.clone(), dir, format!("{prefix}{sub}")));
            }
        }
    }
    Ok(out)
}

/// Adds every `.rs` file under `src_dir` (recursively) for the package
/// rooted at `pkg_dir`.
fn collect_tree(
    pkg_dir: &Path,
    src_dir: PathBuf,
    rel_prefix: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    if !src_dir.is_dir() {
        return Ok(());
    }
    let crate_name = package_name(&pkg_dir.join("Cargo.toml"))?;
    let mut stack = vec![(src_dir, rel_prefix.to_string())];
    while let Some((dir, rel)) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name
                .to_str()
                .ok_or_else(|| format!("non-UTF-8 file name under {}", dir.display()))?;
            if path.is_dir() {
                stack.push((path, format!("{rel}/{name}")));
            } else if name.ends_with(".rs") {
                out.push(SourceFile {
                    crate_name: crate_name.clone(),
                    rel_path: format!("{rel}/{name}"),
                    path,
                });
            }
        }
    }
    Ok(())
}

/// Extracts `package.name` from a Cargo manifest with a line scan (the
/// manifests in this workspace put `[package]` first and never nest a
/// `name =` key above it).
fn package_name(manifest: &Path) -> Result<String, String> {
    let text = fs::read_to_string(manifest)
        .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                let value = value.trim().trim_matches('"');
                return Ok(value.to_string());
            }
        }
    }
    Err(format!("no package.name in {}", manifest.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(crate_name: &str, rel_path: &str, source: &str, lintable: bool) -> MemFile {
        MemFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            source: source.to_string(),
            lintable,
        }
    }

    #[test]
    fn workspace_pipeline_resolves_a1_suppression_and_w0() {
        // File 1 has a suppressed upward edge (allow consumed: no W0).
        // File 2 has a stale allow (W0 fires at workspace scope too).
        let files = vec![
            mem(
                "bios-electrochem",
                "crates/electrochem/src/a.rs",
                "// advdiag::allow(A1, transitional until PR5 moves QcGate down)\n\
                 use bios_instrument::qc::QcGate;\n",
                true,
            ),
            mem(
                "bios-electrochem",
                "crates/electrochem/src/b.rs",
                "// advdiag::allow(A1, nothing here references instrument)\nfn f() {}\n",
                true,
            ),
        ];
        let findings = lint_files(&files);
        let rules: Vec<(&str, &str)> = findings.iter().map(|f| (f.rule, f.file.as_str())).collect();
        assert_eq!(
            rules,
            [("W0", "crates/electrochem/src/b.rs")],
            "{findings:?}"
        );
    }

    #[test]
    fn corpus_files_feed_a2_but_are_not_linted() {
        let files = vec![
            mem(
                "bios-afe",
                "crates/afe/src/lib.rs",
                "pub fn bench_only_hook() {}\n",
                true,
            ),
            // Reference from another package's bench tree: item is live.
            // The unwrap() here must NOT be linted (corpus-only file).
            mem(
                "bios-bench",
                "crates/bench/benches/perf.rs",
                "fn main() { bench_only_hook(); x.unwrap(); }\n",
                false,
            ),
        ];
        let findings = lint_files(&files);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
