//! A dependency-free, fault-tolerant recursive-descent parser from the
//! [`crate::lexer`] token stream to the [`crate::ast`] tree.
//!
//! Design rule: **never fail, never over-claim**. Any construct the
//! parser does not model (macros, patterns, generics, guards) collapses
//! into [`Expr::Opaque`] or is skipped with balanced-delimiter scans, and
//! every loop provably advances the cursor. The semantic analyses built
//! on the AST only report on shapes they fully recognize, so parser
//! lossiness yields false negatives, never false positives — the right
//! failure mode for a CI gate.
//!
//! Known-unparsed constructs (documented false-negative classes, see
//! DESIGN.md §6c): macro invocation bodies, match-arm guards, `let … else`
//! divergence typing, const-generic expressions, and struct-field types.

use crate::ast::{Block, Expr, FnItem, Item, ItemKind, Param, Span, Stmt};
use crate::lexer::{Lexed, Token, TokenKind};

/// Parses a lexed file into a list of items. Never fails: unmodeled
/// regions are skipped or collapsed into `Opaque` nodes.
pub fn parse_items(lexed: &Lexed) -> Vec<Item> {
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
    };
    p.items_until_close()
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Binding powers for infix operators: `(left, right)`; higher binds
/// tighter. Assignment is right-associative (right < left).
fn infix_bp(op: &str) -> Option<(u8, u8)> {
    Some(match op {
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => (3, 2),
        ".." | "..=" => (5, 4),
        "||" => (6, 7),
        "&&" => (8, 9),
        "==" | "!=" | "<" | ">" | "<=" | ">=" => (10, 11),
        "|" => (12, 13),
        "^" => (14, 15),
        "&" => (16, 17),
        "<<" | ">>" => (18, 19),
        "+" | "-" => (20, 21),
        "*" | "/" | "%" => (22, 23),
        _ => return None,
    })
}

/// Binding power of prefix operators' operands (tighter than any infix).
const PREFIX_BP: u8 = 24;

/// Type suffixes a numeric literal may carry.
const NUM_SUFFIXES: &[&str] = &[
    "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize",
];

/// Parses the numeric value of an int/float literal token, tolerating
/// `_` separators, type suffixes and radix prefixes. Returns `None` for
/// spellings outside f64's exact reach rather than guessing.
fn numeric_value(text: &str) -> Option<f64> {
    let digits: String = text.chars().filter(|c| *c != '_').collect();
    let mut body = digits.as_str();
    if let Some(rest) = body
        .strip_prefix("0x")
        .or_else(|| body.strip_prefix("0X"))
        .or_else(|| body.strip_prefix("0o"))
        .or_else(|| body.strip_prefix("0O"))
        .or_else(|| body.strip_prefix("0b"))
        .or_else(|| body.strip_prefix("0B"))
    {
        let radix = match digits.as_bytes().get(1) {
            Some(b'x') | Some(b'X') => 16,
            Some(b'o') | Some(b'O') => 8,
            _ => 2,
        };
        let mut rest = rest;
        for s in NUM_SUFFIXES.iter().filter(|s| !s.starts_with('f')) {
            if let Some(r) = rest.strip_suffix(s) {
                rest = r;
                break;
            }
        }
        let v = u128::from_str_radix(rest, radix).ok()?;
        return Some(v as f64);
    }
    for s in NUM_SUFFIXES {
        if let Some(r) = body.strip_suffix(s) {
            body = r;
            break;
        }
    }
    body.parse::<f64>().ok().filter(|v| v.is_finite())
}

/// Pattern tokens that are not bindings (`let mut x`, `ref y`, `_`).
fn is_pattern_keyword(text: &str) -> bool {
    matches!(
        text,
        "mut" | "ref" | "_" | "box" | "self" | "crate" | "super" | "Some" | "Ok" | "Err" | "None"
    )
}

impl<'a> Parser<'a> {
    // ---- cursor utilities -------------------------------------------------

    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + off)
    }

    fn text(&self) -> &'a str {
        self.peek().map(|t| t.text.as_str()).unwrap_or("")
    }

    fn text_at(&self, off: usize) -> &'a str {
        self.peek_at(off).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn span(&self) -> Span {
        self.peek()
            .map(|t| Span {
                line: t.line,
                col: t.col,
            })
            .unwrap_or_default()
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.text() == text {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn is_ident(&self) -> bool {
        self.peek().map(|t| t.kind) == Some(TokenKind::Ident)
    }

    /// Consumes a balanced `(…)`, `[…]` or `{…}` group starting at the
    /// current token (which must be an opener); no-op otherwise.
    fn skip_balanced(&mut self) {
        let close = match self.text() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return,
        };
        let open = self.text().to_string();
        let mut depth = 0i64;
        while let Some(t) = self.bump() {
            if t.kind == TokenKind::Op {
                if t.text == open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
            }
        }
    }

    /// Consumes a balanced `<…>` generics group starting at `<`.
    /// `->` and `=>` do not close angles; `>>`/`<<` count twice.
    fn skip_angles(&mut self) {
        if self.text() != "<" {
            return;
        }
        let mut depth = 0i64;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                // Generics never contain these at depth > 0 in this
                // workspace; bail out rather than scan to EOF.
                ";" | "{" => return,
                _ => {}
            }
            self.pos += 1;
            if depth <= 0 {
                return;
            }
        }
    }

    /// Skips tokens until one of `stops` appears outside any `()`, `[]`,
    /// `{}` or `<>` nesting. The stop token is *not* consumed. `;` always
    /// stops (never crossed), and so does EOF.
    fn skip_until(&mut self, stops: &[&str]) {
        let (mut par, mut brk, mut brc, mut ang) = (0i64, 0i64, 0i64, 0i64);
        while let Some(t) = self.peek() {
            let text = t.text.as_str();
            if par == 0 && brk == 0 && brc == 0 && ang <= 0 {
                if stops.contains(&text) || text == ";" {
                    return;
                }
                if ang < 0 {
                    // A stray `>` closed more than we opened (e.g. the
                    // enclosing generics): stop before it.
                    return;
                }
            }
            match text {
                "(" => par += 1,
                ")" => {
                    if par == 0 && brk == 0 && brc == 0 {
                        return; // closing the enclosing group
                    }
                    par -= 1;
                }
                "[" => brk += 1,
                "]" => {
                    if brk == 0 && par == 0 && brc == 0 {
                        return;
                    }
                    brk -= 1;
                }
                "{" => brc += 1,
                "}" => {
                    if brc == 0 && par == 0 && brk == 0 {
                        return;
                    }
                    brc -= 1;
                }
                "<" => ang += 1,
                "<<" => ang += 2,
                ">" => {
                    if par == 0 && brk == 0 && brc == 0 && ang == 0 {
                        return;
                    }
                    ang -= 1;
                }
                ">>" => ang -= 2,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips any `#[…]` / `#![…]` attributes at the cursor.
    fn skip_attributes(&mut self) {
        loop {
            if self.text() == "#" && self.text_at(1) == "[" {
                self.pos += 1;
                self.skip_balanced();
            } else if self.text() == "#" && self.text_at(1) == "!" && self.text_at(2) == "[" {
                self.pos += 2;
                self.skip_balanced();
            } else {
                return;
            }
        }
    }

    // ---- items ------------------------------------------------------------

    /// Parses items until `}` (not consumed) or EOF.
    fn items_until_close(&mut self) -> Vec<Item> {
        let mut items = Vec::new();
        while !self.at_end() && self.text() != "}" {
            let before = self.pos;
            if let Some(item) = self.item() {
                items.push(item);
            }
            if self.pos == before {
                self.pos += 1; // guaranteed progress
            }
        }
        items
    }

    /// Parses one item; `None` when only trivia was consumed.
    fn item(&mut self) -> Option<Item> {
        self.skip_attributes();
        if self.at_end() || self.text() == "}" {
            return None;
        }
        let span = self.span();
        let in_test = self.peek().map(|t| t.in_test).unwrap_or(false);
        // Visibility.
        let mut is_pub = false;
        if self.text() == "pub" {
            self.pos += 1;
            if self.text() == "(" {
                self.skip_balanced(); // pub(crate) / pub(super): not API
            } else {
                is_pub = true;
            }
        }
        // Modifiers that may precede `fn`.
        loop {
            match self.text() {
                "default" | "async" => {
                    self.pos += 1;
                }
                "unsafe" if self.text_at(1) != "{" => {
                    self.pos += 1;
                }
                "const" if self.text_at(1) == "fn" => {
                    self.pos += 1;
                }
                "extern" => {
                    self.pos += 1;
                    if self.peek().map(|t| t.kind) == Some(TokenKind::StrLit) {
                        self.pos += 1;
                    }
                    if self.text() == "crate" {
                        self.skip_until(&[]);
                        self.eat(";");
                        return Some(Item {
                            kind: ItemKind::Other,
                            span,
                            is_pub,
                            in_test,
                        });
                    }
                    if self.text() == "{" {
                        self.skip_balanced();
                        return Some(Item {
                            kind: ItemKind::Other,
                            span,
                            is_pub,
                            in_test,
                        });
                    }
                }
                _ => break,
            }
        }
        let kind = match self.text() {
            "use" => {
                self.pos += 1;
                let mut segments = Vec::new();
                while !self.at_end() && self.text() != ";" {
                    if let Some(t) = self.peek() {
                        if t.kind == TokenKind::Ident {
                            segments.push(t.text.clone());
                        }
                    }
                    self.pos += 1;
                }
                self.eat(";");
                ItemKind::Use { segments }
            }
            "mod" => {
                self.pos += 1;
                let name = self.ident_or_empty();
                if self.eat(";") {
                    ItemKind::Mod {
                        name,
                        items: Vec::new(),
                    }
                } else if self.eat("{") {
                    let items = self.items_until_close();
                    self.eat("}");
                    ItemKind::Mod { name, items }
                } else {
                    ItemKind::Other
                }
            }
            "fn" => ItemKind::Fn(Box::new(self.fn_item())),
            "struct" | "enum" | "union" => {
                self.pos += 1;
                let name = self.ident_or_empty();
                // Scan to the defining body / terminating `;`, skipping
                // generics, tuple fields and where clauses.
                loop {
                    self.skip_until(&["{", "("]);
                    match self.text() {
                        "{" => {
                            self.skip_balanced();
                            break;
                        }
                        "(" => {
                            self.skip_balanced();
                            continue;
                        }
                        ";" => {
                            self.pos += 1;
                            break;
                        }
                        _ => break, // EOF / enclosing close
                    }
                }
                ItemKind::TypeDef { name }
            }
            "trait" => {
                self.pos += 1;
                let name = self.ident_or_empty();
                self.skip_until(&["{"]);
                if self.eat("{") {
                    let items = self.items_until_close();
                    self.eat("}");
                    ItemKind::Trait { name, items }
                } else {
                    self.eat(";");
                    ItemKind::Other
                }
            }
            "impl" => {
                self.pos += 1;
                self.skip_until(&["{"]);
                if self.eat("{") {
                    let items = self.items_until_close();
                    self.eat("}");
                    ItemKind::Impl { items }
                } else {
                    self.eat(";");
                    ItemKind::Other
                }
            }
            "const" | "static" => {
                self.pos += 1;
                self.eat("mut");
                let name = self.ident_or_empty();
                self.skip_until(&[]);
                self.eat(";");
                ItemKind::Const { name }
            }
            "type" => {
                self.pos += 1;
                let name = self.ident_or_empty();
                self.skip_until(&[]);
                self.eat(";");
                ItemKind::TypeAlias { name }
            }
            "macro_rules" => {
                self.pos += 1;
                self.eat("!");
                self.ident_or_empty();
                self.skip_balanced();
                ItemKind::Other
            }
            _ => {
                // Macro invocation in item position (`quantity! { … }`),
                // or something unmodeled.
                if self.is_ident() && self.text_at(1) == "!" {
                    self.pos += 2;
                    let delim = self.text().to_string();
                    self.skip_balanced();
                    if delim != "{" {
                        self.eat(";");
                    }
                } else {
                    self.pos += 1;
                }
                ItemKind::Other
            }
        };
        Some(Item {
            kind,
            span,
            is_pub,
            in_test,
        })
    }

    fn ident_or_empty(&mut self) -> String {
        if self.is_ident() {
            self.bump().map(|t| t.text.clone()).unwrap_or_default()
        } else {
            String::new()
        }
    }

    /// Parses `fn name<..>(params) -> ret where .. { body }`; cursor at
    /// the `fn` keyword.
    fn fn_item(&mut self) -> FnItem {
        self.eat("fn");
        let name = self.ident_or_empty();
        if self.text() == "<" {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.text() == "(" {
            params = self.fn_params();
        }
        let has_ret = self.eat("->");
        if has_ret {
            self.skip_until(&["{", "where"]);
        }
        if self.text() == "where" {
            self.skip_until(&["{"]);
        }
        let body = if self.text() == "{" {
            Some(self.block())
        } else {
            self.eat(";");
            None
        };
        FnItem {
            name,
            params,
            has_ret,
            body,
        }
    }

    /// Parses a parenthesized parameter list; cursor at `(`.
    fn fn_params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        self.eat("(");
        while !self.at_end() && self.text() != ")" {
            let span = self.span();
            // Pattern part: up to `:` (or `,`/`)` for `self` receivers).
            let pat_start = self.pos;
            self.skip_until(&[":", ","]);
            let names: Vec<String> = self.toks[pat_start..self.pos]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident && !is_pattern_keyword(&t.text))
                .map(|t| t.text.clone())
                .collect();
            let mut ty = String::new();
            if self.eat(":") {
                let ty_start = self.pos;
                self.skip_until(&[","]);
                ty = self.toks[ty_start..self.pos]
                    .iter()
                    .map(|t| t.text.as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
            }
            params.push(Param { names, ty, span });
            if !self.eat(",") {
                break;
            }
        }
        self.eat(")");
        params
    }

    // ---- blocks and statements --------------------------------------------

    /// Parses a `{ … }` block; cursor at `{`.
    fn block(&mut self) -> Block {
        let span = self.span();
        self.eat("{");
        let mut stmts = Vec::new();
        while !self.at_end() && self.text() != "}" {
            let before = self.pos;
            self.skip_attributes();
            match self.text() {
                "}" => break,
                "let" => self.let_stmt(&mut stmts),
                "fn" | "use" | "mod" | "struct" | "enum" | "union" | "trait" | "impl"
                | "static" | "type" | "macro_rules" | "pub" | "const" => {
                    if let Some(item) = self.item() {
                        stmts.push(Stmt::Item(item));
                    }
                }
                "unsafe" if self.text_at(1) != "{" => {
                    if let Some(item) = self.item() {
                        stmts.push(Stmt::Item(item));
                    }
                }
                ";" => {
                    self.pos += 1;
                }
                _ => {
                    let e = self.expr(0, true);
                    stmts.push(Stmt::Expr(e));
                    self.eat(";");
                }
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
        self.eat("}");
        Block { stmts, span }
    }

    /// Parses `let pat [: ty] [= init] [else { … }];` into one or two
    /// statements (the `else` block is kept as a trailing expression so
    /// its contents stay visible to the analyses).
    fn let_stmt(&mut self, stmts: &mut Vec<Stmt>) {
        let span = self.span();
        self.eat("let");
        let pat_start = self.pos;
        self.skip_until(&[":", "="]);
        let names = self.binding_idents(pat_start, self.pos);
        if self.eat(":") {
            self.skip_until(&["="]);
        }
        let mut init = None;
        if self.eat("=") {
            init = Some(self.expr(0, true));
        }
        stmts.push(Stmt::Let { names, init, span });
        if self.eat("else") && self.text() == "{" {
            stmts.push(Stmt::Expr(Expr::Block(self.block())));
        }
        self.eat(";");
    }

    /// Identifiers bound by a pattern in `toks[start..end]`: idents that
    /// are not pattern keywords and not enum/struct constructor paths
    /// (followed by `::`, `(` or `{`).
    fn binding_idents(&self, start: usize, end: usize) -> Vec<String> {
        let mut names = Vec::new();
        for (off, t) in self.toks[start..end].iter().enumerate() {
            let i = start + off;
            if t.kind != TokenKind::Ident || is_pattern_keyword(&t.text) {
                continue;
            }
            let next = self
                .toks
                .get(i + 1)
                .filter(|_| i + 1 < end)
                .map(|n| n.text.as_str())
                .unwrap_or("");
            if matches!(next, "::" | "(" | "{" | "!") {
                continue; // constructor path or macro, not a binding
            }
            let prev = if i > start {
                self.toks[i - 1].text.as_str()
            } else {
                ""
            };
            if prev == "::" {
                continue;
            }
            names.push(t.text.clone());
        }
        names
    }

    // ---- expressions ------------------------------------------------------

    /// Pratt expression parser. `allow_struct` gates `Path { … }` struct
    /// literals (off inside `if`/`while`/`match`/`for` headers).
    fn expr(&mut self, min_bp: u8, allow_struct: bool) -> Expr {
        let mut lhs = self.prefix(allow_struct);
        loop {
            // Postfix operators bind tightest.
            match self.text() {
                "." => {
                    let span = self.span();
                    self.pos += 1;
                    match self.peek().map(|t| t.kind) {
                        Some(TokenKind::Ident) => {
                            let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                            if self.text() == "::" && self.text_at(1) == "<" {
                                self.pos += 1;
                                self.skip_angles(); // turbofish
                            }
                            if self.text() == "(" {
                                let args = self.call_args();
                                lhs = Expr::MethodCall {
                                    recv: Box::new(lhs),
                                    method: name,
                                    args,
                                    span,
                                };
                            } else {
                                lhs = Expr::Field {
                                    recv: Box::new(lhs),
                                    name,
                                    span,
                                };
                            }
                        }
                        Some(TokenKind::IntLit) | Some(TokenKind::FloatLit) => {
                            let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                            lhs = Expr::Field {
                                recv: Box::new(lhs),
                                name,
                                span,
                            };
                        }
                        _ => {
                            lhs = Expr::Opaque { span };
                        }
                    }
                    continue;
                }
                "(" => {
                    let span = lhs.span();
                    let args = self.call_args();
                    lhs = Expr::Call {
                        callee: Box::new(lhs),
                        args,
                        span,
                    };
                    continue;
                }
                "[" => {
                    let span = self.span();
                    self.pos += 1;
                    let index = self.expr(0, true);
                    self.eat("]");
                    lhs = Expr::Index {
                        recv: Box::new(lhs),
                        index: Box::new(index),
                        span,
                    };
                    continue;
                }
                "?" => {
                    self.pos += 1;
                    continue; // error-propagation is value-transparent
                }
                "as" => {
                    if PREFIX_BP < min_bp {
                        break;
                    }
                    let span = self.span();
                    self.pos += 1;
                    self.skip_cast_type();
                    lhs = Expr::Cast {
                        expr: Box::new(lhs),
                        span,
                    };
                    continue;
                }
                _ => {}
            }
            let op = self.text();
            let Some((l_bp, r_bp)) = infix_bp(op) else {
                break;
            };
            if l_bp < min_bp {
                break;
            }
            let span = self.span();
            let op = op.to_string();
            self.pos += 1;
            let rhs = self.expr(r_bp, allow_struct);
            lhs = if op.ends_with('=') && !matches!(op.as_str(), "==" | "!=" | "<=" | ">=" | "..=")
            {
                Expr::Assign {
                    op,
                    target: Box::new(lhs),
                    value: Box::new(rhs),
                    span,
                }
            } else {
                Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    span,
                }
            };
        }
        lhs
    }

    /// Parses the type after `as` (a small subset: references, raw
    /// pointers, paths with generics, parenthesized types).
    fn skip_cast_type(&mut self) {
        loop {
            match self.text() {
                "&" => {
                    self.pos += 1;
                    self.eat("mut");
                }
                "*" => {
                    self.pos += 1;
                    self.eat("const");
                    self.eat("mut");
                }
                _ => break,
            }
        }
        if self.text() == "(" {
            self.skip_balanced();
            return;
        }
        while self.is_ident() {
            self.pos += 1;
            if self.text() == "<" {
                self.skip_angles();
            }
            if !self.eat("::") {
                break;
            }
        }
    }

    /// Parses a parenthesized argument list; cursor at `(`.
    fn call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        self.eat("(");
        while !self.at_end() && self.text() != ")" {
            args.push(self.expr(0, true));
            if !self.eat(",") {
                break;
            }
        }
        self.eat(")");
        args
    }

    /// Parses a prefix / primary expression.
    fn prefix(&mut self, allow_struct: bool) -> Expr {
        self.skip_attributes();
        let span = self.span();
        let Some(tok) = self.peek() else {
            return Expr::Opaque { span };
        };
        match tok.kind {
            TokenKind::FloatLit => {
                let value = numeric_value(&tok.text);
                self.pos += 1;
                return Expr::Lit {
                    is_float: true,
                    value,
                    span,
                };
            }
            TokenKind::IntLit => {
                let value = numeric_value(&tok.text);
                self.pos += 1;
                return Expr::Lit {
                    is_float: false,
                    value,
                    span,
                };
            }
            TokenKind::StrLit | TokenKind::CharLit => {
                self.pos += 1;
                return Expr::Lit {
                    is_float: false,
                    value: None,
                    span,
                };
            }
            TokenKind::Lifetime => {
                // Labeled block/loop: `'outer: loop { … }`.
                self.pos += 1;
                self.eat(":");
                return self.prefix(allow_struct);
            }
            _ => {}
        }
        match self.text() {
            "-" | "!" => {
                let op = self.text().to_string();
                self.pos += 1;
                let e = self.expr(PREFIX_BP, allow_struct);
                Expr::Unary {
                    op,
                    expr: Box::new(e),
                    span,
                }
            }
            "&" | "&&" => {
                // `&&x` is two reborrows.
                if self.text() == "&&" {
                    self.pos += 1;
                } else {
                    self.pos += 1;
                    self.eat("mut");
                }
                let e = self.expr(PREFIX_BP, allow_struct);
                Expr::Unary {
                    op: "&".to_string(),
                    expr: Box::new(e),
                    span,
                }
            }
            "*" => {
                self.pos += 1;
                let e = self.expr(PREFIX_BP, allow_struct);
                Expr::Unary {
                    op: "*".to_string(),
                    expr: Box::new(e),
                    span,
                }
            }
            "move" => {
                self.pos += 1;
                self.prefix(allow_struct)
            }
            "|" | "||" => self.closure(span),
            "(" => {
                self.pos += 1;
                let mut items = Vec::new();
                while !self.at_end() && self.text() != ")" {
                    items.push(self.expr(0, true));
                    if !self.eat(",") {
                        break;
                    }
                }
                self.eat(")");
                if items.len() == 1 {
                    items.pop().unwrap_or(Expr::Opaque { span })
                } else {
                    Expr::Seq { items, span }
                }
            }
            "[" => {
                self.pos += 1;
                let mut items = Vec::new();
                while !self.at_end() && self.text() != "]" {
                    items.push(self.expr(0, true));
                    if !self.eat(",") && !self.eat(";") {
                        break;
                    }
                }
                self.eat("]");
                Expr::Seq { items, span }
            }
            "{" => Expr::Block(self.block()),
            "unsafe" if self.text_at(1) == "{" => {
                self.pos += 1;
                Expr::Block(self.block())
            }
            "if" => self.if_expr(span),
            "while" => {
                self.pos += 1;
                if self.eat("let") {
                    self.skip_until(&["="]);
                    self.eat("=");
                }
                let cond = self.expr(0, false);
                let body = if self.text() == "{" {
                    self.block()
                } else {
                    Block {
                        stmts: Vec::new(),
                        span,
                    }
                };
                Expr::While {
                    cond: Box::new(cond),
                    body,
                    span,
                }
            }
            "loop" => {
                self.pos += 1;
                let body = if self.text() == "{" {
                    self.block()
                } else {
                    Block {
                        stmts: Vec::new(),
                        span,
                    }
                };
                Expr::While {
                    cond: Box::new(Expr::Opaque { span }),
                    body,
                    span,
                }
            }
            "for" => {
                self.pos += 1;
                let pat_start = self.pos;
                // The pattern cannot contain the `in` keyword.
                while !self.at_end() && self.text() != "in" && self.text() != "{" {
                    self.pos += 1;
                }
                let bindings = self.binding_idents(pat_start, self.pos);
                self.eat("in");
                let iter = self.expr(0, false);
                let body = if self.text() == "{" {
                    self.block()
                } else {
                    Block {
                        stmts: Vec::new(),
                        span,
                    }
                };
                Expr::For {
                    bindings,
                    iter: Box::new(iter),
                    body,
                    span,
                }
            }
            "match" => {
                self.pos += 1;
                let scrutinee = self.expr(0, false);
                let mut arms = Vec::new();
                if self.eat("{") {
                    while !self.at_end() && self.text() != "}" {
                        let before = self.pos;
                        self.skip_attributes();
                        self.skip_until(&["=>"]);
                        if self.eat("=>") {
                            arms.push(self.expr(0, true));
                            self.eat(",");
                        }
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    self.eat("}");
                }
                Expr::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                    span,
                }
            }
            "return" | "break" | "continue" => {
                let op = self.text().to_string();
                self.pos += 1;
                if matches!(self.text(), ";" | ")" | "," | "}" | "]") || self.at_end() {
                    Expr::Opaque { span }
                } else {
                    let e = self.expr(0, allow_struct);
                    Expr::Unary {
                        op,
                        expr: Box::new(e),
                        span,
                    }
                }
            }
            ".." | "..=" => {
                self.pos += 1;
                if !matches!(self.text(), ";" | ")" | "," | "}" | "]") && !self.at_end() {
                    self.expr(5, allow_struct);
                }
                Expr::Opaque { span }
            }
            _ if self.is_ident() => self.path_expr(span, allow_struct),
            _ => {
                self.pos += 1;
                Expr::Opaque { span }
            }
        }
    }

    /// Parses a closure; cursor at `|` or `||`.
    fn closure(&mut self, span: Span) -> Expr {
        let mut params = Vec::new();
        if self.eat("||") {
            // no parameters
        } else {
            self.eat("|");
            let start = self.pos;
            // Scan to the closing `|` at depth 0.
            let (mut par, mut brk, mut ang) = (0i64, 0i64, 0i64);
            while let Some(t) = self.peek() {
                match t.text.as_str() {
                    "(" => par += 1,
                    ")" => par -= 1,
                    "[" => brk += 1,
                    "]" => brk -= 1,
                    "<" => ang += 1,
                    ">" => ang -= 1,
                    "|" if par == 0 && brk == 0 && ang <= 0 => break,
                    "{" | ";" => break, // malformed; bail
                    _ => {}
                }
                self.pos += 1;
            }
            params = self.binding_idents(start, self.pos);
            self.eat("|");
        }
        if self.eat("->") {
            self.skip_until(&["{"]);
        }
        let body = self.expr(2, true);
        Expr::Closure {
            params,
            body: Box::new(body),
            span,
        }
    }

    /// Parses an `if` (or `if let`) expression; cursor at `if`.
    fn if_expr(&mut self, span: Span) -> Expr {
        self.eat("if");
        if self.eat("let") {
            self.skip_until(&["="]);
            self.eat("=");
        }
        let cond = self.expr(0, false);
        let then = if self.text() == "{" {
            self.block()
        } else {
            Block {
                stmts: Vec::new(),
                span,
            }
        };
        let els = if self.eat("else") {
            if self.text() == "if" {
                let espan = self.span();
                Some(Box::new(self.if_expr(espan)))
            } else if self.text() == "{" {
                Some(Box::new(Expr::Block(self.block())))
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            els,
            span,
        }
    }

    /// Parses a path expression (`a::b::c`), then a struct literal, macro
    /// invocation or plain path.
    fn path_expr(&mut self, span: Span, allow_struct: bool) -> Expr {
        let mut segments = Vec::new();
        segments.push(self.bump().map(|t| t.text.clone()).unwrap_or_default());
        loop {
            if self.text() == "::" {
                if self.text_at(1) == "<" {
                    self.pos += 1;
                    self.skip_angles(); // turbofish
                    continue;
                }
                if self.peek_at(1).map(|t| t.kind) == Some(TokenKind::Ident) {
                    self.pos += 1;
                    segments.push(self.bump().map(|t| t.text.clone()).unwrap_or_default());
                    continue;
                }
            }
            break;
        }
        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`. The
        // body is skipped (lossy, false-negative direction) but the name
        // survives so hot-path rules can see `format!`/`vec!`/`println!`.
        if self.text() == "!" && matches!(self.text_at(1), "(" | "[" | "{") {
            self.pos += 1;
            self.skip_balanced();
            let name = segments.last().cloned().unwrap_or_default();
            return Expr::MacroCall { name, span };
        }
        // Struct literal.
        if allow_struct && self.text() == "{" && self.looks_like_struct_lit() {
            self.pos += 1;
            let mut fields = Vec::new();
            while !self.at_end() && self.text() != "}" {
                if self.eat("..") {
                    // Functional update: `..base`.
                    fields.push(self.expr(0, true));
                    break;
                }
                if self.is_ident() && self.text_at(1) == ":" {
                    self.pos += 2;
                    fields.push(self.expr(0, true));
                } else {
                    fields.push(self.expr(0, true)); // shorthand
                }
                if !self.eat(",") {
                    break;
                }
            }
            self.eat("}");
            return Expr::StructLit { fields, span };
        }
        Expr::Path { segments, span }
    }

    /// Lookahead heuristic: does `{ …` after a path open a struct
    /// literal? True for `{}`, `{ ident: …`, `{ ident,`, `{ ident }` and
    /// `{ ..base }` — everything else is treated as a block.
    fn looks_like_struct_lit(&self) -> bool {
        match self.text_at(1) {
            "}" | ".." => true,
            _ => {
                self.peek_at(1).map(|t| t.kind) == Some(TokenKind::Ident)
                    && matches!(self.text_at(2), ":" | "," | "}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&lex(src))
    }

    fn only_fn(items: &[Item]) -> &FnItem {
        for it in items {
            if let ItemKind::Fn(f) = &it.kind {
                return f;
            }
        }
        panic!("no fn parsed");
    }

    #[test]
    fn parses_fn_with_params_and_body() {
        let items = parse("pub fn f(a: f64, b: Volts) -> f64 { let c = a + 1.0; c }");
        assert!(items[0].is_pub);
        let f = only_fn(&items);
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].names, ["a"]);
        assert_eq!(f.params[1].ty, "Volts");
        let body = f.body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 2);
        match &body.stmts[0] {
            Stmt::Let { names, init, .. } => {
                assert_eq!(names.as_slice(), ["c"]);
                assert!(matches!(init, Some(Expr::Binary { op, .. }) if op == "+"));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn method_chains_and_calls() {
        let items = parse("fn f() { x.as_millivolts().abs(); Volts::from_millivolts(1.0); }");
        let f = only_fn(&items);
        let body = f.body.as_ref().expect("body");
        match &body.stmts[0] {
            Stmt::Expr(Expr::MethodCall { method, recv, .. }) => {
                assert_eq!(method, "abs");
                assert!(
                    matches!(&**recv, Expr::MethodCall { method, .. } if method == "as_millivolts")
                );
            }
            other => panic!("expected chain, got {other:?}"),
        }
        match &body.stmts[1] {
            Stmt::Expr(Expr::Call { callee, args, .. }) => {
                assert!(matches!(&**callee, Expr::Path { segments, .. }
                        if segments.as_slice() == ["Volts", "from_millivolts"]));
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn closures_and_for_loops() {
        let items = parse("fn f() { par_map(p, &xs, |_, x| x + 1.0); for (k, v) in m { k; } }");
        let f = only_fn(&items);
        let body = f.body.as_ref().expect("body");
        match &body.stmts[0] {
            Stmt::Expr(Expr::Call { args, .. }) => match &args[2] {
                Expr::Closure { params, body, .. } => {
                    assert_eq!(params.as_slice(), ["x"]);
                    assert!(matches!(&**body, Expr::Binary { .. }));
                }
                other => panic!("expected closure, got {other:?}"),
            },
            other => panic!("expected call, got {other:?}"),
        }
        match &body.stmts[1] {
            Stmt::Expr(Expr::For { bindings, .. }) => {
                assert_eq!(bindings.as_slice(), ["k", "v"]);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn struct_literal_vs_block_disambiguation() {
        let items = parse("fn f() { if x { y() } let p = Point { x: 1, y: 2 }; }");
        let f = only_fn(&items);
        let body = f.body.as_ref().expect("body");
        assert!(matches!(&body.stmts[0], Stmt::Expr(Expr::If { .. })));
        match &body.stmts[1] {
            Stmt::Let { init, .. } => {
                assert!(matches!(init, Some(Expr::StructLit { fields, .. }) if fields.len() == 2));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn items_nest_through_mods_impls_traits() {
        let items = parse(
            "mod m { impl Foo { pub fn g(&self) {} } trait T { fn d(&self) { x(); } } }\n\
             use a::b::{c, d};",
        );
        let mut fn_names = Vec::new();
        for it in &items {
            it.visit_fns(&mut |_, f| fn_names.push(f.name.clone()));
        }
        assert_eq!(fn_names, ["g", "d"]);
        let uses: Vec<_> = items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Use { segments } => Some(segments.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(uses, [["a", "b", "c", "d"]]);
    }

    #[test]
    fn generics_turbofish_and_matches_do_not_derail() {
        let items = parse(
            "fn f<T: Ord>(xs: Vec<Vec<f64>>) -> BTreeMap<u32, f64> {\n\
               let v = xs.iter().map(|r| r[0]).collect::<Vec<_>>();\n\
               match v.first() { Some(x) => *x, None => 0.0 }\n\
             }",
        );
        let f = only_fn(&items);
        assert_eq!(f.params[0].names, ["xs"]);
        let body = f.body.as_ref().expect("body");
        assert!(matches!(
            body.stmts.last(),
            Some(Stmt::Expr(Expr::Match { arms, .. })) if arms.len() == 2
        ));
    }

    #[test]
    fn macro_invocations_keep_name_drop_body() {
        let items = parse("fn f() { assert!(x > 0.0); let v = std::vec![1.0, 2.0]; }");
        let f = only_fn(&items);
        let body = f.body.as_ref().expect("body");
        assert!(matches!(
            &body.stmts[0],
            Stmt::Expr(Expr::MacroCall { name, .. }) if name == "assert"
        ));
        assert!(matches!(
            &body.stmts[1],
            Stmt::Let {
                init: Some(Expr::MacroCall { name, .. }),
                ..
            } if name == "vec"
        ));
    }

    #[test]
    fn literal_values_and_unary_ops_are_captured() {
        let items = parse(
            "fn f() -> f64 { let a = 1_000.5f64; let b = 0x10; let c = -2.0; let d = &a; a }",
        );
        let f = only_fn(&items);
        assert!(f.has_ret);
        let body = f.body.as_ref().expect("body");
        let init = |i: usize| match &body.stmts[i] {
            Stmt::Let { init: Some(e), .. } => e,
            other => panic!("expected let, got {other:?}"),
        };
        assert!(matches!(init(0), Expr::Lit { value: Some(v), .. } if *v == 1000.5));
        assert!(matches!(init(1), Expr::Lit { value: Some(v), .. } if *v == 16.0));
        match init(2) {
            Expr::Unary { op, expr, .. } => {
                assert_eq!(op, "-");
                assert!(matches!(&**expr, Expr::Lit { value: Some(v), .. } if *v == 2.0));
            }
            other => panic!("expected unary, got {other:?}"),
        }
        assert!(matches!(init(3), Expr::Unary { op, .. } if op == "&"));
    }

    #[test]
    fn every_workspace_shape_terminates() {
        // Torture mix: raw idents, labels, let-else, casts, ranges,
        // nested closures, tuple fields.
        let src = r#"
            pub(crate) fn g(t: &mut (f64, u32)) -> Result<(), E> {
                'outer: loop { break 'outer; }
                let Some(x) = opt else { return Err(E::new()); };
                let y = (x as f64) * 2.0;
                let z = t.0 + y;
                for i in 0..10 { let _ = i; }
                Ok(())
            }
            quantity! { Volts, "V", scaled { from_mv / as_mv: 1e-3 } }
        "#;
        let items = parse(src);
        assert!(items.iter().any(|i| matches!(i.kind, ItemKind::Fn(_))));
    }
}
