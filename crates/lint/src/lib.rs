//! `bios-lint` — the workspace's in-tree invariant lint engine.
//!
//! The platform's headline guarantees (bit-identical parallel execution,
//! no silent corruption under injected faults) are dynamic properties; a
//! single stray `HashMap` iteration, wall-clock read or `unwrap()` in a
//! hot path can silently void them between test runs. This crate encodes
//! those invariants as *static* rules checked on every CI run, in the
//! platform-based-design spirit of the source paper: component contracts
//! are verified at design time, not discovered in the field.
//!
//! Pipeline: [`lexer`] turns a source file into a token stream with
//! comments kept aside and `#[cfg(test)]` regions marked; [`rules`] runs
//! the catalogue (D1, D2, P1, U1, S1, F1) over the tokens and applies
//! inline `// advdiag::allow(rule, reason)` suppressions; [`baseline`]
//! subtracts grandfathered findings; [`report`] renders what is left for
//! humans or machines. [`workspace`] knows which files the rules bind.
//!
//! The crate is dependency-free by design — the linter must not depend on
//! code it lints, and must stay trivially auditable.
//!
//! See `DESIGN.md` §6 for the rule catalogue and how to add a rule.

#![forbid(unsafe_code)]

pub mod ast;
pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod dataflow;
pub mod depgraph;
pub mod dimension;
pub mod fixer;
pub mod hotpath;
pub mod lexer;
pub mod parser;
pub mod range;
pub mod report;
pub mod rules;
pub mod workspace;

pub use baseline::{Baseline, BaselineEntry};
pub use cache::LintCache;
pub use callgraph::{CallGraph, Level};
pub use depgraph::{DepGraph, HotOverlay};
pub use fixer::{Fix, FixOutcome, FixSafety};
pub use report::Report;
pub use rules::{
    lint_file, lint_source, AllowSite, FileContext, FileLint, Finding, Severity, RULE_IDS,
};
pub use workspace::{
    discover, gather, lint_files, lint_files_cached, lint_files_graph, lint_workspace,
    lint_workspace_graph, LintStats, MemFile,
};
