//! CLI driver: lint the workspace, subtract the baseline, report, and
//! exit nonzero on any new error-severity finding.
//!
//! ```text
//! cargo run -p bios-lint                         # human diagnostics
//! cargo run -p bios-lint -- --format json        # machine-readable report
//! cargo run -p bios-lint -- --format github      # GitHub Actions annotations
//! cargo run -p bios-lint -- --baseline lint-baseline.json --out lint-report.json
//! cargo run -p bios-lint -- --write-baseline lint-baseline.json
//! cargo run -p bios-lint -- --emit-dot target/deps.dot
//! ```
//!
//! Exit codes: 0 = clean (no unbaselined error findings; warnings such
//! as A2 report without failing), 1 = new errors, 2 = usage or I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

use bios_lint::{Baseline, Report};

enum Format {
    Text,
    Json,
    Github,
}

struct Options {
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    out: Option<PathBuf>,
    emit_dot: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        format: Format::Text,
        baseline: None,
        write_baseline: None,
        out: None,
        emit_dot: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut path_value = |name: &str| -> Result<PathBuf, String> {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} requires a path argument"))
        };
        match arg.as_str() {
            "--format" => {
                let v = it
                    .next()
                    .ok_or("--format requires `text`, `json` or `github`")?;
                opts.format = match v.as_str() {
                    "json" => Format::Json,
                    "text" => Format::Text,
                    "github" => Format::Github,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--root" => opts.root = path_value("--root")?,
            "--baseline" => opts.baseline = Some(path_value("--baseline")?),
            "--write-baseline" => opts.write_baseline = Some(path_value("--write-baseline")?),
            "--out" => opts.out = Some(path_value("--out")?),
            "--emit-dot" => opts.emit_dot = Some(path_value("--emit-dot")?),
            "--help" | "-h" => {
                return Err("usage: bios-lint [--root DIR] [--format text|json|github] \
                     [--baseline FILE] [--write-baseline FILE] [--out FILE] \
                     [--emit-dot FILE]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    // Default: pick up the checked-in baseline when present.
    if opts.baseline.is_none() {
        let default = opts.root.join("lint-baseline.json");
        if default.is_file() {
            opts.baseline = Some(default);
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<bool, String> {
    let files = bios_lint::discover(&opts.root)?.len();
    let (findings, graph) = bios_lint::lint_workspace_graph(&opts.root)?;
    if let Some(path) = &opts.emit_dot {
        std::fs::write(path, graph.to_dot())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "bios-lint: wrote dependency graph ({} edge(s)) to {}",
            graph.edges.len(),
            path.display()
        );
    }
    if let Some(path) = &opts.write_baseline {
        let baseline = Baseline::from_findings(&findings);
        std::fs::write(path, baseline.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "bios-lint: wrote baseline with {} entries to {}",
            baseline.entries.len(),
            path.display()
        );
        return Ok(true);
    }
    let baseline = match &opts.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => Baseline::default(),
    };
    let (baselined, fresh) = baseline.partition(&findings);
    let report = Report {
        files,
        baselined,
        fresh,
    };
    let rendered = match opts.format {
        Format::Json => report.json(),
        Format::Text => report.human(),
        Format::Github => report.github(),
    };
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!(
                "bios-lint: {} file(s), {} new finding(s), report at {}",
                report.files,
                report.fresh.len(),
                path.display()
            );
        }
        None => print!("{rendered}"),
    }
    Ok(report.fresh_errors().count() == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("bios-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bios-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
