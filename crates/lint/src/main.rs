//! CLI driver: lint the workspace, subtract the baseline, report, and
//! exit nonzero on any new error-severity finding.
//!
//! ```text
//! cargo run -p bios-lint                         # human diagnostics
//! cargo run -p bios-lint -- --format json        # machine-readable report
//! cargo run -p bios-lint -- --format github      # GitHub Actions annotations
//! cargo run -p bios-lint -- --baseline lint-baseline.json --out lint-report.json
//! cargo run -p bios-lint -- --write-baseline lint-baseline.json
//! cargo run -p bios-lint -- --emit-dot target/deps.dot
//! cargo run -p bios-lint -- --fix                # apply machine-applicable fixes
//! cargo run -p bios-lint -- --fix-check --diff target/fixes.patch
//! cargo run -p bios-lint -- --cache target/lint-cache.json
//! cargo run -p bios-lint -- --cache target/lint-cache.json --changed-since files.txt
//! ```
//!
//! `--fix` applies every machine-applicable fix to disk (iterating to a
//! fixpoint) and then lints the repaired tree; `--fix-check` computes
//! the same fixes without touching disk and fails the run if any would
//! apply — CI uses it to keep auto-fixable debt at zero. `--diff`
//! writes the would-be (or applied) rewrites as a unified diff.
//! `--cache` loads/stores the incremental findings DB so warm runs skip
//! re-analyzing unchanged files; `--changed-since` additionally forces
//! the listed rel-paths dirty (one per line).
//!
//! Exit codes: 0 = clean (no unbaselined error findings; warnings such
//! as A2 report without failing), 1 = new errors (or, under
//! `--fix-check`, pending fixes), 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use bios_lint::fixer;
use bios_lint::{Baseline, LintCache, Report};

enum Format {
    Text,
    Json,
    Github,
}

struct Options {
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    out: Option<PathBuf>,
    emit_dot: Option<PathBuf>,
    fix: bool,
    fix_check: bool,
    diff: Option<PathBuf>,
    cache: Option<PathBuf>,
    changed_since: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        format: Format::Text,
        baseline: None,
        write_baseline: None,
        out: None,
        emit_dot: None,
        fix: false,
        fix_check: false,
        diff: None,
        cache: None,
        changed_since: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut path_value = |name: &str| -> Result<PathBuf, String> {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{name} requires a path argument"))
        };
        match arg.as_str() {
            "--format" => {
                let v = it
                    .next()
                    .ok_or("--format requires `text`, `json` or `github`")?;
                opts.format = match v.as_str() {
                    "json" => Format::Json,
                    "text" => Format::Text,
                    "github" => Format::Github,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--root" => opts.root = path_value("--root")?,
            "--baseline" => opts.baseline = Some(path_value("--baseline")?),
            "--write-baseline" => opts.write_baseline = Some(path_value("--write-baseline")?),
            "--out" => opts.out = Some(path_value("--out")?),
            "--emit-dot" => opts.emit_dot = Some(path_value("--emit-dot")?),
            "--fix" => opts.fix = true,
            "--fix-check" => opts.fix_check = true,
            "--diff" => opts.diff = Some(path_value("--diff")?),
            "--cache" => opts.cache = Some(path_value("--cache")?),
            "--changed-since" => opts.changed_since = Some(path_value("--changed-since")?),
            "--help" | "-h" => {
                return Err("usage: bios-lint [--root DIR] [--format text|json|github] \
                     [--baseline FILE] [--write-baseline FILE] [--out FILE] \
                     [--emit-dot FILE] [--fix | --fix-check] [--diff FILE] \
                     [--cache FILE] [--changed-since FILE]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if opts.fix && opts.fix_check {
        return Err("--fix and --fix-check are mutually exclusive".to_string());
    }
    // Default: pick up the checked-in baseline when present.
    if opts.baseline.is_none() {
        let default = opts.root.join("lint-baseline.json");
        if default.is_file() {
            opts.baseline = Some(default);
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<bool, String> {
    let mut files = bios_lint::gather(&opts.root)?;
    let lintable = files.iter().filter(|f| f.lintable).count();
    let baseline = match &opts.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => Baseline::default(),
    };

    // Auto-fix: compute the machine-applicable fixpoint in memory, then
    // either write it back (`--fix`) or gate on it (`--fix-check`).
    let mut pending_fixes = 0usize;
    if opts.fix || opts.fix_check {
        let mut working = files.clone();
        let outcome = fixer::fix_files(&mut working, &baseline)?;
        let mut diffs = String::new();
        for rel in &outcome.changed {
            let old = files.iter().find(|f| &f.rel_path == rel);
            let new = working.iter().find(|f| &f.rel_path == rel);
            if let (Some(old), Some(new)) = (old, new) {
                diffs.push_str(&fixer::unified_diff(rel, &old.source, &new.source));
            }
        }
        if let Some(path) = &opts.diff {
            std::fs::write(path, &diffs)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        if opts.fix {
            for rel in &outcome.changed {
                if let Some(new) = working.iter().find(|f| &f.rel_path == rel) {
                    let path = opts.root.join(rel);
                    std::fs::write(&path, &new.source)
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                }
            }
            eprintln!(
                "bios-lint: applied {} fix(es) to {} file(s) in {} round(s)",
                outcome.applied,
                outcome.changed.len(),
                outcome.rounds
            );
            files = working; // lint the repaired tree below
        } else {
            pending_fixes = outcome.applied;
            if pending_fixes > 0 {
                eprintln!(
                    "bios-lint: {} machine-applicable fix(es) pending in {} file(s) — \
                     run with --fix to apply",
                    pending_fixes,
                    outcome.changed.len()
                );
            }
        }
    }

    // Lint, replaying unchanged files from the cache when one is given.
    let cache = match &opts.cache {
        Some(path) => std::fs::read_to_string(path)
            .map(|t| LintCache::parse(&t))
            .unwrap_or_default(),
        None => LintCache::default(),
    };
    let force_dirty: Vec<String> = match &opts.changed_since {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect(),
        None => Vec::new(),
    };
    let (findings, graph, new_cache, stats) =
        bios_lint::lint_files_cached(&files, &cache, &force_dirty);
    if let Some(path) = &opts.cache {
        std::fs::write(path, new_cache.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "bios-lint: cache replayed {}/{} file(s), {}/{} crate(s)",
            stats.files_reused,
            stats.files_total,
            stats.crates_reused,
            stats.crates_reused + stats.crates_analyzed
        );
    }

    if let Some(path) = &opts.emit_dot {
        std::fs::write(path, graph.to_dot())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "bios-lint: wrote dependency graph ({} edge(s)) to {}",
            graph.edges.len(),
            path.display()
        );
    }
    if let Some(path) = &opts.write_baseline {
        let baseline = Baseline::from_findings(&findings);
        std::fs::write(path, baseline.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!(
            "bios-lint: wrote baseline with {} entries to {}",
            baseline.entries.len(),
            path.display()
        );
        return Ok(true);
    }
    let (baselined, fresh) = baseline.partition(&findings);
    let report = Report {
        files: lintable,
        baselined,
        fresh,
    };
    let rendered = match opts.format {
        Format::Json => report.json(),
        Format::Text => report.human(),
        Format::Github => report.github(),
    };
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!(
                "bios-lint: {} file(s), {} new finding(s), report at {}",
                report.files,
                report.fresh.len(),
                path.display()
            );
        }
        None => print!("{rendered}"),
    }
    Ok(report.fresh_errors().count() == 0 && pending_fixes == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("bios-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bios-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
