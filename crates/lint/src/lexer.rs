//! A minimal Rust lexer: good enough to walk this workspace's sources as a
//! flat token stream with line/column spans, comments kept aside, and
//! `#[cfg(test)]` / `#[test]` regions marked.
//!
//! This is *not* a general Rust parser. It understands exactly what the
//! rules in [`crate::rules`] need: identifiers, numeric/string/char
//! literals (including raw strings and raw identifiers), lifetimes,
//! maximal-munch multi-character operators, and nested block comments.
//! Everything it cannot classify becomes a single-character operator
//! token, which is always safe for the token-pattern matching the rules
//! do.
//!
//! Columns are **1-based and counted in characters**, not bytes: the
//! units crate spells `µA` and `Ω` in doc comments, and a byte-based
//! column would drift past every multi-byte scalar on the line, pointing
//! editors and CI annotations at the wrong spot.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, with the `r#`
    /// stripped).
    Ident,
    /// Floating-point literal (`1.0`, `1e-3`, `2f64`, …).
    FloatLit,
    /// Integer literal (including `0x`/`0o`/`0b` forms).
    IntLit,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    StrLit,
    /// Character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// Lifetime (`'a`).
    Lifetime,
    /// Operator / punctuation, maximal-munch (`::`, `==`, `->`, `{`, …).
    Op,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Source text of the token (operators keep their full spelling).
    /// Invariant: `text == src[offset..offset + text.len()]`, which is
    /// what lets the auto-fix engine splice replacements byte-exactly.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// 1-based column (in characters, not bytes) the token starts at.
    pub col: u32,
    /// Byte offset of the token start in the source.
    pub offset: usize,
    /// True if the token sits inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

/// A comment, kept out of the token stream but retained for the
/// suppression / `SAFETY:` scanners.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based character column the comment starts at.
    pub col: u32,
    /// Byte offset of the comment start in the source.
    pub offset: usize,
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Character column (1-based) of byte offset `at`, given the byte offset
/// of the start of its line. Both offsets must sit on char boundaries.
fn char_col(src: &str, line_start: usize, at: usize) -> u32 {
    src[line_start..at].chars().count() as u32 + 1
}

/// Lexes `src`, then marks test regions.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    // Byte offset where the current line begins (for column computation).
    let mut line_start = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Newlines / whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            line_start = i;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let col = char_col(src, line_start, i);
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            match bytes[i + 1] as char {
                '/' => {
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    out.comments.push(Comment {
                        line,
                        col,
                        offset: start,
                        text: src[start..i].to_string(),
                    });
                    continue;
                }
                '*' => {
                    let start = i;
                    let start_line = line;
                    let mut depth = 1u32;
                    i += 2;
                    while i < bytes.len() && depth > 0 {
                        if bytes[i] == b'\n' {
                            line += 1;
                            i += 1;
                            line_start = i;
                        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    out.comments.push(Comment {
                        line: start_line,
                        col,
                        offset: start,
                        text: src[start..i].to_string(),
                    });
                    continue;
                }
                _ => {}
            }
        }
        // Raw strings / raw identifiers / byte strings.
        if (c == 'r' || c == 'b')
            && scan_raw_or_byte(
                src,
                bytes,
                &mut i,
                &mut line,
                &mut line_start,
                col,
                &mut out,
            )
        {
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: src[start..i].to_string(),
                line,
                col,
                offset: start,
                in_test: false,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let (text, is_float) = scan_number(src, bytes, &mut i);
            out.tokens.push(Token {
                kind: if is_float {
                    TokenKind::FloatLit
                } else {
                    TokenKind::IntLit
                },
                text,
                line,
                col,
                offset: start,
                in_test: false,
            });
            continue;
        }
        // Strings.
        if c == '"' {
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    i += 1;
                } else if bytes[i] == b'\n' {
                    line += 1;
                    line_start = i + 1;
                }
                i += 1;
            }
            i = (i + 1).min(bytes.len());
            out.tokens.push(Token {
                kind: TokenKind::StrLit,
                text: src[start..i].to_string(),
                line,
                col,
                offset: start,
                in_test: false,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let start = i;
            i += 1;
            let is_lifetime = i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphabetic() || bytes[i] == b'_')
                && !(i + 1 < bytes.len() && bytes[i + 1] == b'\'');
            if is_lifetime {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: src[start..i].to_string(),
                    line,
                    col,
                    offset: start,
                    in_test: false,
                });
            } else {
                while i < bytes.len() && bytes[i] != b'\'' {
                    if bytes[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(bytes.len());
                out.tokens.push(Token {
                    kind: TokenKind::CharLit,
                    text: src[start..i].to_string(),
                    line,
                    col,
                    offset: start,
                    in_test: false,
                });
            }
            continue;
        }
        // Operators: maximal munch against the multi-char table, else one
        // character.
        let rest = &src[i..];
        let mut matched = None;
        for op in OPERATORS {
            if rest.starts_with(op) {
                matched = Some(*op);
                break;
            }
        }
        let op_text = matched.map(str::to_string).unwrap_or_else(|| {
            // Always split on UTF-8 boundaries: take one full char.
            let ch_len = rest.chars().next().map(char::len_utf8).unwrap_or(1);
            rest[..ch_len].to_string()
        });
        let op_start = i;
        i += op_text.len();
        out.tokens.push(Token {
            kind: TokenKind::Op,
            text: op_text,
            line,
            col,
            offset: op_start,
            in_test: false,
        });
    }
    mark_test_regions(&mut out.tokens);
    out
}

/// Handles `r#"…"#`, `r"…"`, `r#ident`, `b"…"`, `br#"…"#`, `b'…'`.
/// Returns true (and advances `i`) if it consumed something.
fn scan_raw_or_byte(
    src: &str,
    bytes: &[u8],
    i: &mut usize,
    line: &mut u32,
    line_start: &mut usize,
    col: u32,
    out: &mut Lexed,
) -> bool {
    let start = *i;
    let start_line = *line;
    let mut j = *i + 1;
    // `br` / `rb` prefixes.
    if j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && bytes[start] != bytes[j] {
        j += 1;
    }
    // Count `#`s.
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'"' {
        // Raw / byte string: scan to closing quote followed by `hashes` #s.
        j += 1;
        loop {
            if j >= bytes.len() {
                break;
            }
            if bytes[j] == b'\n' {
                *line += 1;
                j += 1;
                *line_start = j;
                continue;
            }
            if bytes[j] == b'"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    j = k;
                    break;
                }
            }
            // Plain byte string (`b"…"`, zero hashes) still honors escapes.
            if hashes == 0 && bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        out.tokens.push(Token {
            kind: TokenKind::StrLit,
            text: src[start..j.min(src.len())].to_string(),
            line: start_line,
            col,
            offset: start,
            in_test: false,
        });
        *i = j;
        return true;
    }
    if hashes == 1
        && j < bytes.len()
        && ((bytes[j] as char).is_ascii_alphabetic() || bytes[j] == b'_')
    {
        // Raw identifier `r#ident`: emit as a plain ident.
        let id_start = j;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        out.tokens.push(Token {
            kind: TokenKind::Ident,
            text: src[id_start..j].to_string(),
            line: start_line,
            col,
            offset: id_start,
            in_test: false,
        });
        *i = j;
        return true;
    }
    if bytes[start] == b'b' && start + 1 < bytes.len() && bytes[start + 1] == b'\'' {
        // Byte char literal.
        let mut k = start + 2;
        while k < bytes.len() && bytes[k] != b'\'' {
            if bytes[k] == b'\\' {
                k += 1;
            }
            k += 1;
        }
        k = (k + 1).min(bytes.len());
        out.tokens.push(Token {
            kind: TokenKind::CharLit,
            text: src[start..k].to_string(),
            line: start_line,
            col,
            offset: start,
            in_test: false,
        });
        *i = k;
        return true;
    }
    false
}

/// Scans a numeric literal starting at `*i`; returns `(text, is_float)`.
fn scan_number(src: &str, bytes: &[u8], i: &mut usize) -> (String, bool) {
    let start = *i;
    let mut is_float = false;
    let radix_prefixed = bytes[*i] == b'0'
        && *i + 1 < bytes.len()
        && matches!(bytes[*i + 1], b'x' | b'o' | b'b' | b'X' | b'O' | b'B');
    if radix_prefixed {
        *i += 2;
        while *i < bytes.len() && (bytes[*i].is_ascii_alphanumeric() || bytes[*i] == b'_') {
            *i += 1;
        }
        return (src[start..*i].to_string(), false);
    }
    while *i < bytes.len() && (bytes[*i].is_ascii_digit() || bytes[*i] == b'_') {
        *i += 1;
    }
    // Fractional part — but not `1..2` (range) or `1.method()`.
    if *i < bytes.len()
        && bytes[*i] == b'.'
        && !(*i + 1 < bytes.len()
            && (bytes[*i + 1] == b'.' || (bytes[*i + 1] as char).is_ascii_alphabetic()))
    {
        is_float = true;
        *i += 1;
        while *i < bytes.len() && (bytes[*i].is_ascii_digit() || bytes[*i] == b'_') {
            *i += 1;
        }
    }
    // Exponent.
    if *i < bytes.len() && matches!(bytes[*i], b'e' | b'E') {
        let mut k = *i + 1;
        if k < bytes.len() && matches!(bytes[k], b'+' | b'-') {
            k += 1;
        }
        if k < bytes.len() && bytes[k].is_ascii_digit() {
            is_float = true;
            *i = k;
            while *i < bytes.len() && (bytes[*i].is_ascii_digit() || bytes[*i] == b'_') {
                *i += 1;
            }
        }
    }
    // Type suffix (`f64`, `u32`, …).
    let suffix_start = *i;
    while *i < bytes.len() && (bytes[*i].is_ascii_alphanumeric() || bytes[*i] == b'_') {
        *i += 1;
    }
    if src[suffix_start..*i].starts_with('f') {
        is_float = true;
    }
    (src[start..*i].to_string(), is_float)
}

/// Marks every token inside an item annotated `#[cfg(test)]` (or any
/// `cfg(…)` whose argument mentions `test`) or `#[test]` with
/// `in_test = true`. The "item" is everything up to the matching `}` of
/// the first `{` after the attribute (or up to `;` if one comes first).
fn mark_test_regions(tokens: &mut [Token]) {
    let mut idx = 0usize;
    while idx < tokens.len() {
        if let Some(after_attr) = test_attribute_end(tokens, idx) {
            // Skip any further attributes stacked on the same item.
            let mut j = after_attr;
            while let Some(next) = attribute_end(tokens, j) {
                j = next;
            }
            // Find the item's body: first `{` (mark through its match) or a
            // terminating `;`.
            let mut k = j;
            let mut end = tokens.len();
            while k < tokens.len() {
                let t = &tokens[k].text;
                if tokens[k].kind == TokenKind::Op && t == ";" {
                    end = k + 1;
                    break;
                }
                if tokens[k].kind == TokenKind::Op && t == "{" {
                    let mut depth = 0i64;
                    let mut m = k;
                    while m < tokens.len() {
                        if tokens[m].kind == TokenKind::Op {
                            match tokens[m].text.as_str() {
                                "{" => depth += 1,
                                "}" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                        m += 1;
                    }
                    end = (m + 1).min(tokens.len());
                    break;
                }
                k += 1;
            }
            for t in tokens.iter_mut().take(end).skip(idx) {
                t.in_test = true;
            }
            idx = end;
        } else {
            idx += 1;
        }
    }
}

/// If `tokens[idx..]` starts a `#[test]` or `#[cfg(… test …)]` attribute,
/// returns the index just past its closing `]`.
fn test_attribute_end(tokens: &[Token], idx: usize) -> Option<usize> {
    let end = attribute_end(tokens, idx)?;
    let body = &tokens[idx + 2..end - 1];
    let is_bare_test = body.len() == 1 && body[0].text == "test";
    let is_cfg_test = body.first().map(|t| t.text.as_str()) == Some("cfg")
        && body
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "test");
    (is_bare_test || is_cfg_test).then_some(end)
}

/// If `tokens[idx..]` starts any `#[…]` attribute, returns the index just
/// past its closing `]`.
fn attribute_end(tokens: &[Token], idx: usize) -> Option<usize> {
    if tokens.get(idx).map(|t| t.text.as_str()) != Some("#")
        || tokens.get(idx + 1).map(|t| t.text.as_str()) != Some("[")
    {
        return None;
    }
    let mut depth = 0i64;
    let mut j = idx + 1;
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Op {
            match tokens[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j + 1);
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_not_tokens() {
        let lexed = lex("// hello unwrap()\nlet x = 1; /* panic! */");
        assert!(lexed
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "panic"));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn float_vs_int_literals() {
        let lexed = lex("let a = 1.0; let b = 3; let c = 1e-3; let d = 2f64; let e = 0x10;");
        let kinds: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::FloatLit | TokenKind::IntLit))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            [
                TokenKind::FloatLit,
                TokenKind::IntLit,
                TokenKind::FloatLit,
                TokenKind::FloatLit,
                TokenKind::IntLit
            ]
        );
    }

    #[test]
    fn range_is_not_a_float() {
        let lexed = lex("for i in 0..10 {}");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.text == ".." && t.kind == TokenKind::Op));
        assert!(lexed.tokens.iter().all(|t| t.kind != TokenKind::FloatLit));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let lexed =
            lex(r##"let s = r#"unwrap() "quoted""#; fn f<'a>(x: &'a str) -> char { 'x' }"##);
        assert!(lexed.tokens.iter().all(|t| t.text != "unwrap"));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::CharLit));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\nfn tail() {}";
        let lexed = lex(src);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [false, true]);
        let tail = lexed
            .tokens
            .iter()
            .find(|t| t.text == "tail")
            .map(|t| t.in_test);
        assert_eq!(tail, Some(false));
    }

    #[test]
    fn multichar_operators_munch() {
        let lexed = lex("a == b; c != d; e::f; g -> h;");
        let ops: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Op && t.text.len() > 1)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ops, ["==", "!=", "::", "->"]);
    }

    #[test]
    fn columns_are_char_based_not_byte_based() {
        // `µ` is 2 bytes, `Ω` is 2 bytes: a byte-counting lexer would put
        // `x` at column 13 on line 2 and the comment at column 7 on line 3.
        let src = "/// gain in µA/Ω-ish units\nlet µΩx = 1;\n  /*Ω*/ let y = 2;\n";
        let lexed = lex(src);
        assert_eq!((lexed.comments[0].line, lexed.comments[0].col), (1, 1));
        // Line 2: `let` at col 1, `µ` and `Ω` become 1-char Op tokens,
        // `x` lands at col 7 counted in chars.
        let x = lexed.tokens.iter().find(|t| t.text == "x").expect("x");
        assert_eq!((x.line, x.col), (2, 7));
        // Line 3: block comment starts at char col 3, `let` after it at 9.
        assert_eq!((lexed.comments[1].line, lexed.comments[1].col), (3, 3));
        let let_y = lexed
            .tokens
            .iter()
            .position(|t| t.text == "y")
            .expect("y stmt");
        assert_eq!(lexed.tokens[let_y - 1].text, "let");
        assert_eq!(lexed.tokens[let_y - 1].col, 9);
        assert_eq!(lexed.tokens[let_y].col, 13);
    }

    #[test]
    fn token_offsets_index_exact_source_slices() {
        // Multi-byte chars, comments, raw strings: every token and
        // comment must satisfy `text == src[offset..offset+len]` — the
        // invariant the auto-fix splicer relies on.
        let src = "let µx = 1.5; // c Ω\nfn f(s: &str) -> f64 { r#\"q\"# ; x == 1.5 }\n";
        let lexed = lex(src);
        for t in &lexed.tokens {
            assert_eq!(&src[t.offset..t.offset + t.text.len()], t.text, "{t:?}");
        }
        for c in &lexed.comments {
            assert_eq!(&src[c.offset..c.offset + c.text.len()], c.text, "{c:?}");
        }
    }

    #[test]
    fn columns_after_multiline_string_restart_correctly() {
        let src = "let s = \"a\nb\"; let t = 1;\n";
        let lexed = lex(src);
        let t = lexed.tokens.iter().find(|t| t.text == "t").expect("t");
        // `b"; let t = 1;` — `t` is on line 2 at char column 9.
        assert_eq!((t.line, t.col), (2, 9));
    }
}
