//! The expression/item AST the semantic analyses walk.
//!
//! This is a *lossy* abstract syntax tree: it keeps exactly the structure
//! the analyses in [`crate::dimension`] and [`crate::dataflow`] reason
//! about — functions, let-bindings, calls, method chains, closures,
//! arithmetic — and collapses everything else into [`Expr::Opaque`].
//! Losing structure is always safe for the rules built on top: they are
//! written to report only on shapes they fully recognize, so an opaque
//! node can produce a false *negative*, never a false positive.
//!
//! Every node carries a [`Span`] (1-based line, 1-based character column)
//! that maps straight onto the `(rule, file, excerpt)` reporting scheme
//! from the token-pattern engine.

/// Source position of a node: 1-based line, 1-based character column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

/// One parsed item (top-level or nested in a `mod`/`impl`/`trait` body).
#[derive(Debug)]
pub struct Item {
    pub kind: ItemKind,
    pub span: Span,
    /// `pub` without a restriction (`pub(crate)` etc. does not count).
    pub is_pub: bool,
    /// True when the item sits inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
}

/// What kind of item it is. Bodies the analyses do not look into
/// (struct fields, macro definitions, …) are not retained.
#[derive(Debug)]
pub enum ItemKind {
    /// `use a::b::{c, d};` — every path segment identifier, flattened.
    Use { segments: Vec<String> },
    /// A function with an optionally parsed body.
    Fn(Box<FnItem>),
    /// An inline module with its items.
    Mod { name: String, items: Vec<Item> },
    /// A struct / enum / union definition (name only).
    TypeDef { name: String },
    /// A trait definition and the items inside it (default bodies parse).
    Trait { name: String, items: Vec<Item> },
    /// An `impl` block and the items inside it.
    Impl { items: Vec<Item> },
    /// A `const` or `static` (name only).
    Const { name: String },
    /// A `type` alias (name only).
    TypeAlias { name: String },
    /// Anything else (macro definition/invocation, extern block, …).
    Other,
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    pub params: Vec<Param>,
    /// True when the signature declares a `-> Ret` return type. The
    /// range analysis only trusts a trailing block expression as the
    /// function's value when this is set.
    pub has_ret: bool,
    /// `None` for bodyless signatures (trait methods, extern fns).
    pub body: Option<Block>,
}

/// One function parameter (pattern idents flattened; `self` included).
#[derive(Debug)]
pub struct Param {
    /// Identifiers bound by the parameter pattern.
    pub names: Vec<String>,
    /// Flattened source text of the declared type (`"f64"`, `"& mut T"`).
    pub ty: String,
    pub span: Span,
}

/// A `{ … }` block.
#[derive(Debug)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

/// One statement in a block.
#[derive(Debug)]
pub enum Stmt {
    /// `let pat [: ty] = init;` — `names` are the idents the pattern
    /// binds (one entry for a simple `let x =`), `init` the initializer.
    Let {
        names: Vec<String>,
        init: Option<Expr>,
        span: Span,
    },
    /// An expression statement (with or without `;`).
    Expr(Expr),
    /// A nested item (fn/use/… inside a block).
    Item(Item),
}

/// An expression. `Opaque` stands in for anything the parser does not
/// model; it never has children.
#[derive(Debug)]
pub enum Expr {
    /// `a::b::c` (turbofish dropped). One segment for a plain variable.
    Path { segments: Vec<String>, span: Span },
    /// Numeric/string/char literal. `value` is the parsed numeric value
    /// when the literal is numeric and representable (`None` for
    /// strings/chars or unparseable spellings) — the range analysis
    /// seeds its interval facts from it.
    Lit {
        is_float: bool,
        value: Option<f64>,
        span: Span,
    },
    /// Prefix `-`/`!`/`*`/`&`/`&mut`/`return`/`break` — `op` keeps the
    /// operator spelling so value-preserving (`&`, `*`) and negating
    /// (`-`) prefixes can be told apart; dimension-transparent.
    Unary {
        op: String,
        expr: Box<Expr>,
        span: Span,
    },
    /// `lhs op rhs` for non-assignment binary operators.
    Binary {
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
    /// `target op value` for `=`, `+=`, `-=`, `*=`, `/=`, …
    Assign {
        op: String,
        target: Box<Expr>,
        value: Box<Expr>,
        span: Span,
    },
    /// `recv.method(args)`.
    MethodCall {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        span: Span,
    },
    /// `recv.field` (also tuple indices).
    Field {
        recv: Box<Expr>,
        name: String,
        span: Span,
    },
    /// `callee(args)`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        span: Span,
    },
    /// `recv[index]`.
    Index {
        recv: Box<Expr>,
        index: Box<Expr>,
        span: Span,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        params: Vec<String>,
        body: Box<Expr>,
        span: Span,
    },
    /// `{ … }` (incl. `unsafe { … }`, `loop { … }`).
    Block(Block),
    /// `if cond { then } [else …]` (`else` arm is a Block or another If).
    If {
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
        span: Span,
    },
    /// `match scrutinee { pat => expr, … }` — arm patterns dropped.
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Expr>,
        span: Span,
    },
    /// `for <bindings> in iter { body }`.
    For {
        bindings: Vec<String>,
        iter: Box<Expr>,
        body: Block,
        span: Span,
    },
    /// `while cond { body }` (incl. `while let`, condition kept).
    While {
        cond: Box<Expr>,
        body: Block,
        span: Span,
    },
    /// `expr as Type` — erases dimension knowledge.
    Cast { expr: Box<Expr>, span: Span },
    /// Array/tuple literal `[a, b]` / `(a, b)`.
    Seq { items: Vec<Expr>, span: Span },
    /// `Path { field: expr, … }` struct literal (field values kept).
    StructLit { fields: Vec<Expr>, span: Span },
    /// `name!(…)` macro invocation. `name` is the last path segment;
    /// the token soup inside the delimiters is dropped, so a macro body
    /// can only hide violations (false-negative direction), never fire
    /// them — but the *name* is visible to allocation/blocking rules
    /// (`format!`, `vec!`, `println!`).
    MacroCall { name: String, span: Span },
    /// Anything unmodeled (range, `?`-chain tail, …).
    Opaque { span: Span },
}

impl Expr {
    /// The source position of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Path { span, .. }
            | Expr::Lit { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Assign { span, .. }
            | Expr::MethodCall { span, .. }
            | Expr::Field { span, .. }
            | Expr::Call { span, .. }
            | Expr::Index { span, .. }
            | Expr::Closure { span, .. }
            | Expr::If { span, .. }
            | Expr::Match { span, .. }
            | Expr::For { span, .. }
            | Expr::While { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Seq { span, .. }
            | Expr::StructLit { span, .. }
            | Expr::MacroCall { span, .. }
            | Expr::Opaque { span } => *span,
            Expr::Block(b) => b.span,
        }
    }

    /// Calls `f` on this expression and every sub-expression, pre-order.
    /// Blocks recurse through their statements (items included).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::MacroCall { .. } | Expr::Opaque { .. } => {
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => expr.visit(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Assign { target, value, .. } => {
                target.visit(f);
                value.visit(f);
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.visit(f);
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Field { recv, .. } => recv.visit(f),
            Expr::Call { callee, args, .. } => {
                callee.visit(f);
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Index { recv, index, .. } => {
                recv.visit(f);
                index.visit(f);
            }
            Expr::Closure { body, .. } => body.visit(f),
            Expr::Block(b) => b.visit(f),
            Expr::If {
                cond, then, els, ..
            } => {
                cond.visit(f);
                then.visit(f);
                if let Some(e) = els {
                    e.visit(f);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.visit(f);
                for a in arms {
                    a.visit(f);
                }
            }
            Expr::For { iter, body, .. } => {
                iter.visit(f);
                body.visit(f);
            }
            Expr::While { cond, body, .. } => {
                cond.visit(f);
                body.visit(f);
            }
            Expr::Seq { items, .. } | Expr::StructLit { fields: items, .. } => {
                for e in items {
                    e.visit(f);
                }
            }
        }
    }

    /// As [`Self::visit`], but passes each visited expression's *loop
    /// depth*: how many `for`/`while` bodies enclose it, starting from
    /// `depth`. Closure bodies do not add depth — whether a closure runs
    /// per element is its caller's contract, and guessing would move the
    /// engine's lossiness out of the false-negative direction.
    pub fn visit_depth<'a>(&'a self, depth: u32, f: &mut impl FnMut(&'a Expr, u32)) {
        f(self, depth);
        match self {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::MacroCall { .. } | Expr::Opaque { .. } => {
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => expr.visit_depth(depth, f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_depth(depth, f);
                rhs.visit_depth(depth, f);
            }
            Expr::Assign { target, value, .. } => {
                target.visit_depth(depth, f);
                value.visit_depth(depth, f);
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.visit_depth(depth, f);
                for a in args {
                    a.visit_depth(depth, f);
                }
            }
            Expr::Field { recv, .. } => recv.visit_depth(depth, f),
            Expr::Call { callee, args, .. } => {
                callee.visit_depth(depth, f);
                for a in args {
                    a.visit_depth(depth, f);
                }
            }
            Expr::Index { recv, index, .. } => {
                recv.visit_depth(depth, f);
                index.visit_depth(depth, f);
            }
            Expr::Closure { body, .. } => body.visit_depth(depth, f),
            Expr::Block(b) => b.visit_depth(depth, f),
            Expr::If {
                cond, then, els, ..
            } => {
                cond.visit_depth(depth, f);
                then.visit_depth(depth, f);
                if let Some(e) = els {
                    e.visit_depth(depth, f);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.visit_depth(depth, f);
                for a in arms {
                    a.visit_depth(depth, f);
                }
            }
            Expr::For { iter, body, .. } => {
                iter.visit_depth(depth, f);
                body.visit_depth(depth + 1, f);
            }
            Expr::While { cond, body, .. } => {
                cond.visit_depth(depth, f);
                body.visit_depth(depth + 1, f);
            }
            Expr::Seq { items, .. } | Expr::StructLit { fields: items, .. } => {
                for e in items {
                    e.visit_depth(depth, f);
                }
            }
        }
    }
}

impl Block {
    /// Calls `f` on every expression in the block, pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        for stmt in &self.stmts {
            match stmt {
                Stmt::Let { init: Some(e), .. } => e.visit(f),
                Stmt::Let { .. } => {}
                Stmt::Expr(e) => e.visit(f),
                Stmt::Item(item) => item.visit_exprs(f),
            }
        }
    }

    /// Depth-tracking variant of [`Self::visit`]. Nested items are
    /// skipped: a function defined inside a loop does not *run* there.
    pub fn visit_depth<'a>(&'a self, depth: u32, f: &mut impl FnMut(&'a Expr, u32)) {
        for stmt in &self.stmts {
            match stmt {
                Stmt::Let { init: Some(e), .. } => e.visit_depth(depth, f),
                Stmt::Let { .. } => {}
                Stmt::Expr(e) => e.visit_depth(depth, f),
                Stmt::Item(_) => {}
            }
        }
    }
}

impl Item {
    /// Calls `f` on every expression in every function body under this
    /// item (recursing through mods, impls and traits).
    pub fn visit_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match &self.kind {
            ItemKind::Fn(func) => {
                if let Some(body) = &func.body {
                    body.visit(f);
                }
            }
            ItemKind::Mod { items, .. }
            | ItemKind::Trait { items, .. }
            | ItemKind::Impl { items } => {
                for it in items {
                    it.visit_exprs(f);
                }
            }
            _ => {}
        }
    }

    /// Calls `f` on every function item under this item (recursing
    /// through mods, impls and traits), with the item that declares it.
    pub fn visit_fns<'a>(&'a self, f: &mut impl FnMut(&'a Item, &'a FnItem)) {
        match &self.kind {
            ItemKind::Fn(func) => f(self, func),
            ItemKind::Mod { items, .. }
            | ItemKind::Trait { items, .. }
            | ItemKind::Impl { items } => {
                for it in items {
                    it.visit_fns(f);
                }
            }
            _ => {}
        }
    }
}
