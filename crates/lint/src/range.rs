//! Rules N1–N3 — interprocedural numeric-range analysis.
//!
//! The analysis propagates closed f64 intervals for locals through
//! let-bindings and arithmetic inside each function body, and — the
//! interprocedural part — across function boundaries *within one crate*:
//! a private free function whose every call site is visible gets per-
//! parameter facts joined over those sites, and a function with a
//! declared return type contributes the interval of its returned value
//! to its callers.
//!
//! Like U2, the analysis is *false-negative-lossy*: an [`Expr::Opaque`]
//! node, an unmodeled operator, a `pub` function (callers outside the
//! crate are invisible), a function mentioned as a value, or a name that
//! is ever locally shadowed all collapse to "unknown", which can only
//! ever silence a finding. The checks fire exclusively on facts proven
//! from visible literals and call sites:
//!
//! - **N1** — division whose denominator's proven range contains zero
//!   (`x / d` where some reachable call site makes `d` zero).
//! - **N2** — `exp()` whose argument's proven range exceeds
//!   `ln(f64::MAX)` ≈ 709.78 — the Butler–Volmer failure mode where an
//!   overpotential expressed in the wrong scale overflows to `+inf`.
//! - **N3** — subtraction of two provably near-equal constants
//!   (relative difference ≤ 1e-6): catastrophic cancellation leaves no
//!   significant digits in the result.
//!
//! Accepted imprecision (documented, not a parse-gap false positive):
//! the per-parameter join over call sites is context-insensitive, so two
//! sites passing −1.0 and +1.0 produce the hull `[−1, 1]`, which
//! contains zero even though no site passes zero. Guards of the shape
//! `if d != 0.0` / `if d > 0.0` (or `d.abs()` compared against a bound)
//! refine or clear the fact in the guarded branch, so idiomatically
//! defended divisions do not flag.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Block, Expr, FnItem, Item, ItemKind, Span, Stmt};
use crate::rules::{push, FileContext, Finding, BENCH_CRATE, LINT_CRATE};

/// `ln(f64::MAX)`: the largest argument `exp()` survives.
pub(crate) const EXP_OVERFLOW: f64 = 709.782712893384;

/// Relative difference below which two constants are "near-equal" (N3).
const CANCEL_RTOL: f64 = 1e-6;

/// A closed, finite f64 interval (`lo <= hi`). Anything that cannot be
/// proven finite is represented as `None` ("unknown") instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    fn new(lo: f64, hi: f64) -> Option<Interval> {
        if lo.is_finite() && hi.is_finite() && lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    fn point(v: f64) -> Option<Interval> {
        Interval::new(v, v)
    }

    fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    fn contains_zero(&self) -> bool {
        self.lo <= 0.0 && 0.0 <= self.hi
    }
}

fn hull(a: Interval, b: Interval) -> Option<Interval> {
    Interval::new(a.lo.min(b.lo), a.hi.max(b.hi))
}

fn add(a: Interval, b: Interval) -> Option<Interval> {
    Interval::new(a.lo + b.lo, a.hi + b.hi)
}

fn sub(a: Interval, b: Interval) -> Option<Interval> {
    Interval::new(a.lo - b.hi, a.hi - b.lo)
}

fn mul(a: Interval, b: Interval) -> Option<Interval> {
    let p = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
    Interval::new(
        p.iter().copied().fold(f64::INFINITY, f64::min),
        p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    )
}

/// Division; `None` when the divisor may be zero (the N1 check has
/// already spoken by then).
fn div(a: Interval, b: Interval) -> Option<Interval> {
    if b.contains_zero() {
        return None;
    }
    let p = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
    Interval::new(
        p.iter().copied().fold(f64::INFINITY, f64::min),
        p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    )
}

fn neg(a: Interval) -> Option<Interval> {
    Interval::new(-a.hi, -a.lo)
}

fn abs(a: Interval) -> Option<Interval> {
    if a.lo >= 0.0 {
        Some(a)
    } else if a.hi <= 0.0 {
        neg(a)
    } else {
        Interval::new(0.0, a.hi.max(-a.lo))
    }
}

fn combine(
    l: Option<Interval>,
    r: Option<Interval>,
    f: impl Fn(Interval, Interval) -> Option<Interval>,
) -> Option<Interval> {
    match (l, r) {
        (Some(a), Some(b)) => f(a, b),
        _ => None,
    }
}

/// True when `a` and `b` are distinct but within `CANCEL_RTOL` of each
/// other relative to their magnitude (N3's trigger).
fn near_equal(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs());
    a != b && scale > 0.0 && (a - b).abs() <= CANCEL_RTOL * scale
}

/// Compact human rendering of a float for diagnostics.
fn fmtf(v: f64) -> String {
    let a = v.abs();
    if v != 0.0 && !(1e-4..1e7).contains(&a) {
        format!("{v:e}")
    } else {
        format!("{v}")
    }
}

fn fmt_interval(iv: Interval) -> String {
    if iv.is_point() {
        fmtf(iv.lo)
    } else {
        format!("[{}, {}]", fmtf(iv.lo), fmtf(iv.hi))
    }
}

type Env = BTreeMap<String, Interval>;

/// One free-function definition site.
#[derive(Clone, Copy)]
struct Def<'a> {
    f: &'a FnItem,
    is_pub: bool,
    in_test: bool,
}

enum Memo<T> {
    InProgress,
    Done(T),
}

/// Runs N1–N3 over every file of one crate. `files` must all belong to
/// the same crate (call-graph edges never cross crates). Excerpts and
/// end columns are left for the caller to fill.
pub fn analyze_crate<'a>(files: &[(FileContext<'a>, &'a [Item])]) -> Vec<Finding> {
    let Some((first, _)) = files.first() else {
        return Vec::new();
    };
    if first.crate_name == BENCH_CRATE || first.crate_name == LINT_CRATE {
        return Vec::new();
    }
    let mut an = Analyzer::default();
    for (_, items) in files {
        an.collect_items(items, false);
    }
    for (ctx, items) in files {
        an.check_file(*ctx, items);
    }
    an.findings
}

#[derive(Default)]
struct Analyzer<'a> {
    /// Free functions by name (only these resolve from a bare call).
    defs: BTreeMap<String, Vec<Def<'a>>>,
    /// Argument lists of every single-segment call, by callee name.
    calls: BTreeMap<String, Vec<&'a [Expr]>>,
    /// Occurrences of each name as a single-segment path expression
    /// (callee positions included). More uses than calls ⇒ the function
    /// escapes as a value and its call sites are not exhaustive.
    path_uses: BTreeMap<String, usize>,
    /// Names ever bound locally (let/param/closure/loop bindings, nested
    /// fn items): a call through such a name may not reach the free fn.
    shadowed: BTreeSet<String>,
    param_memo: BTreeMap<String, Memo<Vec<Option<Interval>>>>,
    ret_memo: BTreeMap<String, Memo<Option<Interval>>>,
    /// Accumulators for `return` expressions, one frame per function
    /// body being summarized (closures push a discarded frame).
    ret_frames: Vec<Vec<Option<Interval>>>,
    /// Non-zero while evaluating for facts only: findings are owed to
    /// the pass that walks the function's own file.
    quiet: u32,
    cur: Option<FileContext<'a>>,
    findings: Vec<Finding>,
}

impl<'a> Analyzer<'a> {
    // ---- collection pass -------------------------------------------------

    fn collect_items(&mut self, items: &'a [Item], in_test: bool) {
        for it in items {
            let t = in_test || it.in_test;
            match &it.kind {
                ItemKind::Fn(f) => {
                    self.defs.entry(f.name.clone()).or_default().push(Def {
                        f,
                        is_pub: it.is_pub,
                        in_test: t,
                    });
                    self.collect_fn(f);
                }
                ItemKind::Mod { items, .. } => self.collect_items(items, t),
                ItemKind::Impl { items } | ItemKind::Trait { items, .. } => {
                    // Methods never resolve from a bare call, so they are
                    // not defs; their bodies still contribute call sites.
                    for sub in items {
                        if let ItemKind::Fn(f) = &sub.kind {
                            self.collect_fn(f);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn collect_fn(&mut self, f: &'a FnItem) {
        for p in &f.params {
            self.shadowed.extend(p.names.iter().cloned());
        }
        if let Some(b) = &f.body {
            self.scan_block(b);
        }
    }

    fn scan_block(&mut self, b: &'a Block) {
        for s in &b.stmts {
            match s {
                Stmt::Let { names, init, .. } => {
                    self.shadowed.extend(names.iter().cloned());
                    if let Some(e) = init {
                        self.scan_expr(e);
                    }
                }
                Stmt::Expr(e) => self.scan_expr(e),
                Stmt::Item(it) => {
                    // A nested fn shadows a crate-level name for the rest
                    // of the block: treat it as a local binding.
                    if let ItemKind::Fn(f) = &it.kind {
                        self.shadowed.insert(f.name.clone());
                        self.collect_fn(f);
                    }
                }
            }
        }
    }

    fn scan_expr(&mut self, e: &'a Expr) {
        match e {
            Expr::Path { segments, .. } => {
                if let [name] = segments.as_slice() {
                    *self.path_uses.entry(name.clone()).or_default() += 1;
                }
            }
            Expr::Lit { .. } | Expr::MacroCall { .. } | Expr::Opaque { .. } => {}
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => self.scan_expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.scan_expr(lhs);
                self.scan_expr(rhs);
            }
            Expr::Assign { target, value, .. } => {
                self.scan_expr(target);
                self.scan_expr(value);
            }
            Expr::MethodCall { recv, args, .. } => {
                self.scan_expr(recv);
                for a in args {
                    self.scan_expr(a);
                }
            }
            Expr::Field { recv, .. } => self.scan_expr(recv),
            Expr::Call { callee, args, .. } => {
                if let Expr::Path { segments, .. } = &**callee {
                    if let [name] = segments.as_slice() {
                        self.calls
                            .entry(name.clone())
                            .or_default()
                            .push(args.as_slice());
                    }
                }
                self.scan_expr(callee);
                for a in args {
                    self.scan_expr(a);
                }
            }
            Expr::Index { recv, index, .. } => {
                self.scan_expr(recv);
                self.scan_expr(index);
            }
            Expr::Closure { params, body, .. } => {
                self.shadowed.extend(params.iter().cloned());
                self.scan_expr(body);
            }
            Expr::Block(b) => self.scan_block(b),
            Expr::If {
                cond, then, els, ..
            } => {
                self.scan_expr(cond);
                self.scan_block(then);
                if let Some(e) = els {
                    self.scan_expr(e);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.scan_expr(scrutinee);
                for a in arms {
                    self.scan_expr(a);
                }
            }
            Expr::For {
                bindings,
                iter,
                body,
                ..
            } => {
                self.shadowed.extend(bindings.iter().cloned());
                self.scan_expr(iter);
                self.scan_block(body);
            }
            Expr::While { cond, body, .. } => {
                self.scan_expr(cond);
                self.scan_block(body);
            }
            Expr::Seq { items, .. } | Expr::StructLit { fields: items, .. } => {
                for it in items {
                    self.scan_expr(it);
                }
            }
        }
    }

    // ---- interprocedural facts ------------------------------------------

    fn unique_def(&self, name: &str) -> Option<Def<'a>> {
        match self.defs.get(name).map(|v| v.as_slice()) {
            Some([d]) => Some(*d),
            _ => None,
        }
    }

    /// Joined per-parameter intervals over every visible call site of a
    /// private, unambiguous, never-escaping free function. Anything less
    /// proven yields `None` entries (unknown).
    fn param_facts(&mut self, name: &str) -> Vec<Option<Interval>> {
        match self.param_memo.get(name) {
            Some(Memo::Done(v)) => return v.clone(),
            Some(Memo::InProgress) => return Vec::new(),
            None => {}
        }
        self.param_memo.insert(name.to_string(), Memo::InProgress);
        let v = self.compute_param_facts(name);
        self.param_memo
            .insert(name.to_string(), Memo::Done(v.clone()));
        v
    }

    fn compute_param_facts(&mut self, name: &str) -> Vec<Option<Interval>> {
        let Some(def) = self.unique_def(name) else {
            return Vec::new();
        };
        let arity = def.f.params.len();
        let unknown = vec![None; arity];
        if def.is_pub || def.in_test || self.shadowed.contains(name) {
            return unknown;
        }
        let sites: Vec<&'a [Expr]> = self.calls.get(name).cloned().unwrap_or_default();
        let n_paths = self.path_uses.get(name).copied().unwrap_or(0);
        if sites.is_empty() || n_paths > sites.len() {
            return unknown; // never called, or escapes as a value
        }
        if sites.iter().any(|args| args.len() != arity) {
            return unknown;
        }
        self.quiet += 1;
        self.ret_frames.push(Vec::new());
        let mut facts = Vec::with_capacity(arity);
        for i in 0..arity {
            let mut acc: Option<Interval> = None;
            for args in &sites {
                let mut env = Env::new(); // context-free: caller locals unknown
                let v = self.eval_expr(&mut env, &args[i]);
                acc = match (acc, v) {
                    (None, Some(b)) => Some(b),
                    (Some(a), Some(b)) => hull(a, b),
                    _ => None,
                };
                if acc.is_none() {
                    break;
                }
            }
            facts.push(acc);
        }
        self.ret_frames.pop();
        self.quiet -= 1;
        facts
    }

    /// Interval of the value returned by `name`, or `None` when it is
    /// not a unique free fn with a declared return type — or on a
    /// call-graph cycle, which parks the in-progress entry at unknown.
    fn ret_of(&mut self, name: &str) -> Option<Interval> {
        match self.ret_memo.get(name) {
            Some(Memo::Done(v)) => return *v,
            Some(Memo::InProgress) => return None,
            None => {}
        }
        self.ret_memo.insert(name.to_string(), Memo::InProgress);
        let v = self.compute_ret(name);
        self.ret_memo.insert(name.to_string(), Memo::Done(v));
        v
    }

    fn compute_ret(&mut self, name: &str) -> Option<Interval> {
        let def = self.unique_def(name)?;
        if def.in_test || self.shadowed.contains(name) || !def.f.has_ret {
            return None;
        }
        let f = def.f;
        let body = f.body.as_ref()?;
        let facts = self.param_facts(name);
        let mut env = Env::new();
        for (i, p) in f.params.iter().enumerate() {
            if let ([n], Some(Some(iv))) = (p.names.as_slice(), facts.get(i)) {
                env.insert(n.clone(), *iv);
            }
        }
        self.quiet += 1;
        self.ret_frames.push(Vec::new());
        let trailing = self.eval_block(&mut env, body);
        let frame = self.ret_frames.pop().unwrap_or_default();
        self.quiet -= 1;
        // The function's value is the join of every `return` expression
        // plus — when control can fall through — the trailing expression
        // (sound for compiling code: `has_ret` means a non-returning
        // trailing statement cannot be reached).
        let falls_through = matches!(
            body.stmts.last(),
            Some(Stmt::Expr(e)) if !matches!(e, Expr::Unary { op, .. } if op == "return")
        );
        let mut vals = frame;
        if falls_through {
            vals.push(trailing);
        }
        if vals.is_empty() {
            return None;
        }
        let mut acc: Option<Interval> = None;
        for v in vals {
            let v = v?; // one unknown return path poisons the summary
            acc = match acc {
                None => Some(v),
                Some(a) => hull(a, v),
            };
            acc?;
        }
        acc
    }

    // ---- checking pass ---------------------------------------------------

    fn check_file(&mut self, ctx: FileContext<'a>, items: &'a [Item]) {
        self.cur = Some(ctx);
        for item in items {
            item.visit_fns(&mut |owner, f| {
                if owner.in_test {
                    return;
                }
                let Some(body) = &f.body else {
                    return;
                };
                let mut env = Env::new();
                let is_the_def = self
                    .unique_def(&f.name)
                    .map(|d| std::ptr::eq(d.f, f))
                    .unwrap_or(false);
                if is_the_def {
                    let facts = self.param_facts(&f.name);
                    for (i, p) in f.params.iter().enumerate() {
                        if let ([n], Some(Some(iv))) = (p.names.as_slice(), facts.get(i)) {
                            env.insert(n.clone(), *iv);
                        }
                    }
                }
                self.eval_block(&mut env, body);
            });
        }
        self.cur = None;
    }

    fn emit(&mut self, rule: &'static str, span: Span, message: String) {
        if self.quiet > 0 {
            return;
        }
        let Some(ctx) = self.cur else {
            return;
        };
        push(&mut self.findings, rule, &ctx, span.line, span.col, message);
    }

    fn check_div(&mut self, span: Span, divisor: Option<Interval>) {
        if let Some(b) = divisor {
            if b.contains_zero() {
                self.emit(
                    "N1",
                    span,
                    format!(
                        "division by a denominator whose proven range {} \
                         contains zero: a reachable call site or constant \
                         makes this divide yield ±inf/NaN; guard the zero \
                         case explicitly",
                        fmt_interval(b)
                    ),
                );
            }
        }
    }

    fn eval_block(&mut self, env: &mut Env, b: &'a Block) -> Option<Interval> {
        let n = b.stmts.len();
        let mut last = None;
        for (i, s) in b.stmts.iter().enumerate() {
            match s {
                Stmt::Let { names, init, .. } => {
                    let v = init.as_ref().and_then(|e| self.eval_expr(env, e));
                    for nm in names {
                        env.remove(nm);
                    }
                    if let (Some(iv), [nm]) = (v, names.as_slice()) {
                        env.insert(nm.clone(), iv);
                    }
                    last = None;
                }
                Stmt::Expr(e) => {
                    let v = self.eval_expr(env, e);
                    last = if i + 1 == n { v } else { None };
                }
                Stmt::Item(_) => {
                    last = None;
                }
            }
        }
        last
    }

    /// Evaluates a branch body on a clone of `env`, then invalidates
    /// every name it assigns in the outer environment.
    fn eval_branch_expr(&mut self, env: &mut Env, e: &'a Expr) -> Option<Interval> {
        let mut inner = env.clone();
        let v = self.eval_expr(&mut inner, e);
        kill_assigned(env, e);
        v
    }

    fn eval_expr(&mut self, env: &mut Env, e: &'a Expr) -> Option<Interval> {
        match e {
            Expr::Path { segments, .. } => match segments.as_slice() {
                [name] => env.get(name).copied(),
                _ => None,
            },
            Expr::Lit { value, .. } => value.and_then(Interval::point),
            Expr::MacroCall { .. } | Expr::Opaque { .. } => None,
            Expr::Unary { op, expr, .. } => {
                let v = self.eval_expr(env, expr);
                match op.as_str() {
                    "-" => v.and_then(neg),
                    "&" | "*" => v,
                    "return" => {
                        if let Some(frame) = self.ret_frames.last_mut() {
                            frame.push(v);
                        }
                        None
                    }
                    _ => None,
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let l = self.eval_expr(env, lhs);
                let r = self.eval_expr(env, rhs);
                match op.as_str() {
                    "+" => combine(l, r, add),
                    "-" => {
                        if let (Some(a), Some(b)) = (l, r) {
                            if a.is_point() && b.is_point() && near_equal(a.lo, b.lo) {
                                self.emit(
                                    "N3",
                                    *span,
                                    format!(
                                        "subtracting provably near-equal values \
                                         ({} − {}, relative difference ≤ 1e-6): \
                                         catastrophic cancellation leaves no \
                                         significant digits; reformulate the \
                                         difference analytically",
                                        fmtf(a.lo),
                                        fmtf(b.lo)
                                    ),
                                );
                            }
                        }
                        combine(l, r, sub)
                    }
                    "*" => combine(l, r, mul),
                    "/" => {
                        self.check_div(*span, r);
                        combine(l, r, div)
                    }
                    _ => None,
                }
            }
            Expr::Assign {
                op,
                target,
                value,
                span,
            } => {
                let v = self.eval_expr(env, value);
                if op == "/=" {
                    self.check_div(*span, v);
                }
                if let Expr::Path { segments, .. } = &**target {
                    if let [name] = segments.as_slice() {
                        env.remove(name);
                        if op == "=" {
                            if let Some(iv) = v {
                                env.insert(name.clone(), iv);
                            }
                        }
                        return None;
                    }
                }
                self.eval_expr(env, target);
                None
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                span,
            } => {
                let r = self.eval_expr(env, recv);
                let arg_vals: Vec<Option<Interval>> =
                    args.iter().map(|a| self.eval_expr(env, a)).collect();
                match method.as_str() {
                    "exp" if args.is_empty() => {
                        if let Some(iv) = r {
                            if iv.hi > EXP_OVERFLOW {
                                self.emit(
                                    "N2",
                                    *span,
                                    format!(
                                        "`exp()` of a value proven to reach {} \
                                         (> ln(f64::MAX) ≈ 709.78): the result \
                                         overflows to +inf and poisons every \
                                         downstream quantity; rescale the \
                                         exponent (wrong unit scale?) or clamp \
                                         it first",
                                        fmtf(iv.hi)
                                    ),
                                );
                            } else {
                                return Interval::new(iv.lo.exp(), iv.hi.exp());
                            }
                        }
                        None
                    }
                    "abs" if args.is_empty() => r.and_then(abs),
                    "sqrt" if args.is_empty() => r.and_then(|iv| {
                        if iv.lo >= 0.0 {
                            Interval::new(iv.lo.sqrt(), iv.hi.sqrt())
                        } else {
                            None
                        }
                    }),
                    "min" if args.len() == 1 => combine(r, arg_vals[0], |a, b| {
                        Interval::new(a.lo.min(b.lo), a.hi.min(b.hi))
                    }),
                    "max" if args.len() == 1 => combine(r, arg_vals[0], |a, b| {
                        Interval::new(a.lo.max(b.lo), a.hi.max(b.hi))
                    }),
                    _ => None,
                }
            }
            Expr::Call { callee, args, .. } => {
                for a in args {
                    self.eval_expr(env, a);
                }
                if let Expr::Path { segments, .. } = &**callee {
                    if let [name] = segments.as_slice() {
                        if !self.shadowed.contains(name) {
                            return self.ret_of(name);
                        }
                    }
                    None
                } else {
                    self.eval_expr(env, callee);
                    None
                }
            }
            Expr::Field { recv, .. } => {
                self.eval_expr(env, recv);
                None
            }
            Expr::Index { recv, index, .. } => {
                self.eval_expr(env, recv);
                self.eval_expr(env, index);
                None
            }
            Expr::Closure { params, body, .. } => {
                let mut inner = env.clone();
                for p in params {
                    inner.remove(p);
                }
                // `return` inside a closure returns from the closure.
                self.ret_frames.push(Vec::new());
                self.eval_expr(&mut inner, body);
                self.ret_frames.pop();
                kill_assigned(env, body);
                None
            }
            Expr::Block(b) => self.eval_block(env, b),
            Expr::If {
                cond, then, els, ..
            } => {
                self.eval_expr(env, cond);
                let then_v = {
                    let mut inner = env.clone();
                    refine_env(&mut inner, cond);
                    let v = self.eval_block(&mut inner, then);
                    kill_assigned_in_block(env, then);
                    v
                };
                let els_v = els.as_ref().map(|e| self.eval_branch_expr(env, e));
                match (then_v, els_v) {
                    (Some(a), Some(Some(b))) => hull(a, b),
                    _ => None,
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.eval_expr(env, scrutinee);
                let mut acc: Option<Interval> = None;
                let mut all_known = !arms.is_empty();
                for a in arms {
                    let v = self.eval_branch_expr(env, a);
                    acc = match (acc, v) {
                        (None, Some(b)) => Some(b),
                        (Some(x), Some(b)) => hull(x, b),
                        _ => {
                            all_known = false;
                            None
                        }
                    };
                }
                if all_known {
                    acc
                } else {
                    None
                }
            }
            Expr::For {
                bindings,
                iter,
                body,
                ..
            } => {
                self.eval_expr(env, iter);
                let mut inner = env.clone();
                for b in bindings {
                    inner.remove(b);
                }
                // Pre-kill loop-mutated names: the walk models an
                // arbitrary iteration, not just the first.
                kill_assigned_in_block(&mut inner, body);
                self.eval_block(&mut inner, body);
                kill_assigned_in_block(env, body);
                None
            }
            Expr::While { cond, body, .. } => {
                let mut inner = env.clone();
                kill_assigned(&mut inner, cond);
                kill_assigned_in_block(&mut inner, body);
                self.eval_expr(&mut inner, cond);
                self.eval_block(&mut inner, body);
                kill_assigned(env, cond);
                kill_assigned_in_block(env, body);
                None
            }
            Expr::Cast { expr, .. } => {
                self.eval_expr(env, expr);
                None // the target repr may truncate: forget
            }
            Expr::Seq { items, .. } | Expr::StructLit { fields: items, .. } => {
                for it in items {
                    self.eval_expr(env, it);
                }
                None
            }
        }
    }
}

/// Narrows `env` under the assumption that `cond` held. Only shapes
/// whose refinement is obviously sound are handled: a single-segment
/// path compared against a point constant (possibly through `.abs()`,
/// which simply forgets the name), and `&&` conjunctions of those.
fn refine_env(env: &mut Env, cond: &Expr) {
    let Expr::Binary { op, lhs, rhs, .. } = cond else {
        return;
    };
    if op == "&&" {
        refine_env(env, lhs);
        refine_env(env, rhs);
        return;
    }
    // `d.abs() > eps`-style guards: the hull of the allowed set is not
    // representable, so just forget the name (unknown never flags).
    for side in [&**lhs, &**rhs] {
        if let Expr::MethodCall {
            recv, method, args, ..
        } = side
        {
            if method == "abs" && args.is_empty() {
                if let Expr::Path { segments, .. } = &**recv {
                    if let [name] = segments.as_slice() {
                        env.remove(name);
                    }
                }
            }
        }
    }
    let (name, lit, mirrored) = match (&**lhs, &**rhs) {
        (Expr::Path { segments, .. }, Expr::Lit { value: Some(v), .. }) if segments.len() == 1 => {
            (&segments[0], *v, false)
        }
        (Expr::Lit { value: Some(v), .. }, Expr::Path { segments, .. }) if segments.len() == 1 => {
            (&segments[0], *v, true)
        }
        _ => return,
    };
    let op = match (op.as_str(), mirrored) {
        (">", false) | ("<", true) => ">",
        (">=", false) | ("<=", true) => ">=",
        ("<", false) | (">", true) => "<",
        ("<=", false) | (">=", true) => "<=",
        ("==", _) => "==",
        ("!=", _) => "!=",
        _ => return,
    };
    let Some(cur) = env.get(name).copied() else {
        // No prior fact: a comparison still bounds the name on one side
        // only, which an interval cannot hold without the other bound.
        if op == "==" {
            if let Some(iv) = Interval::point(lit) {
                env.insert(name.clone(), iv);
            }
        }
        return;
    };
    let (mut lo, mut hi) = (cur.lo, cur.hi);
    match op {
        ">" => {
            lo = lo.max(lit);
            if lit == 0.0 {
                lo = lo.max(f64::MIN_POSITIVE);
            }
        }
        ">=" => lo = lo.max(lit),
        "<" => {
            hi = hi.min(lit);
            if lit == 0.0 {
                hi = hi.min(-f64::MIN_POSITIVE);
            }
        }
        "<=" => hi = hi.min(lit),
        "==" => {
            lo = lit;
            hi = lit;
        }
        "!=" => {
            // Only edge exclusion is representable in a closed interval.
            if lo == lit && hi == lit {
                env.remove(name);
                return;
            }
            if lo == lit {
                lo = if lit == 0.0 { f64::MIN_POSITIVE } else { lo };
            }
            if hi == lit {
                hi = if lit == 0.0 { -f64::MIN_POSITIVE } else { hi };
            }
        }
        _ => {}
    }
    match Interval::new(lo, hi) {
        Some(iv) => {
            env.insert(name.clone(), iv);
        }
        None => {
            env.remove(name); // contradictory guard: branch is dead
        }
    }
}

fn kill_assigned(env: &mut Env, e: &Expr) {
    e.visit(&mut |x| {
        if let Expr::Assign { target, .. } = x {
            if let Expr::Path { segments, .. } = &**target {
                if let [name] = segments.as_slice() {
                    env.remove(name);
                }
            }
        }
    });
}

fn kill_assigned_in_block(env: &mut Env, b: &Block) {
    b.visit(&mut |x| {
        if let Expr::Assign { target, .. } = x {
            if let Expr::Path { segments, .. } = &**target {
                if let [name] = segments.as_slice() {
                    env.remove(name);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileContext};

    fn ctx() -> FileContext<'static> {
        FileContext {
            crate_name: "bios-electrochem",
            rel_path: "crates/electrochem/src/x.rs",
        }
    }

    fn hits(src: &str, rule: &str) -> Vec<String> {
        lint_source(&ctx(), src)
            .into_iter()
            .filter(|f| f.rule == rule)
            .map(|f| f.message)
            .collect()
    }

    #[test]
    fn n1_fires_on_local_zero_denominator() {
        let h = hits("fn f() -> f64 {\n    let d = 0.0;\n    1.0 / d\n}\n", "N1");
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(hits("fn f() -> f64 {\n    let d = 2.0;\n    1.0 / d\n}\n", "N1").is_empty());
    }

    #[test]
    fn n1_propagates_across_call_sites() {
        let src = "fn scale(x: f64, d: f64) -> f64 {\n    x / d\n}\nfn driver() -> f64 {\n    scale(3.0, 0.0)\n}\n";
        let h = hits(src, "N1");
        assert_eq!(h.len(), 1, "{h:?}");
        // Same shape, non-zero at every site: clean.
        let ok = "fn scale(x: f64, d: f64) -> f64 {\n    x / d\n}\nfn driver() -> f64 {\n    scale(3.0, 2.0) + scale(1.0, 4.0)\n}\n";
        assert!(hits(ok, "N1").is_empty());
    }

    #[test]
    fn n1_respects_guards_and_unknowns() {
        // A zero-excluding guard clears the fact in the branch.
        let guarded = "fn scale(x: f64, d: f64) -> f64 {\n    if d != 0.0 { x / d } else { 0.0 }\n}\nfn driver() -> f64 {\n    scale(3.0, 0.0)\n}\n";
        assert!(hits(guarded, "N1").is_empty(), "{:?}", hits(guarded, "N1"));
        // Unknown denominators (pub fn: external callers invisible) never flag.
        let unknown = "pub fn scale(x: f64, d: f64) -> f64 {\n    x / d\n}\n";
        assert!(hits(unknown, "N1").is_empty());
    }

    #[test]
    fn n1_disqualifies_escaping_and_shadowed_fns() {
        // The fn escapes as a value: its call sites are not exhaustive.
        let escapes = "fn scale(d: f64) -> f64 {\n    1.0 / d\n}\nfn driver() -> f64 {\n    apply(scale);\n    scale(0.0)\n}\n";
        assert!(hits(escapes, "N1").is_empty(), "{:?}", hits(escapes, "N1"));
    }

    #[test]
    fn n2_fires_on_overflowing_exp() {
        let h = hits(
            "fn f() -> f64 {\n    let eta = 1000.0;\n    eta.exp()\n}\n",
            "N2",
        );
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(hits(
            "fn f() -> f64 {\n    let eta = 1.0;\n    eta.exp()\n}\n",
            "N2"
        )
        .is_empty());
    }

    #[test]
    fn n2_sees_through_returns() {
        let src = "fn overpotential() -> f64 {\n    38.9 * 26000.0\n}\nfn rate() -> f64 {\n    overpotential().exp()\n}\n";
        let h = hits(src, "N2");
        assert_eq!(h.len(), 1, "{h:?}");
    }

    #[test]
    fn n3_fires_on_near_equal_constants() {
        let h = hits(
            "fn f() -> f64 {\n    let a = 1.0000001;\n    let b = 1.0;\n    a - b\n}\n",
            "N3",
        );
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(hits("fn f() -> f64 {\n    2.0 - 1.0\n}\n", "N3").is_empty());
        // Exactly equal is exact zero, not cancellation.
        assert!(hits("fn f() -> f64 {\n    let a = 1.0;\n    a - 1.0\n}\n", "N3").is_empty());
    }

    #[test]
    fn n_rules_are_suppressible_and_skip_tests() {
        let suppressed = "fn f() -> f64 {\n    let d = 0.0;\n    // advdiag::allow(N1, sentinel divide exercised in the fault demo)\n    1.0 / d\n}\n";
        assert!(hits(suppressed, "N1").is_empty());
        let test_only = "#[cfg(test)]\nmod t {\n    fn f() -> f64 {\n        let d = 0.0;\n        1.0 / d\n    }\n}\n";
        assert!(hits(test_only, "N1").is_empty());
    }
}
