//! Rule U2 — dimensional consistency of raw `f64` unit flows.
//!
//! The bios-units newtypes make dimension errors unrepresentable *while
//! values stay typed*. The remaining hazard is the escape hatch: a raw
//! `f64` extracted with `as_millivolts()` that later re-enters the type
//! system through a constructor of a *different* dimension
//! (`Amps::from_nanoamps(raw_mv)`) or a different scale of the same
//! dimension (`Volts::new(raw_mv)`), or mixed-dimension `+`/`-` on
//! extracted raws. This analysis tracks `(dimension, scale)` pairs for
//! raw locals through let-bindings, assignments and arithmetic inside
//! each function body and flags exactly those flows.
//!
//! Tracking is *forgetful by construction*: `*`, `/`, casts, `.value()`,
//! literals, calls and anything opaque drop the dimension, so a legal
//! manual conversion (`Seconds::new(t.as_millis() / 1e3)`) never flags.
//! Known false-negative classes are listed in DESIGN.md §6c.

use crate::ast::{Block, Expr, Item, Stmt};
use crate::rules::{push, FileContext, Finding, BENCH_CRATE, LINT_CRATE};
use std::collections::BTreeMap;

/// Every scaled constructor/extractor pair the `quantity!` macro
/// generates in `bios-units`, as `(type, scale)`: `from_<scale>` /
/// `as_<scale>` methods. `new`/`from_value`/`value` use the `"base"`
/// scale implicitly.
const SCALED: &[(&str, &str)] = &[
    ("Volts", "millivolts"),
    ("Volts", "microvolts"),
    ("Amps", "milliamps"),
    ("Amps", "microamps"),
    ("Amps", "nanoamps"),
    ("Amps", "picoamps"),
    ("Seconds", "millis"),
    ("Seconds", "micros"),
    ("Seconds", "minutes"),
    ("Seconds", "hours"),
    ("Hertz", "kilohertz"),
    ("Hertz", "megahertz"),
    ("Ohms", "kiloohms"),
    ("Ohms", "megaohms"),
    ("Farads", "microfarads"),
    ("Farads", "nanofarads"),
    ("Farads", "picofarads"),
    ("Coulombs", "microcoulombs"),
    ("Coulombs", "nanocoulombs"),
    ("Kelvin", "celsius"),
    ("Watts", "milliwatts"),
    ("Watts", "microwatts"),
    ("Watts", "nanowatts"),
    ("Joules", "millijoules"),
    ("Joules", "microjoules"),
    ("Molar", "millimolar"),
    ("Molar", "micromolar"),
    ("Molar", "nanomolar"),
    ("Moles", "millimoles"),
    ("Moles", "micromoles"),
    ("Moles", "nanomoles"),
    ("Centimeters", "millimeters"),
    ("Centimeters", "micrometers"),
    ("SquareCentimeters", "square_millimeters"),
    ("SquareCentimeters", "square_micrometers"),
    ("VoltsPerSecond", "millivolts_per_second"),
    ("AmpsPerCm2", "milliamps_per_cm2"),
    ("AmpsPerCm2", "microamps_per_cm2"),
    ("AmpsPerCm2", "nanoamps_per_cm2"),
    ("FaradsPerCm2", "microfarads_per_cm2"),
    ("MolesPerCm2", "nanomoles_per_cm2"),
    ("MolesPerCm2", "picomoles_per_cm2"),
    ("Liters", "milliliters"),
    ("Liters", "microliters"),
];

/// All unit newtypes (incl. the base-scale-only ones).
const UNIT_TYPES: &[&str] = &[
    "Volts",
    "Amps",
    "Seconds",
    "Hertz",
    "Ohms",
    "Farads",
    "Coulombs",
    "Kelvin",
    "Watts",
    "Joules",
    "Molar",
    "Moles",
    "Centimeters",
    "SquareCentimeters",
    "DiffusionCoefficient",
    "VoltsPerSecond",
    "AmpsPerCm2",
    "FaradsPerCm2",
    "MolesPerCm2",
    "MolesPerCm2PerSecond",
    "MolesPerCm3",
    "Liters",
];

/// The inferred provenance of a raw `f64`: which newtype it came from and
/// at which scale it is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Dim {
    ty: &'static str,
    scale: &'static str,
}

impl Dim {
    fn describe(self) -> String {
        if self.scale == "base" {
            format!("base-unit {}", self.ty)
        } else {
            format!("{} in {}", self.ty, self.scale)
        }
    }
}

/// `as_<scale>()` extractor → the dimension of the raw it yields.
fn extractor_dim(method: &str) -> Option<Dim> {
    let rest = method.strip_prefix("as_")?;
    SCALED
        .iter()
        .find(|(_, scale)| *scale == rest)
        .map(|(ty, scale)| Dim { ty, scale })
}

/// `Ty::ctor` → the dimension+scale of the raw `f64` it expects.
fn ctor_dim(ty: &str, method: &str) -> Option<Dim> {
    let ty = UNIT_TYPES.iter().find(|t| **t == ty)?;
    if method == "new" || method == "from_value" {
        return Some(Dim { ty, scale: "base" });
    }
    let rest = method.strip_prefix("from_")?;
    SCALED
        .iter()
        .find(|(t, scale)| t == ty && *scale == rest)
        .map(|(ty, scale)| Dim { ty, scale })
}

/// Methods on `f64` that preserve the dimension of their receiver.
fn preserves_dim(method: &str) -> bool {
    matches!(
        method,
        "abs" | "min" | "max" | "clamp" | "floor" | "ceil" | "round" | "copysign"
    )
}

type Env = BTreeMap<String, Dim>;

/// U2 entry point: analyzes every non-test function body in the file.
pub fn rule_u2(ctx: &FileContext<'_>, items: &[Item], findings: &mut Vec<Finding>) {
    if ctx.crate_name == BENCH_CRATE || ctx.crate_name == LINT_CRATE {
        return;
    }
    let mut chk = Checker { ctx, findings };
    for item in items {
        item.visit_fns(&mut |owner, f| {
            if owner.in_test {
                return;
            }
            if let Some(body) = &f.body {
                let mut env = Env::new();
                chk.walk_block(&mut env, body);
            }
        });
    }
}

struct Checker<'a, 'f> {
    ctx: &'a FileContext<'a>,
    findings: &'f mut Vec<Finding>,
}

impl Checker<'_, '_> {
    /// Walks a block in order, threading the raw-dimension environment
    /// through let-bindings and assignments.
    fn walk_block(&mut self, env: &mut Env, block: &Block) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { names, init, .. } => {
                    let dim = init.as_ref().and_then(|e| self.check(env, e));
                    for n in names {
                        env.remove(n);
                    }
                    if let (Some(d), [name]) = (dim, names.as_slice()) {
                        env.insert(name.clone(), d);
                    }
                }
                Stmt::Expr(e) => {
                    self.check(env, e);
                }
                // Nested fns are visited separately by `rule_u2`.
                Stmt::Item(_) => {}
            }
        }
    }

    /// Runs a sub-scope (branch body, closure body, loop body) on a clone
    /// of the environment, then invalidates every name the sub-scope
    /// assigns in the outer environment (its post-state is unknown).
    fn walk_branch_block(&mut self, env: &mut Env, block: &Block) {
        let mut inner = env.clone();
        self.walk_block(&mut inner, block);
        kill_assigned_in_block(env, block);
    }

    fn walk_branch_expr(&mut self, env: &mut Env, e: &Expr) {
        let mut inner = env.clone();
        self.check(&mut inner, e);
        kill_assigned(env, e);
    }

    /// Checks an expression for U2 violations and infers the dimension of
    /// the raw `f64` it evaluates to (None = unknown / not raw).
    fn check(&mut self, env: &mut Env, e: &Expr) -> Option<Dim> {
        match e {
            Expr::Path { segments, .. } => match segments.as_slice() {
                [name] => env.get(name).copied(),
                _ => None,
            },
            Expr::Lit { .. } | Expr::MacroCall { .. } | Expr::Opaque { .. } => None,
            Expr::Unary { expr, .. } => self.check(env, expr),
            Expr::Cast { expr, .. } => {
                self.check(env, expr);
                None // a cast round-trips through another repr: forget
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let l = self.check(env, lhs);
                let r = self.check(env, rhs);
                if matches!(op.as_str(), "+" | "-") {
                    if let (Some(a), Some(b)) = (l, r) {
                        if a.ty != b.ty {
                            push(
                                self.findings,
                                "U2",
                                self.ctx,
                                span.line,
                                span.col,
                                format!(
                                    "`{}` mixes raw f64 of different dimensions: \
                                     left is {}, right is {}; keep values typed \
                                     or convert explicitly",
                                    op,
                                    a.describe(),
                                    b.describe()
                                ),
                            );
                            return None;
                        }
                        if a.scale != b.scale {
                            push(
                                self.findings,
                                "U2",
                                self.ctx,
                                span.line,
                                span.col,
                                format!(
                                    "`{}` mixes raw {} with raw {}: same \
                                     dimension, different scale; convert to one \
                                     scale first",
                                    op,
                                    a.describe(),
                                    b.describe()
                                ),
                            );
                            return None;
                        }
                        return Some(a);
                    }
                }
                None
            }
            Expr::Assign {
                op,
                target,
                value,
                span,
            } => {
                let v = self.check(env, value);
                if let Expr::Path { segments, .. } = &**target {
                    if let [name] = segments.as_slice() {
                        match op.as_str() {
                            "=" => {
                                env.remove(name);
                                if let Some(d) = v {
                                    env.insert(name.clone(), d);
                                }
                            }
                            "+=" | "-=" => {
                                if let (Some(a), Some(b)) = (env.get(name).copied(), v) {
                                    if a != b {
                                        push(
                                            self.findings,
                                            "U2",
                                            self.ctx,
                                            span.line,
                                            span.col,
                                            format!(
                                                "`{}` accumulates raw {} into `{}` \
                                                 which holds raw {}; align the \
                                                 dimensions/scales first",
                                                op,
                                                b.describe(),
                                                name,
                                                a.describe()
                                            ),
                                        );
                                    }
                                } else if v.is_none() {
                                    env.remove(name);
                                }
                            }
                            _ => {
                                env.remove(name); // *=, /=, … forget
                            }
                        }
                        return None;
                    }
                }
                self.check(env, target);
                None
            }
            Expr::MethodCall {
                recv, method, args, ..
            } => {
                let rdim = self.check(env, recv);
                for a in args {
                    self.check(env, a);
                }
                if let Some(d) = extractor_dim(method) {
                    return Some(d);
                }
                if preserves_dim(method) {
                    return rdim;
                }
                None // value(), sqrt, powi, … forget the dimension
            }
            Expr::Call {
                callee, args, span, ..
            } => {
                let arg_dims: Vec<Option<Dim>> = args.iter().map(|a| self.check(env, a)).collect();
                if let Expr::Path { segments, .. } = &**callee {
                    if segments.len() >= 2 {
                        let ty = &segments[segments.len() - 2];
                        let ctor = &segments[segments.len() - 1];
                        if let Some(expected) = ctor_dim(ty, ctor) {
                            if let Some(Some(actual)) = arg_dims.first() {
                                if actual.ty != expected.ty {
                                    push(
                                        self.findings,
                                        "U2",
                                        self.ctx,
                                        span.line,
                                        span.col,
                                        format!(
                                            "raw f64 carrying {} re-enters \
                                             `{}::{}` which expects {}: \
                                             dimension mismatch",
                                            actual.describe(),
                                            ty,
                                            ctor,
                                            expected.describe()
                                        ),
                                    );
                                } else if actual.scale != expected.scale {
                                    push(
                                        self.findings,
                                        "U2",
                                        self.ctx,
                                        span.line,
                                        span.col,
                                        format!(
                                            "raw f64 carrying {} re-enters \
                                             `{}::{}` which expects {}: scale \
                                             mismatch silently rescales the value",
                                            actual.describe(),
                                            ty,
                                            ctor,
                                            expected.describe()
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
                None
            }
            Expr::Field { recv, .. } => {
                self.check(env, recv);
                None
            }
            Expr::Index { recv, index, .. } => {
                self.check(env, recv);
                self.check(env, index);
                None
            }
            Expr::Closure { params, body, .. } => {
                let mut inner = env.clone();
                for p in params {
                    inner.remove(p);
                }
                self.check(&mut inner, body);
                kill_assigned(env, body);
                None
            }
            Expr::Block(b) => {
                self.walk_branch_block(env, b);
                None
            }
            Expr::If {
                cond, then, els, ..
            } => {
                self.check(env, cond);
                self.walk_branch_block(env, then);
                if let Some(e) = els {
                    self.walk_branch_expr(env, e);
                }
                None
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.check(env, scrutinee);
                for a in arms {
                    self.walk_branch_expr(env, a);
                }
                None
            }
            Expr::For {
                bindings,
                iter,
                body,
                ..
            } => {
                self.check(env, iter);
                let mut inner = env.clone();
                for b in bindings {
                    inner.remove(b);
                }
                self.walk_block(&mut inner, body);
                kill_assigned_in_block(env, body);
                None
            }
            Expr::While { cond, body, .. } => {
                let mut inner = env.clone();
                self.check(&mut inner, cond);
                self.walk_block(&mut inner, body);
                kill_assigned(env, cond);
                kill_assigned_in_block(env, body);
                None
            }
            Expr::Seq { items, .. } | Expr::StructLit { fields: items, .. } => {
                for it in items {
                    self.check(env, it);
                }
                None
            }
        }
    }
}

/// Removes from `env` every name assigned anywhere under `e` (used after
/// analyzing a conditionally-executed region: its writes may or may not
/// have happened).
fn kill_assigned(env: &mut Env, e: &Expr) {
    e.visit(&mut |x| {
        if let Expr::Assign { target, .. } = x {
            if let Expr::Path { segments, .. } = &**target {
                if let [name] = segments.as_slice() {
                    env.remove(name);
                }
            }
        }
    });
}

fn kill_assigned_in_block(env: &mut Env, b: &Block) {
    b.visit(&mut |x| {
        if let Expr::Assign { target, .. } = x {
            if let Expr::Path { segments, .. } = &**target {
                if let [name] = segments.as_slice() {
                    env.remove(name);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::rules::{lint_source, FileContext};

    fn ctx() -> FileContext<'static> {
        FileContext {
            crate_name: "bios-electrochem",
            rel_path: "crates/electrochem/src/x.rs",
        }
    }

    fn u2(src: &str) -> Vec<String> {
        lint_source(&ctx(), src)
            .into_iter()
            .filter(|f| f.rule == "U2")
            .map(|f| f.message)
            .collect()
    }

    #[test]
    fn cross_dimension_reentry_fires() {
        let hits = u2("fn f(v: Volts) -> Amps {\n    let raw = v.as_millivolts();\n    Amps::from_nanoamps(raw)\n}\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains("dimension mismatch"), "{hits:?}");
    }

    #[test]
    fn scale_mismatch_reentry_fires() {
        let hits = u2(
            "fn f(v: Volts) -> Volts {\n    let mv = v.as_millivolts();\n    Volts::new(mv)\n}\n",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains("scale mismatch"), "{hits:?}");
    }

    #[test]
    fn matching_reentry_and_explicit_conversion_are_clean() {
        assert!(u2("fn f(v: Volts) -> Volts {\n    let mv = v.as_millivolts();\n    Volts::from_millivolts(mv)\n}\n").is_empty());
        // Arithmetic conversion forgets the scale: no flag.
        assert!(u2("fn f(t: Seconds) -> Seconds {\n    let ms = t.as_millis();\n    Seconds::new(ms / 1e3)\n}\n").is_empty());
    }

    #[test]
    fn mixed_dimension_addition_fires() {
        let hits =
            u2("fn f(v: Volts, i: Amps) -> f64 {\n    v.as_millivolts() + i.as_milliamps()\n}\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains("different dimensions"), "{hits:?}");
        // Same dimension, different scale also fires.
        let hits =
            u2("fn f(a: Volts, b: Volts) -> f64 {\n    a.as_millivolts() + b.as_microvolts()\n}\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains("different scale"), "{hits:?}");
        // Same dimension, same scale is fine.
        assert!(u2(
            "fn f(a: Volts, b: Volts) -> f64 {\n    a.as_millivolts() + b.as_millivolts()\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn branch_assignments_invalidate_tracking() {
        // After the branch, `raw`'s dimension is unknown: no flag.
        let src = "fn f(v: Volts, c: bool) -> Amps {\n    let mut raw = v.as_millivolts();\n    if c { raw = other(); }\n    Amps::new(raw)\n}\n";
        assert!(u2(src).is_empty(), "{:?}", u2(src));
        // Inside the branch tracking still works.
        let src = "fn f(v: Volts, c: bool) {\n    let raw = v.as_millivolts();\n    if c { let a = Amps::new(raw); }\n}\n";
        assert_eq!(u2(src).len(), 1);
    }

    #[test]
    fn u2_respects_tests_bench_and_suppression() {
        let test_src = "#[cfg(test)]\nmod t {\n    fn g(v: Volts) -> Amps {\n        let raw = v.as_millivolts();\n        Amps::new(raw)\n    }\n}\n";
        assert!(u2(test_src).is_empty());
        let bench = FileContext {
            crate_name: "bios-bench",
            rel_path: "crates/bench/src/x.rs",
        };
        let bad =
            "fn f(v: Volts) -> Amps {\n    let raw = v.as_millivolts();\n    Amps::new(raw)\n}\n";
        assert!(lint_source(&bench, bad).iter().all(|f| f.rule != "U2"));
        let suppressed = "fn f(v: Volts) -> Amps {\n    let raw = v.as_millivolts();\n    // advdiag::allow(U2, deliberate reinterpretation for the DAC glitch test)\n    Amps::new(raw)\n}\n";
        assert!(lint_source(&ctx(), suppressed)
            .iter()
            .all(|f| f.rule != "U2"));
    }

    #[test]
    fn dim_preserving_methods_keep_tracking() {
        let src = "fn f(v: Volts) -> Amps {\n    let raw = v.as_millivolts().abs();\n    Amps::new(raw)\n}\n";
        assert_eq!(u2(src).len(), 1);
        // `.value()` and `sqrt` forget.
        let src = "fn f(v: Volts) -> Amps {\n    let raw = v.as_millivolts().sqrt();\n    Amps::new(raw)\n}\n";
        assert!(u2(src).is_empty());
    }
}
