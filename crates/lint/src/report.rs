//! Human, machine-readable and CI-annotation rendering of a lint run.

use crate::baseline::escape;
use crate::rules::{Finding, Severity};

/// Outcome of one lint run, after baseline partitioning.
#[derive(Debug)]
pub struct Report<'a> {
    /// Files scanned.
    pub files: usize,
    /// Findings covered by the baseline.
    pub baselined: Vec<&'a Finding>,
    /// Unbaselined (new) findings. Error-severity entries fail the run;
    /// warnings only report.
    pub fresh: Vec<&'a Finding>,
}

impl Report<'_> {
    /// Fresh error-severity findings — the ones that gate the exit code.
    pub fn fresh_errors(&self) -> impl Iterator<Item = &&Finding> {
        self.fresh.iter().filter(|f| f.severity == Severity::Error)
    }

    /// `file:line:col: severity[RULE] message` diagnostics, new findings
    /// first.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.fresh {
            out.push_str(&format!(
                "{}:{}:{}: {}[{}] {}\n    {}\n",
                f.file,
                f.line,
                f.col,
                f.severity.label(),
                f.rule,
                f.message,
                f.excerpt
            ));
        }
        for f in &self.baselined {
            out.push_str(&format!(
                "{}:{}:{}: {}[{}] (baselined) {}\n",
                f.file,
                f.line,
                f.col,
                f.severity.label(),
                f.rule,
                f.message
            ));
        }
        let errors = self.fresh_errors().count();
        out.push_str(&format!(
            "bios-lint: {} file(s), {} finding(s): {} new ({} error(s), {} warning(s)), {} baselined\n",
            self.files,
            self.fresh.len() + self.baselined.len(),
            self.fresh.len(),
            errors,
            self.fresh.len() - errors,
            self.baselined.len()
        ));
        out
    }

    /// The machine-readable report (one finding per line for greppable
    /// artifacts).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 2,\n  \"tool\": \"bios-lint\",\n");
        out.push_str(&format!(
            "  \"summary\": {{\"files\": {}, \"total\": {}, \"new\": {}, \"new_errors\": {}, \"baselined\": {}}},\n",
            self.files,
            self.fresh.len() + self.baselined.len(),
            self.fresh.len(),
            self.fresh_errors().count(),
            self.baselined.len()
        ));
        out.push_str("  \"findings\": [\n");
        let all: Vec<(&Finding, bool)> = self
            .fresh
            .iter()
            .map(|f| (*f, false))
            .chain(self.baselined.iter().map(|f| (*f, true)))
            .collect();
        for (i, (f, baselined)) in all.iter().enumerate() {
            let fixable = match &f.fix {
                Some(fix) => escape(fix.safety.label()),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"end_col\": {}, \"fixable\": {}, \"baselined\": {}, \"message\": {}, \"excerpt\": {}}}{}\n",
                escape(f.rule),
                escape(f.severity.label()),
                escape(&f.file),
                f.line,
                f.col,
                f.end_col,
                fixable,
                baselined,
                escape(&f.message),
                escape(&f.excerpt),
                if i + 1 < all.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// GitHub Actions workflow annotations (`::error file=…,line=…`):
    /// one command per fresh finding, so violations surface inline on the
    /// PR diff. Columns are 1-based and `endColumn` spans the flagged
    /// region, so the underline covers the whole excerpt rather than a
    /// single character. Baselined findings are not annotated.
    pub fn github(&self) -> String {
        let mut out = String::new();
        for f in &self.fresh {
            let cmd = match f.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let end_col = if f.end_col > f.col {
                f.end_col
            } else {
                f.col + 1
            };
            out.push_str(&format!(
                "::{cmd} file={},line={},endLine={},col={},endColumn={},title=bios-lint {}::{}\n",
                f.file,
                f.line,
                f.line,
                f.col,
                end_col,
                f.rule,
                github_escape(&f.message)
            ));
        }
        out
    }
}

/// Escapes a workflow-command message per the Actions spec (`%`, CR, LF).
fn github_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Json;

    fn finding() -> Finding {
        Finding {
            rule: "P1",
            file: "crates/x/src/a.rs".to_string(),
            line: 12,
            col: 7,
            end_col: 18,
            severity: Severity::Error,
            message: "`.unwrap()` in library code".to_string(),
            excerpt: "x.unwrap();".to_string(),
            fix: None,
        }
    }

    fn warning() -> Finding {
        Finding {
            rule: "A2",
            severity: Severity::Warning,
            ..finding()
        }
    }

    #[test]
    fn json_report_is_parseable() {
        let f = finding();
        let report = Report {
            files: 3,
            baselined: vec![&f],
            fresh: vec![&f],
        };
        let parsed = Json::parse(&report.json()).expect("valid JSON");
        let obj = parsed.as_object().expect("object");
        let findings = obj
            .iter()
            .find(|(k, _)| k == "findings")
            .and_then(|(_, v)| v.as_array())
            .expect("findings array");
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn human_report_flags_new_vs_baselined() {
        let f = finding();
        let report = Report {
            files: 1,
            baselined: vec![&f],
            fresh: vec![&f],
        };
        let text = report.human();
        assert!(text.contains("crates/x/src/a.rs:12:7: error[P1]"), "{text}");
        assert!(text.contains("(baselined)"));
        assert!(text.contains("1 new (1 error(s), 0 warning(s)), 1 baselined"));
    }

    #[test]
    fn warnings_do_not_count_as_errors() {
        let w = warning();
        let report = Report {
            files: 1,
            baselined: vec![],
            fresh: vec![&w],
        };
        assert_eq!(report.fresh_errors().count(), 0);
        assert!(report.human().contains("warning[A2]"));
    }

    #[test]
    fn github_format_emits_workflow_commands() {
        let f = finding();
        let w = warning();
        let report = Report {
            files: 1,
            baselined: vec![&f],
            fresh: vec![&f, &w],
        };
        let gh = report.github();
        assert!(
            gh.contains(
                "::error file=crates/x/src/a.rs,line=12,endLine=12,col=7,endColumn=18,\
                 title=bios-lint P1::"
            ),
            "{gh}"
        );
        assert!(gh.contains("::warning file="), "{gh}");
        // Baselined findings are not annotated: exactly two commands.
        assert_eq!(gh.lines().count(), 2);
    }
}
