//! Human and machine-readable rendering of a lint run.

use crate::baseline::escape;
use crate::rules::Finding;

/// Outcome of one lint run, after baseline partitioning.
#[derive(Debug)]
pub struct Report<'a> {
    /// Files scanned.
    pub files: usize,
    /// Findings covered by the baseline.
    pub baselined: Vec<&'a Finding>,
    /// Unbaselined (new) findings — these fail the run.
    pub fresh: Vec<&'a Finding>,
}

impl Report<'_> {
    /// `file:line: [RULE] message` diagnostics, new findings first.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.fresh {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    {}\n",
                f.file, f.line, f.rule, f.message, f.excerpt
            ));
        }
        for f in &self.baselined {
            out.push_str(&format!(
                "{}:{}: [{}] (baselined) {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "bios-lint: {} file(s), {} finding(s): {} new, {} baselined\n",
            self.files,
            self.fresh.len() + self.baselined.len(),
            self.fresh.len(),
            self.baselined.len()
        ));
        out
    }

    /// The machine-readable report (one finding per line for greppable
    /// artifacts).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"tool\": \"bios-lint\",\n");
        out.push_str(&format!(
            "  \"summary\": {{\"files\": {}, \"total\": {}, \"new\": {}, \"baselined\": {}}},\n",
            self.files,
            self.fresh.len() + self.baselined.len(),
            self.fresh.len(),
            self.baselined.len()
        ));
        out.push_str("  \"findings\": [\n");
        let all: Vec<(&Finding, bool)> = self
            .fresh
            .iter()
            .map(|f| (*f, false))
            .chain(self.baselined.iter().map(|f| (*f, true)))
            .collect();
        for (i, (f, baselined)) in all.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"baselined\": {}, \"message\": {}, \"excerpt\": {}}}{}\n",
                escape(f.rule),
                escape(&f.file),
                f.line,
                baselined,
                escape(&f.message),
                escape(&f.excerpt),
                if i + 1 < all.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Json;

    fn finding() -> Finding {
        Finding {
            rule: "P1",
            file: "crates/x/src/a.rs".to_string(),
            line: 12,
            message: "`.unwrap()` in library code".to_string(),
            excerpt: "x.unwrap();".to_string(),
        }
    }

    #[test]
    fn json_report_is_parseable() {
        let f = finding();
        let report = Report {
            files: 3,
            baselined: vec![&f],
            fresh: vec![&f],
        };
        let parsed = Json::parse(&report.json()).expect("valid JSON");
        let obj = parsed.as_object().expect("object");
        let findings = obj
            .iter()
            .find(|(k, _)| k == "findings")
            .and_then(|(_, v)| v.as_array())
            .expect("findings array");
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn human_report_flags_new_vs_baselined() {
        let f = finding();
        let report = Report {
            files: 1,
            baselined: vec![&f],
            fresh: vec![&f],
        };
        let text = report.human();
        assert!(text.contains("crates/x/src/a.rs:12: [P1]"));
        assert!(text.contains("(baselined)"));
        assert!(text.contains("1 new, 1 baselined"));
    }
}
