//! Hot-region inference and the H1–H4 hot-path rules.
//!
//! The bench digest gates prove *that* a hot-loop regression happened;
//! these rules say *where*, before the bench ever runs. The hot region is
//! everything the workspace [`CallGraph`] reaches from declared roots:
//!
//! * the kernel entries in [`HOT_ROOTS`] (every definition of a root name
//!   is hot — `step_with_rate_constants` deliberately names both the
//!   scalar and the batch kernel);
//! * closures passed to the deterministic parallel primitives
//!   (`par_map`, `try_par_map`, `par_map_mut`, `par_map_chunks`);
//! * any function under an opt-in `// advdiag::hot` marker comment.
//!
//! Hotness carries a cadence ([`Level`]): per-step entries and everything
//! reached through a loop body are `PerIter` — their whole bodies are
//! per-iteration regions and the allocation/reduction rules apply
//! everywhere in them — while whole-experiment *drivers*
//! (`simulate_chrono_fleet`) are `Warm`: their straight-line setup code is
//! exactly where a hoisted scratch buffer belongs, so the rules apply only
//! inside their loop bodies and in what those bodies call.
//!
//! The symmetric `// advdiag::cold(reason)` marker declares a *boundary*:
//! the marked function is excluded from the hot region and hotness does
//! not propagate through it. It exists for call sites that are reachable
//! from a stepping loop but run at a coarser cadence by contract — e.g.
//! the per-acquisition dispatch boundary, which executes whole simulated
//! experiments and allocates by design. Like `advdiag::allow`, the marker
//! is a visible in-code decision, not a baseline entry.
//!
//! Rules over the hot region (all error severity, none machine-fixable):
//!
//! * **H1** — allocation in hot code: `Vec::new()`, `Box::new(…)`,
//!   `vec![…]`, `format!(…)`, `.to_vec()`, `.clone()`, and `.push(…)`
//!   onto a hot-local vector that was not `with_capacity`-reserved.
//!   Pushes onto parameters/fields are silent: a cold caller owns that
//!   buffer's allocation.
//! * **H2** — float-reduction-order hazard: `.sum()` / `.product()` /
//!   `.fold(…)` in hot code. The batch kernels' digest stability rests on
//!   per-lane float op order being *literally identical* to scalar;
//!   iterator reductions hide that order behind the iterator's shape, so
//!   hot accumulation must be an explicit index loop. This is the static
//!   twin of the bench digest gates (see DESIGN.md §6e).
//! * **H3** — blocking or I/O call reachable from the server's shard
//!   stepping loop (`step_active`): locks, channel receives, thread
//!   joins/park/sleep, `println!`-family output, file I/O, wall-clock
//!   reads. The injected telemetry `Clock` is exempt (its default is
//!   `NullClock`).
//! * **H4** — per-iteration invariant recomputation: calls to the
//!   known-pure constructors in [`PURE_CTORS`] inside a loop body in hot
//!   code (one factorization per `(grid, dt, D)` is the PR-2 contract).
//!
//! Everything here inherits the engine's lossiness contract: macro bodies,
//! `Opaque` nodes, ambiguous names and unmarked indirection can only *hide*
//! a violation (false negative), never invent one.

use std::collections::BTreeSet;

use crate::ast::{Block, Expr, Item, Stmt};
use crate::callgraph::{CallGraph, Level};
use crate::depgraph::HotOverlay;
use crate::rules::{push, FileContext, Finding, BENCH_CRATE, LINT_CRATE};

/// Declared kernel entry points (every non-test definition of these names
/// is a hot root) with their cadence: `PerIter` entries run once per
/// step/tick/wave, so their whole bodies are per-iteration regions;
/// `Warm` entries are whole-experiment drivers whose straight-line code
/// is setup (the place hoisted buffers live) and whose loop bodies are
/// the per-step part.
pub const HOT_ROOTS: &[(&str, Level)] = &[
    ("solve_batch_in_place", Level::PerIter),
    ("step_with_rate_constants", Level::PerIter),
    ("simulate_chrono_fleet", Level::Warm),
    ("step_wave", Level::PerIter),
    ("step_active", Level::PerIter),
    ("sweep_and_mark", Level::PerIter),
    ("score_shard_margins", Level::PerIter),
];

/// The server's shard stepping loop: the reachability root for H3.
const SERVER_LOOP_ROOT: &str = "step_active";

/// Parallel primitives whose closure arguments are hot roots.
const PAR_ROOT_FNS: &[&str] = &["par_map", "try_par_map", "par_map_mut", "par_map_chunks"];

/// Synthetic call-graph node owning every `par_map*` closure's calls.
const PAR_CLOSURE: &str = "{par-closure}";

/// Known-pure constructors whose result is loop-invariant (H4): calling
/// one inside a hot loop body recomputes an invariant per iteration.
pub const PURE_CTORS: &[(&str, &str)] = &[
    ("Prefactorized", "new"),
    ("Grid", "for_experiment"),
    ("Grid", "for_experiment_with"),
    ("Grid", "uniform"),
    ("Grid", "expanding"),
];

/// Allocating macros (H1).
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Output/formatting macros that block or write to a stream (H3).
const BLOCKING_MACROS: &[&str] = &[
    "println", "print", "eprintln", "eprint", "dbg", "write", "writeln",
];

/// Method names that block the calling thread (H3).
const BLOCKING_METHODS: &[&str] = &["lock", "recv", "recv_timeout", "join", "park", "wait"];

/// One file's contribution to the workspace hot-path analysis.
pub struct HotFile<'a> {
    pub ctx: FileContext<'a>,
    pub items: &'a [Item],
    /// Raw source, scanned for `advdiag::hot` / `advdiag::cold` markers.
    pub source: &'a str,
}

/// A function definition the analysis tracks.
struct FnDef<'a> {
    file: usize,
    name: &'a str,
    line: u32,
    body: &'a Block,
}

/// Runs the hot-region analysis over the whole workspace. Returns raw
/// findings (excerpts unfilled, suppressions unapplied — the caller owns
/// both, exactly like `range::analyze_crate`) plus the overlay for
/// `--emit-dot`.
pub fn analyze_workspace(files: &[HotFile<'_>]) -> (Vec<Finding>, HotOverlay) {
    // Collect definitions. Bench and the linter itself are exempt (the
    // bench crate measures hot loops, it is not one; same policy as the
    // range analysis).
    let mut defs: Vec<FnDef<'_>> = Vec::new();
    for (fi, hf) in files.iter().enumerate() {
        if hf.ctx.crate_name == BENCH_CRATE || hf.ctx.crate_name == LINT_CRATE {
            continue;
        }
        for item in hf.items {
            item.visit_fns(&mut |it, f| {
                if it.in_test {
                    return;
                }
                if let Some(body) = &f.body {
                    defs.push(FnDef {
                        file: fi,
                        name: &f.name,
                        line: it.span.line,
                        body,
                    });
                }
            });
        }
    }

    // Build the call graph.
    let mut graph = CallGraph::new();
    for d in &defs {
        graph.add_def(d.name);
    }
    for d in &defs {
        collect_edges(d.name, d.body, &mut graph);
    }
    for (root, level) in HOT_ROOTS {
        graph.add_root(root, *level);
    }
    graph.add_root(PAR_CLOSURE, Level::PerIter);
    // Marker roots and cold boundaries: a marker comment applies to the
    // first function starting on its line or within the next two lines.
    for (fi, hf) in files.iter().enumerate() {
        for line in marker_lines(hf.source, "advdiag::hot") {
            if let Some(name) = fn_at(&defs, fi, line) {
                graph.add_root(name, Level::PerIter);
            }
        }
        for line in marker_lines(hf.source, "advdiag::cold") {
            if let Some(name) = fn_at(&defs, fi, line) {
                graph.add_cold(name);
            }
        }
    }

    let levels = graph.hot_levels();
    let hot3 = graph.hot_set_from([SERVER_LOOP_ROOT]);

    // Rule pass. Three scan classes:
    //  * `PerIter` functions: whole body is a per-iteration region.
    //  * Declared `Warm` *roots* (drivers): their loop bodies are step
    //    loops by declaration, so only those are scanned. A transitively
    //    warm function is NOT scanned — whether its own loops iterate
    //    over time steps or over setup data is unknowable from names,
    //    and the lossiness contract resolves unknowns to silence (its
    //    in-loop *calls* still propagate `PerIter` through the graph).
    //  * Everything else: only `par_map*` closure bodies.
    let warm_roots: BTreeSet<&str> = HOT_ROOTS
        .iter()
        .filter(|(_, l)| *l == Level::Warm)
        .map(|(r, _)| *r)
        .collect();
    let mut findings = Vec::new();
    for d in &defs {
        let ctx = files[d.file].ctx;
        let level = levels.get(d.name);
        if level == Some(&Level::PerIter) || (level.is_some() && warm_roots.contains(d.name)) {
            let mut s = Scanner {
                ctx,
                in_server_loop: hot3.contains(d.name),
                periter: level == Some(&Level::PerIter),
                loop_depth: 0,
                vecs: Vec::new(),
                findings: &mut findings,
            };
            s.block(d.body);
        } else if level.is_none() {
            for closure_body in par_closures(d.body) {
                let mut s = Scanner {
                    ctx,
                    in_server_loop: false,
                    // The closure runs once per element: its whole body
                    // is a per-iteration region.
                    periter: true,
                    loop_depth: 0,
                    vecs: Vec::new(),
                    findings: &mut findings,
                };
                s.expr(closure_body);
            }
        }
    }

    let roots: BTreeSet<String> = graph
        .roots()
        .filter(|r| levels.contains_key(*r))
        .map(str::to_string)
        .collect();
    let overlay = HotOverlay {
        roots: roots.into_iter().collect(),
        hot: levels.into_keys().collect(),
    };
    (findings, overlay)
}

/// 1-based lines whose comment text contains `needle`.
fn marker_lines(source: &str, needle: &str) -> Vec<u32> {
    let mut out = Vec::new();
    for (i, line) in source.lines().enumerate() {
        if let Some(slash) = line.find("//") {
            if line[slash..].contains(needle) {
                out.push(i as u32 + 1);
            }
        }
    }
    out
}

/// The function in `file` starting on `line` or within the two lines
/// after it (marker above the item, attributes tolerated).
fn fn_at<'a>(defs: &[FnDef<'a>], file: usize, line: u32) -> Option<&'a str> {
    defs.iter()
        .filter(|d| d.file == file && d.line >= line && d.line <= line + 2)
        .min_by_key(|d| d.line)
        .map(|d| d.name)
}

/// The callee name of a call-shaped expression, when resolvable.
fn callee_of(e: &Expr) -> Option<&str> {
    match e {
        Expr::Call { callee, .. } => match &**callee {
            Expr::Path { segments, .. } => segments.last().map(String::as_str),
            _ => None,
        },
        Expr::MethodCall { method, .. } => Some(method),
        _ => None,
    }
}

/// Registers every call inside `body` as an edge from `caller`, tagged
/// with whether the call site sits inside a loop body; calls inside a
/// `par_map*` closure argument are additionally owned by the synthetic
/// [`PAR_CLOSURE`] root, always as in-loop edges (the closure runs once
/// per element).
fn collect_edges(caller: &str, body: &Block, graph: &mut CallGraph) {
    body.visit_depth(0, &mut |e, depth| {
        if let Some(callee) = callee_of(e) {
            graph.add_call(caller, callee, depth > 0);
        }
    });
    for closure_body in par_closures(body) {
        closure_body.visit(&mut |e| {
            if let Some(callee) = callee_of(e) {
                graph.add_call(PAR_CLOSURE, callee, true);
            }
        });
    }
}

/// Bodies of closures passed directly to a `par_map*` primitive.
fn par_closures(body: &Block) -> Vec<&Expr> {
    let mut out = Vec::new();
    body.visit(&mut |e| {
        if let Expr::Call { callee, args, .. } = e {
            if let Expr::Path { segments, .. } = &**callee {
                if segments
                    .last()
                    .is_some_and(|s| PAR_ROOT_FNS.contains(&s.as_str()))
                {
                    for a in args {
                        if let Expr::Closure { body, .. } = a {
                            out.push(&**body);
                        }
                    }
                }
            }
        }
    });
    out
}

/// True when `segments` ends with `a::b`.
fn ends_with(segments: &[String], a: &str, b: &str) -> bool {
    let n = segments.len();
    n >= 2 && segments[n - 2] == a && segments[n - 1] == b
}

/// The rule walker for one hot region. Tracks loop depth and region-local
/// vector bindings (the H1 `push` refinement). H1/H2/H4 fire only in
/// *per-iteration* positions: anywhere in a `PerIter` function, inside
/// loop bodies of a `Warm` one. H3 fires at any depth — a blocking call
/// stalls the serving round wherever it sits.
struct Scanner<'a, 'f> {
    ctx: FileContext<'a>,
    in_server_loop: bool,
    /// The whole region is per-iteration (see [`Level::PerIter`]).
    periter: bool,
    loop_depth: u32,
    /// `(name, reserved)` for vectors `let`-bound inside this region.
    vecs: Vec<(&'a str, bool)>,
    findings: &'f mut Vec<Finding>,
}

impl<'a> Scanner<'a, '_> {
    /// True when the current position executes once per hot-loop
    /// iteration — the gate for the allocation/reduction rules.
    fn per_iteration(&self) -> bool {
        self.periter || self.loop_depth > 0
    }
    fn block(&mut self, b: &'a Block) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let { names, init, .. } => {
                    if let Some(init) = init {
                        self.expr(init);
                        if let [name] = names.as_slice() {
                            match vec_binding(init) {
                                Some(reserved) => self.vecs.push((name.as_str(), reserved)),
                                None => self.vecs.retain(|(n, _)| *n != name.as_str()),
                            }
                        }
                    }
                }
                Stmt::Expr(e) => self.expr(e),
                // Nested items are their own definitions; the call graph
                // decides their hotness independently.
                Stmt::Item(_) => {}
            }
        }
    }

    fn expr(&mut self, e: &'a Expr) {
        self.check(e);
        match e {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::MacroCall { .. } | Expr::Opaque { .. } => {
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => self.expr(expr),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Assign { target, value, .. } => {
                self.expr(target);
                self.expr(value);
            }
            Expr::MethodCall { recv, args, .. } => {
                self.expr(recv);
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Field { recv, .. } => self.expr(recv),
            Expr::Call { callee, args, .. } => {
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Index { recv, index, .. } => {
                self.expr(recv);
                self.expr(index);
            }
            Expr::Closure { body, .. } => self.expr(body),
            Expr::Block(b) => self.block(b),
            Expr::If {
                cond, then, els, ..
            } => {
                self.expr(cond);
                self.block(then);
                if let Some(els) = els {
                    self.expr(els);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.expr(scrutinee);
                for a in arms {
                    self.expr(a);
                }
            }
            Expr::For { iter, body, .. } => {
                self.expr(iter);
                self.loop_depth += 1;
                self.block(body);
                self.loop_depth -= 1;
            }
            Expr::While { cond, body, .. } => {
                self.expr(cond);
                self.loop_depth += 1;
                self.block(body);
                self.loop_depth -= 1;
            }
            Expr::Seq { items, .. } | Expr::StructLit { fields: items, .. } => {
                for x in items {
                    self.expr(x);
                }
            }
        }
    }

    fn check(&mut self, e: &'a Expr) {
        let span = e.span();
        match e {
            Expr::Call { callee, .. } => {
                if let Expr::Path { segments, .. } = &**callee {
                    if self.per_iteration()
                        && (ends_with(segments, "Vec", "new") || ends_with(segments, "Box", "new"))
                    {
                        self.emit(
                            "H1",
                            span,
                            format!(
                                "allocation in hot code: `{}::new` — hoist the buffer to a \
                                 cold caller or reuse a persistent scratch field",
                                segments[segments.len() - 2]
                            ),
                        );
                    }
                    if self.per_iteration()
                        && PURE_CTORS.iter().any(|(t, m)| ends_with(segments, t, m))
                    {
                        let n = segments.len();
                        self.emit(
                            "H4",
                            span,
                            format!(
                                "invariant recomputed per iteration: `{}::{}` is pure in its \
                                 arguments — construct it once before the hot loop",
                                segments[n - 2],
                                segments[n - 1]
                            ),
                        );
                    }
                    if self.in_server_loop && blocking_path(segments) {
                        self.emit(
                            "H3",
                            span,
                            format!(
                                "blocking/I-O call reachable from the shard stepping loop: \
                                 `{}` — the serving round must stay non-blocking (inject a \
                                 `Clock`, move I/O behind the dispatch boundary)",
                                segments.join("::")
                            ),
                        );
                    }
                }
            }
            Expr::MethodCall { recv, method, .. } => match method.as_str() {
                "to_vec" | "clone" if self.per_iteration() => self.emit(
                    "H1",
                    span,
                    format!(
                        "allocation in hot code: `.{method}()` — borrow instead, or hoist \
                         the copy out of the hot region"
                    ),
                ),
                "push" if self.per_iteration() => {
                    if let Expr::Path { segments, .. } = &**recv {
                        if let [name] = segments.as_slice() {
                            if self.vecs.iter().any(|(n, cap)| *n == name.as_str() && !cap) {
                                self.emit(
                                    "H1",
                                    span,
                                    format!(
                                        "`{name}.push(…)` may reallocate in hot code: the \
                                         vector was created here without `with_capacity` — \
                                         reserve in a cold region or reuse a scratch buffer"
                                    ),
                                );
                            }
                        }
                    }
                }
                "sum" | "product" | "fold" if self.per_iteration() => self.emit(
                    "H2",
                    span,
                    format!(
                        "float-reduction-order hazard: `.{method}()` in hot code hides the \
                         accumulation order the digest gates pin down — use an explicit \
                         index loop matching the scalar twin's op order"
                    ),
                ),
                m if self.in_server_loop && BLOCKING_METHODS.contains(&m) => self.emit(
                    "H3",
                    span,
                    format!(
                        "blocking call reachable from the shard stepping loop: `.{m}()` — \
                         the serving round must stay non-blocking"
                    ),
                ),
                _ => {}
            },
            Expr::MacroCall { name, .. } => {
                if self.per_iteration() && ALLOC_MACROS.contains(&name.as_str()) {
                    self.emit(
                        "H1",
                        span,
                        format!(
                            "allocation in hot code: `{name}!(…)` — hoist the buffer/string \
                             construction out of the hot region"
                        ),
                    );
                }
                if self.in_server_loop && BLOCKING_MACROS.contains(&name.as_str()) {
                    self.emit(
                        "H3",
                        span,
                        format!(
                            "I/O in the shard stepping loop: `{name}!(…)` — route telemetry \
                             through the injected `Clock`/stats instead of a stream"
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    fn emit(&mut self, rule: &'static str, span: crate::ast::Span, message: String) {
        push(self.findings, rule, &self.ctx, span.line, span.col, message);
    }
}

/// Classifies a `let` initializer as a vector allocation: `Some(reserved)`
/// when it is one, with `reserved == true` for `Vec::with_capacity`.
fn vec_binding(init: &Expr) -> Option<bool> {
    match init {
        Expr::Call { callee, .. } => match &**callee {
            Expr::Path { segments, .. } => {
                if ends_with(segments, "Vec", "with_capacity") {
                    Some(true)
                } else if ends_with(segments, "Vec", "new") {
                    Some(false)
                } else {
                    None
                }
            }
            _ => None,
        },
        Expr::MacroCall { name, .. } if name == "vec" => Some(false),
        _ => None,
    }
}

/// True for call paths that name blocking or I/O facilities (H3).
fn blocking_path(segments: &[String]) -> bool {
    if segments.last().is_some_and(|s| s == "sleep") {
        return true;
    }
    if ends_with(segments, "Instant", "now") || ends_with(segments, "SystemTime", "now") {
        return true;
    }
    segments
        .iter()
        .any(|s| matches!(s.as_str(), "File" | "fs" | "stdin" | "stdout" | "stderr"))
}
