//! Grandfathered-findings baseline.
//!
//! The baseline is a checked-in JSON file listing findings that predate a
//! rule (or are accepted debt). A finding matches a baseline entry on
//! `(rule, file, excerpt)` — deliberately *not* on line number, so
//! unrelated edits that shift lines do not invalidate the baseline, while
//! any change to the offending line itself surfaces the finding again.
//! Matching is multiset-style: two identical offending lines in one file
//! need two entries.
//!
//! The parser below is a tiny recursive-descent JSON reader covering the
//! whole grammar; it exists so `bios-lint` stays dependency-free (the
//! workspace's serde shims are for product crates, and the linter must
//! not depend on code it lints).

use std::collections::BTreeMap;

use crate::rules::Finding;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub excerpt: String,
}

/// Parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the JSON written by [`Baseline::to_json`].
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = Json::parse(text)?;
        let obj = value.as_object().ok_or("baseline root must be an object")?;
        let entries_val = obj
            .field("entries")
            .ok_or("baseline is missing the `entries` array")?;
        let arr = entries_val
            .as_array()
            .ok_or("baseline `entries` must be an array")?;
        let mut entries = Vec::with_capacity(arr.len());
        for (i, e) in arr.iter().enumerate() {
            let eo = e
                .as_object()
                .ok_or_else(|| format!("baseline entry {i} must be an object"))?;
            let field = |name: &str| -> Result<String, String> {
                eo.field(name)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry {i} is missing string field `{name}`"))
            };
            entries.push(BaselineEntry {
                rule: field("rule")?,
                file: field("file")?,
                excerpt: field("excerpt")?,
            });
        }
        Ok(Self { entries })
    }

    /// Serializes in a stable, diff-friendly one-entry-per-line layout.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"excerpt\": {}}}{}\n",
                escape(&e.rule),
                escape(&e.file),
                escape(&e.excerpt),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Builds a baseline from current findings (for `--write-baseline`),
    /// sorted for stable diffs.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: Vec<BaselineEntry> = findings
            .iter()
            .map(|f| BaselineEntry {
                rule: f.rule.to_string(),
                file: f.file.clone(),
                excerpt: f.excerpt.clone(),
            })
            .collect();
        entries.sort_by(|a, b| (&a.file, &a.rule, &a.excerpt).cmp(&(&b.file, &b.rule, &b.excerpt)));
        Self { entries }
    }

    /// Splits `findings` into `(baselined, new)` using multiset matching.
    pub fn partition<'a>(&self, findings: &'a [Finding]) -> (Vec<&'a Finding>, Vec<&'a Finding>) {
        let mut budget: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
        for e in &self.entries {
            *budget
                .entry((e.rule.as_str(), e.file.as_str(), e.excerpt.as_str()))
                .or_insert(0) += 1;
        }
        let mut baselined = Vec::new();
        let mut fresh = Vec::new();
        for f in findings {
            let key = (f.rule, f.file.as_str(), f.excerpt.as_str());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    baselined.push(f);
                }
                _ => fresh.push(f),
            }
        }
        (baselined, fresh)
    }
}

/// JSON-escapes a string, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Convenience lookup on the `Vec<(String, Json)>` object representation.
trait ObjExt {
    fn field(&self, key: &str) -> Option<&Json>;
}

impl ObjExt for [(String, Json)] {
    fn field(&self, key: &str) -> Option<&Json> {
        self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF-8 string".to_string())?;
                    if let Some(c) = rest.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(items));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            let val = self.value()?;
            items.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(items));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            col: 1,
            end_col: 0,
            severity: crate::rules::Severity::Error,
            message: String::new(),
            excerpt: excerpt.to_string(),
            fix: None,
        }
    }

    #[test]
    fn roundtrip_and_partition() {
        let findings = vec![
            finding("P1", "a.rs", "x.unwrap();"),
            finding("P1", "a.rs", "x.unwrap();"),
            finding("F1", "b.rs", "x == 0.0"),
        ];
        let base = Baseline::from_findings(&findings[..2]);
        let reparsed = Baseline::parse(&base.to_json()).expect("roundtrip");
        assert_eq!(reparsed.entries, base.entries);
        let (old, new) = reparsed.partition(&findings);
        assert_eq!(old.len(), 2);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].rule, "F1");
    }

    #[test]
    fn multiset_matching_counts_duplicates() {
        let base = Baseline::from_findings(&[finding("P1", "a.rs", "x.unwrap();")]);
        let findings = vec![
            finding("P1", "a.rs", "x.unwrap();"),
            finding("P1", "a.rs", "x.unwrap();"),
        ];
        let (old, new) = base.partition(&findings);
        assert_eq!(
            (old.len(), new.len()),
            (1, 1),
            "one entry covers one finding"
        );
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"a": [1, -2.5e3, "q\"\n"], "b": {"c": null, "d": true}}"#)
            .expect("parses");
        let obj = v.as_object().expect("object");
        assert!(obj.iter().any(|(k, _)| k == "a"));
        let arr = obj
            .iter()
            .find(|(k, _)| k == "a")
            .map(|(_, v)| v)
            .and_then(Json::as_array)
            .expect("array");
        assert_eq!(arr[2].as_str(), Some("q\"\n"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{}").is_err(), "entries array is required");
        assert!(Json::parse("[1, 2,]").is_err(), "trailing comma");
    }
}
