//! Rules A1/A2 — workspace architecture: crate layering and dead API.
//!
//! The platform-based-design premise is that components compose along a
//! strict layer order:
//!
//! ```text
//! bios-units → {bios-electrochem, bios-biochem} → bios-afe
//!            → bios-instrument → bios-platform → bios-explore
//!            → bios-server → bios-bench → root
//! ```
//!
//! A crate may reference crates at the same or a lower layer, never a
//! higher one. This module builds the crate dependency graph from every
//! `bios_*` identifier in the token stream (covering both `use` items and
//! inline paths), rejects upward edges (**A1**, error), and reports `pub`
//! items that no other crate ever mentions (**A2**, warn-level: dead
//! public API is a smell, not a build-breaker).
//!
//! Both rules run at *workspace* scope: they need every file at once, so
//! they live behind [`crate::workspace::lint_files`] rather than
//! `lint_source`. A2 matches references lexically (a word-set over the
//! full text of every other crate, tests and benches included), so any
//! mention anywhere counts — the rule under-reports rather than
//! false-positives on macro-generated or trait-dispatched uses.

use crate::ast::{Item, ItemKind};
use crate::lexer::{lex, TokenKind};
use crate::parser::parse_items;
use crate::rules::{Finding, Severity};
use crate::workspace::MemFile;
use std::collections::{BTreeMap, BTreeSet};

/// The layer of every constrained crate; lower layers must not reference
/// higher ones. `bios-lint` is deliberately absent (the linter may read
/// anything and nothing may depend on it).
pub const LAYERS: &[(&str, u32)] = &[
    ("bios-units", 0),
    ("bios-electrochem", 1),
    ("bios-biochem", 1),
    ("bios-afe", 2),
    ("bios-instrument", 3),
    ("bios-platform", 4),
    ("bios-explore", 5),
    ("bios-server", 6),
    ("bios-model", 7),
    ("bios-bench", 8),
    ("advanced-diagnostics", 9),
];

/// Crates whose dead `pub` items A2 reports. The root binary, the bench
/// harness and the linter sit at the top of the graph — nothing is
/// expected to reference their items.
const A2_CRATES: &[&str] = &[
    "bios-units",
    "bios-electrochem",
    "bios-biochem",
    "bios-afe",
    "bios-instrument",
    "bios-platform",
    "bios-explore",
];

/// The layer index of a crate, or `None` when unconstrained.
pub fn layer_of(crate_name: &str) -> Option<u32> {
    LAYERS
        .iter()
        .find(|(name, _)| *name == crate_name)
        .map(|(_, l)| *l)
}

/// Maps a path identifier (`bios_units`) to the crate it references.
fn crate_for_ident(ident: &str) -> Option<&'static str> {
    match ident {
        "bios_units" => Some("bios-units"),
        "bios_electrochem" => Some("bios-electrochem"),
        "bios_biochem" => Some("bios-biochem"),
        "bios_afe" => Some("bios-afe"),
        "bios_instrument" => Some("bios-instrument"),
        "bios_platform" => Some("bios-platform"),
        "bios_explore" => Some("bios-explore"),
        "bios_server" => Some("bios-server"),
        "bios_model" => Some("bios-model"),
        "bios_bench" => Some("bios-bench"),
        "advanced_diagnostics" => Some("advanced-diagnostics"),
        _ => None,
    }
}

/// One cross-crate reference (first site per `(from, to, file)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: u32,
    pub col: u32,
}

/// The hot region inferred by [`crate::hotpath`], carried on the graph so
/// `--emit-dot` can overlay it: declared roots (kernel entries, markers,
/// `par_map*` closures) and every function name the call-graph fixpoint
/// reached from them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotOverlay {
    /// Declared hot roots that resolved to a workspace definition, sorted.
    pub roots: Vec<String>,
    /// The full hot set (roots included), sorted.
    pub hot: Vec<String>,
}

/// The workspace crate dependency graph.
#[derive(Debug, Default)]
pub struct DepGraph {
    /// Deduplicated edges, sorted by `(from, to, file)`.
    pub edges: Vec<DepEdge>,
    /// Hot-region overlay, when the hot-path analysis ran.
    pub hot: Option<HotOverlay>,
}

impl DepGraph {
    /// Renders the graph as Graphviz DOT, layers as `rank` labels, with
    /// upward (violating) edges highlighted. When a [`HotOverlay`] is
    /// attached, the hot region renders as a colored cluster: roots in
    /// red (labelled `(root)`), reached functions in orange.
    /// Deterministic output.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph bios_layers {\n    rankdir=BT;\n");
        let mut nodes: BTreeSet<&str> = BTreeSet::new();
        for e in &self.edges {
            nodes.insert(&e.from);
            nodes.insert(&e.to);
        }
        for n in &nodes {
            match layer_of(n) {
                Some(l) => out.push_str(&format!("    \"{n}\" [label=\"{n}\\nlayer {l}\"];\n")),
                None => out.push_str(&format!("    \"{n}\" [label=\"{n}\\nunconstrained\"];\n")),
            }
        }
        let mut seen: BTreeSet<(&str, &str)> = BTreeSet::new();
        for e in &self.edges {
            if !seen.insert((&e.from, &e.to)) {
                continue;
            }
            let upward = matches!(
                (layer_of(&e.from), layer_of(&e.to)),
                (Some(f), Some(t)) if t > f
            );
            if upward {
                out.push_str(&format!(
                    "    \"{}\" -> \"{}\" [color=red, penwidth=2];\n",
                    e.from, e.to
                ));
            } else {
                out.push_str(&format!("    \"{}\" -> \"{}\";\n", e.from, e.to));
            }
        }
        if let Some(hot) = &self.hot {
            out.push_str("    subgraph cluster_hot {\n");
            out.push_str("        label=\"hot region (H1-H4)\";\n");
            out.push_str("        style=filled;\n        color=\"#fff3e0\";\n");
            let roots: BTreeSet<&str> = hot.roots.iter().map(String::as_str).collect();
            for name in &hot.hot {
                if roots.contains(name.as_str()) {
                    out.push_str(&format!(
                        "        \"fn {name}\" [label=\"{name}\\n(root)\", style=filled, \
                         fillcolor=\"#ef5350\", shape=box];\n"
                    ));
                } else {
                    out.push_str(&format!(
                        "        \"fn {name}\" [label=\"{name}\", style=filled, \
                         fillcolor=\"#ffb74d\", shape=box];\n"
                    ));
                }
            }
            out.push_str("    }\n");
        }
        out.push_str("}\n");
        out
    }
}

/// The workspace-relevant facts of ONE file, extracted independently of
/// every other file. This is the unit the incremental cache stores: the
/// workspace analyses ([`analyze_facts`]) are a cheap pure function over
/// these, so a warm run only re-extracts facts for files whose content
/// hash changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileFacts {
    /// Sorted, deduplicated identifier-ish words over the FULL text
    /// (comments and tests included) — A2's reference corpus.
    pub words: Vec<String>,
    /// Cross-crate references from non-test path identifiers, first site
    /// per target crate (lintable files only).
    pub edges: Vec<FactEdge>,
    /// Externally-visible `pub` items (lintable files only).
    pub pubs: Vec<PubItem>,
}

/// One outgoing crate reference in a file (the `from`/`file` halves of a
/// [`DepEdge`] are implied by the file the facts belong to).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactEdge {
    pub to: String,
    pub line: u32,
    pub col: u32,
}

/// One `pub` item declared by a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubItem {
    pub name: String,
    pub kind: String,
    pub line: u32,
    pub col: u32,
}

/// A file's facts plus its workspace coordinates, as [`analyze_facts`]
/// consumes them.
#[derive(Debug, Clone, Copy)]
pub struct FactsRef<'a> {
    pub crate_name: &'a str,
    pub rel_path: &'a str,
    pub lintable: bool,
    pub facts: &'a FileFacts,
}

/// Extracts one file's workspace facts. `lexed`/`items` are `None` for
/// corpus-only files (only the word set is relevant there).
pub fn extract_facts(
    crate_name: &str,
    source: &str,
    lexed: Option<&crate::lexer::Lexed>,
    items: Option<&[Item]>,
) -> FileFacts {
    let mut words: BTreeSet<String> = BTreeSet::new();
    let mut cur = String::new();
    for ch in source.chars() {
        if ch.is_alphanumeric() || ch == '_' {
            cur.push(ch);
        } else if !cur.is_empty() {
            words.insert(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        words.insert(cur);
    }
    let mut edges: BTreeMap<String, (u32, u32)> = BTreeMap::new();
    if let Some(lexed) = lexed {
        for t in &lexed.tokens {
            if t.in_test || t.kind != TokenKind::Ident {
                continue;
            }
            let Some(to) = crate_for_ident(&t.text) else {
                continue;
            };
            if to == crate_name {
                continue;
            }
            edges.entry(to.to_string()).or_insert((t.line, t.col));
        }
    }
    let mut pubs = Vec::new();
    if let Some(items) = items {
        let mut raw = Vec::new();
        for item in items {
            collect_pub_items(item, true, &mut raw);
        }
        for (name, kind, span) in raw {
            pubs.push(PubItem {
                name,
                kind: kind.to_string(),
                line: span.line,
                col: span.col,
            });
        }
    }
    FileFacts {
        words: words.into_iter().collect(),
        edges: edges
            .into_iter()
            .map(|(to, (line, col))| FactEdge { to, line, col })
            .collect(),
        pubs,
    }
}

/// Runs both workspace analyses over every file. Returns raw findings
/// (excerpts unfilled, suppressions unapplied — the caller owns those)
/// plus the dependency graph for the DOT artifact.
pub fn analyze(files: &[MemFile]) -> (Vec<Finding>, DepGraph) {
    let facts: Vec<(String, String, bool, FileFacts)> = files
        .iter()
        .map(|f| {
            let (lexed, items) = if f.lintable {
                let lexed = lex(&f.source);
                let items = parse_items(&lexed);
                (Some(lexed), Some(items))
            } else {
                (None, None)
            };
            (
                f.crate_name.clone(),
                f.rel_path.clone(),
                f.lintable,
                extract_facts(&f.crate_name, &f.source, lexed.as_ref(), items.as_deref()),
            )
        })
        .collect();
    let refs: Vec<FactsRef<'_>> = facts
        .iter()
        .map(|(crate_name, rel_path, lintable, facts)| FactsRef {
            crate_name,
            rel_path,
            lintable: *lintable,
            facts,
        })
        .collect();
    analyze_facts(&refs)
}

/// The pure workspace-analysis phase over pre-extracted facts: builds
/// the dependency graph and runs A1/A2. Cold and warm (cached) runs
/// both funnel through here, so their findings agree by construction.
pub fn analyze_facts(files: &[FactsRef<'_>]) -> (Vec<Finding>, DepGraph) {
    let mut findings = Vec::new();
    let mut edges = Vec::new();
    for f in files.iter().filter(|f| f.lintable) {
        for e in &f.facts.edges {
            edges.push(DepEdge {
                from: f.crate_name.to_string(),
                to: e.to.clone(),
                file: f.rel_path.to_string(),
                line: e.line,
                col: e.col,
            });
        }
    }
    edges.sort_by(|a, b| (&a.from, &a.to, &a.file).cmp(&(&b.from, &b.to, &b.file)));
    let graph = DepGraph { edges, hot: None };
    rule_a1(&graph, &mut findings);
    rule_a2_facts(files, &mut findings);
    (findings, graph)
}

/// A1: upward edges between constrained crates are layering violations.
fn rule_a1(graph: &DepGraph, findings: &mut Vec<Finding>) {
    for e in &graph.edges {
        let (Some(from_layer), Some(to_layer)) = (layer_of(&e.from), layer_of(&e.to)) else {
            continue;
        };
        if to_layer > from_layer {
            findings.push(Finding {
                rule: "A1",
                file: e.file.clone(),
                line: e.line,
                col: e.col,
                end_col: 0,
                severity: Severity::Error,
                message: format!(
                    "`{}` (layer {}) references `{}` (layer {}): upward \
                     dependency breaks the platform layering units → physics → \
                     afe → instrument → core → bench; invert the dependency or \
                     move the shared type down",
                    e.from, from_layer, e.to, to_layer
                ),
                excerpt: String::new(),
                fix: None,
            });
        }
    }
}

/// A2: `pub` items in library crates that no other crate's word set ever
/// mentions (warn-level).
fn rule_a2_facts(files: &[FactsRef<'_>], findings: &mut Vec<Finding>) {
    // Word sets per crate over the FULL corpus (tests/benches included),
    // so any textual mention anywhere counts as a reference.
    let mut words: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in files {
        words
            .entry(f.crate_name)
            .or_default()
            .extend(f.facts.words.iter().map(String::as_str));
    }
    for f in files.iter().filter(|f| f.lintable) {
        if !A2_CRATES.contains(&f.crate_name) {
            continue;
        }
        for p in &f.facts.pubs {
            let referenced_elsewhere = words
                .iter()
                .filter(|(c, _)| **c != f.crate_name)
                .any(|(_, set)| set.contains(p.name.as_str()));
            if !referenced_elsewhere {
                findings.push(Finding {
                    rule: "A2",
                    file: f.rel_path.to_string(),
                    line: p.line,
                    col: p.col,
                    end_col: 0,
                    severity: Severity::Warning,
                    message: format!(
                        "pub {} `{}` is never referenced outside \
                         `{}`: dead public API surface; drop `pub` or delete it",
                        p.kind, p.name, f.crate_name
                    ),
                    excerpt: String::new(),
                    fix: None,
                });
            }
        }
    }
}

/// Collects externally-visible `pub` item names. `visible` tracks the
/// parent-module chain: a `pub` item in a private `mod` is not API.
/// Trait members are reached through their trait, so only the trait
/// itself is collected. Macro-generated items never appear in the AST —
/// the rule under-reports rather than flagging generated API.
fn collect_pub_items(
    item: &Item,
    visible: bool,
    out: &mut Vec<(String, &'static str, crate::ast::Span)>,
) {
    if item.in_test {
        return;
    }
    let mut record = |name: &str, kind: &'static str| {
        if visible && item.is_pub && !name.is_empty() && !name.starts_with('_') && name != "main" {
            out.push((name.to_string(), kind, item.span));
        }
    };
    match &item.kind {
        ItemKind::Fn(f) => record(&f.name, "fn"),
        ItemKind::TypeDef { name } => record(name, "type"),
        ItemKind::Trait { name, .. } => record(name, "trait"),
        ItemKind::Const { name } => record(name, "const"),
        ItemKind::TypeAlias { name } => record(name, "type alias"),
        ItemKind::Mod { name, items } => {
            record(name, "mod");
            for it in items {
                collect_pub_items(it, visible && item.is_pub, out);
            }
        }
        ItemKind::Impl { items } => {
            for it in items {
                collect_pub_items(it, visible, out);
            }
        }
        ItemKind::Use { .. } | ItemKind::Other => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(crate_name: &str, rel_path: &str, source: &str) -> MemFile {
        MemFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            source: source.to_string(),
            lintable: true,
        }
    }

    #[test]
    fn upward_edge_is_a1_downward_is_clean() {
        let files = vec![
            mem(
                "bios-electrochem",
                "crates/electrochem/src/lib.rs",
                "use bios_instrument::qc::QcGate;\n",
            ),
            mem(
                "bios-instrument",
                "crates/instrument/src/lib.rs",
                "use bios_electrochem::waveform::Waveform;\n",
            ),
        ];
        let (findings, graph) = analyze(&files);
        let a1: Vec<_> = findings.iter().filter(|f| f.rule == "A1").collect();
        assert_eq!(a1.len(), 1, "{findings:?}");
        assert_eq!(a1[0].file, "crates/electrochem/src/lib.rs");
        assert!(a1[0].message.contains("upward dependency"));
        assert_eq!(graph.edges.len(), 2);
    }

    #[test]
    fn same_layer_and_test_references_are_clean() {
        let files = vec![
            mem(
                "bios-biochem",
                "crates/biochem/src/lib.rs",
                "use bios_electrochem::waveform::Waveform;\n",
            ),
            mem(
                "bios-units",
                "crates/units/src/lib.rs",
                "#[cfg(test)]\nmod t {\n    use bios_platform::Session;\n}\n",
            ),
        ];
        let (findings, _) = analyze(&files);
        assert!(findings.iter().all(|f| f.rule != "A1"), "{findings:?}");
    }

    #[test]
    fn dead_pub_item_is_a2_warn_and_referenced_is_clean() {
        let files = vec![
            mem(
                "bios-afe",
                "crates/afe/src/lib.rs",
                "pub fn used_gain() {}\npub fn orphan_gain() {}\nfn private_helper() {}\n",
            ),
            mem(
                "bios-instrument",
                "crates/instrument/src/lib.rs",
                "fn f() { bios_afe::used_gain(); }\n",
            ),
        ];
        let (findings, _) = analyze(&files);
        let a2: Vec<_> = findings.iter().filter(|f| f.rule == "A2").collect();
        assert_eq!(a2.len(), 1, "{findings:?}");
        assert!(a2[0].message.contains("orphan_gain"));
        assert_eq!(a2[0].severity, Severity::Warning);
    }

    #[test]
    fn a2_skips_private_mods_tests_and_top_crates() {
        let files = vec![
            mem(
                "bios-afe",
                "crates/afe/src/lib.rs",
                "mod detail {\n    pub fn internal_only() {}\n}\n\
                 #[cfg(test)]\nmod t {\n    pub fn test_helper() {}\n}\n",
            ),
            mem(
                "bios-bench",
                "crates/bench/src/lib.rs",
                "pub fn harness_entry() {}\n",
            ),
        ];
        let (findings, _) = analyze(&files);
        assert!(findings.iter().all(|f| f.rule != "A2"), "{findings:?}");
    }

    #[test]
    fn dot_marks_upward_edges() {
        let files = vec![mem(
            "bios-electrochem",
            "crates/electrochem/src/lib.rs",
            "use bios_instrument::qc::QcGate;\nuse bios_units::Volts;\n",
        )];
        let (_, graph) = analyze(&files);
        let dot = graph.to_dot();
        assert!(dot.contains("digraph bios_layers"));
        assert!(dot.contains("\"bios-electrochem\" -> \"bios-instrument\" [color=red"));
        assert!(dot.contains("\"bios-electrochem\" -> \"bios-units\";"));
    }
}
