//! The rule catalogue and the engine that evaluates it.
//!
//! Every rule has a stable ID (used in diagnostics, suppressions and the
//! baseline) and a crate-level applicability policy mirroring the
//! workspace's invariants:
//!
//! | ID | kind | invariant | applies to |
//! |----|------|-----------|------------|
//! | D1 | token | no `HashMap`/`HashSet` (iteration order) | deterministic crates |
//! | D2 | token | no `Instant`/`SystemTime`/`thread::spawn` | all but `bios-platform::exec` + bench harness |
//! | P1 | token | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` | all library code but the bench harness |
//! | U1 | token | no raw `f64` params with dimensioned names in `pub fn` | physics-facing crates |
//! | S1 | token | every `unsafe` needs a `// SAFETY:` comment | everywhere |
//! | F1 | token | no `==`/`!=` against float literals | physics crates |
//! | U2 | semantic | dimensional consistency of raw `f64` unit flows | unit-consuming crates |
//! | D3 | semantic | no order-sensitive reductions in `par_map` closures | deterministic crates |
//! | A1 | workspace | crate layering (units → physics → afe → instrument → core → bench) | whole workspace |
//! | A2 | workspace (warn) | no dead `pub` items unreferenced outside their crate | library crates |
//! | W0 | meta | no stale `advdiag::allow` suppressions | everywhere |
//!
//! Token and semantic rules skip `#[cfg(test)]` / `#[test]` regions
//! except S1 (an undocumented `unsafe` block is a hazard wherever it
//! lives). A finding on line *n* is suppressed by
//! `// advdiag::allow(ID, reason)` on line *n* or *n − 1*; the reason is
//! mandatory. A well-formed allow that suppresses nothing is itself
//! reported (W0), so grandfathered suppressions cannot go stale silently.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// How severe a finding is. `Error` findings gate the exit code; fresh
/// `Warning` findings are reported but do not fail the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    /// Lower-case label used in reports (`"warning"` / `"error"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (`"D1"`, `"P1"`, …).
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based character (not byte) column; 0 when unknown.
    pub col: u32,
    /// Error findings gate CI; warnings only report.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Trimmed source line (baseline matching key; robust to line drift).
    pub excerpt: String,
}

/// Where a source file sits in the workspace, which decides rule
/// applicability.
#[derive(Debug, Clone, Copy)]
pub struct FileContext<'a> {
    /// Cargo package name (`"bios-electrochem"`, `"advanced-diagnostics"`, …).
    pub crate_name: &'a str,
    /// Repo-relative path with `/` separators (`"crates/core/src/exec.rs"`).
    pub rel_path: &'a str,
}

/// One `advdiag::allow(rule, reason)` site found in a file's comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSite {
    /// The rule ID named by the suppression (not necessarily valid).
    pub rule: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based character column of the comment.
    pub col: u32,
    /// True when a non-empty reason was given (mandatory to suppress).
    pub has_reason: bool,
    /// Set once the site suppresses at least one finding.
    pub used: bool,
}

/// The per-file lint result: surviving findings plus every suppression
/// site with its usage state (consumed by workspace-level rules and W0).
#[derive(Debug)]
pub struct FileLint {
    pub findings: Vec<Finding>,
    pub allows: Vec<AllowSite>,
}

/// Crates whose outputs must be bit-reproducible (D1, D3).
pub(crate) const DETERMINISTIC_CRATES: &[&str] = &[
    "bios-platform",
    "bios-electrochem",
    "bios-afe",
    "bios-instrument",
];

/// Crates doing physics/chemistry math (F1, and the audience for U1).
const PHYSICS_CRATES: &[&str] = &["bios-units", "bios-electrochem", "bios-biochem", "bios-afe"];

/// Crates whose public APIs model dimensioned quantities (U1).
const UNIT_API_CRATES: &[&str] = &[
    "bios-electrochem",
    "bios-biochem",
    "bios-afe",
    "bios-instrument",
    "bios-platform",
];

/// The bench/repro harness: P1/D2/U1/U2/D3 do not apply (it is test
/// infrastructure in a package suit), S1/F1 still do.
pub(crate) const BENCH_CRATE: &str = "bios-bench";

/// The linter itself: exempt from the semantic rules (it has no unit or
/// parallel-engine surface and must stay self-hostable).
pub(crate) const LINT_CRATE: &str = "bios-lint";

/// The one module allowed to touch `std::thread` (the deterministic
/// parallel engine itself).
const D2_EXEMPT_FILE: &str = "crates/core/src/exec.rs";

/// Parameter-name suffixes that imply a physical dimension (U1). Each maps
/// to the `bios-units` newtype that should be used instead.
const DIMENSIONED_SUFFIXES: &[(&str, &str)] = &[
    ("_volts", "Volts"),
    ("_amps", "Amps"),
    ("_seconds", "Seconds"),
    ("_secs", "Seconds"),
    ("_ohms", "Ohms"),
    ("_farads", "Farads"),
    ("_hz", "Hertz"),
    ("_molar", "Molar"),
    ("_kelvin", "Kelvin"),
    ("_cm", "Centimeters"),
];

/// All shipped rule IDs, in catalogue order.
pub const RULE_IDS: &[&str] = &[
    "D1", "D2", "P1", "U1", "S1", "F1", "U2", "A1", "A2", "D3", "W0",
];

/// Rules resolved at workspace scope, not per file: their allows cannot
/// be judged stale by a single-file lint.
const WORKSPACE_RULES: &[&str] = &["A1", "A2"];

/// Lints one source file through every per-file rule (token + semantic),
/// applies inline suppressions, and returns the surviving findings plus
/// all suppression sites. W0 is *not* computed here — workspace-level
/// rules (A1/A2) may still consume an allow; call
/// [`unused_allow_findings`] once every consumer has run.
pub fn lint_file(ctx: &FileContext<'_>, source: &str) -> FileLint {
    let lexed = lex(source);
    let items = crate::parser::parse_items(&lexed);
    let lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    rule_d1(ctx, &lexed, &mut findings);
    rule_d2(ctx, &lexed, &mut findings);
    rule_p1(ctx, &lexed, &mut findings);
    rule_u1(ctx, &lexed, &mut findings);
    rule_s1(ctx, &lexed, &mut findings);
    rule_f1(ctx, &lexed, &mut findings);
    crate::dimension::rule_u2(ctx, &items, &mut findings);
    crate::dataflow::rule_d3(ctx, &items, &mut findings);
    for f in &mut findings {
        f.excerpt = excerpt_for(&lines, f.line);
    }
    let mut allows = collect_allows(&lexed.comments);
    findings.retain(|f| !suppress(f, &mut allows));
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    FileLint { findings, allows }
}

/// Single-file convenience: [`lint_file`] plus W0 for stale allows.
/// Workspace-scoped rules (A1/A2) never run in this mode, so their
/// allows are exempt from W0 here.
pub fn lint_source(ctx: &FileContext<'_>, source: &str) -> Vec<Finding> {
    let mut fl = lint_file(ctx, source);
    let lines: Vec<&str> = source.lines().collect();
    let mut w0 = unused_allow_findings(ctx, &mut fl.allows, WORKSPACE_RULES);
    for f in &mut w0 {
        f.excerpt = excerpt_for(&lines, f.line);
    }
    fl.findings.extend(w0);
    fl.findings
        .sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    fl.findings
}

/// W0: every well-formed allow (valid shape, non-empty reason) that
/// suppressed nothing is itself a finding — stale suppressions are how
/// grandfathered exceptions outlive their justification. Allows naming a
/// rule in `exempt` are skipped (their consumer did not run). A W0
/// finding is suppressible one level deep by `advdiag::allow(W0, …)`.
/// Excerpts are left empty; the caller fills them.
pub fn unused_allow_findings(
    ctx: &FileContext<'_>,
    allows: &mut [AllowSite],
    exempt: &[&str],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for a in allows.iter() {
        if a.used || !a.has_reason || exempt.contains(&a.rule.as_str()) {
            continue;
        }
        let message = if RULE_IDS.contains(&a.rule.as_str()) {
            format!(
                "`advdiag::allow({}, …)` no longer suppresses anything: the \
                 finding it grandfathered is gone, so remove the allow",
                a.rule
            )
        } else {
            format!(
                "`advdiag::allow({}, …)` names no known rule (valid IDs: {}): \
                 it can never suppress anything",
                a.rule,
                RULE_IDS.join(", ")
            )
        };
        out.push(Finding {
            rule: "W0",
            file: ctx.rel_path.to_string(),
            line: a.line,
            col: a.col,
            severity: Severity::Error,
            message,
            excerpt: String::new(),
        });
    }
    // One level of self-suppression: allow(W0, reason) covers these.
    out.retain(|f| !suppress(f, allows));
    out
}

/// The trimmed source line for a 1-based line number, capped so baselines
/// stay readable.
pub(crate) fn excerpt_for(lines: &[&str], line: u32) -> String {
    let text = lines
        .get(line.saturating_sub(1) as usize)
        .map(|l| l.trim())
        .unwrap_or_default();
    text.chars().take(160).collect()
}

/// True for strings shaped like a rule ID (uppercase letters then
/// digits: `D1`, `A2`, `Z9`). Prose placeholders in documentation —
/// `allow(rule, reason)`, `allow(ID, …)` — do not qualify, so writing
/// about the suppression syntax never creates an allow site.
fn is_rule_shaped(s: &str) -> bool {
    let letters = s.chars().take_while(|c| c.is_ascii_uppercase()).count();
    letters > 0
        && s.chars().skip(letters).count() > 0
        && s.chars().skip(letters).all(|c| c.is_ascii_digit())
}

/// Extracts every `advdiag::allow(rule, reason?)` site from a file's
/// comments. Malformed occurrences (no closing paren, or a first
/// argument that is not shaped like a rule ID) are dropped.
pub fn collect_allows(comments: &[Comment]) -> Vec<AllowSite> {
    let mut sites = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("advdiag::allow(") {
            let args_start = pos + "advdiag::allow(".len();
            let tail = &rest[args_start..];
            let Some(close) = tail.find(')') else {
                break;
            };
            let args = &tail[..close];
            let (rule, reason) = match args.split_once(',') {
                Some((id, reason)) => (id.trim(), reason.trim()),
                None => (args.trim(), ""),
            };
            if is_rule_shaped(rule) {
                sites.push(AllowSite {
                    rule: rule.to_string(),
                    line: c.line,
                    col: c.col,
                    has_reason: !reason.is_empty(),
                    used: false,
                });
            }
            rest = &tail[close + 1..];
        }
    }
    sites
}

/// True when a well-formed allow on the finding's line or the line above
/// names its rule; every matching site is marked used. A missing reason
/// does not suppress.
pub fn suppress(f: &Finding, allows: &mut [AllowSite]) -> bool {
    let mut hit = false;
    for a in allows.iter_mut() {
        if a.has_reason && a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
            a.used = true;
            hit = true;
        }
    }
    hit
}

pub(crate) fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    ctx: &FileContext<'_>,
    line: u32,
    col: u32,
    message: String,
) {
    findings.push(Finding {
        rule,
        file: ctx.rel_path.to_string(),
        line,
        col,
        severity: Severity::Error,
        message,
        excerpt: String::new(),
    });
}

/// D1: `HashMap`/`HashSet` in deterministic crates.
fn rule_d1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for t in non_test_idents(lexed) {
        if t.text == "HashMap" || t.text == "HashSet" {
            push(
                findings,
                "D1",
                ctx,
                t.line,
                t.col,
                format!(
                    "`{}` in deterministic crate `{}`: iteration order is \
                     randomized per process and can leak into outputs; use \
                     `BTreeMap`/`BTreeSet`",
                    t.text, ctx.crate_name
                ),
            );
        }
    }
}

/// D2: wall-clock / ad-hoc threading outside the execution engine.
fn rule_d2(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if ctx.crate_name == BENCH_CRATE || ctx.rel_path == D2_EXEMPT_FILE {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            push(
                findings,
                "D2",
                ctx,
                t.line,
                t.col,
                format!(
                    "`{}` outside `bios-platform::exec`: wall-clock reads make \
                     runs irreproducible; derive timing from protocol state",
                    t.text
                ),
            );
        }
        if t.text == "spawn" && i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "thread" {
            push(
                findings,
                "D2",
                ctx,
                t.line,
                t.col,
                "`thread::spawn` outside `bios-platform::exec`: ad-hoc threads \
                 bypass the deterministic merge-by-index engine; use `par_map`"
                    .to_string(),
            );
        }
    }
}

/// P1: panicking calls in non-test library code.
fn rule_p1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if ctx.crate_name == BENCH_CRATE {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        let is_method = |name: &str| {
            t.text == name
                && i >= 1
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
        };
        if is_method("unwrap") || is_method("expect") {
            push(
                findings,
                "P1",
                ctx,
                t.line,
                t.col,
                format!(
                    "`.{}()` in library code: a surprising input becomes a \
                     process abort; return a typed error instead",
                    t.text
                ),
            );
        }
        if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("!")
        {
            push(
                findings,
                "P1",
                ctx,
                t.line,
                t.col,
                format!(
                    "`{}!` in library code: return a typed error instead of \
                     aborting the process",
                    t.text
                ),
            );
        }
    }
}

/// U1: raw `f64` parameters with dimension-implying names in `pub fn`
/// signatures.
fn rule_u1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !UNIT_API_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        // Only plain `pub fn` — `pub(crate)` and private fns are not API.
        if toks[i].text == "pub"
            && !toks[i].in_test
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("fn")
        {
            // Scan the signature: from the opening `(` to its match.
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "(" {
                j += 1;
            }
            let mut depth = 0i64;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ":" if toks.get(j + 1).map(|t| t.text.as_str()) == Some("f64")
                        && toks[j - 1].kind == TokenKind::Ident =>
                    {
                        let name = &toks[j - 1];
                        if let Some((_, newtype)) = DIMENSIONED_SUFFIXES
                            .iter()
                            .find(|(suffix, _)| name.text.ends_with(suffix))
                        {
                            push(
                                findings,
                                "U1",
                                ctx,
                                name.line,
                                name.col,
                                format!(
                                    "public parameter `{}: f64` implies a \
                                     dimension; take `bios_units::{}` so the \
                                     type system carries the unit",
                                    name.text, newtype
                                ),
                            );
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
}

/// S1: `unsafe` without an adjacent `// SAFETY:` comment. Applies to test
/// code too.
fn rule_s1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        let documented = lexed
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.line <= t.line && t.line - c.line <= 3);
        if !documented {
            push(
                findings,
                "S1",
                ctx,
                t.line,
                t.col,
                "`unsafe` without a `// SAFETY:` comment within the three \
                 preceding lines: document the invariant that makes it sound"
                    .to_string(),
            );
        }
    }
}

/// F1: `==` / `!=` against a floating-point literal in physics crates.
fn rule_f1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !PHYSICS_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Op || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_adjacent = [i.checked_sub(1), Some(i + 1)]
            .into_iter()
            .flatten()
            .filter_map(|k| toks.get(k))
            .any(|n| n.kind == TokenKind::FloatLit);
        if float_adjacent {
            push(
                findings,
                "F1",
                ctx,
                t.line,
                t.col,
                format!(
                    "`{}` against a float literal: exact float comparison is \
                     representation-sensitive; compare against a tolerance or \
                     suppress with a reason if an exact sentinel is intended",
                    t.text
                ),
            );
        }
    }
}

/// Iterator over non-test identifier tokens.
fn non_test_idents(lexed: &Lexed) -> impl Iterator<Item = &Token> {
    lexed
        .tokens
        .iter()
        .filter(|t| !t.in_test && t.kind == TokenKind::Ident)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_det() -> FileContext<'static> {
        FileContext {
            crate_name: "bios-electrochem",
            rel_path: "crates/electrochem/src/x.rs",
        }
    }

    #[test]
    fn d1_fires_and_suppression_works() {
        let hit = lint_source(&ctx_det(), "use std::collections::HashMap;\n");
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, "D1");
        assert_eq!(hit[0].severity, Severity::Error);
        let ok = lint_source(
            &ctx_det(),
            "// advdiag::allow(D1, lookup-only cache, order never observed)\nuse std::collections::HashMap;\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn suppression_requires_reason_and_matching_rule() {
        let no_reason = lint_source(
            &ctx_det(),
            "// advdiag::allow(D1)\nuse std::collections::HashMap;\n",
        );
        assert_eq!(no_reason.len(), 1, "reason is mandatory");
        assert_eq!(no_reason[0].rule, "D1");
        // A mismatched allow leaves the finding *and* is itself stale (W0).
        let wrong_rule = lint_source(
            &ctx_det(),
            "// advdiag::allow(P1, not the right rule)\nuse std::collections::HashMap;\n",
        );
        let rules: Vec<_> = wrong_rule.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["W0", "D1"]);
    }

    #[test]
    fn w0_reports_stale_and_unknown_allows() {
        // The D1 allow suppresses nothing: there is no HashMap here.
        let stale = lint_source(
            &ctx_det(),
            "// advdiag::allow(D1, gone since PR9)\nfn f() {}\n",
        );
        assert_eq!(stale.len(), 1);
        assert_eq!((stale[0].rule, stale[0].line), ("W0", 1));
        // Unknown rule IDs are called out specifically.
        let unknown = lint_source(&ctx_det(), "// advdiag::allow(Z9, typo)\nfn f() {}\n");
        assert_eq!(unknown.len(), 1);
        assert!(unknown[0].message.contains("no known rule"));
        // W0 itself is suppressible one level deep.
        let hushed = lint_source(
            &ctx_det(),
            "// advdiag::allow(W0, keeping for the next PR) advdiag::allow(D1, gone)\nfn f() {}\n",
        );
        assert!(hushed.is_empty(), "{hushed:?}");
        // Workspace-scoped rules (A1/A2) are exempt in single-file mode.
        let ws = lint_source(
            &ctx_det(),
            "// advdiag::allow(A1, layering reviewed)\nfn f() {}\n",
        );
        assert!(ws.is_empty(), "{ws:?}");
    }

    #[test]
    fn findings_carry_char_columns() {
        let hit = lint_source(&ctx_det(), "fn f() { let µ = x.unwrap(); }\n");
        assert_eq!(hit.len(), 1);
        // `unwrap` starts at char column 20 (byte column would be 21).
        assert_eq!((hit[0].rule, hit[0].line, hit[0].col), ("P1", 1, 20));
    }

    #[test]
    fn p1_skips_tests_and_comments() {
        let src = "fn f() { x.unwrap(); }\n// x.unwrap() in a comment\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        let findings = lint_source(&ctx_det(), src);
        assert_eq!(findings.len(), 1);
        assert_eq!((findings[0].rule, findings[0].line), ("P1", 1));
    }

    #[test]
    fn u1_flags_dimensioned_f64_params_in_pub_fns_only() {
        let src = "pub fn set(bias_volts: f64) {}\nfn private(bias_volts: f64) {}\npub fn typed(bias: Volts) {}\n";
        let findings = lint_source(&ctx_det(), src);
        assert_eq!(findings.len(), 1);
        assert_eq!((findings[0].rule, findings[0].line), ("U1", 1));
    }

    #[test]
    fn s1_requires_safety_comment() {
        let bad = lint_source(&ctx_det(), "fn f() { unsafe { work() } }\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "S1");
        let good = lint_source(
            &ctx_det(),
            "// SAFETY: buffer outlives the call\nfn f() { unsafe { work() } }\n",
        );
        assert!(good.is_empty());
    }

    #[test]
    fn f1_flags_float_literal_comparisons() {
        let findings = lint_source(&ctx_det(), "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "F1");
        // Integer comparisons are fine.
        assert!(lint_source(&ctx_det(), "fn f(x: i64) -> bool { x == 0 }\n").is_empty());
    }

    #[test]
    fn d2_exempts_exec_and_bench() {
        let src = "fn f() { let t = std::thread::spawn(|| 1); }\n";
        assert_eq!(lint_source(&ctx_det(), src).len(), 1);
        let exec = FileContext {
            crate_name: "bios-platform",
            rel_path: "crates/core/src/exec.rs",
        };
        assert!(lint_source(&exec, src).is_empty());
        let bench = FileContext {
            crate_name: "bios-bench",
            rel_path: "crates/bench/src/x.rs",
        };
        assert!(lint_source(&bench, src).is_empty());
    }
}
