//! The rule catalogue and the token-pattern engine that evaluates it.
//!
//! Every rule has a stable ID (used in diagnostics, suppressions and the
//! baseline) and a crate-level applicability policy mirroring the
//! workspace's invariants:
//!
//! | ID | invariant | applies to |
//! |----|-----------|------------|
//! | D1 | no `HashMap`/`HashSet` (iteration order) | deterministic crates |
//! | D2 | no `Instant`/`SystemTime`/`thread::spawn` | all but `bios-platform::exec` + bench harness |
//! | P1 | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` | all library code but the bench harness |
//! | U1 | no raw `f64` params with dimensioned names in `pub fn` | physics-facing crates |
//! | S1 | every `unsafe` needs a `// SAFETY:` comment | everywhere |
//! | F1 | no `==`/`!=` against float literals | physics crates |
//!
//! All rules skip `#[cfg(test)]` / `#[test]` regions except S1 (an
//! undocumented `unsafe` block is a hazard wherever it lives). A finding
//! on line *n* is suppressed by `// advdiag::allow(ID, reason)` on line
//! *n* or *n − 1*; the reason is mandatory.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (`"D1"`, `"P1"`, …).
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Trimmed source line (baseline matching key; robust to line drift).
    pub excerpt: String,
}

/// Where a source file sits in the workspace, which decides rule
/// applicability.
#[derive(Debug, Clone, Copy)]
pub struct FileContext<'a> {
    /// Cargo package name (`"bios-electrochem"`, `"advanced-diagnostics"`, …).
    pub crate_name: &'a str,
    /// Repo-relative path with `/` separators (`"crates/core/src/exec.rs"`).
    pub rel_path: &'a str,
}

/// Crates whose outputs must be bit-reproducible (D1).
const DETERMINISTIC_CRATES: &[&str] = &[
    "bios-platform",
    "bios-electrochem",
    "bios-afe",
    "bios-instrument",
];

/// Crates doing physics/chemistry math (F1, and the audience for U1).
const PHYSICS_CRATES: &[&str] = &["bios-units", "bios-electrochem", "bios-biochem", "bios-afe"];

/// Crates whose public APIs model dimensioned quantities (U1).
const UNIT_API_CRATES: &[&str] = &[
    "bios-electrochem",
    "bios-biochem",
    "bios-afe",
    "bios-instrument",
    "bios-platform",
];

/// The bench/repro harness: P1/D2/U1 do not apply (it is test
/// infrastructure in a package suit), S1/F1 still do.
const BENCH_CRATE: &str = "bios-bench";

/// The one module allowed to touch `std::thread` (the deterministic
/// parallel engine itself).
const D2_EXEMPT_FILE: &str = "crates/core/src/exec.rs";

/// Parameter-name suffixes that imply a physical dimension (U1). Each maps
/// to the `bios-units` newtype that should be used instead.
const DIMENSIONED_SUFFIXES: &[(&str, &str)] = &[
    ("_volts", "Volts"),
    ("_amps", "Amps"),
    ("_seconds", "Seconds"),
    ("_secs", "Seconds"),
    ("_ohms", "Ohms"),
    ("_farads", "Farads"),
    ("_hz", "Hertz"),
    ("_molar", "Molar"),
    ("_kelvin", "Kelvin"),
    ("_cm", "Centimeters"),
];

/// All shipped rule IDs, in catalogue order.
pub const RULE_IDS: &[&str] = &["D1", "D2", "P1", "U1", "S1", "F1"];

/// Lints one source file: lexes it, runs every applicable rule, then
/// drops findings covered by an inline `advdiag::allow`.
pub fn lint_source(ctx: &FileContext<'_>, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    rule_d1(ctx, &lexed, &mut findings);
    rule_d2(ctx, &lexed, &mut findings);
    rule_p1(ctx, &lexed, &mut findings);
    rule_u1(ctx, &lexed, &mut findings);
    rule_s1(ctx, &lexed, &mut findings);
    rule_f1(ctx, &lexed, &mut findings);
    for f in &mut findings {
        f.excerpt = excerpt_for(&lines, f.line);
    }
    findings.retain(|f| !is_suppressed(f, &lexed.comments));
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// The trimmed source line for a 1-based line number, capped so baselines
/// stay readable.
fn excerpt_for(lines: &[&str], line: u32) -> String {
    let text = lines
        .get(line.saturating_sub(1) as usize)
        .map(|l| l.trim())
        .unwrap_or_default();
    text.chars().take(160).collect()
}

/// True if a well-formed `advdiag::allow(rule, reason)` comment sits on
/// the finding's line or the line above. A missing reason does not count.
fn is_suppressed(f: &Finding, comments: &[Comment]) -> bool {
    comments
        .iter()
        .filter(|c| c.line == f.line || c.line + 1 == f.line)
        .any(|c| allow_covers(&c.text, f.rule))
}

/// Parses every `advdiag::allow(…)` in one comment; true if any names
/// `rule` and carries a non-empty reason.
fn allow_covers(comment: &str, rule: &str) -> bool {
    let mut rest = comment;
    while let Some(pos) = rest.find("advdiag::allow(") {
        let args_start = pos + "advdiag::allow(".len();
        let tail = &rest[args_start..];
        if let Some(close) = tail.find(')') {
            let args = &tail[..close];
            if let Some((id, reason)) = args.split_once(',') {
                if id.trim() == rule && !reason.trim().is_empty() {
                    return true;
                }
            }
            rest = &tail[close + 1..];
        } else {
            break;
        }
    }
    false
}

fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    ctx: &FileContext<'_>,
    line: u32,
    message: String,
) {
    findings.push(Finding {
        rule,
        file: ctx.rel_path.to_string(),
        line,
        message,
        excerpt: String::new(),
    });
}

/// D1: `HashMap`/`HashSet` in deterministic crates.
fn rule_d1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for t in non_test_idents(lexed) {
        if t.text == "HashMap" || t.text == "HashSet" {
            push(
                findings,
                "D1",
                ctx,
                t.line,
                format!(
                    "`{}` in deterministic crate `{}`: iteration order is \
                     randomized per process and can leak into outputs; use \
                     `BTreeMap`/`BTreeSet`",
                    t.text, ctx.crate_name
                ),
            );
        }
    }
}

/// D2: wall-clock / ad-hoc threading outside the execution engine.
fn rule_d2(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if ctx.crate_name == BENCH_CRATE || ctx.rel_path == D2_EXEMPT_FILE {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            push(
                findings,
                "D2",
                ctx,
                t.line,
                format!(
                    "`{}` outside `bios-platform::exec`: wall-clock reads make \
                     runs irreproducible; derive timing from protocol state",
                    t.text
                ),
            );
        }
        if t.text == "spawn" && i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "thread" {
            push(
                findings,
                "D2",
                ctx,
                t.line,
                "`thread::spawn` outside `bios-platform::exec`: ad-hoc threads \
                 bypass the deterministic merge-by-index engine; use `par_map`"
                    .to_string(),
            );
        }
    }
}

/// P1: panicking calls in non-test library code.
fn rule_p1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if ctx.crate_name == BENCH_CRATE {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        let is_method = |name: &str| {
            t.text == name
                && i >= 1
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
        };
        if is_method("unwrap") || is_method("expect") {
            push(
                findings,
                "P1",
                ctx,
                t.line,
                format!(
                    "`.{}()` in library code: a surprising input becomes a \
                     process abort; return a typed error instead",
                    t.text
                ),
            );
        }
        if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("!")
        {
            push(
                findings,
                "P1",
                ctx,
                t.line,
                format!(
                    "`{}!` in library code: return a typed error instead of \
                     aborting the process",
                    t.text
                ),
            );
        }
    }
}

/// U1: raw `f64` parameters with dimension-implying names in `pub fn`
/// signatures.
fn rule_u1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !UNIT_API_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        // Only plain `pub fn` — `pub(crate)` and private fns are not API.
        if toks[i].text == "pub"
            && !toks[i].in_test
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("fn")
        {
            // Scan the signature: from the opening `(` to its match.
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "(" {
                j += 1;
            }
            let mut depth = 0i64;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ":" if toks.get(j + 1).map(|t| t.text.as_str()) == Some("f64")
                        && toks[j - 1].kind == TokenKind::Ident =>
                    {
                        let name = &toks[j - 1];
                        if let Some((_, newtype)) = DIMENSIONED_SUFFIXES
                            .iter()
                            .find(|(suffix, _)| name.text.ends_with(suffix))
                        {
                            push(
                                findings,
                                "U1",
                                ctx,
                                name.line,
                                format!(
                                    "public parameter `{}: f64` implies a \
                                     dimension; take `bios_units::{}` so the \
                                     type system carries the unit",
                                    name.text, newtype
                                ),
                            );
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
}

/// S1: `unsafe` without an adjacent `// SAFETY:` comment. Applies to test
/// code too.
fn rule_s1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        let documented = lexed
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.line <= t.line && t.line - c.line <= 3);
        if !documented {
            push(
                findings,
                "S1",
                ctx,
                t.line,
                "`unsafe` without a `// SAFETY:` comment within the three \
                 preceding lines: document the invariant that makes it sound"
                    .to_string(),
            );
        }
    }
}

/// F1: `==` / `!=` against a floating-point literal in physics crates.
fn rule_f1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !PHYSICS_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Op || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_adjacent = [i.checked_sub(1), Some(i + 1)]
            .into_iter()
            .flatten()
            .filter_map(|k| toks.get(k))
            .any(|n| n.kind == TokenKind::FloatLit);
        if float_adjacent {
            push(
                findings,
                "F1",
                ctx,
                t.line,
                format!(
                    "`{}` against a float literal: exact float comparison is \
                     representation-sensitive; compare against a tolerance or \
                     suppress with a reason if an exact sentinel is intended",
                    t.text
                ),
            );
        }
    }
}

/// Iterator over non-test identifier tokens.
fn non_test_idents(lexed: &Lexed) -> impl Iterator<Item = &Token> {
    lexed
        .tokens
        .iter()
        .filter(|t| !t.in_test && t.kind == TokenKind::Ident)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_det() -> FileContext<'static> {
        FileContext {
            crate_name: "bios-electrochem",
            rel_path: "crates/electrochem/src/x.rs",
        }
    }

    #[test]
    fn d1_fires_and_suppression_works() {
        let hit = lint_source(&ctx_det(), "use std::collections::HashMap;\n");
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, "D1");
        let ok = lint_source(
            &ctx_det(),
            "// advdiag::allow(D1, lookup-only cache, order never observed)\nuse std::collections::HashMap;\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn suppression_requires_reason_and_matching_rule() {
        let no_reason = lint_source(
            &ctx_det(),
            "// advdiag::allow(D1)\nuse std::collections::HashMap;\n",
        );
        assert_eq!(no_reason.len(), 1, "reason is mandatory");
        let wrong_rule = lint_source(
            &ctx_det(),
            "// advdiag::allow(P1, not the right rule)\nuse std::collections::HashMap;\n",
        );
        assert_eq!(wrong_rule.len(), 1);
    }

    #[test]
    fn p1_skips_tests_and_comments() {
        let src = "fn f() { x.unwrap(); }\n// x.unwrap() in a comment\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        let findings = lint_source(&ctx_det(), src);
        assert_eq!(findings.len(), 1);
        assert_eq!((findings[0].rule, findings[0].line), ("P1", 1));
    }

    #[test]
    fn u1_flags_dimensioned_f64_params_in_pub_fns_only() {
        let src = "pub fn set(bias_volts: f64) {}\nfn private(bias_volts: f64) {}\npub fn typed(bias: Volts) {}\n";
        let findings = lint_source(&ctx_det(), src);
        assert_eq!(findings.len(), 1);
        assert_eq!((findings[0].rule, findings[0].line), ("U1", 1));
    }

    #[test]
    fn s1_requires_safety_comment() {
        let bad = lint_source(&ctx_det(), "fn f() { unsafe { work() } }\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "S1");
        let good = lint_source(
            &ctx_det(),
            "// SAFETY: buffer outlives the call\nfn f() { unsafe { work() } }\n",
        );
        assert!(good.is_empty());
    }

    #[test]
    fn f1_flags_float_literal_comparisons() {
        let findings = lint_source(&ctx_det(), "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "F1");
        // Integer comparisons are fine.
        assert!(lint_source(&ctx_det(), "fn f(x: i64) -> bool { x == 0 }\n").is_empty());
    }

    #[test]
    fn d2_exempts_exec_and_bench() {
        let src = "fn f() { let t = std::thread::spawn(|| 1); }\n";
        assert_eq!(lint_source(&ctx_det(), src).len(), 1);
        let exec = FileContext {
            crate_name: "bios-platform",
            rel_path: "crates/core/src/exec.rs",
        };
        assert!(lint_source(&exec, src).is_empty());
        let bench = FileContext {
            crate_name: "bios-bench",
            rel_path: "crates/bench/src/x.rs",
        };
        assert!(lint_source(&bench, src).is_empty());
    }
}
