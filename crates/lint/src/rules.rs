//! The rule catalogue and the engine that evaluates it.
//!
//! Every rule has a stable ID (used in diagnostics, suppressions and the
//! baseline) and a crate-level applicability policy mirroring the
//! workspace's invariants:
//!
//! | ID | kind | invariant | applies to |
//! |----|------|-----------|------------|
//! | D1 | token | no `HashMap`/`HashSet` (iteration order) | deterministic crates |
//! | D2 | token | no `Instant`/`SystemTime`/`thread::spawn` | all but `bios-platform::exec` + bench harness |
//! | P1 | token | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` | all library code but the bench harness |
//! | U1 | token | no raw `f64` params with dimensioned names in `pub fn` | physics-facing crates |
//! | S1 | token | every `unsafe` needs a `// SAFETY:` comment | everywhere |
//! | F1 | token | no `==`/`!=` against float literals | physics crates |
//! | U2 | semantic | dimensional consistency of raw `f64` unit flows | unit-consuming crates |
//! | N1 | semantic | no division by a provably-zero-containing denominator | unit-consuming crates |
//! | N2 | semantic | no `exp()` of a provably-overflowing argument | unit-consuming crates |
//! | N3 | semantic | no subtraction of provably near-equal constants | unit-consuming crates |
//! | D3 | semantic | no order-sensitive reductions in `par_map` closures | deterministic crates |
//! | A1 | workspace | crate layering (units → physics → afe → instrument → core → server → model → bench) | whole workspace |
//! | A2 | workspace (warn) | no dead `pub` items unreferenced outside their crate | library crates |
//! | H1 | hot-path | no allocation (`Vec::new`/`vec!`/`format!`/`Box::new`/`to_vec`/`clone`/unreserved `push`) in hot code | all but bench/lint |
//! | H2 | hot-path | no iterator float reductions (`sum`/`product`/`fold`) in hot code | all but bench/lint |
//! | H3 | hot-path | no blocking/I-O call reachable from the shard stepping loop | all but bench/lint |
//! | H4 | hot-path | no pure-constructor recomputation inside a hot loop body | all but bench/lint |
//! | M1 | token | no wildcard `_ =>` arm in a `match` over a protocol enum (`SessionStep`/`StepEvent`/`SessionOutcome`/`ServerError`/`ServiceTier`) | everywhere |
//! | W0 | meta | no stale `advdiag::allow` suppressions | everywhere |
//!
//! Some rules attach a [`Fix`] to their findings (F1, U1, D1, W0); see
//! [`crate::fixer`] for the applicability taxonomy and the splicing
//! engine behind `--fix`.
//!
//! Token and semantic rules skip `#[cfg(test)]` / `#[test]` regions
//! except S1 (an undocumented `unsafe` block is a hazard wherever it
//! lives). A finding on line *n* is suppressed by
//! `// advdiag::allow(ID, reason)` on line *n* or *n − 1*; the reason is
//! mandatory. A well-formed allow that suppresses nothing is itself
//! reported (W0), so grandfathered suppressions cannot go stale silently.

use crate::fixer::{Fix, FixSafety};
use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// How severe a finding is. `Error` findings gate the exit code; fresh
/// `Warning` findings are reported but do not fail the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    /// Lower-case label used in reports (`"warning"` / `"error"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (`"D1"`, `"P1"`, …).
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based character (not byte) column; 0 when unknown.
    pub col: u32,
    /// 1-based character column one past the end of the flagged region
    /// on `line` (the annotation underline spans `col..end_col`); 0
    /// when unknown.
    pub end_col: u32,
    /// Error findings gate CI; warnings only report.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Trimmed source line (baseline matching key; robust to line drift).
    pub excerpt: String,
    /// Optional rewrite that repairs the finding (see [`crate::fixer`]).
    pub fix: Option<Fix>,
}

/// Where a source file sits in the workspace, which decides rule
/// applicability.
#[derive(Debug, Clone, Copy)]
pub struct FileContext<'a> {
    /// Cargo package name (`"bios-electrochem"`, `"advanced-diagnostics"`, …).
    pub crate_name: &'a str,
    /// Repo-relative path with `/` separators (`"crates/core/src/exec.rs"`).
    pub rel_path: &'a str,
}

/// One `advdiag::allow(rule, reason)` site found in a file's comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSite {
    /// The rule ID named by the suppression (not necessarily valid).
    pub rule: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based character column of the comment.
    pub col: u32,
    /// True when a non-empty reason was given (mandatory to suppress).
    pub has_reason: bool,
    /// Set once the site suppresses at least one finding.
    pub used: bool,
    /// Byte span to delete when the allow is stale: the whole comment if
    /// the comment holds nothing but this allow, else just the
    /// `advdiag::allow(…)` text.
    pub byte_start: usize,
    pub byte_end: usize,
}

/// The per-file lint result: surviving findings plus every suppression
/// site with its usage state (consumed by workspace-level rules and W0).
#[derive(Debug)]
pub struct FileLint {
    pub findings: Vec<Finding>,
    pub allows: Vec<AllowSite>,
}

/// Crates whose outputs must be bit-reproducible (D1, D3).
pub(crate) const DETERMINISTIC_CRATES: &[&str] = &[
    "bios-platform",
    "bios-electrochem",
    "bios-afe",
    "bios-instrument",
    "bios-explore",
];

/// Crates doing physics/chemistry math (F1, and the audience for U1).
const PHYSICS_CRATES: &[&str] = &["bios-units", "bios-electrochem", "bios-biochem", "bios-afe"];

/// Crates whose public APIs model dimensioned quantities (U1).
const UNIT_API_CRATES: &[&str] = &[
    "bios-electrochem",
    "bios-biochem",
    "bios-afe",
    "bios-instrument",
    "bios-platform",
];

/// The bench/repro harness: P1/D2/U1/U2/D3 do not apply (it is test
/// infrastructure in a package suit), S1/F1 still do.
pub(crate) const BENCH_CRATE: &str = "bios-bench";

/// The linter itself: exempt from the semantic rules (it has no unit or
/// parallel-engine surface and must stay self-hostable).
pub(crate) const LINT_CRATE: &str = "bios-lint";

/// The one module allowed to touch `std::thread` (the deterministic
/// parallel engine itself).
const D2_EXEMPT_FILE: &str = "crates/core/src/exec.rs";

/// Parameter-name suffixes that imply a physical dimension (U1). Each maps
/// to the `bios-units` newtype that should be used instead.
const DIMENSIONED_SUFFIXES: &[(&str, &str)] = &[
    ("_volts", "Volts"),
    ("_amps", "Amps"),
    ("_seconds", "Seconds"),
    ("_secs", "Seconds"),
    ("_ohms", "Ohms"),
    ("_farads", "Farads"),
    ("_hz", "Hertz"),
    ("_molar", "Molar"),
    ("_kelvin", "Kelvin"),
    ("_cm", "Centimeters"),
];

/// All shipped rule IDs, in catalogue order.
pub const RULE_IDS: &[&str] = &[
    "D1", "D2", "P1", "U1", "S1", "F1", "M1", "U2", "N1", "N2", "N3", "A1", "A2", "D3", "H1", "H2",
    "H3", "H4", "W0",
];

/// Rules resolved at workspace scope, not per file: their allows cannot
/// be judged stale by a single-file lint.
const WORKSPACE_RULES: &[&str] = &["A1", "A2"];

/// Lints one source file through every per-file rule (token + semantic),
/// applies inline suppressions, and returns the surviving findings plus
/// all suppression sites. W0 is *not* computed here — workspace-level
/// rules (A1/A2) may still consume an allow; call
/// [`unused_allow_findings`] once every consumer has run.
pub fn lint_file(ctx: &FileContext<'_>, source: &str) -> FileLint {
    let lexed = lex(source);
    let items = crate::parser::parse_items(&lexed);
    lint_file_prepared(ctx, source, &lexed, &items)
}

/// As [`lint_file`], but over an already-lexed and parsed file — the
/// workspace pipeline lexes/parses each file exactly once and shares the
/// AST with the crate-scope range analysis.
pub fn lint_file_prepared(
    ctx: &FileContext<'_>,
    source: &str,
    lexed: &Lexed,
    items: &[crate::ast::Item],
) -> FileLint {
    let lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    rule_d1(ctx, lexed, &mut findings);
    rule_d2(ctx, lexed, &mut findings);
    rule_p1(ctx, lexed, &mut findings);
    rule_u1(ctx, lexed, &mut findings);
    rule_s1(ctx, lexed, &mut findings);
    rule_f1(ctx, lexed, &mut findings);
    rule_m1(ctx, lexed, &mut findings);
    crate::dimension::rule_u2(ctx, items, &mut findings);
    crate::dataflow::rule_d3(ctx, items, &mut findings);
    for f in &mut findings {
        finish(&lines, f);
    }
    let mut allows = collect_allows(&lexed.comments);
    findings.retain(|f| !suppress(f, &mut allows));
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    FileLint { findings, allows }
}

/// Single-file convenience: [`lint_file`] plus the range analysis (the
/// file stands alone as its crate) plus the hot-path analysis (the file
/// stands alone as its workspace) plus W0 for stale allows.
/// Workspace-scoped rules (A1/A2) never run in this mode, so their
/// allows are exempt from W0 here.
pub fn lint_source(ctx: &FileContext<'_>, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let items = crate::parser::parse_items(&lexed);
    let mut fl = lint_file_prepared(ctx, source, &lexed, &items);
    let lines: Vec<&str> = source.lines().collect();
    let mut ranged = crate::range::analyze_crate(&[(*ctx, &items)]);
    let (hot, _overlay) = crate::hotpath::analyze_workspace(&[crate::hotpath::HotFile {
        ctx: *ctx,
        items: &items,
        source,
    }]);
    ranged.extend(hot);
    ranged.retain(|f| !suppress(f, &mut fl.allows));
    for f in &mut ranged {
        finish(&lines, f);
    }
    fl.findings.extend(ranged);
    let mut w0 = unused_allow_findings(ctx, &mut fl.allows, WORKSPACE_RULES);
    for f in &mut w0 {
        finish(&lines, f);
    }
    fl.findings.extend(w0);
    fl.findings
        .sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    fl.findings
}

/// W0: every well-formed allow (valid shape, non-empty reason) that
/// suppressed nothing is itself a finding — stale suppressions are how
/// grandfathered exceptions outlive their justification. Allows naming a
/// rule in `exempt` are skipped (their consumer did not run). A W0
/// finding is suppressible one level deep by `advdiag::allow(W0, …)`.
/// Excerpts are left empty; the caller fills them.
pub fn unused_allow_findings(
    ctx: &FileContext<'_>,
    allows: &mut [AllowSite],
    exempt: &[&str],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for a in allows.iter() {
        if a.used || !a.has_reason || exempt.contains(&a.rule.as_str()) {
            continue;
        }
        let message = if RULE_IDS.contains(&a.rule.as_str()) {
            format!(
                "`advdiag::allow({}, …)` no longer suppresses anything: the \
                 finding it grandfathered is gone, so remove the allow",
                a.rule
            )
        } else {
            format!(
                "`advdiag::allow({}, …)` names no known rule (valid IDs: {}): \
                 it can never suppress anything",
                a.rule,
                RULE_IDS.join(", ")
            )
        };
        out.push(Finding {
            rule: "W0",
            file: ctx.rel_path.to_string(),
            line: a.line,
            col: a.col,
            end_col: 0,
            severity: Severity::Error,
            message,
            excerpt: String::new(),
            // Deleting the stale allow is always sound: it suppresses
            // nothing, so removing it changes no diagnostics.
            fix: Some(Fix {
                start: a.byte_start,
                end: a.byte_end,
                replacement: String::new(),
                safety: FixSafety::MachineApplicable,
            }),
        });
    }
    // One level of self-suppression: allow(W0, reason) covers these.
    out.retain(|f| !suppress(f, allows));
    out
}

/// The trimmed source line for a 1-based line number, capped so baselines
/// stay readable.
pub(crate) fn excerpt_for(lines: &[&str], line: u32) -> String {
    let text = lines
        .get(line.saturating_sub(1) as usize)
        .map(|l| l.trim())
        .unwrap_or_default();
    text.chars().take(160).collect()
}

/// Fills the presentation fields a rule left blank: the excerpt, and —
/// when the rule did not compute a precise span — an `end_col` running
/// to the end of the flagged line, so annotation underlines always cover
/// the full excerpt.
pub(crate) fn finish(lines: &[&str], f: &mut Finding) {
    f.excerpt = excerpt_for(lines, f.line);
    if f.end_col <= f.col {
        let line_end = lines
            .get(f.line.saturating_sub(1) as usize)
            .map(|l| l.trim_end().chars().count() as u32 + 1)
            .unwrap_or(0);
        f.end_col = line_end.max(f.col + 1);
    }
}

/// True for strings shaped like a rule ID (uppercase letters then
/// digits: `D1`, `A2`, `Z9`). Prose placeholders in documentation —
/// `allow(rule, reason)`, `allow(ID, …)` — do not qualify, so writing
/// about the suppression syntax never creates an allow site.
fn is_rule_shaped(s: &str) -> bool {
    let letters = s.chars().take_while(|c| c.is_ascii_uppercase()).count();
    letters > 0
        && s.chars().skip(letters).count() > 0
        && s.chars().skip(letters).all(|c| c.is_ascii_digit())
}

/// Extracts every `advdiag::allow(rule, reason?)` site from a file's
/// comments. Malformed occurrences (no closing paren, or a first
/// argument that is not shaped like a rule ID) are dropped.
pub fn collect_allows(comments: &[Comment]) -> Vec<AllowSite> {
    let mut sites = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("advdiag::allow(") {
            let base = c.text.len() - rest.len();
            let args_start = pos + "advdiag::allow(".len();
            let tail = &rest[args_start..];
            let Some(close) = tail.find(')') else {
                break;
            };
            let args = &tail[..close];
            let (rule, reason) = match args.split_once(',') {
                Some((id, reason)) => (id.trim(), reason.trim()),
                None => (args.trim(), ""),
            };
            if is_rule_shaped(rule) {
                // Deletion span for W0: the whole comment when nothing
                // but comment markers and whitespace surrounds the allow
                // (the common `// advdiag::allow(…)` case), else just
                // the `advdiag::allow(…)` text.
                let rel_start = base + pos;
                let rel_end = base + args_start + close + 1;
                let marker_only = |s: &str| {
                    s.chars()
                        .all(|ch| matches!(ch, '/' | '*' | '!') || ch.is_whitespace())
                };
                let whole = marker_only(&c.text[..rel_start]) && marker_only(&c.text[rel_end..]);
                let (byte_start, byte_end) = if whole {
                    (c.offset, c.offset + c.text.len())
                } else {
                    (c.offset + rel_start, c.offset + rel_end)
                };
                sites.push(AllowSite {
                    rule: rule.to_string(),
                    line: c.line,
                    col: c.col,
                    has_reason: !reason.is_empty(),
                    used: false,
                    byte_start,
                    byte_end,
                });
            }
            rest = &tail[close + 1..];
        }
    }
    sites
}

/// True when a well-formed allow on the finding's line or the line above
/// names its rule; every matching site is marked used. A missing reason
/// does not suppress.
pub fn suppress(f: &Finding, allows: &mut [AllowSite]) -> bool {
    let mut hit = false;
    for a in allows.iter_mut() {
        if a.has_reason && a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
            a.used = true;
            hit = true;
        }
    }
    hit
}

pub(crate) fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    ctx: &FileContext<'_>,
    line: u32,
    col: u32,
    message: String,
) {
    findings.push(Finding {
        rule,
        file: ctx.rel_path.to_string(),
        line,
        col,
        end_col: 0,
        severity: Severity::Error,
        message,
        excerpt: String::new(),
        fix: None,
    });
}

/// Key/element types the D1 fix can prove `Ord` from the spelling alone.
const ORD_KEY_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "bool",
    "char", "String", "str", "Vec",
];

/// True when the `HashMap`/`HashSet` token at `i` can be renamed to its
/// `BTree` twin without a type-bound risk: either no inline generic args
/// follow (a `use` path, `HashMap::new()`, an inferred binding), or the
/// first generic argument spells a provably-`Ord` type.
fn d1_btree_safe(toks: &[Token], i: usize) -> bool {
    match toks.get(i + 1) {
        Some(next) if next.text == "<" => {}
        _ => return true,
    }
    let mut depth = 1i64;
    let mut j = i + 2;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return true;
                }
            }
            ">>" => {
                depth -= 2;
                if depth <= 0 {
                    return true;
                }
            }
            "," if depth == 1 => return true,
            _ => {
                if t.kind == TokenKind::Ident && !ORD_KEY_TYPES.contains(&t.text.as_str()) {
                    return false;
                }
            }
        }
        j += 1;
    }
    false
}

/// D1: `HashMap`/`HashSet` in deterministic crates. The fix renames the
/// token to `BTreeMap`/`BTreeSet`; it is machine-applicable only when
/// *every* occurrence in the file passes the `Ord` spelling proof —
/// renaming a `use` while leaving a usage site (or vice versa) would
/// split the type in two, so the file converts atomically or not at all.
fn rule_d1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    let hits: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !t.in_test && t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet")
        })
        .map(|(i, _)| i)
        .collect();
    let safety = if hits.iter().all(|&i| d1_btree_safe(toks, i)) {
        FixSafety::MachineApplicable
    } else {
        FixSafety::Suggested
    };
    for &i in &hits {
        let t = &toks[i];
        push(
            findings,
            "D1",
            ctx,
            t.line,
            t.col,
            format!(
                "`{}` in deterministic crate `{}`: iteration order is \
                 randomized per process and can leak into outputs; use \
                 `BTreeMap`/`BTreeSet`",
                t.text, ctx.crate_name
            ),
        );
        if let Some(f) = findings.last_mut() {
            let replacement = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            f.end_col = t.col + t.text.chars().count() as u32;
            f.fix = Some(Fix {
                start: t.offset,
                end: t.offset + t.text.len(),
                replacement: replacement.to_string(),
                safety,
            });
        }
    }
}

/// D2: wall-clock / ad-hoc threading outside the execution engine.
fn rule_d2(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if ctx.crate_name == BENCH_CRATE || ctx.rel_path == D2_EXEMPT_FILE {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            push(
                findings,
                "D2",
                ctx,
                t.line,
                t.col,
                format!(
                    "`{}` outside `bios-platform::exec`: wall-clock reads make \
                     runs irreproducible; derive timing from protocol state",
                    t.text
                ),
            );
        }
        if t.text == "spawn" && i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "thread" {
            push(
                findings,
                "D2",
                ctx,
                t.line,
                t.col,
                "`thread::spawn` outside `bios-platform::exec`: ad-hoc threads \
                 bypass the deterministic merge-by-index engine; use `par_map`"
                    .to_string(),
            );
        }
    }
}

/// P1: panicking calls in non-test library code.
fn rule_p1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if ctx.crate_name == BENCH_CRATE {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        let is_method = |name: &str| {
            t.text == name
                && i >= 1
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
        };
        if is_method("unwrap") || is_method("expect") {
            push(
                findings,
                "P1",
                ctx,
                t.line,
                t.col,
                format!(
                    "`.{}()` in library code: a surprising input becomes a \
                     process abort; return a typed error instead",
                    t.text
                ),
            );
        }
        if matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            && toks.get(i + 1).map(|n| n.text.as_str()) == Some("!")
        {
            push(
                findings,
                "P1",
                ctx,
                t.line,
                t.col,
                format!(
                    "`{}!` in library code: return a typed error instead of \
                     aborting the process",
                    t.text
                ),
            );
        }
    }
}

/// U1: raw `f64` parameters with dimension-implying names in `pub fn`
/// signatures.
fn rule_u1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !UNIT_API_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        // Only plain `pub fn` — `pub(crate)` and private fns are not API.
        if toks[i].text == "pub"
            && !toks[i].in_test
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("fn")
        {
            // Scan the signature: from the opening `(` to its match.
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "(" {
                j += 1;
            }
            let mut depth = 0i64;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ":" if toks.get(j + 1).map(|t| t.text.as_str()) == Some("f64")
                        && toks[j - 1].kind == TokenKind::Ident =>
                    {
                        let name = &toks[j - 1];
                        if let Some((_, newtype)) = DIMENSIONED_SUFFIXES
                            .iter()
                            .find(|(suffix, _)| name.text.ends_with(suffix))
                        {
                            push(
                                findings,
                                "U1",
                                ctx,
                                name.line,
                                name.col,
                                format!(
                                    "public parameter `{}: f64` implies a \
                                     dimension; take `bios_units::{}` so the \
                                     type system carries the unit",
                                    name.text, newtype
                                ),
                            );
                            if let Some(f) = findings.last_mut() {
                                // Suggested, never applied: swapping the
                                // parameter type is an API change every
                                // caller must follow.
                                let ty = &toks[j + 1];
                                f.end_col = name.col + name.text.chars().count() as u32;
                                f.fix = Some(Fix {
                                    start: ty.offset,
                                    end: ty.offset + ty.text.len(),
                                    replacement: format!("bios_units::{newtype}"),
                                    safety: FixSafety::Suggested,
                                });
                            }
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
}

/// S1: `unsafe` without an adjacent `// SAFETY:` comment. Applies to test
/// code too.
fn rule_s1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        let documented = lexed
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.line <= t.line && t.line - c.line <= 3);
        if !documented {
            push(
                findings,
                "S1",
                ctx,
                t.line,
                t.col,
                "`unsafe` without a `// SAFETY:` comment within the three \
                 preceding lines: document the invariant that makes it sound"
                    .to_string(),
            );
        }
    }
}

/// F1: `==` / `!=` against a floating-point literal in physics crates.
fn rule_f1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !PHYSICS_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Op || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_adjacent = [i.checked_sub(1), Some(i + 1)]
            .into_iter()
            .flatten()
            .filter_map(|k| toks.get(k))
            .any(|n| n.kind == TokenKind::FloatLit);
        if float_adjacent {
            push(
                findings,
                "F1",
                ctx,
                t.line,
                t.col,
                format!(
                    "`{}` against a float literal: exact float comparison is \
                     representation-sensitive; compare against a tolerance or \
                     suppress with a reason if an exact sentinel is intended",
                    t.text
                ),
            );
            if let (Some(f), Some((fix, end_col))) = (findings.last_mut(), f1_fix(toks, i)) {
                f.fix = Some(fix);
                if end_col > 0 {
                    f.end_col = end_col;
                }
            }
        }
    }
}

/// Tokens that may legally precede the left operand of a comparison the
/// F1 fix rewrites — they guarantee the operand token *is* the whole
/// operand (no dropped `a.` / `a::` / closing-paren prefix).
const F1_LEFT_BOUNDARY: &[&str] = &[
    ";", "(", "{", "}", ",", "[", "=", "&&", "||", "return", "if", "while", "=>",
];

/// Tokens that may legally follow the right operand (the comparison is
/// not a prefix of a larger expression the rewrite would mangle).
const F1_RIGHT_BOUNDARY: &[&str] = &[";", ")", "}", "]", ",", "&&", "||", "{"];

/// Machine-applicable rewrite of `lhs == lit` / `lhs != lit` into
/// `lhs.total_cmp(&lit).is_eq()` / `.is_ne()`, attempted only when both
/// operands are single ident/float-literal tokens bounded by tokens that
/// prove the comparison stands alone. Returns the fix and the 1-based
/// end column of the rewritten region (0 when it spans lines).
fn f1_fix(toks: &[Token], i: usize) -> Option<(Fix, u32)> {
    let lhs = toks.get(i.checked_sub(1)?)?;
    let rhs = toks.get(i + 1)?;
    let operand_ok =
        |t: &Token| matches!(t.kind, TokenKind::Ident | TokenKind::FloatLit) && !t.text.is_empty();
    if !operand_ok(lhs) || !operand_ok(rhs) {
        return None;
    }
    let left_ok = match i.checked_sub(2).and_then(|k| toks.get(k)) {
        Some(prev) => F1_LEFT_BOUNDARY.contains(&prev.text.as_str()),
        None => true,
    };
    let right_ok = match toks.get(i + 2) {
        Some(next) => F1_RIGHT_BOUNDARY.contains(&next.text.as_str()),
        None => true,
    };
    if !left_ok || !right_ok {
        return None;
    }
    let method = if toks[i].text == "==" {
        "is_eq"
    } else {
        "is_ne"
    };
    let end_col = if rhs.line == lhs.line {
        rhs.col + rhs.text.chars().count() as u32
    } else {
        0
    };
    Some((
        Fix {
            start: lhs.offset,
            end: rhs.offset + rhs.text.len(),
            replacement: format!("{}.total_cmp(&{}).{method}()", lhs.text, rhs.text),
            safety: FixSafety::MachineApplicable,
        },
        end_col,
    ))
}

/// The protocol enums whose `match`es must stay exhaustive (M1). A
/// wildcard arm over one of these silently absorbs every variant a
/// future PR adds — exactly how the shard loop's outcome handling
/// once swallowed a `SessionOutcome` case instead of failing the build.
const PROTOCOL_ENUMS: &[&str] = &[
    "SessionStep",
    "StepEvent",
    "SessionOutcome",
    "ServerError",
    "ServiceTier",
];

/// M1: wildcard `_ =>` arms in `match`es over protocol enums.
///
/// The rule is token-level but type-aware-ish: a lone `_` arm is
/// flagged only when a *sibling* arm's pattern in the same `match`
/// names one of [`PROTOCOL_ENUMS`], so `Ok(_) =>`, tuple wildcards
/// (`(_, x) =>`) and matches over unrelated types never fire. Guarded
/// wildcards (`_ if … =>`) are a deliberate catch-all and exempt.
/// Nested matches are judged each by their own arms: an inner `match`'s
/// patterns are not siblings of the outer one.
fn rule_m1(ctx: &FileContext<'_>, lexed: &Lexed, findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident || t.text != "match" {
            continue;
        }
        // The body `{` is the first brace outside parens/brackets: a
        // bare scrutinee cannot contain a struct literal, so any earlier
        // brace would have to sit inside `(…)` / `[…]`.
        let mut paren = 0i64;
        let mut bracket = 0i64;
        let mut j = i + 1;
        let body_open = loop {
            let Some(n) = toks.get(j) else { break None };
            match n.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" if paren == 0 && bracket == 0 => break Some(j),
                ";" | "}" if paren == 0 && bracket == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = body_open else { continue };
        // Walk the arms at brace depth 1, tracking whether we are in a
        // pattern region (arm start up to its `=>`) or an arm body
        // (after `=>` up to the separating `,` or the `}` of a braced
        // body). Collect protocol mentions from patterns and the sites
        // of lone-`_` arms; flag the latter only if the former exist.
        let mut brace = 1i64;
        paren = 0;
        bracket = 0;
        let mut in_pattern = true;
        let mut protocol = false;
        let mut wildcards: Vec<usize> = Vec::new();
        let mut k = open + 1;
        while let Some(n) = toks.get(k) {
            match n.text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                    if brace == 1 && paren == 0 && bracket == 0 {
                        in_pattern = true;
                    }
                }
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "," if brace == 1 && paren == 0 && bracket == 0 => {
                    in_pattern = true;
                }
                "=>" if brace == 1 && paren == 0 && bracket == 0 => {
                    in_pattern = false;
                    if toks
                        .get(k.wrapping_sub(1))
                        .is_some_and(|p| p.kind == TokenKind::Ident && p.text == "_")
                    {
                        wildcards.push(k - 1);
                    }
                }
                _ => {
                    if in_pattern
                        && brace == 1
                        && n.kind == TokenKind::Ident
                        && PROTOCOL_ENUMS.contains(&n.text.as_str())
                    {
                        protocol = true;
                    }
                }
            }
            k += 1;
        }
        if !protocol {
            continue;
        }
        for &w in &wildcards {
            let wt = &toks[w];
            push(
                findings,
                "M1",
                ctx,
                wt.line,
                wt.col,
                "wildcard `_ =>` arm in a `match` over a protocol enum: a \
                 variant added later is silently absorbed instead of failing \
                 the build; enumerate the remaining variants (use `_ if …` \
                 with a reason if a guarded catch-all is intended)"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_det() -> FileContext<'static> {
        FileContext {
            crate_name: "bios-electrochem",
            rel_path: "crates/electrochem/src/x.rs",
        }
    }

    #[test]
    fn d1_fires_and_suppression_works() {
        let hit = lint_source(&ctx_det(), "use std::collections::HashMap;\n");
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, "D1");
        assert_eq!(hit[0].severity, Severity::Error);
        let ok = lint_source(
            &ctx_det(),
            "// advdiag::allow(D1, lookup-only cache, order never observed)\nuse std::collections::HashMap;\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn suppression_requires_reason_and_matching_rule() {
        let no_reason = lint_source(
            &ctx_det(),
            "// advdiag::allow(D1)\nuse std::collections::HashMap;\n",
        );
        assert_eq!(no_reason.len(), 1, "reason is mandatory");
        assert_eq!(no_reason[0].rule, "D1");
        // A mismatched allow leaves the finding *and* is itself stale (W0).
        let wrong_rule = lint_source(
            &ctx_det(),
            "// advdiag::allow(P1, not the right rule)\nuse std::collections::HashMap;\n",
        );
        let rules: Vec<_> = wrong_rule.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["W0", "D1"]);
    }

    #[test]
    fn w0_reports_stale_and_unknown_allows() {
        // The D1 allow suppresses nothing: there is no HashMap here.
        let stale = lint_source(
            &ctx_det(),
            "// advdiag::allow(D1, gone since PR9)\nfn f() {}\n",
        );
        assert_eq!(stale.len(), 1);
        assert_eq!((stale[0].rule, stale[0].line), ("W0", 1));
        // Unknown rule IDs are called out specifically.
        let unknown = lint_source(&ctx_det(), "// advdiag::allow(Z9, typo)\nfn f() {}\n");
        assert_eq!(unknown.len(), 1);
        assert!(unknown[0].message.contains("no known rule"));
        // W0 itself is suppressible one level deep.
        let hushed = lint_source(
            &ctx_det(),
            "// advdiag::allow(W0, keeping for the next PR) advdiag::allow(D1, gone)\nfn f() {}\n",
        );
        assert!(hushed.is_empty(), "{hushed:?}");
        // Workspace-scoped rules (A1/A2) are exempt in single-file mode.
        let ws = lint_source(
            &ctx_det(),
            "// advdiag::allow(A1, layering reviewed)\nfn f() {}\n",
        );
        assert!(ws.is_empty(), "{ws:?}");
    }

    #[test]
    fn findings_carry_char_columns() {
        let hit = lint_source(&ctx_det(), "fn f() { let µ = x.unwrap(); }\n");
        assert_eq!(hit.len(), 1);
        // `unwrap` starts at char column 20 (byte column would be 21).
        assert_eq!((hit[0].rule, hit[0].line, hit[0].col), ("P1", 1, 20));
    }

    #[test]
    fn p1_skips_tests_and_comments() {
        let src = "fn f() { x.unwrap(); }\n// x.unwrap() in a comment\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        let findings = lint_source(&ctx_det(), src);
        assert_eq!(findings.len(), 1);
        assert_eq!((findings[0].rule, findings[0].line), ("P1", 1));
    }

    #[test]
    fn u1_flags_dimensioned_f64_params_in_pub_fns_only() {
        let src = "pub fn set(bias_volts: f64) {}\nfn private(bias_volts: f64) {}\npub fn typed(bias: Volts) {}\n";
        let findings = lint_source(&ctx_det(), src);
        assert_eq!(findings.len(), 1);
        assert_eq!((findings[0].rule, findings[0].line), ("U1", 1));
    }

    #[test]
    fn s1_requires_safety_comment() {
        let bad = lint_source(&ctx_det(), "fn f() { unsafe { work() } }\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "S1");
        let good = lint_source(
            &ctx_det(),
            "// SAFETY: buffer outlives the call\nfn f() { unsafe { work() } }\n",
        );
        assert!(good.is_empty());
    }

    #[test]
    fn f1_flags_float_literal_comparisons() {
        let findings = lint_source(&ctx_det(), "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "F1");
        // Integer comparisons are fine.
        assert!(lint_source(&ctx_det(), "fn f(x: i64) -> bool { x == 0 }\n").is_empty());
    }

    #[test]
    fn d2_exempts_exec_and_bench() {
        let src = "fn f() { let t = std::thread::spawn(|| 1); }\n";
        assert_eq!(lint_source(&ctx_det(), src).len(), 1);
        let exec = FileContext {
            crate_name: "bios-platform",
            rel_path: "crates/core/src/exec.rs",
        };
        assert!(lint_source(&exec, src).is_empty());
        let bench = FileContext {
            crate_name: "bios-bench",
            rel_path: "crates/bench/src/x.rs",
        };
        assert!(lint_source(&bench, src).is_empty());
    }

    fn ctx_server() -> FileContext<'static> {
        FileContext {
            crate_name: "bios-server",
            rel_path: "crates/server/src/x.rs",
        }
    }

    #[test]
    fn m1_flags_wildcard_arms_over_protocol_enums() {
        let src = "fn f(o: SessionOutcome) {\n    match o {\n        SessionOutcome::Quarantined(d) => handle(d),\n        _ => {}\n    }\n}\n";
        let findings = lint_source(&ctx_server(), src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(
            (findings[0].rule, findings[0].line, findings[0].severity),
            ("M1", 4, Severity::Error)
        );
        // Expression-bodied wildcard arms are caught too.
        let expr = "fn g(t: ServiceTier) -> u8 {\n    match t {\n        ServiceTier::Stat => 0,\n        _ => 9,\n    }\n}\n";
        let hits = lint_source(&ctx_server(), expr);
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].rule, hits[0].line), ("M1", 4));
    }

    #[test]
    fn m1_ignores_wildcards_over_unrelated_types_and_inner_patterns() {
        // No protocol enum among the sibling patterns: stay silent.
        let plain =
            "fn f(x: u8) -> u8 {\n    match x {\n        0 => 1,\n        _ => 0,\n    }\n}\n";
        assert!(lint_source(&ctx_server(), plain).is_empty());
        // `Ok(_)` / `(_, x)` wildcards are not wildcard *arms*.
        let inner = "fn g(r: Result<SessionOutcome, E>) {\n    match r {\n        Ok(SessionOutcome::Shed) => shed(),\n        Ok(_) => other(),\n        Err(e) => fail(e),\n    }\n}\n";
        assert!(lint_source(&ctx_server(), inner).is_empty());
        // A guarded wildcard is a deliberate catch-all.
        let guarded = "fn h(o: SessionOutcome) {\n    match o {\n        SessionOutcome::Shed => shed(),\n        _ if degraded() => log(),\n        SessionOutcome::Failed { .. } => fail(),\n    }\n}\n";
        assert!(lint_source(&ctx_server(), guarded).is_empty());
    }

    #[test]
    fn m1_judges_nested_matches_independently_and_skips_tests() {
        // Outer match is over a protocol enum; the inner one is not.
        // Only the outer wildcard arm may fire.
        let nested = "fn f(e: StepEvent, x: u8) {\n    match e {\n        StepEvent::SessionDone => match x {\n            0 => done(),\n            _ => retry(),\n        },\n        _ => {}\n    }\n}\n";
        let hits = lint_source(&ctx_server(), nested);
        assert_eq!(hits.len(), 1, "{hits:#?}");
        assert_eq!((hits[0].rule, hits[0].line), ("M1", 7));
        // Test modules are exempt, like every other token rule.
        let in_test = "#[cfg(test)]\nmod t {\n    fn f(o: SessionOutcome) {\n        match o {\n            SessionOutcome::Shed => {}\n            _ => {}\n        }\n    }\n}\n";
        assert!(lint_source(&ctx_server(), in_test).is_empty());
    }

    #[test]
    fn m1_suppression_works() {
        let src = "fn f(o: SessionOutcome) {\n    match o {\n        SessionOutcome::Shed => shed(),\n        // advdiag::allow(M1, exhaustiveness audited in PR9)\n        _ => {}\n    }\n}\n";
        assert!(lint_source(&ctx_server(), src).is_empty());
    }
}
