//! Incremental lint cache: per-file findings keyed on content hashes.
//!
//! A cold workspace lint lexes, parses and rule-checks every file; on a
//! large tree almost all of that work is identical run to run. The cache
//! persists, per file, everything the workspace pipeline needs from the
//! per-file phase — surviving findings (fixes included), suppression
//! sites with byte spans, and the dependency/vocabulary facts consumed
//! by the workspace rules — keyed on an FNV-1a hash of the file's exact
//! contents. A warm run re-lexes only files whose hash changed; clean
//! files replay their cached entry and the (cheap, pure) workspace phase
//! runs over the merged facts, so cold and warm runs share one code path
//! and produce byte-identical findings by construction.
//!
//! Interprocedural range analysis (N1–N3) is cached per *crate*, keyed
//! on a hash over the sorted `(rel_path, content_hash)` pairs of the
//! crate's lintable files: any edit anywhere in a crate invalidates that
//! crate's range findings (function summaries cross file boundaries, so
//! per-file invalidation would be unsound), but leaves other crates'
//! entries intact.
//!
//! The on-disk format is versioned and fingerprinted against the rule
//! catalogue; a version, fingerprint, or parse mismatch degrades to an
//! empty cache (everything dirty) — the cache can make a run faster,
//! never wrong. `u64` hashes are stored as hex strings because JSON
//! numbers are f64 and would silently lose the high bits.

use std::collections::BTreeMap;

use crate::baseline::{escape, Json};
use crate::depgraph::{FactEdge, FileFacts, PubItem};
use crate::fixer::{Fix, FixSafety};
use crate::rules::{AllowSite, Finding, Severity, RULE_IDS};

/// Bumped whenever the serialized shape changes incompatibly.
const CACHE_VERSION: u32 = 2;

/// FNV-1a over a byte string — the same dependency-free hash everywhere
/// the cache needs one (file contents, crate keys, the engine
/// fingerprint).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of the rule catalogue + format version. Adding, removing or
/// reordering rules changes what findings a file can produce, so any
/// such change must invalidate every cached entry.
pub fn engine_fingerprint() -> u64 {
    let mut s = format!("v{CACHE_VERSION}");
    for id in RULE_IDS {
        s.push(';');
        s.push_str(id);
    }
    fnv1a(s.as_bytes())
}

/// One file's cached per-file phase output.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Crate the file belongs to (package name).
    pub crate_name: String,
    /// True when token/semantic rules ran (false for corpus-only files
    /// such as docs, which contribute only word facts).
    pub lintable: bool,
    /// FNV-1a of the file's exact contents.
    pub hash: u64,
    /// Findings surviving per-file suppression, fully finished
    /// (excerpt + end_col filled), fixes included.
    pub findings: Vec<Finding>,
    /// Every suppression site with its per-file usage state; the
    /// workspace phase re-marks usage for workspace/range findings.
    pub allows: Vec<AllowSite>,
    /// Dependency and vocabulary facts for the workspace rules.
    pub facts: FileFacts,
}

/// One crate's cached interprocedural range findings.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeEntry {
    /// FNV-1a over the crate's sorted `(rel_path, content_hash)` pairs.
    pub key: u64,
    /// N1–N3 findings *before* suppression (suppression state is
    /// per-run), finished.
    pub findings: Vec<Finding>,
}

/// The cached hot-path analysis (H1–H4). The call graph crosses *crate*
/// boundaries (`step_wave` in core reaches kernels in electrochem), so
/// the key covers every lintable file in the workspace: any edit
/// anywhere re-runs the analysis — the whole-workspace analogue of the
/// range analysis' crate grain, for the same soundness reason.
#[derive(Debug, Clone, PartialEq)]
pub struct HotEntry {
    /// [`crate_key`] over ALL lintable files' `(rel_path, hash)` pairs.
    pub key: u64,
    /// H1–H4 findings *before* suppression, finished.
    pub findings: Vec<Finding>,
    /// Hot-region overlay for `--emit-dot`: resolved roots, sorted.
    pub roots: Vec<String>,
    /// The full hot set, sorted.
    pub hot: Vec<String>,
}

/// The whole cache: per-file entries keyed by rel-path, per-crate range
/// entries keyed by crate name, plus the workspace-grained hot entry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintCache {
    pub files: BTreeMap<String, CacheEntry>,
    pub ranges: BTreeMap<String, RangeEntry>,
    pub hot: Option<HotEntry>,
}

impl LintCache {
    /// Parses a serialized cache. Any malformation — bad JSON, missing
    /// field, unknown rule, version or fingerprint mismatch — yields an
    /// empty cache rather than an error: stale caches degrade to a cold
    /// run, never to wrong findings.
    pub fn parse(text: &str) -> LintCache {
        parse_cache(text).unwrap_or_default()
    }

    /// Serializes the cache; `parse` of the result round-trips exactly.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"version\": ");
        out.push_str(&CACHE_VERSION.to_string());
        out.push_str(",\n  \"fingerprint\": ");
        out.push_str(&escape(&hex(engine_fingerprint())));
        out.push_str(",\n  \"files\": [");
        let mut first = true;
        for (rel_path, e) in &self.files {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {\"rel_path\": ");
            out.push_str(&escape(rel_path));
            out.push_str(", \"crate\": ");
            out.push_str(&escape(&e.crate_name));
            out.push_str(", \"lintable\": ");
            out.push_str(if e.lintable { "true" } else { "false" });
            out.push_str(", \"hash\": ");
            out.push_str(&escape(&hex(e.hash)));
            out.push_str(", \"findings\": ");
            findings_json(&mut out, &e.findings);
            out.push_str(", \"allows\": ");
            allows_json(&mut out, &e.allows);
            out.push_str(", \"facts\": ");
            facts_json(&mut out, &e.facts);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"ranges\": [");
        let mut first = true;
        for (krate, r) in &self.ranges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {\"crate\": ");
            out.push_str(&escape(krate));
            out.push_str(", \"key\": ");
            out.push_str(&escape(&hex(r.key)));
            out.push_str(", \"findings\": ");
            findings_json(&mut out, &r.findings);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"hot\": ");
        match &self.hot {
            None => out.push_str("null"),
            Some(h) => {
                out.push_str("{\"key\": ");
                out.push_str(&escape(&hex(h.key)));
                out.push_str(", \"findings\": ");
                findings_json(&mut out, &h.findings);
                out.push_str(", \"roots\": [");
                for (i, r) in h.roots.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(r));
                }
                out.push_str("], \"hot\": [");
                for (i, n) in h.hot.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(n));
                }
                out.push_str("]}");
            }
        }
        out.push_str("\n}\n");
        out
    }
}

fn hex(h: u64) -> String {
    format!("{h:016x}")
}

fn findings_json(out: &mut String, findings: &[Finding]) {
    out.push('[');
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\": ");
        out.push_str(&escape(f.rule));
        out.push_str(", \"file\": ");
        out.push_str(&escape(&f.file));
        out.push_str(&format!(
            ", \"line\": {}, \"col\": {}, \"end_col\": {}, \"severity\": ",
            f.line, f.col, f.end_col
        ));
        out.push_str(&escape(f.severity.label()));
        out.push_str(", \"message\": ");
        out.push_str(&escape(&f.message));
        out.push_str(", \"excerpt\": ");
        out.push_str(&escape(&f.excerpt));
        out.push_str(", \"fix\": ");
        match &f.fix {
            None => out.push_str("null"),
            Some(fix) => {
                out.push_str(&format!(
                    "{{\"start\": {}, \"end\": {}, \"replacement\": ",
                    fix.start, fix.end
                ));
                out.push_str(&escape(&fix.replacement));
                out.push_str(", \"safety\": ");
                out.push_str(&escape(fix.safety.label()));
                out.push('}');
            }
        }
        out.push('}');
    }
    out.push(']');
}

fn allows_json(out: &mut String, allows: &[AllowSite]) {
    out.push('[');
    for (i, a) in allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\": ");
        out.push_str(&escape(&a.rule));
        out.push_str(&format!(
            ", \"line\": {}, \"col\": {}, \"has_reason\": {}, \"used\": {}, \
             \"byte_start\": {}, \"byte_end\": {}}}",
            a.line, a.col, a.has_reason, a.used, a.byte_start, a.byte_end
        ));
    }
    out.push(']');
}

fn facts_json(out: &mut String, facts: &FileFacts) {
    out.push_str("{\"words\": [");
    for (i, w) in facts.words.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(w));
    }
    out.push_str("], \"edges\": [");
    for (i, e) in facts.edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"to\": ");
        out.push_str(&escape(&e.to));
        out.push_str(&format!(", \"line\": {}, \"col\": {}}}", e.line, e.col));
    }
    out.push_str("], \"pubs\": [");
    for (i, p) in facts.pubs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\": ");
        out.push_str(&escape(&p.name));
        out.push_str(", \"kind\": ");
        out.push_str(&escape(&p.kind));
        out.push_str(&format!(", \"line\": {}, \"col\": {}}}", p.line, p.col));
    }
    out.push_str("]}");
}

// ---------------------------------------------------------------------
// Tolerant parsing. Every accessor returns Option; any None anywhere
// bubbles up and the whole cache is discarded.
// ---------------------------------------------------------------------

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a str> {
    field(obj, key)?.as_str()
}

fn num_field(obj: &[(String, Json)], key: &str) -> Option<f64> {
    match field(obj, key)? {
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

fn u32_field(obj: &[(String, Json)], key: &str) -> Option<u32> {
    let n = num_field(obj, key)?;
    if n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&n) {
        Some(n as u32)
    } else {
        None
    }
}

fn usize_field(obj: &[(String, Json)], key: &str) -> Option<usize> {
    // Byte offsets in real source files fit comfortably in 2^53.
    let n = num_field(obj, key)?;
    if n.fract() == 0.0 && (0.0..=9.0e15).contains(&n) {
        Some(n as usize)
    } else {
        None
    }
}

fn bool_field(obj: &[(String, Json)], key: &str) -> Option<bool> {
    match field(obj, key)? {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn hash_field(obj: &[(String, Json)], key: &str) -> Option<u64> {
    u64::from_str_radix(str_field(obj, key)?, 16).ok()
}

fn parse_cache(text: &str) -> Option<LintCache> {
    let value = Json::parse(text).ok()?;
    let obj = value.as_object()?;
    if u32_field(obj, "version")? != CACHE_VERSION {
        return None;
    }
    if hash_field(obj, "fingerprint")? != engine_fingerprint() {
        return None;
    }
    let mut cache = LintCache::default();
    for fv in field(obj, "files")?.as_array()? {
        let fo = fv.as_object()?;
        let rel_path = str_field(fo, "rel_path")?.to_string();
        let entry = CacheEntry {
            crate_name: str_field(fo, "crate")?.to_string(),
            lintable: bool_field(fo, "lintable")?,
            hash: hash_field(fo, "hash")?,
            findings: parse_findings(field(fo, "findings")?)?,
            allows: parse_allows(field(fo, "allows")?)?,
            facts: parse_facts(field(fo, "facts")?)?,
        };
        cache.files.insert(rel_path, entry);
    }
    for rv in field(obj, "ranges")?.as_array()? {
        let ro = rv.as_object()?;
        let krate = str_field(ro, "crate")?.to_string();
        let entry = RangeEntry {
            key: hash_field(ro, "key")?,
            findings: parse_findings(field(ro, "findings")?)?,
        };
        cache.ranges.insert(krate, entry);
    }
    cache.hot = match field(obj, "hot")? {
        Json::Null => None,
        hv => {
            let ho = hv.as_object()?;
            let mut roots = Vec::new();
            for r in field(ho, "roots")?.as_array()? {
                roots.push(r.as_str()?.to_string());
            }
            let mut hot = Vec::new();
            for n in field(ho, "hot")?.as_array()? {
                hot.push(n.as_str()?.to_string());
            }
            Some(HotEntry {
                key: hash_field(ho, "key")?,
                findings: parse_findings(field(ho, "findings")?)?,
                roots,
                hot,
            })
        }
    };
    Some(cache)
}

fn parse_findings(value: &Json) -> Option<Vec<Finding>> {
    let mut out = Vec::new();
    for v in value.as_array()? {
        let o = v.as_object()?;
        let rule_str = str_field(o, "rule")?;
        let rule = RULE_IDS.iter().find(|id| **id == rule_str).copied()?;
        let severity = match str_field(o, "severity")? {
            "error" => Severity::Error,
            "warning" => Severity::Warning,
            _ => return None,
        };
        let fix = match field(o, "fix")? {
            Json::Null => None,
            Json::Obj(fo) => Some(Fix {
                start: usize_field(fo, "start")?,
                end: usize_field(fo, "end")?,
                replacement: str_field(fo, "replacement")?.to_string(),
                safety: match str_field(fo, "safety")? {
                    "machine-applicable" => FixSafety::MachineApplicable,
                    "suggested" => FixSafety::Suggested,
                    _ => return None,
                },
            }),
            _ => return None,
        };
        out.push(Finding {
            rule,
            file: str_field(o, "file")?.to_string(),
            line: u32_field(o, "line")?,
            col: u32_field(o, "col")?,
            end_col: u32_field(o, "end_col")?,
            severity,
            message: str_field(o, "message")?.to_string(),
            excerpt: str_field(o, "excerpt")?.to_string(),
            fix,
        });
    }
    Some(out)
}

fn parse_allows(value: &Json) -> Option<Vec<AllowSite>> {
    let mut out = Vec::new();
    for v in value.as_array()? {
        let o = v.as_object()?;
        out.push(AllowSite {
            rule: str_field(o, "rule")?.to_string(),
            line: u32_field(o, "line")?,
            col: u32_field(o, "col")?,
            has_reason: bool_field(o, "has_reason")?,
            used: bool_field(o, "used")?,
            byte_start: usize_field(o, "byte_start")?,
            byte_end: usize_field(o, "byte_end")?,
        });
    }
    Some(out)
}

fn parse_facts(value: &Json) -> Option<FileFacts> {
    let o = value.as_object()?;
    let mut facts = FileFacts::default();
    for w in field(o, "words")?.as_array()? {
        facts.words.push(w.as_str()?.to_string());
    }
    for ev in field(o, "edges")?.as_array()? {
        let eo = ev.as_object()?;
        facts.edges.push(FactEdge {
            to: str_field(eo, "to")?.to_string(),
            line: u32_field(eo, "line")?,
            col: u32_field(eo, "col")?,
        });
    }
    for pv in field(o, "pubs")?.as_array()? {
        let po = pv.as_object()?;
        facts.pubs.push(PubItem {
            name: str_field(po, "name")?.to_string(),
            kind: str_field(po, "kind")?.to_string(),
            line: u32_field(po, "line")?,
            col: u32_field(po, "col")?,
        });
    }
    Some(facts)
}

/// Order-sensitive digest of a findings list (the canonical JSON
/// rendering hashed with FNV-1a). The benchmark asserts cold/warm
/// digest equality with it; any divergence between the cached and
/// from-scratch pipelines is a correctness bug, not a staleness issue.
pub fn findings_digest(findings: &[Finding]) -> u64 {
    let mut s = String::new();
    findings_json(&mut s, findings);
    fnv1a(s.as_bytes())
}

/// The crate key for range-analysis caching: FNV-1a over the crate's
/// sorted `(rel_path, content_hash)` pairs.
pub fn crate_key(pairs: &[(&str, u64)]) -> u64 {
    let mut sorted: Vec<&(&str, u64)> = pairs.iter().collect();
    sorted.sort();
    let mut s = String::new();
    for (path, hash) in sorted {
        s.push_str(path);
        s.push('\x1f');
        s.push_str(&hex(*hash));
        s.push('\x1e');
    }
    fnv1a(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cache() -> LintCache {
        let mut cache = LintCache::default();
        cache.files.insert(
            "crates/core/src/lib.rs".to_string(),
            CacheEntry {
                crate_name: "bios-core".to_string(),
                lintable: true,
                hash: fnv1a(b"fn main() {}"),
                findings: vec![Finding {
                    rule: "D1",
                    file: "crates/core/src/lib.rs".to_string(),
                    line: 3,
                    col: 9,
                    end_col: 16,
                    severity: Severity::Error,
                    message: "HashMap iteration order is nondeterministic".to_string(),
                    excerpt: "let m: HashMap<u32, f64> = HashMap::new();".to_string(),
                    fix: Some(Fix {
                        start: 42,
                        end: 49,
                        replacement: "BTreeMap".to_string(),
                        safety: FixSafety::MachineApplicable,
                    }),
                }],
                allows: vec![AllowSite {
                    rule: "P1".to_string(),
                    line: 10,
                    col: 5,
                    has_reason: true,
                    used: true,
                    byte_start: 120,
                    byte_end: 155,
                }],
                facts: FileFacts {
                    words: vec!["alpha".to_string(), "beta\"quoted".to_string()],
                    edges: vec![FactEdge {
                        to: "bios-num".to_string(),
                        line: 7,
                        col: 2,
                    }],
                    pubs: vec![PubItem {
                        name: "Solver".to_string(),
                        kind: "struct".to_string(),
                        line: 1,
                        col: 1,
                    }],
                },
            },
        );
        cache.ranges.insert(
            "bios-core".to_string(),
            RangeEntry {
                key: crate_key(&[("crates/core/src/lib.rs", fnv1a(b"fn main() {}"))]),
                findings: vec![Finding {
                    rule: "N1",
                    file: "crates/core/src/lib.rs".to_string(),
                    line: 5,
                    col: 13,
                    end_col: 20,
                    severity: Severity::Error,
                    message: "possible division by zero".to_string(),
                    excerpt: "let r = v / d;".to_string(),
                    fix: None,
                }],
            },
        );
        cache.hot = Some(HotEntry {
            key: crate_key(&[("crates/core/src/lib.rs", fnv1a(b"fn main() {}"))]),
            findings: vec![Finding {
                rule: "H1",
                file: "crates/core/src/lib.rs".to_string(),
                line: 9,
                col: 4,
                end_col: 14,
                severity: Severity::Error,
                message: "allocation in hot code".to_string(),
                excerpt: "let v = Vec::new();".to_string(),
                fix: None,
            }],
            roots: vec!["step_wave".to_string()],
            hot: vec!["hot_helper".to_string(), "step_wave".to_string()],
        });
        cache
    }

    #[test]
    fn round_trips_exactly() {
        let cache = sample_cache();
        let text = cache.to_json();
        let back = LintCache::parse(&text);
        assert_eq!(back, cache);
    }

    #[test]
    fn malformed_or_mismatched_yields_empty() {
        assert_eq!(LintCache::parse("not json"), LintCache::default());
        assert_eq!(LintCache::parse("{}"), LintCache::default());
        // Wrong fingerprint: a structurally valid cache from a different
        // rule catalogue must be discarded wholesale.
        let good = sample_cache().to_json();
        let bad = good.replace(
            &format!("{:016x}", engine_fingerprint()),
            "deadbeefdeadbeef",
        );
        assert_eq!(LintCache::parse(&bad), LintCache::default());
        // Unknown rule id → discarded.
        let bad = good.replace("\"D1\"", "\"Z9\"");
        assert_eq!(LintCache::parse(&bad), LintCache::default());
    }

    #[test]
    fn crate_key_is_order_insensitive_and_content_sensitive() {
        let a = crate_key(&[("a.rs", 1), ("b.rs", 2)]);
        let b = crate_key(&[("b.rs", 2), ("a.rs", 1)]);
        assert_eq!(a, b);
        let c = crate_key(&[("a.rs", 3), ("b.rs", 2)]);
        assert_ne!(a, c);
    }
}
