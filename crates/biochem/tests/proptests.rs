//! Property-based tests for the biochemistry layer.

use bios_biochem::{
    Analyte, CypIsoform, CypSensor, Membrane, MichaelisMenten, OneCompartmentPk, Oxidase,
    OxidaseSensor, Route,
};
use bios_units::{
    Centimeters, DiffusionCoefficient, Liters, Molar, Moles, Seconds, Volts, VoltsPerSecond, T_ROOM,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Michaelis–Menten linear-limit inversion round-trips for any Km/tol.
    #[test]
    fn mm_linear_limit_round_trips(km_mm in 0.01f64..1000.0, tol in 0.01f64..0.9) {
        let mm = MichaelisMenten::new(Molar::from_millimolar(km_mm)).expect("valid");
        let c_max = mm.linear_limit(tol);
        let back = MichaelisMenten::from_linear_limit(c_max, tol);
        prop_assert!((back.km().value() - mm.km().value()).abs() / mm.km().value() < 1e-9);
    }

    /// Saturation is monotone and bounded for all oxidase sensors.
    #[test]
    fn oxidase_response_monotone(c1_mm in 0.0f64..50.0, dc_mm in 0.001f64..50.0, pick in 0usize..4) {
        let sensor = OxidaseSensor::from_registry(Oxidase::ALL[pick]).expect("registry");
        let j1 = sensor.steady_current_density(Molar::from_millimolar(c1_mm));
        let j2 = sensor.steady_current_density(Molar::from_millimolar(c1_mm + dc_mm));
        prop_assert!(j2.value() > j1.value());
        // Bounded by S·Km (the Vmax current).
        let vmax = sensor.sensitivity_si() * sensor.kinetics().km().value();
        prop_assert!(j2.value() < vmax);
    }

    /// Membrane step response is a valid CDF-like curve for any geometry.
    #[test]
    fn membrane_response_is_cdf(l_um in 10.0f64..500.0, d_exp in -7.0f64..-5.0, t in 0.0f64..500.0) {
        let m = Membrane::new(
            Centimeters::from_micrometers(l_um),
            DiffusionCoefficient::new(10f64.powf(d_exp)),
        ).expect("valid");
        let r = m.step_response(Seconds::new(t));
        prop_assert!((0.0..=1.0).contains(&r));
        let r_later = m.step_response(Seconds::new(t + 1.0));
        prop_assert!(r_later >= r - 1e-12);
    }

    /// Transient response always lies between the two steady states.
    #[test]
    fn oxidase_transient_is_bounded(
        c0_mm in 0.0f64..5.0,
        c1_mm in 0.0f64..5.0,
        t in 0.0f64..200.0,
    ) {
        let s = OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry");
        let (c0, c1) = (Molar::from_millimolar(c0_mm), Molar::from_millimolar(c1_mm));
        let j = s.transient_current_density(c0, c1, Seconds::new(t)).value();
        let j0 = s.steady_current_density(c0).value();
        let j1 = s.steady_current_density(c1).value();
        let (lo, hi) = if j0 <= j1 { (j0, j1) } else { (j1, j0) };
        prop_assert!(j >= lo - 1e-15 && j <= hi + 1e-15);
    }

    /// CYP cathodic current is monotone in each substrate's concentration at
    /// its own peak potential.
    #[test]
    fn cyp_peak_current_monotone(c_mm in 0.05f64..8.0, factor in 1.1f64..3.0) {
        let s = CypSensor::from_registry(CypIsoform::Cyp2B4).expect("registry");
        let rate = VoltsPerSecond::from_millivolts_per_second(20.0);
        let e = Volts::new(-0.25);
        let j = |c: f64| {
            s.current_density(e, rate, false, &[(Analyte::Benzphetamine, Molar::from_millimolar(c))], T_ROOM)
                .value()
        };
        prop_assert!(j(c_mm * factor) < j(c_mm), "more drug, more cathodic");
    }

    /// PK concentration is non-negative and eventually decays.
    #[test]
    fn pk_concentration_sane(
        dose_mmol in 1.0f64..100.0,
        vol_l in 5.0f64..100.0,
        ka in 1e-5f64..1e-3,
        ke_frac in 0.01f64..0.9,
    ) {
        let ke = ka * ke_frac; // ke < ka, avoids the degenerate case
        let pk = OneCompartmentPk::new(
            Moles::from_millimoles(dose_mmol),
            Liters::new(vol_l),
            Route::Oral,
            ka,
            ke,
        ).expect("valid");
        let t_peak = pk.time_to_peak();
        prop_assert!(t_peak.value() > 0.0);
        let c_peak = pk.concentration(t_peak);
        prop_assert!(c_peak.value() >= 0.0);
        // Ten half-lives after the peak the drug is mostly gone.
        let late = Seconds::new(t_peak.value() + 10.0 * pk.half_life().value());
        prop_assert!(pk.concentration(late).value() < 0.01 * c_peak.value().max(1e-30));
    }

    /// Peak-shift (Laviron) drift is zero below the critical rate and
    /// monotone above it.
    #[test]
    fn laviron_drift_monotone(v1 in 0.031f64..0.2, dv in 0.01f64..0.5) {
        let s = CypSensor::from_registry(CypIsoform::Cyp1A2).expect("registry");
        let slow = s.peak_potential(Analyte::Clozapine, VoltsPerSecond::new(0.02), T_ROOM).expect("substrate");
        let nominal = s.nominal_peak_potential(Analyte::Clozapine).expect("substrate");
        prop_assert_eq!(slow, nominal);
        let p1 = s.peak_potential(Analyte::Clozapine, VoltsPerSecond::new(v1), T_ROOM).expect("substrate");
        let p2 = s.peak_potential(Analyte::Clozapine, VoltsPerSecond::new(v1 + dv), T_ROOM).expect("substrate");
        prop_assert!(p2.value() < p1.value(), "faster scan drifts more cathodic");
        prop_assert!(p1.value() < nominal.value());
    }
}
