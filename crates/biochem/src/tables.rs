//! The paper's Tables I–III as typed constant registries, plus the
//! calibration arithmetic that turns the reported figures into simulator
//! parameters.
//!
//! **Calibration policy.** The paper's numbers are empirical literature
//! values; our simulators are parameterized *from* them so that the
//! reproduction harness can re-derive each figure from simulated raw data:
//!
//! * *Applied potential* (Table I) and *reduction potential* (Table II)
//!   parameterize the redox couples directly.
//! * *Sensitivity* (Table III, µA/(mM·cm²)) sets the low-concentration slope
//!   of the sensor's current-density law.
//! * *Linear range* (Table III) sets the apparent Michaelis constant via
//!   `Km = C_max·(1 − tol)/tol` with a 10% nonlinearity tolerance
//!   (see [`MichaelisMenten::from_linear_limit`]).
//! * *LOD* (Table III) back-derives the blank noise the simulated sensor
//!   injects: `σ_blank = LOD·S/3` (paper eq. 5 with the ACS factor 3).
//!
//! [`MichaelisMenten::from_linear_limit`]: crate::MichaelisMenten::from_linear_limit

use crate::analyte::Analyte;
use crate::cytochrome::CypIsoform;
use crate::michaelis::MichaelisMenten;
use crate::oxidase::Oxidase;
use bios_units::{AmpsPerCm2, Molar, QRange, Volts};

/// Nonlinearity tolerance used to back-derive apparent `Km`s from the
/// paper's linear ranges.
pub const LINEARITY_TOLERANCE: f64 = 0.10;

/// One row of the paper's **Table I** (oxidase biosensors and their
/// chronoamperometric working potentials vs Ag/AgCl).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OxidaseRow {
    /// The enzyme.
    pub oxidase: Oxidase,
    /// Its target metabolite.
    pub target: Analyte,
    /// Applied potential for H₂O₂ detection.
    pub applied_potential: Volts,
}

/// The paper's Table I.
pub const TABLE_I: [OxidaseRow; 4] = [
    OxidaseRow {
        oxidase: Oxidase::Glucose,
        target: Analyte::Glucose,
        applied_potential: Volts::new(0.550),
    },
    OxidaseRow {
        oxidase: Oxidase::Lactate,
        target: Analyte::Lactate,
        applied_potential: Volts::new(0.650),
    },
    OxidaseRow {
        oxidase: Oxidase::Glutamate,
        target: Analyte::Glutamate,
        applied_potential: Volts::new(0.600),
    },
    OxidaseRow {
        oxidase: Oxidase::Cholesterol,
        target: Analyte::Cholesterol,
        applied_potential: Volts::new(0.700),
    },
];

/// One row of the paper's **Table II** (cytochrome P450 biosensors and the
/// reduction potentials of their target drugs vs Ag/AgCl).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CypRow {
    /// The cytochrome isoform.
    pub isoform: CypIsoform,
    /// The drug it detects.
    pub target: Analyte,
    /// Reduction potential at which the catalytic peak appears.
    pub reduction_potential: Volts,
}

/// The paper's Table II.
pub const TABLE_II: [CypRow; 11] = [
    CypRow {
        isoform: CypIsoform::Cyp1A2,
        target: Analyte::Clozapine,
        reduction_potential: Volts::new(-0.265),
    },
    CypRow {
        isoform: CypIsoform::Cyp3A4,
        target: Analyte::Erythromycin,
        reduction_potential: Volts::new(-0.625),
    },
    CypRow {
        isoform: CypIsoform::Cyp3A4,
        target: Analyte::Indinavir,
        reduction_potential: Volts::new(-0.750),
    },
    CypRow {
        isoform: CypIsoform::Cyp11A1,
        target: Analyte::Cholesterol,
        reduction_potential: Volts::new(-0.400),
    },
    CypRow {
        isoform: CypIsoform::Cyp2B4,
        target: Analyte::Benzphetamine,
        reduction_potential: Volts::new(-0.250),
    },
    CypRow {
        isoform: CypIsoform::Cyp2B4,
        target: Analyte::Aminopyrine,
        reduction_potential: Volts::new(-0.400),
    },
    CypRow {
        isoform: CypIsoform::Cyp2B6,
        target: Analyte::Bupropion,
        reduction_potential: Volts::new(-0.450),
    },
    CypRow {
        isoform: CypIsoform::Cyp2B6,
        target: Analyte::Lidocaine,
        reduction_potential: Volts::new(-0.450),
    },
    CypRow {
        isoform: CypIsoform::Cyp2C9,
        target: Analyte::Torsemide,
        reduction_potential: Volts::new(-0.019),
    },
    CypRow {
        isoform: CypIsoform::Cyp2C9,
        target: Analyte::Diclofenac,
        reduction_potential: Volts::new(-0.041),
    },
    CypRow {
        isoform: CypIsoform::Cyp2E1,
        target: Analyte::PNitrophenol,
        reduction_potential: Volts::new(-0.300),
    },
];

/// The probe used for a Table III row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ProbeRef {
    /// An oxidase read out by chronoamperometry.
    Oxidase(Oxidase),
    /// A cytochrome P450 read out by cyclic voltammetry.
    Cytochrome(CypIsoform),
}

impl core::fmt::Display for ProbeRef {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProbeRef::Oxidase(o) => write!(f, "{o}"),
            ProbeRef::Cytochrome(c) => write!(f, "{c}"),
        }
    }
}

/// One row of the paper's **Table III** (per-target biosensor performance).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerformanceRow {
    /// Target molecule.
    pub target: Analyte,
    /// Sensing probe.
    pub probe: ProbeRef,
    /// Sensitivity in µA/(mM·cm²).
    pub sensitivity_ua_per_mm_cm2: f64,
    /// Limit of detection in µM (`None` where the paper reports "—").
    pub lod_um: Option<f64>,
    /// Lower bound of the linear range, mM.
    pub linear_lo_mm: f64,
    /// Upper bound of the linear range, mM.
    pub linear_hi_mm: f64,
}

/// The paper's Table III.
///
/// Glucose/lactate/glutamate values are for single CNT-nanostructured
/// working electrodes; benzphetamine/aminopyrine for rhodium–graphite
/// (ref. \[16\]); cholesterol for CNT electrodes (ref. \[15\]).
pub const TABLE_III: [PerformanceRow; 6] = [
    PerformanceRow {
        target: Analyte::Glucose,
        probe: ProbeRef::Oxidase(Oxidase::Glucose),
        sensitivity_ua_per_mm_cm2: 27.7,
        lod_um: Some(575.0),
        linear_lo_mm: 0.5,
        linear_hi_mm: 4.0,
    },
    PerformanceRow {
        target: Analyte::Lactate,
        probe: ProbeRef::Oxidase(Oxidase::Lactate),
        sensitivity_ua_per_mm_cm2: 40.1,
        lod_um: Some(366.0),
        linear_lo_mm: 0.5,
        linear_hi_mm: 2.5,
    },
    PerformanceRow {
        target: Analyte::Glutamate,
        probe: ProbeRef::Oxidase(Oxidase::Glutamate),
        sensitivity_ua_per_mm_cm2: 25.5,
        lod_um: Some(1574.0),
        linear_lo_mm: 0.5,
        linear_hi_mm: 2.0,
    },
    PerformanceRow {
        target: Analyte::Benzphetamine,
        probe: ProbeRef::Cytochrome(CypIsoform::Cyp2B4),
        sensitivity_ua_per_mm_cm2: 0.28,
        lod_um: Some(200.0),
        linear_lo_mm: 0.2,
        linear_hi_mm: 1.2,
    },
    PerformanceRow {
        target: Analyte::Aminopyrine,
        probe: ProbeRef::Cytochrome(CypIsoform::Cyp2B4),
        sensitivity_ua_per_mm_cm2: 2.8,
        lod_um: Some(400.0),
        linear_lo_mm: 0.8,
        linear_hi_mm: 8.0,
    },
    PerformanceRow {
        target: Analyte::Cholesterol,
        probe: ProbeRef::Cytochrome(CypIsoform::Cyp11A1),
        sensitivity_ua_per_mm_cm2: 112.0,
        lod_um: None,
        linear_lo_mm: 0.01,
        linear_hi_mm: 0.08,
    },
];

impl PerformanceRow {
    /// Sensitivity in SI-coherent A/(M·cm²).
    pub fn sensitivity_si(&self) -> f64 {
        self.sensitivity_ua_per_mm_cm2 * 1e-3
    }

    /// The linear range as a typed interval.
    pub fn linear_range(&self) -> QRange<Molar> {
        QRange::between(
            Molar::from_millimolar(self.linear_lo_mm),
            Molar::from_millimolar(self.linear_hi_mm),
        )
    }

    /// Reported LOD as a typed concentration, if present.
    pub fn lod(&self) -> Option<Molar> {
        self.lod_um.map(Molar::from_micromolar)
    }

    /// Apparent `Km` back-derived from the top of the linear range at the
    /// registry's [`LINEARITY_TOLERANCE`].
    pub fn km_apparent(&self) -> Molar {
        MichaelisMenten::from_linear_limit(
            Molar::from_millimolar(self.linear_hi_mm),
            LINEARITY_TOLERANCE,
        )
        .km()
    }

    /// Blank current-density noise that reproduces the reported LOD through
    /// `LOD = 3σ/S` (paper eq. 5). Rows without a reported LOD get a default
    /// equivalent to a 3 µM LOD (documented substitution — the paper prints
    /// "—" for cholesterol).
    pub fn blank_sd(&self) -> AmpsPerCm2 {
        let lod_m = self.lod_um.unwrap_or(3.0) * 1e-6;
        AmpsPerCm2::new(lod_m * self.sensitivity_si() / 3.0)
    }

    /// Current density at the top of the calibration curve's linear range
    /// — the largest signal a correctly-ranged readout chain must carry
    /// for this probe on the registry's reference electrodes. A pure
    /// closed-form bound: static feasibility analysis uses it to refute
    /// design classes whose front-end saturates before the panel's
    /// concentration window is covered.
    pub fn peak_current_density(&self) -> AmpsPerCm2 {
        AmpsPerCm2::new(self.sensitivity_si() * Molar::from_millimolar(self.linear_hi_mm).value())
    }

    /// The registry LOD as a closed-form floor (`3σ/S` with the blank noise
    /// of [`PerformanceRow::blank_sd`]): no design built on this probe can
    /// detect below it without changing the sensor chemistry. Rows without
    /// a reported LOD use the documented 3 µM substitution, making the
    /// bound total (never `None`), which is what a static pruning pass
    /// needs.
    pub fn lod_floor(&self) -> Molar {
        Molar::from_micromolar(self.lod_um.unwrap_or(3.0))
    }
}

/// Looks up the Table III row for a target analyte.
pub fn performance_of(target: Analyte) -> Option<&'static PerformanceRow> {
    TABLE_III.iter().find(|r| r.target == target)
}

/// Looks up the Table I row for an oxidase.
///
/// `TABLE_I` is laid out in `Oxidase` declaration order, so the lookup is a
/// direct index with no panic path; `table_i_matches_paper` pins the order.
pub fn oxidase_row(oxidase: Oxidase) -> &'static OxidaseRow {
    let idx = match oxidase {
        Oxidase::Glucose => 0,
        Oxidase::Lactate => 1,
        Oxidase::Glutamate => 2,
        Oxidase::Cholesterol => 3,
    };
    &TABLE_I[idx]
}

/// Looks up the Table II reduction potential for an (isoform, drug) pair.
pub fn cyp_reduction_potential(isoform: CypIsoform, target: Analyte) -> Option<Volts> {
    TABLE_II
        .iter()
        .find(|r| r.isoform == isoform && r.target == target)
        .map(|r| r.reduction_potential)
}

/// All Table II rows for one isoform (CYP2B4 and CYP3A4 have two drugs).
pub fn cyp_rows(isoform: CypIsoform) -> impl Iterator<Item = &'static CypRow> {
    TABLE_II.iter().filter(move |r| r.isoform == isoform)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_matches_paper() {
        assert_eq!(TABLE_I.len(), 4);
        assert_eq!(
            oxidase_row(Oxidase::Glucose).applied_potential,
            Volts::new(0.550)
        );
        assert_eq!(
            oxidase_row(Oxidase::Cholesterol).applied_potential,
            Volts::new(0.700)
        );
        // All oxidase potentials are anodic (positive).
        for row in &TABLE_I {
            assert!(row.applied_potential.value() > 0.5);
        }
        // `oxidase_row` indexes TABLE_I by declaration order; pin it.
        for (i, oxidase) in Oxidase::ALL.into_iter().enumerate() {
            assert_eq!(oxidase_row(oxidase).oxidase, oxidase);
            assert_eq!(TABLE_I[i].oxidase, oxidase);
        }
    }

    #[test]
    fn table_ii_matches_paper() {
        assert_eq!(TABLE_II.len(), 11);
        assert_eq!(
            cyp_reduction_potential(CypIsoform::Cyp3A4, Analyte::Indinavir),
            Some(Volts::new(-0.750))
        );
        assert_eq!(
            cyp_reduction_potential(CypIsoform::Cyp2C9, Analyte::Torsemide),
            Some(Volts::new(-0.019))
        );
        assert_eq!(
            cyp_reduction_potential(CypIsoform::Cyp1A2, Analyte::Glucose),
            None
        );
        // All CYP potentials are cathodic (negative).
        for row in &TABLE_II {
            assert!(row.reduction_potential.value() < 0.0);
        }
    }

    #[test]
    fn cyp2b4_has_two_substrates() {
        let rows: Vec<_> = cyp_rows(CypIsoform::Cyp2B4).collect();
        assert_eq!(rows.len(), 2);
        // Distinct potentials: the basis of two-peak discrimination on one WE.
        assert!(
            (rows[0].reduction_potential - rows[1].reduction_potential)
                .abs()
                .as_millivolts()
                > 100.0
        );
    }

    #[test]
    fn table_iii_matches_paper() {
        assert_eq!(TABLE_III.len(), 6);
        let glucose = performance_of(Analyte::Glucose).expect("present");
        assert_eq!(glucose.sensitivity_ua_per_mm_cm2, 27.7);
        assert_eq!(glucose.lod_um, Some(575.0));
        let chol = performance_of(Analyte::Cholesterol).expect("present");
        assert!(chol.lod_um.is_none());
        assert!(performance_of(Analyte::Dopamine).is_none());
    }

    #[test]
    fn km_back_derivation_is_physical() {
        // Glucose: 4 mM linear top at 10% tolerance → Km = 36 mM,
        // close to glucose oxidase's real ≈33 mM — the calibration is
        // physically consistent, not just curve-fit.
        let km = performance_of(Analyte::Glucose)
            .expect("present")
            .km_apparent();
        assert!((km.as_millimolar() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn peak_current_density_is_sensitivity_times_linear_top() {
        for row in &TABLE_III {
            let peak = row.peak_current_density().value();
            assert!(peak > 0.0 && peak.is_finite());
            // The peak sits at the linear top, so it exceeds the signal at
            // any in-range concentration, e.g. the midpoint.
            let mid = row.sensitivity_si()
                * Molar::from_millimolar(0.5 * (row.linear_lo_mm + row.linear_hi_mm)).value();
            assert!(peak > mid);
        }
        // Cholesterol: huge sensitivity on a narrow window — its peak must
        // still be far below glucose's (0.08 mM vs 4 mM tops).
        let glucose = performance_of(Analyte::Glucose).expect("present");
        let chol = performance_of(Analyte::Cholesterol).expect("present");
        assert!(chol.peak_current_density().value() < glucose.peak_current_density().value());
    }

    #[test]
    fn lod_floor_is_total_and_consistent() {
        for row in &TABLE_III {
            let floor = row.lod_floor();
            assert!(floor.value() > 0.0);
            match row.lod() {
                // Where the paper reports an LOD, the floor IS that LOD...
                Some(lod) => assert_eq!(floor.value(), lod.value()),
                // ...and the "—" rows get the documented 3 µM substitution,
                None => assert!((floor.as_micromolar() - 3.0).abs() < 1e-12),
            }
            // either way equal to the 3σ/S closed form behind blank_sd.
            let back = 3.0 * row.blank_sd().value() / row.sensitivity_si();
            assert!((back - floor.value()).abs() / floor.value() < 1e-12);
        }
    }

    #[test]
    fn blank_sd_reproduces_lod() {
        for row in &TABLE_III {
            if let Some(lod) = row.lod() {
                let sigma = row.blank_sd();
                let lod_back = 3.0 * sigma.value() / row.sensitivity_si();
                assert!((lod_back - lod.value()).abs() / lod.value() < 1e-12);
            } else {
                assert!(row.blank_sd().value() > 0.0);
            }
        }
    }

    #[test]
    fn sensitivity_ordering_matches_paper() {
        let s = |a: Analyte| {
            performance_of(a)
                .expect("present")
                .sensitivity_ua_per_mm_cm2
        };
        assert!(s(Analyte::Cholesterol) > s(Analyte::Lactate));
        assert!(s(Analyte::Lactate) > s(Analyte::Glucose));
        assert!(s(Analyte::Glucose) > s(Analyte::Aminopyrine));
        assert!(s(Analyte::Aminopyrine) > s(Analyte::Benzphetamine));
    }
}
