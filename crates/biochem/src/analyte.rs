//! The target molecules of the platform: endogenous metabolites and drugs.

use bios_units::{Molar, QRange};

/// Whether the molecule is produced by the body or administered to it —
/// the paper's two sensing families (oxidases vs cytochromes P450) split
/// along this line.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum AnalyteKind {
    /// Endogenous metabolite (glucose, lactate, …) — §I-A.
    Endogenous,
    /// Exogenous compound, typically a drug under therapeutic monitoring.
    Drug,
}

/// A target molecule the platform can be asked to monitor.
///
/// Covers every compound named in the paper's Tables I–III plus the two
/// direct-oxidizing interferents called out in §II-C (dopamine, etoposide).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[non_exhaustive]
pub enum Analyte {
    /// Blood sugar; diabetes marker.
    Glucose,
    /// Marker of cell suffering (lactic acidosis, Von Gierke's disease).
    Lactate,
    /// Excitatory neurotransmitter; brain-injury marker.
    Glutamate,
    /// Membrane lipid; atherosclerosis risk marker.
    Cholesterol,
    /// Anorectic drug (obesity treatment); CYP2B4 substrate.
    Benzphetamine,
    /// Analgesic/anti-inflammatory; CYP2B4 substrate.
    Aminopyrine,
    /// Antipsychotic (schizophrenia); CYP1A2 substrate.
    Clozapine,
    /// Broad-spectrum antibiotic; CYP3A4 substrate.
    Erythromycin,
    /// HIV protease inhibitor; CYP3A4 substrate.
    Indinavir,
    /// Antidepressant; CYP2B6 substrate.
    Bupropion,
    /// Anesthetic and antiarrhythmic; CYP2B6 substrate.
    Lidocaine,
    /// Diuretic; CYP2C9 substrate.
    Torsemide,
    /// Anti-inflammatory; CYP2C9 substrate.
    Diclofenac,
    /// Paracetamol synthesis intermediate; CYP2E1 substrate.
    PNitrophenol,
    /// Chemotherapy agent (§I-A); oxidizes directly on bare electrodes.
    Etoposide,
    /// Neurotransmitter; classic direct-oxidation interferent.
    Dopamine,
    /// Vitamin C; ubiquitous electrochemical interferent in blood.
    Ascorbate,
}

impl Analyte {
    /// Every analyte the workspace knows about.
    pub const ALL: [Analyte; 17] = [
        Analyte::Glucose,
        Analyte::Lactate,
        Analyte::Glutamate,
        Analyte::Cholesterol,
        Analyte::Benzphetamine,
        Analyte::Aminopyrine,
        Analyte::Clozapine,
        Analyte::Erythromycin,
        Analyte::Indinavir,
        Analyte::Bupropion,
        Analyte::Lidocaine,
        Analyte::Torsemide,
        Analyte::Diclofenac,
        Analyte::PNitrophenol,
        Analyte::Etoposide,
        Analyte::Dopamine,
        Analyte::Ascorbate,
    ];

    /// Endogenous metabolite or administered drug.
    pub fn kind(self) -> AnalyteKind {
        match self {
            Analyte::Glucose
            | Analyte::Lactate
            | Analyte::Glutamate
            | Analyte::Cholesterol
            | Analyte::Dopamine
            | Analyte::Ascorbate => AnalyteKind::Endogenous,
            _ => AnalyteKind::Drug,
        }
    }

    /// Short clinical description (mirrors the paper's table annotations).
    pub fn description(self) -> &'static str {
        match self {
            Analyte::Glucose => "metabolic compound as energy source",
            Analyte::Lactate => "metabolic compound as marker of cell suffering",
            Analyte::Glutamate => "excitatory neurotransmitter",
            Analyte::Cholesterol => {
                "metabolic compound that establishes proper membrane permeability and fluidity"
            }
            Analyte::Benzphetamine => "used in the treatment of obesity",
            Analyte::Aminopyrine => "analgesic, anti-inflammatory, and antipyretic drug",
            Analyte::Clozapine => "antipsychotic used in the treatment of schizophrenia",
            Analyte::Erythromycin => "broad-spectrum antibiotic",
            Analyte::Indinavir => "used in the treatment of HIV infection and AIDS",
            Analyte::Bupropion => "antidepressant",
            Analyte::Lidocaine => "anesthetic and antiarrhythmic",
            Analyte::Torsemide => "diuretic",
            Analyte::Diclofenac => "anti-inflammatory",
            Analyte::PNitrophenol => "intermediate in the synthesis of paracetamol",
            Analyte::Etoposide => "chemotherapy agent",
            Analyte::Dopamine => "neurotransmitter",
            Analyte::Ascorbate => "vitamin C",
        }
    }

    /// Typical physiological / therapeutic concentration window, used by the
    /// examples to generate realistic workloads.
    pub fn typical_range(self) -> QRange<Molar> {
        let (lo_mm, hi_mm) = match self {
            Analyte::Glucose => (3.9, 7.1),       // fasting plasma
            Analyte::Lactate => (0.5, 2.2),       // resting venous
            Analyte::Glutamate => (0.01, 0.25),   // extracellular brain
            Analyte::Cholesterol => (3.0, 6.2),   // total plasma
            Analyte::Benzphetamine => (0.2, 1.2), // paper's linear range
            Analyte::Aminopyrine => (0.8, 8.0),
            Analyte::Clozapine => (0.001, 0.002),
            Analyte::Erythromycin => (0.002, 0.01),
            Analyte::Indinavir => (0.005, 0.015),
            Analyte::Bupropion => (0.0004, 0.0015),
            Analyte::Lidocaine => (0.006, 0.021),
            Analyte::Torsemide => (0.002, 0.01),
            Analyte::Diclofenac => (0.003, 0.008),
            Analyte::PNitrophenol => (0.001, 0.1),
            Analyte::Etoposide => (0.005, 0.02),
            Analyte::Dopamine => (1e-6, 1e-4),
            Analyte::Ascorbate => (0.03, 0.09),
        };
        QRange::between(Molar::from_millimolar(lo_mm), Molar::from_millimolar(hi_mm))
    }

    /// Whether the molecule oxidizes directly on a bare electrode at typical
    /// working potentials. The paper warns (§II-C) that the blank-electrode
    /// CDS trick fails for such species (dopamine, etoposide).
    pub fn oxidizes_directly(self) -> bool {
        matches!(
            self,
            Analyte::Dopamine | Analyte::Etoposide | Analyte::Ascorbate
        )
    }
}

impl core::fmt::Display for Analyte {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Analyte::Glucose => "glucose",
            Analyte::Lactate => "lactate",
            Analyte::Glutamate => "glutamate",
            Analyte::Cholesterol => "cholesterol",
            Analyte::Benzphetamine => "benzphetamine",
            Analyte::Aminopyrine => "aminopyrine",
            Analyte::Clozapine => "clozapine",
            Analyte::Erythromycin => "erythromycin",
            Analyte::Indinavir => "indinavir",
            Analyte::Bupropion => "bupropion",
            Analyte::Lidocaine => "lidocaine",
            Analyte::Torsemide => "torsemide",
            Analyte::Diclofenac => "diclofenac",
            Analyte::PNitrophenol => "p-nitrophenol",
            Analyte::Etoposide => "etoposide",
            Analyte::Dopamine => "dopamine",
            Analyte::Ascorbate => "ascorbate",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_variant_once() {
        let mut seen = std::collections::HashSet::new();
        for a in Analyte::ALL {
            assert!(seen.insert(a), "duplicate {a}");
        }
        assert_eq!(seen.len(), 17);
    }

    #[test]
    fn kinds_partition_correctly() {
        assert_eq!(Analyte::Glucose.kind(), AnalyteKind::Endogenous);
        assert_eq!(Analyte::Clozapine.kind(), AnalyteKind::Drug);
        assert_eq!(Analyte::Etoposide.kind(), AnalyteKind::Drug);
        let drugs = Analyte::ALL
            .iter()
            .filter(|a| a.kind() == AnalyteKind::Drug)
            .count();
        assert_eq!(drugs, 11);
    }

    #[test]
    fn direct_oxidizers_match_paper_warning() {
        assert!(Analyte::Dopamine.oxidizes_directly());
        assert!(Analyte::Etoposide.oxidizes_directly());
        assert!(!Analyte::Glucose.oxidizes_directly());
        assert!(!Analyte::Benzphetamine.oxidizes_directly());
    }

    #[test]
    fn ranges_are_positive_and_ordered() {
        for a in Analyte::ALL {
            let r = a.typical_range();
            assert!(r.lo().value() > 0.0, "{a}");
            assert!(r.hi().value() > r.lo().value(), "{a}");
        }
    }

    #[test]
    fn display_and_description_nonempty() {
        for a in Analyte::ALL {
            assert!(!a.to_string().is_empty());
            assert!(!a.description().is_empty());
        }
    }
}
