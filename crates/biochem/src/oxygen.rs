//! Oxygen as the oxidase co-substrate (paper eqs. 1–2).
//!
//! The FAD/FMN cycle needs molecular oxygen to regenerate (eq. 2:
//! `FADH₂ + O₂ → H₂O₂ + FAD`), so an oxidase sensor's current carries an
//! O₂-availability factor `[O₂]/(Km_O₂ + [O₂])`. Air-saturated buffer has
//! plenty; implanted subcutaneous tissue does not — the classic "oxygen
//! deficit" of implantable glucose sensors the paper's §I references
//! (Gough et al.) spent years engineering around.

use crate::error::BiochemError;
use bios_units::{Kelvin, Molar};

/// Apparent Michaelis constant of typical oxidases for molecular oxygen.
pub const KM_OXYGEN: Molar = Molar::new(0.2e-3);

/// Dissolved-oxygen conditions around the sensor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OxygenConditions {
    concentration: Molar,
}

impl OxygenConditions {
    /// Creates conditions with an explicit dissolved-O₂ concentration.
    ///
    /// # Errors
    ///
    /// Returns [`BiochemError::InvalidParameter`] for negative or
    /// non-finite concentrations.
    pub fn new(concentration: Molar) -> Result<Self, BiochemError> {
        if concentration.value() < 0.0 || !concentration.value().is_finite() {
            return Err(BiochemError::invalid(
                "concentration",
                "must be non-negative and finite",
            ));
        }
        Ok(Self { concentration })
    }

    /// Air-saturated aqueous buffer at 25 °C: ≈0.25 mM.
    pub fn air_saturated() -> Self {
        Self {
            concentration: Molar::from_micromolar(250.0),
        }
    }

    /// Subcutaneous tissue: ≈0.05 mM — the implant regime.
    pub fn subcutaneous_tissue() -> Self {
        Self {
            concentration: Molar::from_micromolar(50.0),
        }
    }

    /// Hypoxic tissue: ≈0.01 mM.
    pub fn hypoxic() -> Self {
        Self {
            concentration: Molar::from_micromolar(10.0),
        }
    }

    /// The dissolved-O₂ concentration.
    pub fn concentration(&self) -> Molar {
        self.concentration
    }

    /// The multiplicative availability factor `[O₂]/(Km_O₂ + [O₂])` the
    /// oxidase turnover (and thus the sensor current) carries.
    pub fn availability(&self) -> f64 {
        let c = self.concentration.value();
        c / (KM_OXYGEN.value() + c)
    }
}

impl Default for OxygenConditions {
    fn default() -> Self {
        Self::air_saturated()
    }
}

/// Thermal activity factor of an enzyme relative to 25 °C, with the
/// classic Q₁₀ ≈ 2 rule (each 10 K roughly doubles turnover) below the
/// denaturation knee at ≈45 °C, above which activity collapses.
pub fn thermal_activity_factor(t: Kelvin) -> f64 {
    let celsius = t.as_celsius();
    if celsius > 45.0 {
        // Denaturation: sharp collapse, 50% lost per extra 2 °C.
        let base = 2f64.powf((45.0 - 25.0) / 10.0);
        return base * 0.5f64.powf((celsius - 45.0) / 2.0);
    }
    2f64.powf((celsius - 25.0) / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::{T_BODY, T_ROOM};

    #[test]
    fn construction_validates() {
        assert!(OxygenConditions::new(Molar::new(-1.0)).is_err());
        assert!(OxygenConditions::new(Molar::new(f64::NAN)).is_err());
        assert!(OxygenConditions::new(Molar::ZERO).is_ok());
    }

    #[test]
    fn air_saturated_is_nearly_unlimited() {
        assert!(OxygenConditions::air_saturated().availability() > 0.5);
    }

    #[test]
    fn tissue_oxygen_deficit_is_real() {
        // The implant regime loses a fifth to a half of the signal —
        // the well-known oxygen deficit.
        let tissue = OxygenConditions::subcutaneous_tissue().availability();
        let air = OxygenConditions::air_saturated().availability();
        assert!(tissue < 0.5 * air / 0.55, "tissue {tissue} vs air {air}");
        let hypoxic = OxygenConditions::hypoxic().availability();
        assert!(hypoxic < tissue);
        assert!(
            OxygenConditions::new(Molar::ZERO)
                .expect("valid")
                .availability()
                == 0.0
        );
    }

    #[test]
    fn q10_doubles_per_10_degrees() {
        let room = thermal_activity_factor(T_ROOM);
        assert!((room - 1.0).abs() < 1e-12);
        let body = thermal_activity_factor(T_BODY);
        // 37 °C: 2^(12/10) ≈ 2.3.
        assert!((body - 2f64.powf(1.2)).abs() < 1e-9);
    }

    #[test]
    fn denaturation_collapses_activity() {
        let at_44 = thermal_activity_factor(Kelvin::from_celsius(44.0));
        let at_55 = thermal_activity_factor(Kelvin::from_celsius(55.0));
        assert!(at_44 > 3.0, "still thriving just below the knee");
        assert!(at_55 < 0.25, "denatured: {at_55}");
        // Continuity at the knee.
        let before = thermal_activity_factor(Kelvin::from_celsius(44.999));
        let after = thermal_activity_factor(Kelvin::from_celsius(45.001));
        assert!((before - after).abs() / before < 0.01);
    }
}
