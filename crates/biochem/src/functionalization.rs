//! Working-electrode functionalization: nanostructures for sensitivity,
//! polymers for stability, enzyme spotting for selectivity (paper §III).

use bios_electrochem::Nanostructure;
use bios_units::Seconds;

/// A working electrode's functionalization stack.
///
/// The paper (§III): electrodes "can be functionalized by nanostructures, to
/// increase sensitivity; by polymers, to provide long-term stability; and by
/// the enzyme probe to enhance selectivity".
///
/// # Example
///
/// ```
/// use bios_biochem::Functionalization;
/// use bios_electrochem::Nanostructure;
///
/// let stack = Functionalization::new(Nanostructure::CarbonNanotubes, true);
/// assert!(stack.sensitivity_gain_over_bare() > 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Functionalization {
    nanostructure: Nanostructure,
    polymer_stabilized: bool,
}

impl Functionalization {
    /// Creates a functionalization stack.
    pub fn new(nanostructure: Nanostructure, polymer_stabilized: bool) -> Self {
        Self {
            nanostructure,
            polymer_stabilized,
        }
    }

    /// The paper's reference stack: CNT nanostructure with polymer
    /// stabilization (what Table III's metabolite rows were measured on).
    pub fn paper_reference() -> Self {
        Self::new(Nanostructure::CarbonNanotubes, true)
    }

    /// A bare, unstabilized electrode (the ablation baseline).
    pub fn bare() -> Self {
        Self::new(Nanostructure::None, false)
    }

    /// The nanostructure coating.
    pub fn nanostructure(&self) -> Nanostructure {
        self.nanostructure
    }

    /// Whether a stabilizing polymer layer is present.
    pub fn polymer_stabilized(&self) -> bool {
        self.polymer_stabilized
    }

    /// Sensitivity multiplier relative to a bare electrode (more active
    /// area → more immobilized enzyme → more signal).
    pub fn sensitivity_gain_over_bare(&self) -> f64 {
        self.nanostructure.roughness_factor()
    }

    /// Sensitivity multiplier relative to the paper's CNT reference stack —
    /// what you apply to Table III-calibrated sensors when exploring other
    /// electrodes.
    pub fn sensitivity_gain_over_reference(&self) -> f64 {
        self.nanostructure.roughness_factor() / Nanostructure::CarbonNanotubes.roughness_factor()
    }

    /// Operational lifetime constant: enzyme activity decays as
    /// `exp(−t/τ)`. Polymer entrapment extends τ from days to a month.
    pub fn lifetime_tau(&self) -> Seconds {
        let days = if self.polymer_stabilized { 30.0 } else { 3.0 };
        Seconds::from_hours(24.0 * days)
    }

    /// Remaining enzyme activity after operating for `t`.
    pub fn activity_after(&self, t: Seconds) -> f64 {
        if t.value() <= 0.0 {
            return 1.0;
        }
        (-t.value() / self.lifetime_tau().value()).exp()
    }

    /// Operating time until activity falls to `fraction` of the initial
    /// value (e.g. 0.9 for the usable-life criterion).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn usable_life(&self, fraction: f64) -> Seconds {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        Seconds::new(self.lifetime_tau().value() * (1.0 / fraction).ln())
    }
}

impl Default for Functionalization {
    fn default() -> Self {
        Self::paper_reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stack_gains() {
        let r = Functionalization::paper_reference();
        assert!((r.sensitivity_gain_over_reference() - 1.0).abs() < 1e-12);
        assert!(r.sensitivity_gain_over_bare() > 10.0);
        let bare = Functionalization::bare();
        assert!((bare.sensitivity_gain_over_bare() - 1.0).abs() < 1e-12);
        assert!(bare.sensitivity_gain_over_reference() < 0.1);
    }

    #[test]
    fn polymer_extends_lifetime_tenfold() {
        let stabilized = Functionalization::new(Nanostructure::CarbonNanotubes, true);
        let fragile = Functionalization::new(Nanostructure::CarbonNanotubes, false);
        let ratio = stabilized.lifetime_tau().value() / fragile.lifetime_tau().value();
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn activity_decays_monotonically() {
        let f = Functionalization::paper_reference();
        assert_eq!(f.activity_after(Seconds::ZERO), 1.0);
        let day = Seconds::from_hours(24.0);
        let week = Seconds::from_hours(24.0 * 7.0);
        assert!(f.activity_after(day) > f.activity_after(week));
        assert!(f.activity_after(week) > 0.0);
    }

    #[test]
    fn glucomen_day_100_hours_is_within_usable_life() {
        // The paper cites the GlucoMen®Day's 100-hour wear period; a
        // polymer-stabilized sensor keeps >87% activity over it.
        let f = Functionalization::paper_reference();
        let wear = Seconds::from_hours(100.0);
        assert!(f.activity_after(wear) > 0.85, "{}", f.activity_after(wear));
        assert!(f.usable_life(0.85).value() > wear.value());
    }

    #[test]
    fn usable_life_is_consistent() {
        let f = Functionalization::bare();
        let t = f.usable_life(0.9);
        assert!((f.activity_after(t) - 0.9).abs() < 1e-9);
    }
}
