//! Error type for the biochemistry layer.

use bios_units::Molar;

/// Errors produced while configuring biochemical sensing models.
#[derive(Debug, Clone, PartialEq)]
pub enum BiochemError {
    /// A kinetic or geometric parameter was out of its valid domain.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The requested enzyme does not act on the requested analyte.
    UnsupportedAnalyte {
        /// The probe that was asked.
        probe: String,
        /// The analyte it cannot sense.
        analyte: String,
    },
    /// A concentration was outside the model's validity window.
    ConcentrationOutOfRange {
        /// The offending concentration.
        value: Molar,
        /// Human-readable bound description.
        bound: String,
    },
}

impl BiochemError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl core::fmt::Display for BiochemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            Self::UnsupportedAnalyte { probe, analyte } => {
                write!(f, "probe {probe} cannot sense analyte {analyte}")
            }
            Self::ConcentrationOutOfRange { value, bound } => {
                write!(f, "concentration {value} outside model validity ({bound})")
            }
        }
    }
}

impl std::error::Error for BiochemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BiochemError::invalid("km", "must be positive");
        assert_eq!(e.to_string(), "invalid parameter km: must be positive");
        let u = BiochemError::UnsupportedAnalyte {
            probe: "GOD".into(),
            analyte: "lactate".into(),
        };
        assert!(u.to_string().contains("GOD"));
        assert!(u.to_string().contains("lactate"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<BiochemError>();
    }
}
