//! Electroactive interferents: species that oxidize directly on a bare
//! working electrode at sensing potentials.
//!
//! These are the reason the paper's §II-C blank-electrode CDS scheme exists
//! — and the reason it fails for dopamine and etoposide, which show up on
//! the blank electrode too.

use crate::analyte::Analyte;
use bios_units::{AmpsPerCm2, Molar, Volts};

/// A direct-oxidation interferent model: a sigmoidal anodic wave that turns
/// on above an onset potential.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Interferent {
    analyte: Analyte,
    onset: Volts,
    /// Plateau sensitivity above the wave, A/(M·cm²).
    sensitivity_si: f64,
}

impl Interferent {
    /// The registry of common interferents with literature onset potentials
    /// vs Ag/AgCl and plateau sensitivities.
    pub fn registry() -> Vec<Interferent> {
        vec![
            Interferent {
                analyte: Analyte::Ascorbate,
                onset: Volts::new(0.20),
                sensitivity_si: 8.0e-3,
            },
            Interferent {
                analyte: Analyte::Dopamine,
                onset: Volts::new(0.15),
                sensitivity_si: 12.0e-3,
            },
            Interferent {
                analyte: Analyte::Etoposide,
                onset: Volts::new(0.25),
                sensitivity_si: 5.0e-3,
            },
        ]
    }

    /// Looks up an interferent model by analyte.
    pub fn of(analyte: Analyte) -> Option<Interferent> {
        Self::registry().into_iter().find(|i| i.analyte == analyte)
    }

    /// The interfering species.
    pub fn analyte(&self) -> Analyte {
        self.analyte
    }

    /// Onset potential of the direct-oxidation wave.
    pub fn onset(&self) -> Volts {
        self.onset
    }

    /// Anodic current density contributed at electrode potential `e` and
    /// interferent concentration `c` (zero below the onset, sigmoidal rise
    /// over ≈100 mV, concentration-linear plateau).
    pub fn current_density(&self, e: Volts, c: Molar) -> AmpsPerCm2 {
        if c.value() <= 0.0 {
            return AmpsPerCm2::ZERO;
        }
        let x = (e.value() - self.onset.value()) / 0.03; // 30 mV logistic scale
        let gate = 1.0 / (1.0 + (-x.clamp(-60.0, 60.0)).exp());
        AmpsPerCm2::new(self.sensitivity_si * c.value() * gate)
    }

    /// Whether this species also appears on an enzyme-free blank electrode,
    /// defeating blank-subtraction CDS (paper §II-C: true for all direct
    /// oxidizers — that is what makes them pernicious).
    pub fn defeats_blank_subtraction(&self) -> bool {
        self.analyte.oxidizes_directly()
    }
}

/// Selectivity coefficient of a sensor against an interferent: the ratio of
/// the interferent's current contribution to the target's, at equal
/// concentrations and the sensing potential (IUPAC amperometric selectivity).
pub fn selectivity_coefficient(
    target_sensitivity_si: f64,
    interferent: &Interferent,
    at_potential: Volts,
) -> f64 {
    let unit_c = Molar::from_millimolar(1.0);
    let j_int = interferent.current_density(at_potential, unit_c).value();
    let j_tgt = target_sensitivity_si * unit_c.value();
    // advdiag::allow(F1, exact sentinel: a dead target channel makes the ratio meaningless)
    if j_tgt == 0.0 {
        f64::INFINITY
    } else {
        j_int / j_tgt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_papers_warnings() {
        let names: Vec<Analyte> = Interferent::registry()
            .iter()
            .map(|i| i.analyte())
            .collect();
        assert!(names.contains(&Analyte::Dopamine));
        assert!(names.contains(&Analyte::Etoposide));
        assert!(names.contains(&Analyte::Ascorbate));
        assert!(Interferent::of(Analyte::Glucose).is_none());
    }

    #[test]
    fn wave_is_off_below_onset_and_linear_above() {
        let asc = Interferent::of(Analyte::Ascorbate).expect("registry");
        let c = Molar::from_millimolar(0.05);
        let below = asc.current_density(Volts::new(-0.2), c);
        assert!(below.value() < 1e-9 * asc.sensitivity_si);
        let j1 = asc.current_density(Volts::new(0.65), c);
        let j2 = asc.current_density(Volts::new(0.65), c * 2.0);
        assert!(j1.value() > 0.0);
        assert!((j2.value() / j1.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_direct_oxidizers_defeat_cds() {
        for i in Interferent::registry() {
            assert!(i.defeats_blank_subtraction(), "{}", i.analyte());
        }
    }

    #[test]
    fn ascorbate_interferes_with_oxidase_readout() {
        // At +650 mV the ascorbate wave is fully on; against glucose's
        // 27.7 µA/(mM·cm²) its 8 µA/(mM·cm²) means a ~0.29 selectivity
        // coefficient — significant, as in real sensors.
        let asc = Interferent::of(Analyte::Ascorbate).expect("registry");
        let k = selectivity_coefficient(27.7e-3, &asc, Volts::new(0.65));
        assert!((k - 8.0 / 27.7).abs() < 0.01, "k = {k}");
    }

    #[test]
    fn cathodic_cyp_window_avoids_anodic_interferents() {
        // At −400 mV (CYP11A1 cholesterol peak) the interferent waves are off.
        for i in Interferent::registry() {
            let j = i.current_density(Volts::new(-0.4), Molar::from_millimolar(0.1));
            assert!(j.value() < 1e-12, "{} leaks {j:?}", i.analyte());
        }
    }
}
