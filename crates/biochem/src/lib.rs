//! Biochemistry for the `advdiag` biosensing platform: analytes, enzymes
//! and calibrated sensing models.
//!
//! The DATE 2011 paper senses two enzyme families:
//!
//! * **Oxidases** ([`Oxidase`], [`OxidaseSensor`]) convert their metabolite
//!   and O₂ into H₂O₂ (paper eqs. 1–2), which the electrode oxidizes at
//!   +550…+700 mV (eq. 3, Table I) — read out by chronoamperometry.
//! * **Cytochromes P450** ([`CypIsoform`], [`CypSensor`]) reduce their drug
//!   substrates via the heme centre (eq. 4, Table II) — read out by cyclic
//!   voltammetry, one catalytic peak per drug.
//!
//! All sensor models are calibrated from the paper's Tables I–III, which
//! live in [`tables`] together with the calibration arithmetic. Supporting
//! models: Michaelis–Menten saturation ([`MichaelisMenten`]),
//! diffusion-limiting membranes ([`Membrane`], the Fig. 3 transient),
//! electrode functionalization ([`Functionalization`]), direct-oxidation
//! interferents ([`Interferent`]) and one-compartment pharmacokinetics
//! ([`OneCompartmentPk`]) for drug-monitoring workloads.
//!
//! # Example
//!
//! ```
//! use bios_biochem::{Oxidase, OxidaseSensor};
//! use bios_units::{Molar, Seconds};
//!
//! # fn main() -> Result<(), bios_biochem::BiochemError> {
//! let glucose = OxidaseSensor::from_registry(Oxidase::Glucose)?;
//! // Inject 2 mM of glucose and watch the Fig. 3 transient develop.
//! let j30 = glucose.transient_current_density(
//!     Molar::ZERO, Molar::from_millimolar(2.0), Seconds::new(30.0));
//! let jss = glucose.steady_current_density(Molar::from_millimolar(2.0));
//! assert!(j30.value() > 0.88 * jss.value()); // ≈90% at 30 s
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyte;
mod cytochrome;
mod enzyme;
mod error;
mod functionalization;
mod interference;
mod membrane;
mod michaelis;
mod oxidase;
mod oxygen;
mod pharmacokinetics;
mod probe;
pub mod tables;

pub use analyte::{Analyte, AnalyteKind};
pub use cytochrome::{CypIsoform, CypSensor, DEFAULT_CYP_SENSITIVITY_UA, PEAK_SHIFT_CRITICAL_RATE};
pub use enzyme::{EnzymeFilm, ProstheticGroup};
pub use error::BiochemError;
pub use functionalization::Functionalization;
pub use interference::{selectivity_coefficient, Interferent};
pub use membrane::Membrane;
pub use michaelis::MichaelisMenten;
pub use oxidase::{Oxidase, OxidaseSensor};
pub use oxygen::{thermal_activity_factor, OxygenConditions, KM_OXYGEN};
pub use pharmacokinetics::{OneCompartmentPk, Route};
pub use probe::{Probe, Technique};
