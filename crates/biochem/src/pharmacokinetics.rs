//! One-compartment pharmacokinetics — generates the drug-concentration
//! timelines the therapeutic-monitoring workloads (paper §I-A) run against.

use crate::error::BiochemError;
use bios_units::{Liters, Molar, Moles, Seconds};

/// Route of administration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Route {
    /// Instantaneous appearance in plasma (bolus).
    Intravenous,
    /// First-order absorption with rate constant `ka`.
    Oral,
}

/// A one-compartment pharmacokinetic model with first-order elimination.
///
/// `C(t) = (D/V)·e^{−ke·t}` for IV bolus;
/// `C(t) = (D/V)·ka/(ka−ke)·(e^{−ke·t} − e^{−ka·t})` for oral dosing.
///
/// # Example
///
/// ```
/// use bios_biochem::{OneCompartmentPk, Route};
/// use bios_units::{Liters, Moles, Seconds};
///
/// # fn main() -> Result<(), bios_biochem::BiochemError> {
/// let pk = OneCompartmentPk::new(
///     Moles::from_millimoles(35.0), // dose
///     Liters::new(42.0),            // volume of distribution
///     Route::Oral,
///     1.5e-4,                        // ka, 1/s  (~13 min half-time)
///     3.2e-5,                        // ke, 1/s  (~6 h half-life)
/// )?;
/// let c_peak = pk.concentration(pk.time_to_peak());
/// assert!(c_peak.value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OneCompartmentPk {
    dose: Moles,
    volume: Liters,
    route: Route,
    ka_per_s: f64,
    ke_per_s: f64,
}

impl OneCompartmentPk {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`BiochemError::InvalidParameter`] for non-positive dose,
    /// volume or rate constants, or `ka == ke` for oral dosing (the
    /// degenerate case; perturb one constant slightly).
    pub fn new(
        dose: Moles,
        volume: Liters,
        route: Route,
        ka_per_s: f64,
        ke_per_s: f64,
    ) -> Result<Self, BiochemError> {
        if dose.value() <= 0.0 || !dose.value().is_finite() {
            return Err(BiochemError::invalid("dose", "must be positive and finite"));
        }
        if volume.value() <= 0.0 || !volume.value().is_finite() {
            return Err(BiochemError::invalid(
                "volume",
                "must be positive and finite",
            ));
        }
        if ke_per_s <= 0.0 || !ke_per_s.is_finite() {
            return Err(BiochemError::invalid("ke", "must be positive and finite"));
        }
        if route == Route::Oral {
            if ka_per_s <= 0.0 || !ka_per_s.is_finite() {
                return Err(BiochemError::invalid("ka", "must be positive and finite"));
            }
            if (ka_per_s - ke_per_s).abs() < 1e-12 {
                return Err(BiochemError::invalid(
                    "ka",
                    "must differ from ke (degenerate oral model)",
                ));
            }
        }
        Ok(Self {
            dose,
            volume,
            route,
            ka_per_s,
            ke_per_s,
        })
    }

    /// Plasma concentration a time `t` after dosing (zero for `t < 0`).
    pub fn concentration(&self, t: Seconds) -> Molar {
        if t.value() < 0.0 {
            return Molar::ZERO;
        }
        let c0 = self.dose.value() / self.volume.value(); // mol/L
        let c = match self.route {
            Route::Intravenous => c0 * (-self.ke_per_s * t.value()).exp(),
            Route::Oral => {
                let (ka, ke) = (self.ka_per_s, self.ke_per_s);
                c0 * ka / (ka - ke) * ((-ke * t.value()).exp() - (-ka * t.value()).exp())
            }
        };
        Molar::new(c.max(0.0))
    }

    /// Elimination half-life `ln 2 / ke`.
    pub fn half_life(&self) -> Seconds {
        Seconds::new(core::f64::consts::LN_2 / self.ke_per_s)
    }

    /// Time of peak plasma concentration (`0` for IV bolus;
    /// `ln(ka/ke)/(ka−ke)` for oral).
    pub fn time_to_peak(&self) -> Seconds {
        match self.route {
            Route::Intravenous => Seconds::ZERO,
            Route::Oral => {
                Seconds::new((self.ka_per_s / self.ke_per_s).ln() / (self.ka_per_s - self.ke_per_s))
            }
        }
    }

    /// Samples the concentration timeline at interval `dt` over `duration`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `duration` is not strictly positive.
    pub fn timeline(&self, duration: Seconds, dt: Seconds) -> Vec<(Seconds, Molar)> {
        assert!(
            dt.value() > 0.0 && duration.value() > 0.0,
            "need positive times"
        );
        let n = (duration.value() / dt.value()).ceil() as usize;
        (0..=n)
            .map(|k| {
                let t = Seconds::new((k as f64 * dt.value()).min(duration.value()));
                (t, self.concentration(t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oral() -> OneCompartmentPk {
        OneCompartmentPk::new(
            Moles::from_millimoles(35.0),
            Liters::new(42.0),
            Route::Oral,
            1.5e-4,
            3.2e-5,
        )
        .expect("valid")
    }

    #[test]
    fn construction_validates() {
        let d = Moles::from_millimoles(1.0);
        let v = Liters::new(40.0);
        assert!(OneCompartmentPk::new(Moles::ZERO, v, Route::Intravenous, 0.0, 1e-4).is_err());
        assert!(OneCompartmentPk::new(d, Liters::ZERO, Route::Intravenous, 0.0, 1e-4).is_err());
        assert!(OneCompartmentPk::new(d, v, Route::Intravenous, 0.0, 0.0).is_err());
        assert!(OneCompartmentPk::new(d, v, Route::Oral, 1e-4, 1e-4).is_err());
        assert!(OneCompartmentPk::new(d, v, Route::Oral, 0.0, 1e-4).is_err());
    }

    #[test]
    fn iv_starts_at_dose_over_volume() {
        let pk = OneCompartmentPk::new(
            Moles::from_millimoles(42.0),
            Liters::new(42.0),
            Route::Intravenous,
            0.0,
            3.2e-5,
        )
        .expect("valid");
        assert!((pk.concentration(Seconds::ZERO).as_millimolar() - 1.0).abs() < 1e-12);
        // One half-life later: half.
        let c = pk.concentration(pk.half_life());
        assert!((c.as_millimolar() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn oral_peaks_then_decays() {
        let pk = oral();
        let t_peak = pk.time_to_peak();
        let c_peak = pk.concentration(t_peak);
        let before = pk.concentration(t_peak * 0.3);
        let after = pk.concentration(t_peak * 4.0);
        assert!(c_peak.value() > before.value());
        assert!(c_peak.value() > after.value());
        assert_eq!(pk.concentration(Seconds::new(-1.0)), Molar::ZERO);
        assert!(pk.concentration(Seconds::ZERO).value() < 1e-15);
    }

    #[test]
    fn peak_time_is_a_maximum() {
        let pk = oral();
        let t = pk.time_to_peak().value();
        let c = |tt: f64| pk.concentration(Seconds::new(tt)).value();
        assert!(c(t) >= c(t * 0.99));
        assert!(c(t) >= c(t * 1.01));
    }

    #[test]
    fn timeline_covers_duration() {
        let pk = oral();
        let tl = pk.timeline(Seconds::from_hours(12.0), Seconds::from_minutes(10.0));
        assert_eq!(tl.len(), 73);
        assert!((tl.last().expect("nonempty").0.as_hours() - 12.0).abs() < 1e-9);
    }
}
