//! Immobilized enzyme films and their prosthetic groups.

use crate::error::BiochemError;
use crate::michaelis::MichaelisMenten;
use bios_units::{Molar, MolesPerCm2, MolesPerCm2PerSecond};

/// The redox-active prosthetic group of a sensing enzyme (paper §I-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ProstheticGroup {
    /// Flavin adenine dinucleotide — glucose, glutamate, cholesterol oxidase.
    Fad,
    /// Flavin mononucleotide — lactate oxidase.
    Fmn,
    /// Heme — cytochromes P450 (the electron supplier of paper eq. 4).
    Heme,
}

impl core::fmt::Display for ProstheticGroup {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ProstheticGroup::Fad => "FAD",
            ProstheticGroup::Fmn => "FMN",
            ProstheticGroup::Heme => "heme",
        };
        f.write_str(s)
    }
}

/// An enzyme monolayer/film immobilized on an electrode: surface coverage
/// `Γ`, turnover number `k_cat` and apparent Michaelis constant.
///
/// Its substrate turnover flux is `Γ·k_cat·C/(Km + C)` in mol/(cm²·s) — the
/// molecular source of every faradaic sensing current in the workspace.
///
/// # Example
///
/// ```
/// use bios_biochem::EnzymeFilm;
/// use bios_units::{Molar, MolesPerCm2};
///
/// # fn main() -> Result<(), bios_biochem::BiochemError> {
/// let film = EnzymeFilm::new(
///     MolesPerCm2::from_picomoles_per_cm2(50.0),
///     300.0, // kcat, 1/s
///     Molar::from_millimolar(36.0),
/// )?;
/// let flux = film.turnover_flux(Molar::from_millimolar(4.0));
/// assert!(flux.value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnzymeFilm {
    coverage: MolesPerCm2,
    kcat_per_s: f64,
    kinetics: MichaelisMenten,
}

impl EnzymeFilm {
    /// Creates a film from coverage, turnover number and apparent `Km`.
    ///
    /// # Errors
    ///
    /// Returns [`BiochemError::InvalidParameter`] for non-positive coverage
    /// or `k_cat`, or an invalid `Km`.
    pub fn new(coverage: MolesPerCm2, kcat_per_s: f64, km: Molar) -> Result<Self, BiochemError> {
        if coverage.value() <= 0.0 || !coverage.value().is_finite() {
            return Err(BiochemError::invalid(
                "coverage",
                "must be positive and finite",
            ));
        }
        if kcat_per_s <= 0.0 || !kcat_per_s.is_finite() {
            return Err(BiochemError::invalid("kcat", "must be positive and finite"));
        }
        Ok(Self {
            coverage,
            kcat_per_s,
            kinetics: MichaelisMenten::new(km)?,
        })
    }

    /// Surface coverage `Γ`.
    pub fn coverage(&self) -> MolesPerCm2 {
        self.coverage
    }

    /// Turnover number `k_cat` in 1/s.
    pub fn kcat_per_s(&self) -> f64 {
        self.kcat_per_s
    }

    /// The film's Michaelis–Menten law.
    pub fn kinetics(&self) -> &MichaelisMenten {
        &self.kinetics
    }

    /// Maximum areal turnover flux `Γ·k_cat`.
    pub fn max_flux(&self) -> MolesPerCm2PerSecond {
        MolesPerCm2PerSecond::new(self.coverage.value() * self.kcat_per_s)
    }

    /// Substrate turnover flux at concentration `c`.
    pub fn turnover_flux(&self, c: Molar) -> MolesPerCm2PerSecond {
        self.max_flux() * self.kinetics.saturation(c)
    }

    /// Scales the coverage (e.g. nanostructured electrodes immobilize more
    /// enzyme), returning the modified film.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn with_coverage_scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "coverage factor must be positive");
        self.coverage = self.coverage * factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn film() -> EnzymeFilm {
        EnzymeFilm::new(
            MolesPerCm2::from_picomoles_per_cm2(50.0),
            300.0,
            Molar::from_millimolar(36.0),
        )
        .expect("valid")
    }

    #[test]
    fn construction_validates() {
        let c = MolesPerCm2::from_picomoles_per_cm2(50.0);
        assert!(EnzymeFilm::new(MolesPerCm2::ZERO, 300.0, Molar::new(0.01)).is_err());
        assert!(EnzymeFilm::new(c, 0.0, Molar::new(0.01)).is_err());
        assert!(EnzymeFilm::new(c, 300.0, Molar::ZERO).is_err());
    }

    #[test]
    fn flux_saturates_at_max() {
        let f = film();
        let huge = f.turnover_flux(Molar::new(100.0));
        assert!(huge.value() <= f.max_flux().value());
        assert!(huge.value() > 0.99 * f.max_flux().value());
    }

    #[test]
    fn flux_linear_at_low_concentration() {
        let f = film();
        let j1 = f.turnover_flux(Molar::from_millimolar(0.1));
        let j2 = f.turnover_flux(Molar::from_millimolar(0.2));
        assert!((j2.value() / j1.value() - 2.0).abs() < 0.01);
    }

    #[test]
    fn coverage_scaling() {
        let f = film().with_coverage_scaled(12.0);
        assert!((f.max_flux().value() / film().max_flux().value() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn prosthetic_display() {
        assert_eq!(ProstheticGroup::Fad.to_string(), "FAD");
        assert_eq!(ProstheticGroup::Fmn.to_string(), "FMN");
        assert_eq!(ProstheticGroup::Heme.to_string(), "heme");
    }
}
