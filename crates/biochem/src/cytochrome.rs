//! Cytochrome P450 biosensors: direct electron transfer to the heme centre
//! drives substrate reduction (paper eq. 4); each drug shows a catalytic
//! cathodic peak at its own potential (Table II), so one isoform can sense
//! several targets in a single cyclic voltammogram.

use crate::analyte::Analyte;
use crate::error::BiochemError;
use crate::michaelis::MichaelisMenten;
use crate::tables::{cyp_rows, performance_of};
use bios_units::{
    AmpsPerCm2, Kelvin, Molar, MolesPerCm2, Volts, VoltsPerSecond, FARADAY, GAS_CONSTANT,
};

/// The cytochrome P450 isoforms of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CypIsoform {
    /// CYP1A2 — clozapine.
    Cyp1A2,
    /// CYP3A4 — erythromycin, indinavir.
    Cyp3A4,
    /// CYP11A1 — cholesterol.
    Cyp11A1,
    /// CYP2B4 — benzphetamine, aminopyrine (two peaks on one electrode).
    Cyp2B4,
    /// CYP2B6 — bupropion, lidocaine.
    Cyp2B6,
    /// CYP2C9 — torsemide, diclofenac.
    Cyp2C9,
    /// CYP2E1 — p-nitrophenol.
    Cyp2E1,
}

impl CypIsoform {
    /// All isoforms in Table II order.
    pub const ALL: [CypIsoform; 7] = [
        CypIsoform::Cyp1A2,
        CypIsoform::Cyp3A4,
        CypIsoform::Cyp11A1,
        CypIsoform::Cyp2B4,
        CypIsoform::Cyp2B6,
        CypIsoform::Cyp2C9,
        CypIsoform::Cyp2E1,
    ];

    /// The drugs this isoform detects (Table II).
    pub fn substrates(self) -> Vec<Analyte> {
        cyp_rows(self).map(|r| r.target).collect()
    }
}

impl core::fmt::Display for CypIsoform {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CypIsoform::Cyp1A2 => "CYP1A2",
            CypIsoform::Cyp3A4 => "CYP3A4",
            CypIsoform::Cyp11A1 => "CYP11A1",
            CypIsoform::Cyp2B4 => "CYP2B4",
            CypIsoform::Cyp2B6 => "CYP2B6",
            CypIsoform::Cyp2C9 => "CYP2C9",
            CypIsoform::Cyp2E1 => "CYP2E1",
        };
        f.write_str(s)
    }
}

/// Default catalytic sensitivity for Table II drugs that Table III does not
/// quantify, in µA/(mM·cm²) (documented substitution: a modest mid-range
/// value between benzphetamine's 0.28 and aminopyrine's 2.8).
pub const DEFAULT_CYP_SENSITIVITY_UA: f64 = 0.8;

/// Critical scan rate above which catalytic peaks start drifting cathodically
/// (Laviron kinetics). The paper's §II-C guidance — "the electrochemical cell
/// reacts only to slow potential variations of about 20 mV/sec" — maps to
/// staying below this.
pub const PEAK_SHIFT_CRITICAL_RATE: VoltsPerSecond = VoltsPerSecond::new(0.030);

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct CypSubstrate {
    analyte: Analyte,
    peak_potential: Volts,
    sensitivity_si: f64, // A/(M·cm²)
    kinetics: MichaelisMenten,
    blank_sd: AmpsPerCm2,
}

/// A calibrated cytochrome P450 voltammetric sensor.
///
/// # Example
///
/// ```
/// use bios_biochem::{Analyte, CypIsoform, CypSensor};
/// use bios_units::{Molar, T_ROOM, Volts, VoltsPerSecond};
///
/// # fn main() -> Result<(), bios_biochem::BiochemError> {
/// let sensor = CypSensor::from_registry(CypIsoform::Cyp2B4)?;
/// let rate = VoltsPerSecond::from_millivolts_per_second(20.0);
/// // At benzphetamine's reduction potential the cathodic current grows
/// // with the drug concentration.
/// let concs = [(Analyte::Benzphetamine, Molar::from_millimolar(1.0))];
/// let j = sensor.current_density(Volts::new(-0.25), rate, false, &concs, T_ROOM);
/// assert!(j.value() < 0.0); // cathodic
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CypSensor {
    isoform: CypIsoform,
    coverage: MolesPerCm2,
    substrates: Vec<CypSubstrate>,
}

impl CypSensor {
    /// Builds the sensor for an isoform from the registry: peak potentials
    /// from Table II; sensitivity/`Km`/blank noise from Table III where
    /// available, defaults otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`BiochemError::UnsupportedAnalyte`] if the isoform has no
    /// Table II substrates (cannot happen for the shipped variants).
    pub fn from_registry(isoform: CypIsoform) -> Result<Self, BiochemError> {
        let mut substrates = Vec::new();
        for row in cyp_rows(isoform) {
            let (sensitivity_si, km, blank_sd) = match performance_of(row.target) {
                Some(perf) => (perf.sensitivity_si(), perf.km_apparent(), perf.blank_sd()),
                None => {
                    let s = DEFAULT_CYP_SENSITIVITY_UA * 1e-3;
                    let km = MichaelisMenten::from_linear_limit(
                        row.target.typical_range().hi(),
                        crate::tables::LINEARITY_TOLERANCE,
                    )
                    .km();
                    // Default blank noise equivalent to a 2 µM LOD.
                    (s, km, AmpsPerCm2::new(2e-6 * s / 3.0))
                }
            };
            substrates.push(CypSubstrate {
                analyte: row.target,
                peak_potential: row.reduction_potential,
                sensitivity_si,
                kinetics: MichaelisMenten::new(km)?,
                blank_sd,
            });
        }
        if substrates.is_empty() {
            return Err(BiochemError::UnsupportedAnalyte {
                probe: isoform.to_string(),
                analyte: "(none)".to_string(),
            });
        }
        Ok(Self {
            isoform,
            coverage: MolesPerCm2::from_picomoles_per_cm2(2.0),
            substrates,
        })
    }

    /// The isoform.
    pub fn isoform(&self) -> CypIsoform {
        self.isoform
    }

    /// Heme surface coverage (baseline protein wave amplitude).
    pub fn coverage(&self) -> MolesPerCm2 {
        self.coverage
    }

    /// Overrides the heme coverage.
    ///
    /// # Panics
    ///
    /// Panics unless the coverage is strictly positive.
    pub fn with_coverage(mut self, coverage: MolesPerCm2) -> Self {
        assert!(coverage.value() > 0.0, "coverage must be positive");
        self.coverage = coverage;
        self
    }

    /// The analytes this sensor can report.
    pub fn substrates(&self) -> impl Iterator<Item = Analyte> + '_ {
        self.substrates.iter().map(|s| s.analyte)
    }

    /// Whether the sensor responds to `analyte`.
    pub fn supports(&self, analyte: Analyte) -> bool {
        self.substrates.iter().any(|s| s.analyte == analyte)
    }

    /// Catalytic sensitivity for `analyte` in A/(M·cm²).
    pub fn sensitivity_si(&self, analyte: Analyte) -> Option<f64> {
        self.find(analyte).map(|s| s.sensitivity_si)
    }

    /// Blank current-density noise SD for `analyte`'s peak readout.
    pub fn blank_sd(&self, analyte: Analyte) -> Option<AmpsPerCm2> {
        self.find(analyte).map(|s| s.blank_sd)
    }

    /// The Michaelis–Menten law for `analyte`.
    pub fn kinetics(&self, analyte: Analyte) -> Option<&MichaelisMenten> {
        self.find(analyte).map(|s| &s.kinetics)
    }

    /// Expected cathodic peak potential for `analyte` at scan rate `v`,
    /// including the Laviron drift that sets in above
    /// [`PEAK_SHIFT_CRITICAL_RATE`] — the quantitative form of the paper's
    /// 20 mV/s guidance.
    pub fn peak_potential(
        &self,
        analyte: Analyte,
        scan_rate: VoltsPerSecond,
        temperature: Kelvin,
    ) -> Option<Volts> {
        let sub = self.find(analyte)?;
        Some(Volts::new(
            sub.peak_potential.value() - self.laviron_shift(scan_rate, temperature),
        ))
    }

    /// The ideal (slow-scan) peak potential from Table II.
    pub fn nominal_peak_potential(&self, analyte: Analyte) -> Option<Volts> {
        self.find(analyte).map(|s| s.peak_potential)
    }

    /// Potential window that covers every substrate peak with 150 mV of
    /// margin on each side — the CV program the platform schedules.
    pub fn recommended_window(&self) -> (Volts, Volts) {
        let lo = self
            .substrates
            .iter()
            .map(|s| s.peak_potential.value())
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .substrates
            .iter()
            .map(|s| s.peak_potential.value())
            .fold(f64::NEG_INFINITY, f64::max);
        (Volts::new(hi + 0.15), Volts::new(lo - 0.15))
    }

    /// Total cathodic current density at potential `e` during a sweep.
    ///
    /// The signal is the sum of the heme baseline wave (sign follows the
    /// sweep direction) and, on cathodic sweeps, one catalytic peak per
    /// substrate at its Table II potential with amplitude
    /// `S·Km·C/(Km + C)` and the ideal surface-wave line shape.
    pub fn current_density(
        &self,
        e: Volts,
        scan_rate: VoltsPerSecond,
        direction_up: bool,
        concentrations: &[(Analyte, Molar)],
        temperature: Kelvin,
    ) -> AmpsPerCm2 {
        let rt = GAS_CONSTANT * temperature.value();
        // Baseline heme wave centred at the mean substrate potential.
        let e_heme = self
            .substrates
            .iter()
            .map(|s| s.peak_potential.value())
            .sum::<f64>()
            / self.substrates.len() as f64;
        let xi = (FARADAY * (e.value() - e_heme) / rt).clamp(-200.0, 200.0);
        let shape = xi.exp() / (1.0 + xi.exp()).powi(2);
        let base_mag = FARADAY * FARADAY / rt * self.coverage.value() * scan_rate.value() * shape;
        let mut j = if direction_up { base_mag } else { -base_mag };
        if !direction_up {
            let shift = self.laviron_shift(scan_rate, temperature);
            for sub in &self.substrates {
                let c = concentrations
                    .iter()
                    .find(|(a, _)| *a == sub.analyte)
                    .map(|(_, c)| *c)
                    .unwrap_or(Molar::ZERO);
                if c.value() <= 0.0 {
                    continue;
                }
                let amplitude =
                    sub.sensitivity_si * sub.kinetics.km().value() * sub.kinetics.saturation(c);
                let e_peak = sub.peak_potential.value() - shift;
                // Two-electron catalytic wave (paper eq. 4: substrate + O₂ +
                // 2H⁺ + 2e⁻ → product + H₂O), so the line shape uses n = 2 —
                // FWHM ≈ 45 mV, which is what lets CYP2B4 resolve
                // benzphetamine (−250 mV) from aminopyrine (−400 mV).
                let xi_c = (2.0 * FARADAY * (e.value() - e_peak) / rt).clamp(-200.0, 200.0);
                // Normalized to 1 at the peak (4× the logistic product).
                let shape_c = 4.0 * xi_c.exp() / (1.0 + xi_c.exp()).powi(2);
                j -= amplitude * shape_c;
            }
        }
        AmpsPerCm2::new(j)
    }

    fn find(&self, analyte: Analyte) -> Option<&CypSubstrate> {
        self.substrates.iter().find(|s| s.analyte == analyte)
    }

    /// Cathodic peak drift beyond the critical scan rate (V).
    fn laviron_shift(&self, scan_rate: VoltsPerSecond, temperature: Kelvin) -> f64 {
        let ratio = scan_rate.value() / PEAK_SHIFT_CRITICAL_RATE.value();
        if ratio <= 1.0 {
            0.0
        } else {
            // RT/(αF)·ln(v/v_c) with α = 0.5.
            2.0 * GAS_CONSTANT * temperature.value() / FARADAY * ratio.ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::T_ROOM;

    fn slow() -> VoltsPerSecond {
        VoltsPerSecond::from_millivolts_per_second(20.0)
    }

    #[test]
    fn every_isoform_builds_from_registry() {
        for iso in CypIsoform::ALL {
            let s = CypSensor::from_registry(iso).expect("registry");
            assert!(s.substrates().count() >= 1, "{iso}");
        }
    }

    #[test]
    fn cyp2b4_detects_two_drugs() {
        let s = CypSensor::from_registry(CypIsoform::Cyp2B4).expect("registry");
        assert!(s.supports(Analyte::Benzphetamine));
        assert!(s.supports(Analyte::Aminopyrine));
        assert!(!s.supports(Analyte::Clozapine));
        assert_eq!(
            s.nominal_peak_potential(Analyte::Benzphetamine),
            Some(Volts::new(-0.250))
        );
        assert_eq!(
            s.nominal_peak_potential(Analyte::Aminopyrine),
            Some(Volts::new(-0.400))
        );
    }

    #[test]
    fn slow_scan_peaks_sit_at_table_ii_potentials() {
        let s = CypSensor::from_registry(CypIsoform::Cyp2B4).expect("registry");
        let e = s
            .peak_potential(Analyte::Benzphetamine, slow(), T_ROOM)
            .expect("substrate");
        assert_eq!(e, Volts::new(-0.250));
    }

    #[test]
    fn fast_scans_shift_peaks_cathodically() {
        let s = CypSensor::from_registry(CypIsoform::Cyp2B4).expect("registry");
        let nominal = s
            .nominal_peak_potential(Analyte::Benzphetamine)
            .expect("substrate");
        let fast = s
            .peak_potential(
                Analyte::Benzphetamine,
                VoltsPerSecond::from_millivolts_per_second(200.0),
                T_ROOM,
            )
            .expect("substrate");
        assert!(
            (nominal - fast).as_millivolts() > 50.0,
            "fast scan must drift; drift = {}",
            (nominal - fast).as_millivolts()
        );
    }

    #[test]
    fn catalytic_peak_grows_with_concentration() {
        let s = CypSensor::from_registry(CypIsoform::Cyp2B4).expect("registry");
        let e = Volts::new(-0.25);
        let j1 = s.current_density(
            e,
            slow(),
            false,
            &[(Analyte::Benzphetamine, Molar::from_millimolar(0.4))],
            T_ROOM,
        );
        let j2 = s.current_density(
            e,
            slow(),
            false,
            &[(Analyte::Benzphetamine, Molar::from_millimolar(0.8))],
            T_ROOM,
        );
        assert!(j2.value() < j1.value(), "more drug → more cathodic current");
        // Approximately doubles in the linear regime.
        let s_blank = s.current_density(e, slow(), false, &[], T_ROOM);
        let r = (j2.value() - s_blank.value()) / (j1.value() - s_blank.value());
        assert!((r - 2.0).abs() < 0.1, "ratio {r}");
    }

    #[test]
    fn two_drugs_give_two_separated_peaks() {
        let s = CypSensor::from_registry(CypIsoform::Cyp2B4).expect("registry");
        let concs = [
            (Analyte::Benzphetamine, Molar::from_millimolar(1.0)),
            (Analyte::Aminopyrine, Molar::from_millimolar(4.0)),
        ];
        // Scan the window and find local cathodic maxima.
        let mut js = Vec::new();
        for k in 0..=700 {
            let e = Volts::new(-0.65 + 1e-3 * k as f64);
            js.push((
                e,
                s.current_density(e, slow(), false, &concs, T_ROOM).value(),
            ));
        }
        let mut minima = Vec::new();
        for w in 2..js.len() - 2 {
            if js[w].1 < js[w - 1].1
                && js[w].1 < js[w + 1].1
                && js[w].1 < js[w - 2].1
                && js[w].1 < js[w + 2].1
            {
                minima.push(js[w].0);
            }
        }
        assert_eq!(
            minima.len(),
            2,
            "expected two catalytic peaks, got {minima:?}"
        );
        assert!(
            (minima[0].as_millivolts() + 400.0).abs() < 15.0,
            "{:?}",
            minima[0]
        );
        assert!(
            (minima[1].as_millivolts() + 250.0).abs() < 15.0,
            "{:?}",
            minima[1]
        );
    }

    #[test]
    fn anodic_sweep_has_no_catalytic_peaks() {
        let s = CypSensor::from_registry(CypIsoform::Cyp2B4).expect("registry");
        let j = s.current_density(
            Volts::new(-0.25),
            slow(),
            true,
            &[(Analyte::Benzphetamine, Molar::from_millimolar(1.0))],
            T_ROOM,
        );
        assert!(
            j.value() > 0.0,
            "upward sweep carries only the anodic baseline"
        );
    }

    #[test]
    fn recommended_window_covers_all_peaks() {
        let s = CypSensor::from_registry(CypIsoform::Cyp3A4).expect("registry");
        let (start, vertex) = s.recommended_window();
        assert!(start.value() > -0.625 + 0.1);
        assert!(vertex.value() < -0.750 - 0.1);
    }

    #[test]
    fn table_iii_sensitivities_flow_through() {
        let s = CypSensor::from_registry(CypIsoform::Cyp2B4).expect("registry");
        assert!(
            (s.sensitivity_si(Analyte::Benzphetamine).expect("substrate") - 0.28e-3).abs() < 1e-12
        );
        assert!(
            (s.sensitivity_si(Analyte::Aminopyrine).expect("substrate") - 2.8e-3).abs() < 1e-12
        );
        // Unquantified drug gets the documented default.
        let s2 = CypSensor::from_registry(CypIsoform::Cyp1A2).expect("registry");
        assert!(
            (s2.sensitivity_si(Analyte::Clozapine).expect("substrate")
                - DEFAULT_CYP_SENSITIVITY_UA * 1e-3)
                .abs()
                < 1e-12
        );
    }
}
