//! The unified probe abstraction the platform layer selects over.

use crate::analyte::Analyte;
use crate::cytochrome::CypIsoform;
use crate::oxidase::Oxidase;
use crate::tables::{cyp_rows, TABLE_I};

/// The electrochemical technique a probe is read out with (paper §I-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Technique {
    /// Fixed potential, current vs time (oxidases → H₂O₂ oxidation).
    Chronoamperometry,
    /// Triangular sweep, current vs potential (CYPs → catalytic peaks).
    CyclicVoltammetry,
}

impl core::fmt::Display for Technique {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Technique::Chronoamperometry => "chronoamperometry",
            Technique::CyclicVoltammetry => "cyclic voltammetry",
        };
        f.write_str(s)
    }
}

/// A biological recognition element that can functionalize a working
/// electrode: an oxidase or a cytochrome P450 isoform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Probe {
    /// An oxidase (Table I), read by chronoamperometry.
    Oxidase(Oxidase),
    /// A cytochrome P450 isoform (Table II), read by cyclic voltammetry.
    Cytochrome(CypIsoform),
}

impl Probe {
    /// Every probe in the registry.
    pub fn all() -> Vec<Probe> {
        let mut v: Vec<Probe> = Oxidase::ALL.iter().copied().map(Probe::Oxidase).collect();
        v.extend(CypIsoform::ALL.iter().copied().map(Probe::Cytochrome));
        v
    }

    /// The analytes this probe can report.
    pub fn targets(self) -> Vec<Analyte> {
        match self {
            Probe::Oxidase(o) => vec![o.target()],
            Probe::Cytochrome(c) => c.substrates(),
        }
    }

    /// Whether the probe senses `analyte`.
    pub fn senses(self, analyte: Analyte) -> bool {
        self.targets().contains(&analyte)
    }

    /// The readout technique this probe requires.
    pub fn technique(self) -> Technique {
        match self {
            Probe::Oxidase(_) => Technique::Chronoamperometry,
            Probe::Cytochrome(_) => Technique::CyclicVoltammetry,
        }
    }

    /// All probes that can sense `analyte`, in registry order.
    ///
    /// Cholesterol is the interesting case: both cholesterol oxidase
    /// (Table I) and CYP11A1 (Table II) qualify — a real design choice the
    /// platform explorer gets to make.
    pub fn candidates_for(analyte: Analyte) -> Vec<Probe> {
        let mut out = Vec::new();
        for row in &TABLE_I {
            if row.target == analyte {
                out.push(Probe::Oxidase(row.oxidase));
            }
        }
        for iso in CypIsoform::ALL {
            if cyp_rows(iso).any(|r| r.target == analyte) {
                out.push(Probe::Cytochrome(iso));
            }
        }
        out
    }
}

impl core::fmt::Display for Probe {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Probe::Oxidase(o) => write!(f, "{o}"),
            Probe::Cytochrome(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eleven_probes() {
        assert_eq!(Probe::all().len(), 4 + 7);
    }

    #[test]
    fn technique_follows_family() {
        assert_eq!(
            Probe::Oxidase(Oxidase::Glucose).technique(),
            Technique::Chronoamperometry
        );
        assert_eq!(
            Probe::Cytochrome(CypIsoform::Cyp2B4).technique(),
            Technique::CyclicVoltammetry
        );
    }

    #[test]
    fn cholesterol_has_two_candidate_probes() {
        let c = Probe::candidates_for(Analyte::Cholesterol);
        assert_eq!(c.len(), 2);
        assert!(c.contains(&Probe::Oxidase(Oxidase::Cholesterol)));
        assert!(c.contains(&Probe::Cytochrome(CypIsoform::Cyp11A1)));
    }

    #[test]
    fn glucose_has_single_candidate() {
        let c = Probe::candidates_for(Analyte::Glucose);
        assert_eq!(c, vec![Probe::Oxidase(Oxidase::Glucose)]);
    }

    #[test]
    fn interferents_have_no_probe() {
        assert!(Probe::candidates_for(Analyte::Dopamine).is_empty());
        assert!(Probe::candidates_for(Analyte::Ascorbate).is_empty());
    }

    #[test]
    fn senses_is_consistent_with_targets() {
        for p in Probe::all() {
            for t in p.targets() {
                assert!(p.senses(t));
            }
            assert!(!p.senses(Analyte::Dopamine));
        }
    }
}
