//! Michaelis–Menten kinetics — the saturation law that sets every
//! biosensor's linear range.

use crate::error::BiochemError;
use bios_units::Molar;

/// Michaelis–Menten saturation kinetics `v = V·C/(Km + C)` (normalized to
/// `V = 1`; multiply by your Vmax).
///
/// The *apparent* `Km` of an immobilized, membrane-covered enzyme is larger
/// than the solution value; in this workspace apparent `Km`s are derived
/// from the paper's reported linear ranges (see `tables`).
///
/// # Example
///
/// ```
/// use bios_biochem::MichaelisMenten;
/// use bios_units::Molar;
///
/// # fn main() -> Result<(), bios_biochem::BiochemError> {
/// let mm = MichaelisMenten::new(Molar::from_millimolar(36.0))?;
/// // Half-saturation at Km.
/// assert!((mm.saturation(Molar::from_millimolar(36.0)) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MichaelisMenten {
    km: Molar,
}

impl MichaelisMenten {
    /// Creates the law with the given (apparent) Michaelis constant.
    ///
    /// # Errors
    ///
    /// Returns [`BiochemError::InvalidParameter`] unless `Km` is strictly
    /// positive and finite.
    pub fn new(km: Molar) -> Result<Self, BiochemError> {
        if km.value() <= 0.0 || !km.value().is_finite() {
            return Err(BiochemError::invalid("km", "must be positive and finite"));
        }
        Ok(Self { km })
    }

    /// The Michaelis constant.
    pub fn km(&self) -> Molar {
        self.km
    }

    /// Fractional saturation `C/(Km + C)` in `[0, 1)`.
    ///
    /// Negative concentrations are clamped to zero (they can only arise from
    /// numerical noise upstream).
    pub fn saturation(&self, c: Molar) -> f64 {
        let c = c.value().max(0.0);
        c / (self.km.value() + c)
    }

    /// First-order slope at the origin, `d(saturation)/dC = 1/Km` (per M).
    pub fn initial_slope_per_molar(&self) -> f64 {
        1.0 / self.km.value()
    }

    /// Relative deviation from the initial linear law at concentration `c`:
    /// `1 − v(C)/(C/Km) = C/(Km + C)`.
    ///
    /// This equals the saturation itself — a handy identity: the fractional
    /// nonlinearity *is* the fractional saturation.
    pub fn nonlinearity(&self, c: Molar) -> f64 {
        self.saturation(c)
    }

    /// The largest concentration whose nonlinearity stays below `tolerance`:
    /// `C_max = Km·tol/(1 − tol)`.
    ///
    /// With a 10% tolerance the linear range ends at `Km/9` — which is how
    /// the registry back-derives apparent `Km`s from the paper's Table III
    /// linear ranges.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tolerance < 1`.
    pub fn linear_limit(&self, tolerance: f64) -> Molar {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "tolerance must be in (0, 1)"
        );
        Molar::new(self.km.value() * tolerance / (1.0 - tolerance))
    }

    /// Inverse problem: the apparent `Km` for which `linear_limit(tolerance)`
    /// equals `c_max`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tolerance < 1` and `c_max > 0`.
    pub fn from_linear_limit(c_max: Molar, tolerance: f64) -> Self {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "tolerance must be in (0, 1)"
        );
        assert!(c_max.value() > 0.0, "linear limit must be positive");
        Self {
            km: Molar::new(c_max.value() * (1.0 - tolerance) / tolerance),
        }
    }

    /// The law under a *competitive* inhibitor at concentration `i` with
    /// inhibition constant `ki`: the apparent `Km` inflates to
    /// `Km·(1 + [I]/Ki)` while `Vmax` is untouched — e.g. a co-administered
    /// drug competing for the same CYP active site, the classic mechanism
    /// behind drug–drug interactions in therapeutic monitoring.
    ///
    /// # Errors
    ///
    /// Returns [`BiochemError::InvalidParameter`] for negative inhibitor
    /// concentration or non-positive `Ki`.
    pub fn with_competitive_inhibitor(
        &self,
        inhibitor: Molar,
        ki: Molar,
    ) -> Result<Self, BiochemError> {
        if inhibitor.value() < 0.0 || !inhibitor.value().is_finite() {
            return Err(BiochemError::invalid(
                "inhibitor",
                "must be non-negative and finite",
            ));
        }
        if ki.value() <= 0.0 || !ki.value().is_finite() {
            return Err(BiochemError::invalid("ki", "must be positive and finite"));
        }
        Self::new(Molar::new(
            self.km.value() * (1.0 + inhibitor.value() / ki.value()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(km_mm: f64) -> MichaelisMenten {
        MichaelisMenten::new(Molar::from_millimolar(km_mm)).expect("valid")
    }

    #[test]
    fn construction_validates() {
        assert!(MichaelisMenten::new(Molar::ZERO).is_err());
        assert!(MichaelisMenten::new(Molar::new(-1.0)).is_err());
        assert!(MichaelisMenten::new(Molar::new(f64::NAN)).is_err());
    }

    #[test]
    fn limits_of_saturation() {
        let m = mm(10.0);
        assert_eq!(m.saturation(Molar::ZERO), 0.0);
        assert!(m.saturation(Molar::from_millimolar(1e6)) > 0.999);
        // Clamps negatives.
        assert_eq!(m.saturation(Molar::new(-1.0)), 0.0);
    }

    #[test]
    fn linear_limit_round_trips_with_inverse() {
        let m = mm(36.0);
        let c_max = m.linear_limit(0.1);
        assert!((c_max.as_millimolar() - 4.0).abs() < 1e-9);
        let back = MichaelisMenten::from_linear_limit(c_max, 0.1);
        assert!((back.km().as_millimolar() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn nonlinearity_equals_saturation() {
        let m = mm(20.0);
        for c_mm in [0.1, 1.0, 5.0, 20.0, 100.0] {
            let c = Molar::from_millimolar(c_mm);
            assert_eq!(m.nonlinearity(c), m.saturation(c));
        }
    }

    #[test]
    fn saturation_is_monotone() {
        let m = mm(5.0);
        let mut prev = -1.0;
        for k in 0..100 {
            let s = m.saturation(Molar::from_millimolar(k as f64 * 0.5));
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn linear_limit_rejects_bad_tolerance() {
        let _ = mm(1.0).linear_limit(1.0);
    }

    #[test]
    fn competitive_inhibition_inflates_km_only() {
        let base = mm(10.0);
        let inhibited = base
            .with_competitive_inhibitor(Molar::from_millimolar(5.0), Molar::from_millimolar(5.0))
            .expect("valid");
        // [I] = Ki doubles the apparent Km.
        assert!((inhibited.km().as_millimolar() - 20.0).abs() < 1e-9);
        // Saturation at very high substrate is unaffected (same Vmax).
        let huge = Molar::new(100.0);
        assert!((inhibited.saturation(huge) - base.saturation(huge)).abs() < 1e-3);
        // But low-concentration response halves.
        let low = Molar::from_millimolar(0.1);
        let ratio = inhibited.saturation(low) / base.saturation(low);
        assert!((ratio - 0.5).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn inhibition_validates_inputs() {
        let base = mm(10.0);
        assert!(base
            .with_competitive_inhibitor(Molar::new(-1.0), Molar::from_millimolar(1.0))
            .is_err());
        assert!(base
            .with_competitive_inhibitor(Molar::from_millimolar(1.0), Molar::ZERO)
            .is_err());
        // Zero inhibitor: unchanged.
        let same = base
            .with_competitive_inhibitor(Molar::ZERO, Molar::from_millimolar(1.0))
            .expect("valid");
        assert_eq!(same.km(), base.km());
    }
}
