//! Oxidase biosensors: enzyme → H₂O₂ → anodic current (paper eqs. 1–3).

use crate::analyte::Analyte;
use crate::enzyme::ProstheticGroup;
use crate::error::BiochemError;
use crate::membrane::Membrane;
use crate::michaelis::MichaelisMenten;
use crate::tables::{oxidase_row, performance_of, PerformanceRow};
use bios_units::{AmpsPerCm2, Molar, Seconds, Volts};

/// The four oxidases of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Oxidase {
    /// Glucose oxidase (GOD) — FAD prosthetic group.
    Glucose,
    /// Lactate oxidase — FMN prosthetic group.
    Lactate,
    /// L-glutamate oxidase (GlOD) — FAD.
    Glutamate,
    /// Cholesterol oxidase (COD) — FAD.
    Cholesterol,
}

impl Oxidase {
    /// All oxidase variants in Table I order.
    pub const ALL: [Oxidase; 4] = [
        Oxidase::Glucose,
        Oxidase::Lactate,
        Oxidase::Glutamate,
        Oxidase::Cholesterol,
    ];

    /// The metabolite this oxidase senses.
    pub fn target(self) -> Analyte {
        match self {
            Oxidase::Glucose => Analyte::Glucose,
            Oxidase::Lactate => Analyte::Lactate,
            Oxidase::Glutamate => Analyte::Glutamate,
            Oxidase::Cholesterol => Analyte::Cholesterol,
        }
    }

    /// The prosthetic group involved in the redox cycle (paper §I-B: FAD for
    /// most oxidases, FMN for lactate oxidase).
    pub fn prosthetic_group(self) -> ProstheticGroup {
        match self {
            Oxidase::Lactate => ProstheticGroup::Fmn,
            _ => ProstheticGroup::Fad,
        }
    }

    /// The Table I chronoamperometric working potential vs Ag/AgCl.
    pub fn applied_potential(self) -> Volts {
        oxidase_row(self).applied_potential
    }
}

impl core::fmt::Display for Oxidase {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Oxidase::Glucose => "glucose oxidase",
            Oxidase::Lactate => "lactate oxidase",
            Oxidase::Glutamate => "L-glutamate oxidase",
            Oxidase::Cholesterol => "cholesterol oxidase",
        };
        f.write_str(s)
    }
}

/// A calibrated oxidase biosensor model.
///
/// Produces anodic current density `j(C) = S·Km·C/(Km + C)` where the
/// low-concentration slope `S` and apparent `Km` come from the paper's
/// Table III (see `tables` for the calibration policy), with a membrane
/// that shapes the transient (Fig. 3).
///
/// # Example
///
/// ```
/// use bios_biochem::{Oxidase, OxidaseSensor};
/// use bios_units::Molar;
///
/// # fn main() -> Result<(), bios_biochem::BiochemError> {
/// let sensor = OxidaseSensor::from_registry(Oxidase::Glucose)?;
/// let j = sensor.steady_current_density(Molar::from_millimolar(4.0));
/// // Table III: 27.7 µA/(mM·cm²) × 4 mM × (1 − 10% saturation) ≈ 99.7 µA/cm².
/// assert!((j.as_microamps_per_cm2() - 99.7).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OxidaseSensor {
    oxidase: Oxidase,
    sensitivity_si: f64, // A/(M·cm²)
    kinetics: MichaelisMenten,
    membrane: Membrane,
    blank_sd: AmpsPerCm2,
}

impl OxidaseSensor {
    /// Builds the sensor with the Table III calibration for this oxidase's
    /// target (CNT-nanostructured electrode, as the paper's §III notes).
    ///
    /// # Errors
    ///
    /// Returns [`BiochemError::UnsupportedAnalyte`] if the registry lacks a
    /// performance row for the target (never happens for Table I oxidases
    /// except cholesterol-via-oxidase, which Table III reports via CYP11A1 —
    /// that case uses the CYP row's calibration).
    pub fn from_registry(oxidase: Oxidase) -> Result<Self, BiochemError> {
        let row =
            performance_of(oxidase.target()).ok_or_else(|| BiochemError::UnsupportedAnalyte {
                probe: oxidase.to_string(),
                analyte: oxidase.target().to_string(),
            })?;
        Self::from_performance(oxidase, row)
    }

    /// Builds the sensor from an explicit performance row (for what-if
    /// exploration with modified calibrations).
    ///
    /// # Errors
    ///
    /// Returns [`BiochemError::InvalidParameter`] for non-positive
    /// sensitivity.
    pub fn from_performance(oxidase: Oxidase, row: &PerformanceRow) -> Result<Self, BiochemError> {
        if row.sensitivity_si() <= 0.0 {
            return Err(BiochemError::invalid("sensitivity", "must be positive"));
        }
        Ok(Self {
            oxidase,
            sensitivity_si: row.sensitivity_si(),
            kinetics: MichaelisMenten::new(row.km_apparent())?,
            membrane: Membrane::paper_glucose_membrane(),
            blank_sd: row.blank_sd(),
        })
    }

    /// Replaces the membrane (thinner membrane → faster response, ablation
    /// A2/F3 material).
    pub fn with_membrane(mut self, membrane: Membrane) -> Self {
        self.membrane = membrane;
        self
    }

    /// Scales the sensitivity, e.g. to model removing the CNT
    /// nanostructuring (ablation A3).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn with_sensitivity_scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "sensitivity factor must be positive");
        self.sensitivity_si *= factor;
        self.blank_sd = AmpsPerCm2::new(self.blank_sd.value()); // noise is electrode-side, unchanged
        self
    }

    /// The enzyme.
    pub fn oxidase(&self) -> Oxidase {
        self.oxidase
    }

    /// The membrane.
    pub fn membrane(&self) -> &Membrane {
        &self.membrane
    }

    /// Low-concentration sensitivity in A/(M·cm²).
    pub fn sensitivity_si(&self) -> f64 {
        self.sensitivity_si
    }

    /// The sensor's Michaelis–Menten law.
    pub fn kinetics(&self) -> &MichaelisMenten {
        &self.kinetics
    }

    /// Blank (zero-analyte) current-density noise SD.
    pub fn blank_sd(&self) -> AmpsPerCm2 {
        self.blank_sd
    }

    /// Chronoamperometric working potential (Table I).
    pub fn applied_potential(&self) -> Volts {
        self.oxidase.applied_potential()
    }

    /// Steady-state anodic current density at analyte concentration `c`:
    /// `j = S·Km·C/(Km + C)` (air-saturated oxygen assumed).
    pub fn steady_current_density(&self, c: Molar) -> AmpsPerCm2 {
        AmpsPerCm2::new(
            self.sensitivity_si * self.kinetics.km().value() * self.kinetics.saturation(c),
        )
    }

    /// Steady-state current density under explicit dissolved-oxygen
    /// conditions: the FAD/FMN regeneration (paper eq. 2) needs O₂, so the
    /// current carries the availability factor `[O₂]/(Km_O₂+[O₂])`
    /// normalized to the air-saturated calibration reference.
    pub fn steady_current_density_with_oxygen(
        &self,
        c: Molar,
        oxygen: crate::OxygenConditions,
    ) -> AmpsPerCm2 {
        let reference = crate::OxygenConditions::air_saturated().availability();
        self.steady_current_density(c) * (oxygen.availability() / reference)
    }

    /// Current density a time `t` after the concentration stepped from
    /// `c_before` to `c_after` (membrane-shaped transient; Fig. 3).
    pub fn transient_current_density(
        &self,
        c_before: Molar,
        c_after: Molar,
        t_since_step: Seconds,
    ) -> AmpsPerCm2 {
        let j0 = self.steady_current_density(c_before);
        let j1 = self.steady_current_density(c_after);
        let f = self.membrane.step_response(t_since_step);
        AmpsPerCm2::new(j0.value() + (j1.value() - j0.value()) * f)
    }

    /// Steady-state response time `t₉₀` (paper §II-B).
    pub fn response_time_t90(&self) -> Seconds {
        self.membrane.response_time(0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_matches_paper() {
        assert_eq!(Oxidase::Glucose.target(), Analyte::Glucose);
        assert_eq!(Oxidase::Lactate.prosthetic_group(), ProstheticGroup::Fmn);
        assert_eq!(Oxidase::Glucose.prosthetic_group(), ProstheticGroup::Fad);
        assert_eq!(Oxidase::Glucose.applied_potential(), Volts::new(0.55));
        assert_eq!(Oxidase::Cholesterol.applied_potential(), Volts::new(0.70));
    }

    #[test]
    fn registry_sensor_slope_matches_table_iii() {
        let s = OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry");
        // Slope at a concentration well inside the linear regime.
        let c = Molar::from_millimolar(0.1);
        let j = s.steady_current_density(c);
        let slope = j.value() / c.value(); // A/(M·cm²)
        let expected = 27.7e-3;
        assert!(
            (slope - expected).abs() / expected < 0.01,
            "slope {slope} vs {expected}"
        );
    }

    #[test]
    fn saturation_limits_linear_range() {
        let s = OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry");
        // At the top of the linear range (4 mM) nonlinearity is 10%.
        let c_top = Molar::from_millimolar(4.0);
        let j = s.steady_current_density(c_top).value();
        let linear = s.sensitivity_si() * c_top.value();
        assert!(((linear - j) / linear - 0.10).abs() < 1e-9);
    }

    #[test]
    fn transient_reaches_90pct_by_t90() {
        let s = OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry");
        let c0 = Molar::ZERO;
        let c1 = Molar::from_millimolar(2.0);
        let t90 = s.response_time_t90();
        // Fig. 3: ≈30 s.
        assert!((t90.value() - 30.0).abs() < 1.5, "t90 = {}", t90.value());
        let j_t90 = s.transient_current_density(c0, c1, t90);
        let j_ss = s.steady_current_density(c1);
        assert!((j_t90.value() / j_ss.value() - 0.9).abs() < 1e-6);
        // Before the injection nothing happens.
        assert_eq!(
            s.transient_current_density(c0, c1, Seconds::new(-5.0))
                .value(),
            0.0
        );
    }

    #[test]
    fn all_four_registry_sensors_build() {
        // Note: the cholesterol *oxidase* path reuses the Table III
        // cholesterol row (reported via CYP11A1) — still a valid calibration.
        for ox in Oxidase::ALL {
            let s = OxidaseSensor::from_registry(ox).expect("registry");
            assert!(s.blank_sd().value() > 0.0);
            assert!(s.sensitivity_si() > 0.0);
        }
    }

    #[test]
    fn sensitivity_scaling_for_ablation() {
        let s = OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry");
        let bare = s.clone().with_sensitivity_scaled(1.0 / 12.0);
        let c = Molar::from_millimolar(1.0);
        let ratio = s.steady_current_density(c).value() / bare.steady_current_density(c).value();
        assert!((ratio - 12.0).abs() < 1e-9);
    }

    #[test]
    fn oxygen_deficit_attenuates_the_signal() {
        let s = OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry");
        let c = Molar::from_millimolar(2.0);
        let air = s.steady_current_density_with_oxygen(c, crate::OxygenConditions::air_saturated());
        // Air-saturated conditions equal the calibration reference.
        assert!((air.value() - s.steady_current_density(c).value()).abs() < 1e-18);
        let tissue =
            s.steady_current_density_with_oxygen(c, crate::OxygenConditions::subcutaneous_tissue());
        assert!(tissue.value() < 0.5 * air.value(), "tissue deficit");
        let anoxic = s.steady_current_density_with_oxygen(
            c,
            crate::OxygenConditions::new(Molar::ZERO).expect("valid"),
        );
        assert_eq!(anoxic.value(), 0.0);
    }

    #[test]
    fn lactate_is_most_sensitive_oxidase() {
        let j_at = |ox: Oxidase| {
            OxidaseSensor::from_registry(ox)
                .expect("registry")
                .steady_current_density(Molar::from_millimolar(0.5))
                .value()
        };
        assert!(j_at(Oxidase::Lactate) > j_at(Oxidase::Glucose));
        assert!(j_at(Oxidase::Glucose) > j_at(Oxidase::Glutamate));
    }
}
