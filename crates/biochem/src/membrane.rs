//! Diffusion-limiting membranes and their transient response.
//!
//! Real oxidase sensors sit behind a polymer membrane (plus an unstirred
//! boundary layer). The membrane does three things the paper's §II-B
//! properties depend on: it sets the steady-state response *time* (Fig. 3's
//! ≈30 s), it raises the apparent `Km` (extending the linear range), and it
//! attenuates the flux.
//!
//! The transient model is the exact series solution for the exit flux of a
//! planar membrane after a concentration step at the entry face:
//! `F(t)/F_ss = 1 + 2·Σ_{k≥1} (−1)^k·exp(−k²π²·D·t/L²)`.

use crate::error::BiochemError;
use bios_units::{Centimeters, DiffusionCoefficient, Seconds};

/// A planar diffusion-limiting membrane.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Membrane {
    thickness: Centimeters,
    diffusion: DiffusionCoefficient,
}

impl Membrane {
    /// Creates a membrane of the given thickness and effective in-membrane
    /// diffusion coefficient.
    ///
    /// # Errors
    ///
    /// Returns [`BiochemError::InvalidParameter`] unless both are strictly
    /// positive and finite.
    pub fn new(
        thickness: Centimeters,
        diffusion: DiffusionCoefficient,
    ) -> Result<Self, BiochemError> {
        if thickness.value() <= 0.0 || !thickness.value().is_finite() {
            return Err(BiochemError::invalid(
                "thickness",
                "must be positive and finite",
            ));
        }
        if diffusion.value() <= 0.0 || !diffusion.value().is_finite() {
            return Err(BiochemError::invalid(
                "diffusion",
                "must be positive and finite",
            ));
        }
        Ok(Self {
            thickness,
            diffusion,
        })
    }

    /// The membrane used for the paper's glucose sensor reproduction:
    /// ≈100 µm effective layer with D ≈ 10⁻⁶ cm²/s, giving the ≈30 s
    /// steady-state response of Fig. 3.
    /// A literal, not `Self::new`, so this constant constructor cannot panic.
    pub fn paper_glucose_membrane() -> Self {
        Self {
            thickness: Centimeters::from_micrometers(99.0),
            diffusion: DiffusionCoefficient::new(1e-6),
        }
    }

    /// Membrane thickness.
    pub fn thickness(&self) -> Centimeters {
        self.thickness
    }

    /// Effective diffusion coefficient inside the membrane.
    pub fn diffusion(&self) -> DiffusionCoefficient {
        self.diffusion
    }

    /// The diffusion time scale `L²/D`.
    pub fn diffusion_time(&self) -> Seconds {
        Seconds::new(self.thickness.value().powi(2) / self.diffusion.value())
    }

    /// Normalized exit-flux step response in `[0, 1]`: the fraction of the
    /// steady-state flux reached a time `t` after a concentration step at
    /// the sample face. Zero for `t ≤ 0`.
    pub fn step_response(&self, t: Seconds) -> f64 {
        if t.value() <= 0.0 {
            return 0.0;
        }
        let theta = self.diffusion.value() * t.value() / self.thickness.value().powi(2);
        // For θ < 0.01 the true response is below 10⁻¹⁰ while the
        // alternating series leaves ~10⁻⁹ truncation wiggle — return the
        // physical zero instead of the numerical noise.
        if theta < 0.01 {
            return 0.0;
        }
        let mut sum = 1.0;
        for k in 1..=60u32 {
            let term = 2.0
                * (-((k * k) as f64) * core::f64::consts::PI.powi(2) * theta).exp()
                * if k % 2 == 1 { -1.0 } else { 1.0 };
            sum += term;
            if term.abs() < 1e-15 {
                break;
            }
        }
        sum.clamp(0.0, 1.0)
    }

    /// Time to reach `fraction` of the steady-state flux, by bisection on
    /// the step response. This is the sensor's `t₉₀` for `fraction = 0.9`
    /// (the paper's "steady-state response time", §II-B).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn response_time(&self, fraction: f64) -> Seconds {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        let t_scale = self.diffusion_time().value();
        let (mut lo, mut hi) = (0.0, 5.0 * t_scale);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.step_response(Seconds::new(mid)) < fraction {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Seconds::new(0.5 * (lo + hi))
    }

    /// The diffusion time lag `τ = L²/(6D)` — the classic permeation-lag
    /// result, exposed as a cross-check of the series solution.
    pub fn time_lag(&self) -> Seconds {
        Seconds::new(self.thickness.value().powi(2) / (6.0 * self.diffusion.value()))
    }

    /// Factor by which the membrane raises the enzyme's apparent `Km`
    /// (external mass-transport limitation). Modeled as `1 + Λ` where
    /// `Λ = L·k_cat_eff/D` is folded into the registry's calibrated `Km`s;
    /// exposed for the ablation bench.
    pub fn km_amplification(&self, reaction_velocity_cm_per_s: f64) -> f64 {
        1.0 + self.thickness.value() * reaction_velocity_cm_per_s / self.diffusion.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        let d = DiffusionCoefficient::new(1e-6);
        assert!(Membrane::new(Centimeters::ZERO, d).is_err());
        assert!(Membrane::new(Centimeters::new(0.01), DiffusionCoefficient::new(0.0)).is_err());
    }

    #[test]
    fn step_response_is_monotone_sigmoid() {
        let m = Membrane::paper_glucose_membrane();
        let mut prev = -1e-9;
        for k in 0..200 {
            let r = m.step_response(Seconds::new(k as f64 * 0.5));
            assert!(r >= prev - 1e-12, "non-monotone at {k}");
            assert!((0.0..=1.0).contains(&r));
            prev = r;
        }
        assert_eq!(m.step_response(Seconds::new(-1.0)), 0.0);
        assert!(m.step_response(Seconds::new(1e4)) > 0.999);
    }

    #[test]
    fn paper_membrane_t90_is_about_30_s() {
        let m = Membrane::paper_glucose_membrane();
        let t90 = m.response_time(0.9);
        assert!(
            (t90.value() - 30.0).abs() < 1.5,
            "t90 = {} s, expected ≈30 s (paper Fig. 3)",
            t90.value()
        );
    }

    #[test]
    fn response_time_consistent_with_step_response() {
        let m = Membrane::paper_glucose_membrane();
        for f in [0.1, 0.5, 0.9, 0.99] {
            let t = m.response_time(f);
            assert!((m.step_response(t) - f).abs() < 1e-6, "fraction {f}");
        }
    }

    #[test]
    fn thinner_membrane_responds_faster() {
        let thick = Membrane::paper_glucose_membrane();
        let thin = Membrane::new(
            Centimeters::from_micrometers(30.0),
            DiffusionCoefficient::new(1e-6),
        )
        .expect("valid");
        assert!(thin.response_time(0.9).value() < thick.response_time(0.9).value() / 5.0);
    }

    #[test]
    fn time_lag_is_sixth_of_diffusion_time() {
        let m = Membrane::paper_glucose_membrane();
        assert!((m.time_lag().value() * 6.0 - m.diffusion_time().value()).abs() < 1e-9);
    }

    #[test]
    fn km_amplification_grows_with_thickness() {
        let thin = Membrane::new(
            Centimeters::from_micrometers(10.0),
            DiffusionCoefficient::new(1e-6),
        )
        .expect("valid");
        let thick = Membrane::paper_glucose_membrane();
        let v = 1e-4;
        assert!(thick.km_amplification(v) > thin.km_amplification(v));
        assert!(thin.km_amplification(0.0) == 1.0);
    }
}
