//! Physical constants and electrochemical helper relations.

use crate::{Kelvin, Volts};

/// Faraday constant, C/mol (exact, 2019 SI).
pub const FARADAY: f64 = 96_485.332_12;

/// Molar gas constant, J/(mol·K) (exact, 2019 SI).
pub const GAS_CONSTANT: f64 = 8.314_462_618;

/// Boltzmann constant, J/K (exact, 2019 SI).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge, C (exact, 2019 SI).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Avogadro constant, 1/mol (exact, 2019 SI).
pub const AVOGADRO: f64 = 6.022_140_76e23;

/// Standard laboratory temperature, 25 °C.
pub const T_ROOM: Kelvin = Kelvin::new(298.15);

/// Human body temperature, 37 °C — implantable sensors operate here.
pub const T_BODY: Kelvin = Kelvin::new(310.15);

/// The thermal voltage `RT/F` at temperature `t`.
///
/// ≈25.7 mV at 25 °C; it sets the steepness of every Nernstian and
/// Butler–Volmer exponential in the workspace.
///
/// # Example
///
/// ```
/// use bios_units::{thermal_voltage, T_ROOM};
/// let vt = thermal_voltage(T_ROOM);
/// assert!((vt.as_millivolts() - 25.69).abs() < 0.01);
/// ```
pub fn thermal_voltage(t: Kelvin) -> Volts {
    Volts::new(GAS_CONSTANT * t.value() / FARADAY)
}

/// The Nernst slope `RT/(nF)` for an `n`-electron couple at temperature `t`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use bios_units::{nernst_slope, T_ROOM};
/// // 59.2 mV/decade at 25 °C for n = 1 (after ln→log10 conversion).
/// let slope = nernst_slope(1, T_ROOM);
/// assert!((slope.as_millivolts() * std::f64::consts::LN_10 - 59.16).abs() < 0.05);
/// ```
pub fn nernst_slope(n: u32, t: Kelvin) -> Volts {
    assert!(n > 0, "electron count must be positive");
    Volts::new(GAS_CONSTANT * t.value() / (n as f64 * FARADAY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_room_and_body() {
        assert!((thermal_voltage(T_ROOM).as_millivolts() - 25.693).abs() < 0.01);
        assert!((thermal_voltage(T_BODY).as_millivolts() - 26.73).abs() < 0.01);
    }

    #[test]
    fn nernst_slope_scales_inversely_with_n() {
        let s1 = nernst_slope(1, T_ROOM);
        let s2 = nernst_slope(2, T_ROOM);
        assert!((s1.value() / s2.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "electron count")]
    fn zero_electrons_panics() {
        let _ = nernst_slope(0, T_ROOM);
    }

    #[test]
    fn faraday_is_charge_per_mole_of_electrons() {
        assert!((FARADAY - ELEMENTARY_CHARGE * AVOGADRO).abs() < 1e-4);
    }
}
