//! Typed physical quantities for the `advdiag` biosensing platform.
//!
//! Electrochemical biosensing mixes many physical domains — electrode
//! potentials in volts, faradaic currents in nano- to micro-amperes, analyte
//! concentrations in mol/L, diffusion coefficients in cm²/s.  Passing bare
//! `f64` values between those domains is how unit bugs are born, so every
//! public API in this workspace speaks in the newtypes defined here
//! (guideline C-NEWTYPE).
//!
//! Each quantity is a transparent wrapper around `f64` with:
//!
//! * checked, dimension-preserving arithmetic (`Volts + Volts`, `Volts * 2.0`),
//! * a small set of *dimensional* products (`Amps * Ohms = Volts`,
//!   `Molar * Liters = Moles`, …),
//! * SI-prefix aware [`Display`](core::fmt::Display) and
//!   [`FromStr`](core::str::FromStr) (`"250 nA"`, `"-625 mV"`),
//! * scaled constructors/accessors (`Amps::from_nanoamps`,
//!   `Volts::as_millivolts`).
//!
//! # Example
//!
//! ```
//! use bios_units::{Amps, Ohms, Volts};
//!
//! # fn main() -> Result<(), bios_units::ParseQuantityError> {
//! let feedback: Ohms = "100 kΩ".parse()?;
//! let current = Amps::from_nanoamps(250.0);
//! let output: Volts = current * feedback;
//! assert!((output.as_millivolts() - 25.0).abs() < 1e-12);
//! assert_eq!(format!("{output}"), "25 mV");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod quantity;
mod consts;
mod error;
mod prefix;
mod range;
mod types;

pub use consts::{
    nernst_slope, thermal_voltage, AVOGADRO, BOLTZMANN, ELEMENTARY_CHARGE, FARADAY, GAS_CONSTANT,
    T_BODY, T_ROOM,
};
pub use error::{ErrorSeverity, ParseQuantityError, RangeError};
pub use prefix::{format_si, Prefix};
pub use quantity::Quantity;
pub use range::QRange;
pub use types::{
    Amps, AmpsPerCm2, Centimeters, Coulombs, DiffusionCoefficient, Farads, FaradsPerCm2, Hertz,
    Joules, Kelvin, Liters, Molar, Moles, MolesPerCm2, MolesPerCm2PerSecond, MolesPerCm3, Ohms,
    Seconds, SquareCentimeters, Volts, VoltsPerSecond, Watts,
};
