//! The [`Quantity`] trait and the macros that generate quantity newtypes.

/// A scalar physical quantity backed by an `f64` in its SI-coherent base unit.
///
/// All newtypes produced by this crate implement `Quantity`, which lets
/// downstream code be generic over the dimension — e.g.
/// [`QRange`](crate::QRange) works for voltage windows and concentration
/// ranges alike.
///
/// # Example
///
/// ```
/// use bios_units::{Quantity, Volts};
///
/// fn midpoint<Q: Quantity>(a: Q, b: Q) -> Q {
///     Q::from_value((a.value() + b.value()) / 2.0)
/// }
///
/// assert_eq!(midpoint(Volts::new(0.0), Volts::new(1.0)), Volts::new(0.5));
/// ```
pub trait Quantity: Copy + PartialOrd + core::fmt::Debug {
    /// Unit symbol used by [`Display`](core::fmt::Display) (e.g. `"V"`).
    const SYMBOL: &'static str;

    /// Constructs the quantity from a raw value in its base unit.
    fn from_value(value: f64) -> Self;

    /// Returns the raw value in the base unit.
    fn value(self) -> f64;
}

/// Defines a quantity newtype with arithmetic, display, parsing and
/// optional scaled constructors.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $symbol:expr
        $(, scaled { $( $(#[$smeta:meta])* $from_fn:ident / $as_fn:ident : $factor:expr ),* $(,)? } )?
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Constructs the quantity from a value in its base unit.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the base unit.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `-1.0`, `0.0` or `1.0` depending on the sign.
            pub fn signum(self) -> f64 {
                // advdiag::allow(F1, exact sentinel: f64::signum itself special-cases exact zero)
                if self.0 == 0.0 { 0.0 } else { self.0.signum() }
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value to `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp: lo must not exceed hi");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` when the value is neither infinite nor NaN.
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Linear interpolation: `self + t * (other - self)`.
            pub fn lerp(self, other: Self, t: f64) -> Self {
                Self(self.0 + t * (other.0 - self.0))
            }

            $($(
                $(#[$smeta])*
                pub fn $from_fn(value: f64) -> Self {
                    Self(value * $factor)
                }

                #[doc = concat!("Returns the value scaled by 1/", stringify!($factor), ".")]
                pub fn $as_fn(self) -> f64 {
                    self.0 / $factor
                }
            )*)?
        }

        impl $crate::Quantity for $name {
            const SYMBOL: &'static str = $symbol;

            fn from_value(value: f64) -> Self {
                Self(value)
            }

            fn value(self) -> f64 {
                self.0
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                f.write_str(&$crate::format_si(self.0, $symbol))
            }
        }

        impl core::str::FromStr for $name {
            type Err = $crate::ParseQuantityError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                $crate::prefix::parse_quantity(s, $symbol).map(Self)
            }
        }
    };
}

/// Generates dimensional product impls: `A * B = C` (and the commuted and
/// divided forms `B * A = C`, `C / A = B`, `C / B = A`).
macro_rules! qprod {
    ($a:ty, $b:ty => $c:ty) => {
        impl core::ops::Mul<$b> for $a {
            type Output = $c;
            fn mul(self, rhs: $b) -> $c {
                <$c>::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Mul<$a> for $b {
            type Output = $c;
            fn mul(self, rhs: $a) -> $c {
                <$c>::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Div<$a> for $c {
            type Output = $b;
            fn div(self, rhs: $a) -> $b {
                <$b>::new(self.value() / rhs.value())
            }
        }

        impl core::ops::Div<$b> for $c {
            type Output = $a;
            fn div(self, rhs: $b) -> $a {
                <$a>::new(self.value() / rhs.value())
            }
        }
    };
}

/// Generates a squared dimensional product: `A * A = C`, `C / A = A`.
macro_rules! qsquare {
    ($a:ty => $c:ty) => {
        impl core::ops::Mul for $a {
            type Output = $c;
            fn mul(self, rhs: Self) -> $c {
                <$c>::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Div<$a> for $c {
            type Output = $a;
            fn div(self, rhs: $a) -> $a {
                <$a>::new(self.value() / rhs.value())
            }
        }
    };
}
