//! SI prefix handling: pretty-printing and parsing of prefixed quantities.

use crate::error::ParseQuantityError;

/// An SI prefix from femto (10⁻¹⁵) to giga (10⁹).
///
/// # Example
///
/// ```
/// use bios_units::Prefix;
/// assert_eq!(Prefix::Micro.factor(), 1e-6);
/// assert_eq!(Prefix::Micro.symbol(), "µ");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize, Default,
)]
pub enum Prefix {
    /// 10⁻¹⁵
    Femto,
    /// 10⁻¹²
    Pico,
    /// 10⁻⁹
    Nano,
    /// 10⁻⁶
    Micro,
    /// 10⁻³
    Milli,
    /// 10⁰ (no prefix)
    #[default]
    None,
    /// 10³
    Kilo,
    /// 10⁶
    Mega,
    /// 10⁹
    Giga,
}

impl Prefix {
    /// All prefixes from smallest to largest factor.
    pub const ALL: [Prefix; 9] = [
        Prefix::Femto,
        Prefix::Pico,
        Prefix::Nano,
        Prefix::Micro,
        Prefix::Milli,
        Prefix::None,
        Prefix::Kilo,
        Prefix::Mega,
        Prefix::Giga,
    ];

    /// The multiplicative factor of the prefix.
    pub fn factor(self) -> f64 {
        match self {
            Prefix::Femto => 1e-15,
            Prefix::Pico => 1e-12,
            Prefix::Nano => 1e-9,
            Prefix::Micro => 1e-6,
            Prefix::Milli => 1e-3,
            Prefix::None => 1.0,
            Prefix::Kilo => 1e3,
            Prefix::Mega => 1e6,
            Prefix::Giga => 1e9,
        }
    }

    /// The prefix symbol (`"µ"` for micro, `""` for none).
    pub fn symbol(self) -> &'static str {
        match self {
            Prefix::Femto => "f",
            Prefix::Pico => "p",
            Prefix::Nano => "n",
            Prefix::Micro => "µ",
            Prefix::Milli => "m",
            Prefix::None => "",
            Prefix::Kilo => "k",
            Prefix::Mega => "M",
            Prefix::Giga => "G",
        }
    }

    /// Picks the prefix that renders `value` with a mantissa in `[1, 1000)`.
    ///
    /// Zero, infinities and NaN map to [`Prefix::None`].
    pub fn pick(value: f64) -> Prefix {
        // advdiag::allow(F1, exact sentinel: zero has no magnitude so no prefix applies)
        if value == 0.0 || !value.is_finite() {
            return Prefix::None;
        }
        let mag = value.abs();
        for p in Self::ALL {
            let mantissa = mag / p.factor();
            if (1.0..1000.0).contains(&mantissa) {
                return p;
            }
        }
        if mag < Prefix::Femto.factor() {
            Prefix::Femto
        } else {
            Prefix::Giga
        }
    }
}

impl core::fmt::Display for Prefix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Formats a raw base-unit value with an automatically chosen SI prefix.
///
/// Mantissas are rounded to at most four significant digits and trailing
/// zeros are trimmed, which keeps table output compact (`"27.7 µA"`,
/// `"-625 mV"`).
///
/// # Example
///
/// ```
/// use bios_units::format_si;
/// assert_eq!(format_si(2.5e-7, "A"), "250 nA");
/// assert_eq!(format_si(0.0, "V"), "0 V");
/// ```
pub fn format_si(value: f64, symbol: &str) -> String {
    if !value.is_finite() {
        return format!("{value} {symbol}");
    }
    let prefix = Prefix::pick(value);
    let mantissa = value / prefix.factor();
    let rendered = format_mantissa(mantissa);
    format!("{rendered} {}{symbol}", prefix.symbol())
}

fn format_mantissa(m: f64) -> String {
    // Up to 4 significant digits, trailing zeros trimmed.
    // advdiag::allow(F1, exact sentinel: log10 of exact zero is undefined)
    let digits = if m == 0.0 {
        0
    } else {
        let int_digits = (m.abs().log10().floor() as i32 + 1).max(1);
        (4 - int_digits).max(0) as usize
    };
    let mut s = format!("{m:.digits$}");
    if s.contains('.') {
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
    }
    if s == "-0" {
        s = "0".to_string();
    }
    s
}

/// Parses a quantity string such as `"-625 mV"` or `"1.5MΩ"` into its raw
/// base-unit value, requiring the exact `symbol` suffix.
///
/// Used by the `FromStr` impls of every quantity type.
///
/// # Errors
///
/// Returns [`ParseQuantityError`] if the number is malformed, the unit suffix
/// does not match `symbol`, or the prefix is unknown.
pub(crate) fn parse_quantity(s: &str, symbol: &str) -> Result<f64, ParseQuantityError> {
    let s = s.trim();
    // Split numeric head from the rest.
    let split = s
        .char_indices()
        .find(|(_, c)| !matches!(c, '0'..='9' | '+' | '-' | '.' | 'e' | 'E'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    // Guard against consuming the exponent sign of "1e-3" as a unit boundary:
    // `find` above already includes 'e'/'E' in the numeric class, so `split`
    // lands on the first character that can't be part of a float literal.
    let (num_str, rest) = s.split_at(split);
    let value: f64 = num_str
        .trim()
        .parse()
        .map_err(|_| ParseQuantityError::bad_number(s))?;
    let unit = rest.trim();
    if unit == symbol {
        return Ok(value);
    }
    for p in Prefix::ALL {
        if p == Prefix::None {
            continue;
        }
        if let Some(stripped) = unit.strip_prefix(p.symbol()) {
            if stripped == symbol {
                return Ok(value * p.factor());
            }
        }
        // Accept ASCII "u" for micro.
        if p == Prefix::Micro {
            if let Some(stripped) = unit.strip_prefix('u') {
                if stripped == symbol {
                    return Ok(value * p.factor());
                }
            }
        }
    }
    Err(ParseQuantityError::bad_unit(s, symbol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_expected_prefixes() {
        assert_eq!(Prefix::pick(2.5e-7), Prefix::Nano);
        assert_eq!(Prefix::pick(-0.65), Prefix::Milli);
        assert_eq!(Prefix::pick(1.0), Prefix::None);
        assert_eq!(Prefix::pick(0.0), Prefix::None);
        assert_eq!(Prefix::pick(1.5e4), Prefix::Kilo);
        assert_eq!(Prefix::pick(1e-20), Prefix::Femto);
        assert_eq!(Prefix::pick(1e12), Prefix::Giga);
        assert_eq!(Prefix::pick(f64::NAN), Prefix::None);
    }

    #[test]
    fn mantissa_boundaries() {
        // Exactly 1000 of a unit should roll to the next prefix.
        assert_eq!(format_si(1000.0, "Hz"), "1 kHz");
        assert_eq!(format_si(999.9, "Hz"), "999.9 Hz");
        assert_eq!(format_si(1.0, "Hz"), "1 Hz");
    }

    #[test]
    fn formats_readably() {
        assert_eq!(format_si(2.77e-5, "A"), "27.7 µA");
        assert_eq!(format_si(-0.625, "V"), "-625 mV");
        assert_eq!(format_si(0.0, "V"), "0 V");
        assert_eq!(format_si(1.7e-5, "cm²/s"), "17 µcm²/s");
    }

    #[test]
    fn parses_all_prefix_forms() {
        assert_eq!(parse_quantity("5 V", "V").unwrap(), 5.0);
        assert!((parse_quantity("650mV", "V").unwrap() - 0.65).abs() < 1e-12);
        assert!((parse_quantity("10 uA", "A").unwrap() - 1e-5).abs() < 1e-18);
        assert!((parse_quantity("10 µA", "A").unwrap() - 1e-5).abs() < 1e-18);
        assert!((parse_quantity("2 kΩ", "Ω").unwrap() - 2000.0).abs() < 1e-9);
        assert!((parse_quantity("1e-3 A", "A").unwrap() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_quantity("abc", "V").is_err());
        assert!(parse_quantity("5 W", "V").is_err());
        assert!(parse_quantity("5", "V").is_err());
        assert!(parse_quantity("5 xV", "V").is_err());
    }

    #[test]
    fn error_messages_name_the_input() {
        let err = parse_quantity("5 W", "V").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains('V'),
            "message should name the expected unit: {msg}"
        );
    }
}
