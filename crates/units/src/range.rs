//! Closed intervals over typed quantities.

use crate::error::RangeError;
use crate::quantity::Quantity;

/// A closed interval `[lo, hi]` over a quantity type.
///
/// Used for potential windows in cyclic voltammetry, linear concentration
/// ranges of calibrated sensors, and acceptance bands in the reproduction
/// harness.
///
/// # Example
///
/// ```
/// use bios_units::{Molar, QRange};
///
/// # fn main() -> Result<(), bios_units::RangeError> {
/// // Paper Table III: glucose linear range 0.5–4 mM.
/// let linear = QRange::new(Molar::from_millimolar(0.5), Molar::from_millimolar(4.0))?;
/// assert!(linear.contains(Molar::from_millimolar(1.2)));
/// assert!(!linear.contains(Molar::from_millimolar(5.0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QRange<Q> {
    lo: Q,
    hi: Q,
}

impl<Q: Quantity> QRange<Q> {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`RangeError::Inverted`] if `lo > hi` and
    /// [`RangeError::NotFinite`] if either bound is NaN or infinite.
    pub fn new(lo: Q, hi: Q) -> Result<Self, RangeError> {
        if !lo.value().is_finite() || !hi.value().is_finite() {
            return Err(RangeError::NotFinite);
        }
        if lo.value() > hi.value() {
            return Err(RangeError::Inverted);
        }
        Ok(Self { lo, hi })
    }

    /// Creates the interval spanning `a` and `b` in whichever order they
    /// come. Unlike [`QRange::new`] this is *total*: endpoints are swapped
    /// if inverted and non-finite endpoints collapse to zero. It exists so
    /// constant constructors (registry tables, paper constants) have no
    /// panic path; validate measured data with [`QRange::new`] instead.
    pub fn between(a: Q, b: Q) -> Self {
        let av = if a.value().is_finite() {
            a.value()
        } else {
            0.0
        };
        let bv = if b.value().is_finite() {
            b.value()
        } else {
            0.0
        };
        let (lo, hi) = if av <= bv { (av, bv) } else { (bv, av) };
        Self {
            lo: Q::from_value(lo),
            hi: Q::from_value(hi),
        }
    }

    /// The lower bound.
    pub fn lo(&self) -> Q {
        self.lo
    }

    /// The upper bound.
    pub fn hi(&self) -> Q {
        self.hi
    }

    /// The width `hi - lo` as a raw value in the base unit.
    pub fn width(&self) -> f64 {
        self.hi.value() - self.lo.value()
    }

    /// The midpoint of the interval.
    pub fn midpoint(&self) -> Q {
        Q::from_value(0.5 * (self.lo.value() + self.hi.value()))
    }

    /// Returns `true` if `q` lies inside the closed interval.
    pub fn contains(&self, q: Q) -> bool {
        q.value() >= self.lo.value() && q.value() <= self.hi.value()
    }

    /// Returns `true` if `other` lies entirely inside this interval.
    pub fn contains_range(&self, other: &Self) -> bool {
        self.contains(other.lo) && self.contains(other.hi)
    }

    /// Clamps `q` into the interval.
    pub fn clamp(&self, q: Q) -> Q {
        Q::from_value(q.value().clamp(self.lo.value(), self.hi.value()))
    }

    /// The intersection with `other`, or `None` if they do not overlap.
    pub fn intersect(&self, other: &Self) -> Option<Self> {
        let lo = if self.lo.value() > other.lo.value() {
            self.lo
        } else {
            other.lo
        };
        let hi = if self.hi.value() < other.hi.value() {
            self.hi
        } else {
            other.hi
        };
        (lo.value() <= hi.value()).then_some(Self { lo, hi })
    }

    /// The smallest interval containing both `self` and `other`.
    pub fn hull(&self, other: &Self) -> Self {
        let lo = if self.lo.value() < other.lo.value() {
            self.lo
        } else {
            other.lo
        };
        let hi = if self.hi.value() > other.hi.value() {
            self.hi
        } else {
            other.hi
        };
        Self { lo, hi }
    }

    /// `n` evenly spaced points from `lo` to `hi` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn linspace(&self, n: usize) -> Vec<Q> {
        assert!(n >= 2, "linspace needs at least two points");
        let step = self.width() / (n - 1) as f64;
        (0..n)
            .map(|i| {
                if i == n - 1 {
                    self.hi // avoid accumulating rounding error at the top
                } else {
                    Q::from_value(self.lo.value() + step * i as f64)
                }
            })
            .collect()
    }

    /// `n` logarithmically spaced points from `lo` to `hi` inclusive.
    ///
    /// Useful for concentration series spanning decades.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or if either bound is not strictly positive.
    pub fn logspace(&self, n: usize) -> Vec<Q> {
        assert!(n >= 2, "logspace needs at least two points");
        assert!(
            self.lo.value() > 0.0 && self.hi.value() > 0.0,
            "logspace requires strictly positive bounds"
        );
        let (llo, lhi) = (self.lo.value().ln(), self.hi.value().ln());
        let step = (lhi - llo) / (n - 1) as f64;
        (0..n)
            .map(|i| {
                if i == n - 1 {
                    self.hi
                } else {
                    Q::from_value((llo + step * i as f64).exp())
                }
            })
            .collect()
    }

    /// Fraction of the way `q` is through the interval (0 at `lo`, 1 at `hi`).
    ///
    /// Returns 0 for a zero-width interval.
    pub fn fraction_of(&self, q: Q) -> f64 {
        let w = self.width();
        // advdiag::allow(F1, exact sentinel: guards the division below against a zero-width interval)
        if w == 0.0 {
            0.0
        } else {
            (q.value() - self.lo.value()) / w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Molar, Volts};

    fn vr(lo: f64, hi: f64) -> QRange<Volts> {
        QRange::new(Volts::new(lo), Volts::new(hi)).expect("valid range")
    }

    #[test]
    fn construction_validates() {
        assert!(QRange::new(Volts::new(1.0), Volts::new(0.0)).is_err());
        assert!(QRange::new(Volts::new(f64::NAN), Volts::new(0.0)).is_err());
        assert!(QRange::new(Volts::new(0.0), Volts::new(f64::INFINITY)).is_err());
        assert!(QRange::new(Volts::new(0.5), Volts::new(0.5)).is_ok());
    }

    #[test]
    fn contains_and_clamp() {
        let r = vr(-0.8, 0.0);
        assert!(r.contains(Volts::new(-0.625)));
        assert!(!r.contains(Volts::new(0.1)));
        assert_eq!(r.clamp(Volts::new(0.5)), Volts::new(0.0));
        assert_eq!(r.clamp(Volts::new(-1.0)), Volts::new(-0.8));
    }

    #[test]
    fn intersection_and_hull() {
        let a = vr(0.0, 1.0);
        let b = vr(0.5, 2.0);
        let i = a.intersect(&b).expect("overlap");
        assert_eq!(i.lo(), Volts::new(0.5));
        assert_eq!(i.hi(), Volts::new(1.0));
        let h = a.hull(&b);
        assert_eq!(h.lo(), Volts::new(0.0));
        assert_eq!(h.hi(), Volts::new(2.0));
        let c = vr(3.0, 4.0);
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn linspace_endpoints_exact() {
        let r = vr(-0.8, 0.0);
        let pts = r.linspace(9);
        assert_eq!(pts.len(), 9);
        assert_eq!(pts[0], Volts::new(-0.8));
        assert_eq!(pts[8], Volts::new(0.0));
        assert!((pts[4].value() + 0.4).abs() < 1e-12);
    }

    #[test]
    fn logspace_spans_decades() {
        let r = QRange::new(Molar::from_micromolar(1.0), Molar::from_millimolar(1.0))
            .expect("valid range");
        let pts = r.logspace(4);
        assert_eq!(pts.len(), 4);
        assert!((pts[1].value() / pts[0].value() - 10.0).abs() < 1e-9);
        assert_eq!(pts[3], r.hi());
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn linspace_rejects_single_point() {
        let _ = vr(0.0, 1.0).linspace(1);
    }

    #[test]
    fn fraction_of_interval() {
        let r = vr(0.0, 2.0);
        assert_eq!(r.fraction_of(Volts::new(0.5)), 0.25);
        let degenerate = vr(1.0, 1.0);
        assert_eq!(degenerate.fraction_of(Volts::new(1.0)), 0.0);
    }

    #[test]
    fn contains_range_nesting() {
        let outer = vr(0.0, 4.0);
        let inner = vr(0.5, 2.0);
        assert!(outer.contains_range(&inner));
        assert!(!inner.contains_range(&outer));
    }
}
