//! The concrete quantity newtypes used across the workspace.

quantity! {
    /// Electric potential in volts.
    ///
    /// Electrode potentials in this workspace are always expressed **versus
    /// the Ag/AgCl reference electrode**, matching the paper's tables.
    Volts, "V",
    scaled {
        /// Constructs from millivolts.
        from_millivolts / as_millivolts: 1e-3,
        /// Constructs from microvolts.
        from_microvolts / as_microvolts: 1e-6,
    }
}

quantity! {
    /// Electric current in amperes.
    Amps, "A",
    scaled {
        /// Constructs from milliamperes.
        from_milliamps / as_milliamps: 1e-3,
        /// Constructs from microamperes.
        from_microamps / as_microamps: 1e-6,
        /// Constructs from nanoamperes.
        from_nanoamps / as_nanoamps: 1e-9,
        /// Constructs from picoamperes.
        from_picoamps / as_picoamps: 1e-12,
    }
}

quantity! {
    /// Time in seconds.
    Seconds, "s",
    scaled {
        /// Constructs from milliseconds.
        from_millis / as_millis: 1e-3,
        /// Constructs from microseconds.
        from_micros / as_micros: 1e-6,
        /// Constructs from minutes.
        from_minutes / as_minutes: 60.0,
        /// Constructs from hours.
        from_hours / as_hours: 3600.0,
    }
}

quantity! {
    /// Frequency in hertz.
    Hertz, "Hz",
    scaled {
        /// Constructs from kilohertz.
        from_kilohertz / as_kilohertz: 1e3,
        /// Constructs from megahertz.
        from_megahertz / as_megahertz: 1e6,
    }
}

quantity! {
    /// Electrical resistance in ohms.
    Ohms, "Ω",
    scaled {
        /// Constructs from kiloohms.
        from_kiloohms / as_kiloohms: 1e3,
        /// Constructs from megaohms.
        from_megaohms / as_megaohms: 1e6,
    }
}

quantity! {
    /// Capacitance in farads.
    Farads, "F",
    scaled {
        /// Constructs from microfarads.
        from_microfarads / as_microfarads: 1e-6,
        /// Constructs from nanofarads.
        from_nanofarads / as_nanofarads: 1e-9,
        /// Constructs from picofarads.
        from_picofarads / as_picofarads: 1e-12,
    }
}

quantity! {
    /// Electric charge in coulombs.
    Coulombs, "C",
    scaled {
        /// Constructs from microcoulombs.
        from_microcoulombs / as_microcoulombs: 1e-6,
        /// Constructs from nanocoulombs.
        from_nanocoulombs / as_nanocoulombs: 1e-9,
    }
}

quantity! {
    /// Thermodynamic temperature in kelvin.
    Kelvin, "K"
}

impl Kelvin {
    /// Constructs from a temperature in degrees Celsius.
    ///
    /// # Example
    ///
    /// ```
    /// use bios_units::Kelvin;
    /// assert_eq!(Kelvin::from_celsius(25.0), Kelvin::new(298.15));
    /// ```
    pub fn from_celsius(celsius: f64) -> Self {
        Self::new(celsius + 273.15)
    }

    /// Returns the temperature in degrees Celsius.
    pub fn as_celsius(self) -> f64 {
        self.value() - 273.15
    }
}

quantity! {
    /// Power in watts.
    Watts, "W",
    scaled {
        /// Constructs from milliwatts.
        from_milliwatts / as_milliwatts: 1e-3,
        /// Constructs from microwatts.
        from_microwatts / as_microwatts: 1e-6,
        /// Constructs from nanowatts.
        from_nanowatts / as_nanowatts: 1e-9,
    }
}

quantity! {
    /// Energy in joules.
    Joules, "J",
    scaled {
        /// Constructs from millijoules.
        from_millijoules / as_millijoules: 1e-3,
        /// Constructs from microjoules.
        from_microjoules / as_microjoules: 1e-6,
    }
}

quantity! {
    /// Amount-of-substance concentration in mol/L (molarity).
    ///
    /// The paper reports analyte levels in mM and µM; use
    /// [`Molar::from_millimolar`] and [`Molar::from_micromolar`].
    Molar, "M",
    scaled {
        /// Constructs from millimolar (mmol/L).
        from_millimolar / as_millimolar: 1e-3,
        /// Constructs from micromolar (µmol/L).
        from_micromolar / as_micromolar: 1e-6,
        /// Constructs from nanomolar (nmol/L).
        from_nanomolar / as_nanomolar: 1e-9,
    }
}

impl Molar {
    /// Converts to a volume concentration in mol/cm³ (1 L = 1000 cm³).
    pub fn to_moles_per_cm3(self) -> MolesPerCm3 {
        MolesPerCm3::new(self.value() * 1e-3)
    }
}

quantity! {
    /// Amount of substance in moles.
    Moles, "mol",
    scaled {
        /// Constructs from millimoles.
        from_millimoles / as_millimoles: 1e-3,
        /// Constructs from micromoles.
        from_micromoles / as_micromoles: 1e-6,
        /// Constructs from nanomoles.
        from_nanomoles / as_nanomoles: 1e-9,
    }
}

quantity! {
    /// Length in centimetres (the conventional electrochemistry length unit).
    Centimeters, "cm",
    scaled {
        /// Constructs from millimetres.
        from_millimeters / as_millimeters: 0.1,
        /// Constructs from micrometres.
        from_micrometers / as_micrometers: 1e-4,
    }
}

quantity! {
    /// Area in cm² (electrode areas).
    SquareCentimeters, "cm²",
    scaled {
        /// Constructs from mm².
        from_square_millimeters / as_square_millimeters: 1e-2,
        /// Constructs from µm².
        from_square_micrometers / as_square_micrometers: 1e-8,
    }
}

quantity! {
    /// Diffusion coefficient in cm²/s.
    ///
    /// Typical small molecules in aqueous solution are in the range
    /// 10⁻⁶–10⁻⁵ cm²/s; H₂O₂ is ≈1.7·10⁻⁵ cm²/s.
    DiffusionCoefficient, "cm²/s"
}

quantity! {
    /// Potential scan rate in V/s (cyclic voltammetry).
    VoltsPerSecond, "V/s",
    scaled {
        /// Constructs from mV/s — the paper's ≈20 mV/s guidance uses this.
        from_millivolts_per_second / as_millivolts_per_second: 1e-3,
    }
}

quantity! {
    /// Current density in A/cm².
    AmpsPerCm2, "A/cm²",
    scaled {
        /// Constructs from mA/cm².
        from_milliamps_per_cm2 / as_milliamps_per_cm2: 1e-3,
        /// Constructs from µA/cm².
        from_microamps_per_cm2 / as_microamps_per_cm2: 1e-6,
        /// Constructs from nA/cm².
        from_nanoamps_per_cm2 / as_nanoamps_per_cm2: 1e-9,
    }
}

quantity! {
    /// Area-specific capacitance in F/cm² (double-layer capacitance).
    FaradsPerCm2, "F/cm²",
    scaled {
        /// Constructs from µF/cm² — double layers are typically 10–40 µF/cm².
        from_microfarads_per_cm2 / as_microfarads_per_cm2: 1e-6,
    }
}

quantity! {
    /// Surface coverage in mol/cm² (immobilized enzyme loading).
    MolesPerCm2, "mol/cm²",
    scaled {
        /// Constructs from nmol/cm².
        from_nanomoles_per_cm2 / as_nanomoles_per_cm2: 1e-9,
        /// Constructs from pmol/cm² — enzyme monolayers are typically 1–100 pmol/cm².
        from_picomoles_per_cm2 / as_picomoles_per_cm2: 1e-12,
    }
}

quantity! {
    /// Areal molar flux in mol/(cm²·s) (enzymatic product generation).
    MolesPerCm2PerSecond, "mol/(cm²·s)"
}

quantity! {
    /// Volume concentration in mol/cm³ (the diffusion solver's native unit).
    MolesPerCm3, "mol/cm³"
}

impl MolesPerCm3 {
    /// Converts to molarity (mol/L).
    pub fn to_molar(self) -> Molar {
        Molar::new(self.value() * 1e3)
    }
}

quantity! {
    /// Volume in litres.
    Liters, "L",
    scaled {
        /// Constructs from millilitres.
        from_milliliters / as_milliliters: 1e-3,
        /// Constructs from microlitres.
        from_microliters / as_microliters: 1e-6,
    }
}

// Dimensional algebra ------------------------------------------------------

qprod!(Amps, Ohms => Volts);
qprod!(Volts, Amps => Watts);
qprod!(Amps, Seconds => Coulombs);
qprod!(Volts, Farads => Coulombs);
qprod!(VoltsPerSecond, Seconds => Volts);
qprod!(AmpsPerCm2, SquareCentimeters => Amps);
qprod!(FaradsPerCm2, SquareCentimeters => Farads);
qprod!(Molar, Liters => Moles);
qprod!(Watts, Seconds => Joules);
qprod!(MolesPerCm2PerSecond, Seconds => MolesPerCm2);
qprod!(MolesPerCm3, Centimeters => MolesPerCm2);
qsquare!(Centimeters => SquareCentimeters);

impl Seconds {
    /// Returns the reciprocal as a frequency.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero.
    pub fn recip(self) -> Hertz {
        assert!(
            // advdiag::allow(F1, exact sentinel: only an exactly-zero duration has no reciprocal)
            self.value() != 0.0,
            "cannot take the frequency of a zero duration"
        );
        Hertz::new(1.0 / self.value())
    }
}

impl Hertz {
    /// Returns the period `1/f`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    pub fn period(self) -> Seconds {
        assert!(
            // advdiag::allow(F1, exact sentinel: only an exactly-zero frequency has no period)
            self.value() != 0.0,
            "cannot take the period of zero frequency"
        );
        Seconds::new(1.0 / self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_constructors_round_trip() {
        let v = Volts::from_millivolts(-625.0);
        assert!((v.value() + 0.625).abs() < 1e-15);
        assert!((v.as_millivolts() + 625.0).abs() < 1e-12);

        let i = Amps::from_nanoamps(10.0);
        assert!((i.value() - 1e-8).abs() < 1e-20);
    }

    #[test]
    fn arithmetic_preserves_dimension() {
        let a = Volts::new(0.55) + Volts::new(0.1);
        assert!((a.value() - 0.65).abs() < 1e-12);
        let b = a - Volts::new(0.65);
        assert!(b.abs().value() < 1e-12);
        assert_eq!((-Volts::new(1.0)).value(), -1.0);
        assert_eq!((Volts::new(2.0) * 3.0).value(), 6.0);
        assert_eq!((3.0 * Volts::new(2.0)).value(), 6.0);
        assert_eq!((Volts::new(6.0) / 3.0).value(), 2.0);
        assert_eq!(Volts::new(6.0) / Volts::new(3.0), 2.0);
    }

    #[test]
    fn ohms_law_products() {
        let v = Amps::from_microamps(10.0) * Ohms::from_kiloohms(100.0);
        assert!((v.value() - 1.0).abs() < 1e-12);
        let i = Volts::new(1.0) / Ohms::from_kiloohms(100.0);
        assert!((i.as_microamps() - 10.0).abs() < 1e-9);
        let r = Volts::new(1.0) / Amps::from_microamps(10.0);
        assert!((r.as_kiloohms() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn charge_power_energy_products() {
        let q = Amps::new(2.0) * Seconds::new(3.0);
        assert_eq!(q.value(), 6.0);
        let q2 = Volts::new(5.0) * Farads::from_microfarads(1.0);
        assert!((q2.as_microcoulombs() - 5.0).abs() < 1e-9);
        let p = Volts::new(2.0) * Amps::new(0.5);
        assert_eq!(p.value(), 1.0);
        let e = Watts::new(2.0) * Seconds::new(4.0);
        assert_eq!(e.value(), 8.0);
    }

    #[test]
    fn concentration_conversions() {
        let c = Molar::from_millimolar(4.0);
        let vol = c.to_moles_per_cm3();
        assert!((vol.value() - 4e-6).abs() < 1e-18);
        assert!((vol.to_molar().as_millimolar() - 4.0).abs() < 1e-12);
        let n = Molar::from_millimolar(1.0) * Liters::from_milliliters(2.0);
        assert!((n.as_micromoles() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn geometry_products() {
        let area = Centimeters::new(0.5) * Centimeters::new(0.2);
        assert!((area.value() - 0.1).abs() < 1e-12);
        // Paper's electrode area: 0.23 mm².
        let we = SquareCentimeters::from_square_millimeters(0.23);
        assert!((we.value() - 0.0023).abs() < 1e-12);
        let i = AmpsPerCm2::from_microamps_per_cm2(100.0) * we;
        assert!((i.as_nanoamps() - 230.0).abs() < 1e-6);
    }

    #[test]
    fn frequency_period_reciprocal() {
        assert!((Seconds::from_millis(10.0).recip().value() - 100.0).abs() < 1e-9);
        assert!((Hertz::new(50.0).period().as_millis() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn zero_duration_recip_panics() {
        let _ = Seconds::ZERO.recip();
    }

    #[test]
    fn scan_rate_times_time_is_potential() {
        let rate = VoltsPerSecond::from_millivolts_per_second(20.0);
        let v = rate * Seconds::new(10.0);
        assert!((v.as_millivolts() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_clamp_lerp() {
        let a = Volts::new(1.0);
        let b = Volts::new(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Volts::new(3.0).clamp(a, b), b);
        assert_eq!(a.lerp(b, 0.5), Volts::new(1.5));
    }

    #[test]
    fn sum_iterators() {
        let parts = [Amps::new(1.0), Amps::new(2.0), Amps::new(3.0)];
        let owned: Amps = parts.iter().copied().sum();
        let borrowed: Amps = parts.iter().sum();
        assert_eq!(owned.value(), 6.0);
        assert_eq!(borrowed.value(), 6.0);
    }

    #[test]
    fn celsius_round_trip() {
        let t = Kelvin::from_celsius(37.0);
        assert!((t.value() - 310.15).abs() < 1e-12);
        assert!((t.as_celsius() - 37.0).abs() < 1e-12);
    }

    #[test]
    fn serde_transparent() {
        let v = Volts::from_millivolts(650.0);
        // serde_transparent means the wire format is a bare number; emulate by
        // checking Debug of the inner value via round-trip through f64.
        assert_eq!(Volts::new(v.value()), v);
    }

    #[test]
    fn display_uses_si_prefix() {
        assert_eq!(format!("{}", Amps::from_nanoamps(250.0)), "250 nA");
        assert_eq!(format!("{}", Volts::from_millivolts(-625.0)), "-625 mV");
        assert_eq!(format!("{}", Molar::from_micromolar(575.0)), "575 µM");
    }

    #[test]
    fn parse_round_trips() {
        let v: Volts = "-625 mV".parse().expect("parse failed");
        assert!((v.as_millivolts() + 625.0).abs() < 1e-9);
        let i: Amps = "10 nA".parse().expect("parse failed");
        assert!((i.as_nanoamps() - 10.0).abs() < 1e-9);
        let r: Ohms = "1.5 MΩ".parse().expect("parse failed");
        assert!((r.as_megaohms() - 1.5).abs() < 1e-9);
    }
}
