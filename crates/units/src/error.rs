//! Error types for quantity parsing and range construction, plus the
//! workspace-wide [`ErrorSeverity`] taxonomy.

/// How badly an error compromises a measurement campaign.
///
/// Every layer's error type (`AfeError`, `InstrumentError`,
/// `PlatformError`) maps its variants onto this shared scale so the
/// platform scheduler can decide uniformly whether to retry a slot,
/// quarantine an electrode, or abort the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorSeverity {
    /// A transient condition; retrying the same operation (possibly with
    /// a fresh noise seed) is expected to succeed.
    Transient,
    /// The operation produced partial or degraded output; results may be
    /// usable with reduced confidence, and retrying may help.
    Degraded,
    /// A configuration or structural defect; retrying without operator
    /// intervention cannot succeed.
    Fatal,
}

impl ErrorSeverity {
    /// Whether an automatic retry is worthwhile for this severity.
    pub fn is_recoverable(self) -> bool {
        !matches!(self, ErrorSeverity::Fatal)
    }
}

impl core::fmt::Display for ErrorSeverity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ErrorSeverity::Transient => write!(f, "transient"),
            ErrorSeverity::Degraded => write!(f, "degraded"),
            ErrorSeverity::Fatal => write!(f, "fatal"),
        }
    }
}

/// Error returned when parsing a quantity string fails.
///
/// # Example
///
/// ```
/// use bios_units::Volts;
/// let err = "5 W".parse::<Volts>().unwrap_err();
/// assert!(err.to_string().contains("expected unit"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQuantityError {
    input: String,
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    BadNumber,
    BadUnit { expected: String },
}

impl ParseQuantityError {
    pub(crate) fn bad_number(input: &str) -> Self {
        Self {
            input: input.to_string(),
            kind: ParseErrorKind::BadNumber,
        }
    }

    pub(crate) fn bad_unit(input: &str, expected: &str) -> Self {
        Self {
            input: input.to_string(),
            kind: ParseErrorKind::BadUnit {
                expected: expected.to_string(),
            },
        }
    }

    /// The offending input string.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl core::fmt::Display for ParseQuantityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.kind {
            ParseErrorKind::BadNumber => {
                write!(f, "invalid numeric value in quantity {:?}", self.input)
            }
            ParseErrorKind::BadUnit { expected } => write!(
                f,
                "invalid unit suffix in quantity {:?}, expected unit {expected:?} with an optional SI prefix",
                self.input
            ),
        }
    }
}

impl std::error::Error for ParseQuantityError {}

/// Error returned when constructing an invalid [`QRange`](crate::QRange).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeError {
    /// The lower bound exceeded the upper bound.
    Inverted,
    /// A bound was NaN or infinite.
    NotFinite,
}

impl core::fmt::Display for RangeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RangeError::Inverted => write!(f, "range lower bound exceeds upper bound"),
            RangeError::NotFinite => write!(f, "range bound is not finite"),
        }
    }
}

impl std::error::Error for RangeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_is_lowercase_and_specific() {
        let e = ParseQuantityError::bad_number("oops");
        assert_eq!(e.input(), "oops");
        let msg = e.to_string();
        assert!(msg.starts_with("invalid"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn range_error_display() {
        assert_eq!(
            RangeError::Inverted.to_string(),
            "range lower bound exceeds upper bound"
        );
        assert_eq!(
            RangeError::NotFinite.to_string(),
            "range bound is not finite"
        );
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<ParseQuantityError>();
        assert_traits::<RangeError>();
    }
}
