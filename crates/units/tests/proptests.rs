//! Property-based tests for quantity algebra, SI formatting and ranges.

use bios_units::{format_si, Amps, Molar, Ohms, Prefix, QRange, Seconds, Volts};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_filter("bounded", |v| v.abs() < 1e12 && v.abs() > 1e-12)
}

proptest! {
    #[test]
    fn addition_commutes(a in finite(), b in finite()) {
        let x = Volts::new(a) + Volts::new(b);
        let y = Volts::new(b) + Volts::new(a);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn subtraction_inverts_addition(a in finite(), b in finite()) {
        let sum = Volts::new(a) + Volts::new(b);
        let back = sum - Volts::new(b);
        // Floating point: relative tolerance.
        let scale = a.abs().max(b.abs()).max(1.0);
        prop_assert!((back.value() - a).abs() <= 1e-9 * scale);
    }

    #[test]
    fn scalar_distributes(a in finite(), b in finite(), k in -1e3f64..1e3) {
        let lhs = (Volts::new(a) + Volts::new(b)) * k;
        let rhs = Volts::new(a) * k + Volts::new(b) * k;
        let scale = (a.abs() + b.abs()) * k.abs() + 1.0;
        prop_assert!((lhs.value() - rhs.value()).abs() <= 1e-9 * scale);
    }

    #[test]
    fn ohms_law_round_trips(i in 1e-12f64..1e-3, r in 1.0f64..1e9) {
        let v = Amps::new(i) * Ohms::new(r);
        let i_back = v / Ohms::new(r);
        prop_assert!((i_back.value() - i).abs() <= 1e-9 * i);
        let r_back = v / Amps::new(i);
        prop_assert!((r_back.value() - r).abs() <= 1e-9 * r);
    }

    #[test]
    fn display_parse_round_trip_volts(v in -1e6f64..1e6) {
        // Display rounds to 4 significant digits, so the round trip must be
        // accurate to ~0.05% of the magnitude.
        let q = Volts::new(v);
        let shown = format!("{q}");
        let parsed: Volts = shown.parse().expect("display output must re-parse");
        let tol = v.abs().max(1e-30) * 5e-4 + 1e-30;
        prop_assert!((parsed.value() - v).abs() <= tol, "{} -> {} -> {}", v, shown, parsed.value());
    }

    #[test]
    fn prefix_pick_keeps_mantissa_in_band(v in finite()) {
        let p = Prefix::pick(v);
        let mantissa = v.abs() / p.factor();
        // Within the table's coverage the mantissa is in [1, 1000).
        if (1e-15..1e12).contains(&v.abs()) {
            prop_assert!((1.0..1000.0).contains(&mantissa), "v={v} p={p:?} m={mantissa}");
        }
    }

    #[test]
    fn format_si_never_panics(v in prop::num::f64::ANY, pick in 0usize..3) {
        let unit = ["V", "A", "mol/L"][pick];
        let _ = format_si(v, unit);
    }

    #[test]
    fn range_linspace_is_sorted_and_bounded(lo in -1e6f64..1e6, w in 1e-6f64..1e6, n in 2usize..200) {
        let r = QRange::new(Volts::new(lo), Volts::new(lo + w)).expect("valid range");
        let pts = r.linspace(n);
        prop_assert_eq!(pts.len(), n);
        for pair in pts.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        prop_assert_eq!(pts[0], r.lo());
        prop_assert_eq!(pts[n - 1], r.hi());
        for p in &pts {
            prop_assert!(r.contains(*p));
        }
    }

    #[test]
    fn range_intersection_is_contained_in_both(
        a_lo in -1e3f64..1e3, a_w in 0.0f64..1e3,
        b_lo in -1e3f64..1e3, b_w in 0.0f64..1e3,
    ) {
        let a = QRange::new(Molar::new(a_lo), Molar::new(a_lo + a_w)).expect("valid");
        let b = QRange::new(Molar::new(b_lo), Molar::new(b_lo + b_w)).expect("valid");
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains_range(&i));
            prop_assert!(b.contains_range(&i));
        }
        let h = a.hull(&b);
        prop_assert!(h.contains_range(&a));
        prop_assert!(h.contains_range(&b));
    }

    #[test]
    fn charge_is_current_times_time(i in 1e-9f64..1e-3, t in 1e-3f64..1e3) {
        let q = Amps::new(i) * Seconds::new(t);
        prop_assert!((q.value() - i * t).abs() <= 1e-12 * (i * t));
    }
}
