//! Fast checks of the paper's headline claims, spanning all crates (the
//! heavyweight versions live in `bios-bench`).

use advdiag::afe::{ChainConfig, CurrentRange, ReadoutChain};
use advdiag::biochem::{Analyte, CypIsoform, CypSensor, Membrane, Oxidase, OxidaseSensor};
use advdiag::electrochem::{
    randles_sevcik_peak, simulate_cv_with, Cell, Electrode, PotentialProgram, RedoxCouple,
    SimOptions,
};
use advdiag::instrument::{run_chrono, run_cv, ChronoProtocol, CvProtocol};
use advdiag::units::{Molar, Seconds, Volts, VoltsPerSecond, T_ROOM};

#[test]
fn fig3_claim_glucose_settles_in_about_30_s() {
    // "the signal takes around 30 seconds to reach the steady-state"
    let t90 = Membrane::paper_glucose_membrane().response_time(0.9);
    assert!((t90.value() - 30.0).abs() < 1.5, "t90 = {}", t90.value());

    // End-to-end (with AFE noise): stay in a generous band.
    let sensor = OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry");
    let chain = ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase()).expect("range"));
    let m = run_chrono(
        &sensor,
        &Electrode::paper_gold_we(),
        &chain,
        Molar::from_millimolar(2.0),
        &ChronoProtocol::default(),
        12,
    )
    .expect("measurement");
    let measured = m.t90.expect("settles").value();
    assert!((measured - 30.0).abs() < 8.0, "measured t90 = {measured}");
}

#[test]
fn table_i_claim_oxidases_need_550_to_700_mv() {
    for ox in Oxidase::ALL {
        let e = ox.applied_potential().as_millivolts();
        assert!((550.0..=700.0).contains(&e), "{ox}: {e} mV");
    }
}

#[test]
fn table_ii_claim_one_isoform_two_drugs_two_peaks() {
    // "with the same agent (CYP2B4) it is possible to detect different
    // compounds (benzphetamine and aminopyrine) at the same electrode"
    let sensor = CypSensor::from_registry(CypIsoform::Cyp2B4).expect("registry");
    let electrode = Electrode::paper_gold_we();
    let range = CurrentRange::cytochrome().scaled(electrode.geometric_area().value());
    let chain = ReadoutChain::new(ChainConfig::for_range(range).expect("range"));
    let m = run_cv(
        &sensor,
        &electrode,
        &chain,
        &[
            (Analyte::Benzphetamine, Molar::from_millimolar(1.0)),
            (Analyte::Aminopyrine, Molar::from_millimolar(4.0)),
        ],
        &CvProtocol::default(),
        8,
    )
    .expect("measurement");
    let b = m.peak_height(Analyte::Benzphetamine).expect("peak found");
    let a = m.peak_height(Analyte::Aminopyrine).expect("peak found");
    // "The height of the two corresponding peaks gives information about
    // their concentration" — and aminopyrine's 10× sensitivity shows.
    assert!(a.value() > b.value());
}

#[test]
fn section_iii_claim_shared_mux_platform_cheaper_than_replication() {
    use advdiag::platform::{electronics_budget, ReadoutSharing};
    let shared = electronics_budget(5, ReadoutSharing::Shared, 12, false, false);
    let dedicated = electronics_budget(5, ReadoutSharing::Dedicated, 12, false, false);
    assert!(shared.total_power().value() < dedicated.total_power().value() / 3.0);
}

#[test]
fn solver_validates_against_randles_sevcik() {
    let cell = Cell::builder(Electrode::paper_gold_we())
        .build()
        .expect("cell");
    let couple = RedoxCouple::ferrocyanide();
    let rate = VoltsPerSecond::from_millivolts_per_second(50.0);
    let program = PotentialProgram::cyclic_single(
        couple.formal_potential() + Volts::new(0.3),
        couple.formal_potential() - Volts::new(0.3),
        rate,
    );
    let cv = simulate_cv_with(
        &cell,
        &couple,
        Molar::from_millimolar(1.0),
        Molar::ZERO,
        &program,
        SimOptions {
            dt: None,
            include_charging: false,
            grid_gamma: None,
        },
    )
    .expect("simulation");
    let (_, ip) = cv.min_current().expect("peak");
    let analytic = randles_sevcik_peak(
        &couple,
        cell.working().active_area(),
        Molar::from_millimolar(1.0),
        rate,
        T_ROOM,
    );
    let rel = (ip.abs().value() - analytic.value()).abs() / analytic.value();
    assert!(rel < 0.04, "Randles–Ševčík deviation {rel}");
}

#[test]
fn section_iic_claim_20mvs_preserves_signatures_but_200mvs_does_not() {
    let sensor = CypSensor::from_registry(CypIsoform::Cyp2B4).expect("registry");
    let slow = sensor
        .peak_potential(
            Analyte::Benzphetamine,
            VoltsPerSecond::from_millivolts_per_second(20.0),
            T_ROOM,
        )
        .expect("substrate");
    assert_eq!(slow, Volts::new(-0.250));
    let fast = sensor
        .peak_potential(
            Analyte::Benzphetamine,
            VoltsPerSecond::from_millivolts_per_second(200.0),
            T_ROOM,
        )
        .expect("substrate");
    assert!(
        (slow - fast).as_millivolts() > 30.0,
        "drift {}",
        (slow - fast)
    );
}

#[test]
fn section_ii_claim_oxidase_crosstalk_negligible_at_mm_pitch() {
    use advdiag::platform::crosstalk_fraction;
    use advdiag::units::Centimeters;
    let f = crosstalk_fraction(Centimeters::from_millimeters(1.0), Seconds::new(70.0));
    assert!(f < 0.01, "crosstalk {f}");
}
