//! Cross-crate integration tests: the full stack from panel specification
//! to concentration readings.

use advdiag::biochem::{Analyte, Technique};
use advdiag::platform::{
    PanelSpec, PlatformBuilder, ProbePreference, ReadoutSharing, SensorStructure, TargetSpec,
};
use advdiag::units::{Molar, Seconds};

fn fig4_sample() -> Vec<(Analyte, Molar)> {
    vec![
        (Analyte::Glucose, Molar::from_millimolar(3.0)),
        (Analyte::Lactate, Molar::from_millimolar(1.5)),
        (Analyte::Glutamate, Molar::from_millimolar(3.2)),
        (Analyte::Benzphetamine, Molar::from_millimolar(0.9)),
        (Analyte::Aminopyrine, Molar::from_millimolar(4.0)),
        (Analyte::Cholesterol, Molar::from_micromolar(50.0)),
    ]
}

#[test]
fn paper_panel_full_pipeline() {
    let platform = PlatformBuilder::new(PanelSpec::paper_fig4())
        .build()
        .expect("build");
    // Structure is the paper's Fig. 4: 5 WE + CE + RE.
    assert_eq!(
        platform.structure(),
        SensorStructure::MultiElectrode { working: 5 }
    );
    assert_eq!(platform.structure().total_electrodes(), 7);

    let report = platform.run_session(&fig4_sample(), 1).expect("session");
    assert_eq!(report.readings().len(), 6);
    for r in report.readings() {
        assert!(r.identified, "{} not identified", r.analyte);
        let est = r.estimated.expect("not saturated");
        assert!(est.value() > 0.0);
    }
    // All six within 2× of truth end-to-end.
    assert!(report.worst_relative_error(&fig4_sample()) < 1.0);
}

#[test]
fn concentration_sweep_is_monotone_through_the_whole_stack() {
    // Glucose estimates should rise with the true concentration, through
    // enzyme model, AFE, quantization and inversion.
    let mut panel = PanelSpec::new();
    panel.push(TargetSpec::typical(Analyte::Glucose));
    let platform = PlatformBuilder::new(panel).build().expect("build");
    let mut last = -1.0;
    for (k, mm) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
        let sample = [(Analyte::Glucose, Molar::from_millimolar(*mm))];
        let report = platform
            .run_session(&sample, 100 + k as u64)
            .expect("session");
        let est = report
            .reading_for(Analyte::Glucose)
            .expect("on panel")
            .estimated
            .expect("not saturated")
            .as_millimolar();
        assert!(est > last, "estimate {est} not above previous {last}");
        last = est;
    }
}

#[test]
fn session_is_reproducible_per_seed() {
    let platform = PlatformBuilder::new(PanelSpec::paper_fig4())
        .build()
        .expect("build");
    let a = platform.run_session(&fig4_sample(), 99).expect("session");
    let b = platform.run_session(&fig4_sample(), 99).expect("session");
    assert_eq!(a.readings(), b.readings());
    let c = platform.run_session(&fig4_sample(), 100).expect("session");
    assert_ne!(a.readings(), c.readings());
}

#[test]
fn technique_split_matches_probe_families() {
    let platform = PlatformBuilder::new(PanelSpec::paper_fig4())
        .build()
        .expect("build");
    let chrono = platform
        .assignments()
        .iter()
        .filter(|a| a.technique() == Technique::Chronoamperometry)
        .count();
    let cv = platform
        .assignments()
        .iter()
        .filter(|a| a.technique() == Technique::CyclicVoltammetry)
        .count();
    assert_eq!((chrono, cv), (3, 2));
}

#[test]
fn probe_preference_changes_the_layout() {
    let mut panel = PanelSpec::new();
    panel.push(TargetSpec::typical(Analyte::Cholesterol));
    panel.push(TargetSpec::typical(Analyte::Glucose));
    let cyp = PlatformBuilder::new(panel.clone())
        .with_preference(ProbePreference::PreferCytochrome)
        .build()
        .expect("build");
    let oxi = PlatformBuilder::new(panel)
        .with_preference(ProbePreference::PreferOxidase)
        .build()
        .expect("build");
    let cv_count = |p: &advdiag::platform::Platform| {
        p.assignments()
            .iter()
            .filter(|a| a.technique() == Technique::CyclicVoltammetry)
            .count()
    };
    assert_eq!(cv_count(&cyp), 1);
    assert_eq!(cv_count(&oxi), 0);
}

#[test]
fn dedicated_readout_runs_faster_but_costs_more() {
    let shared = PlatformBuilder::new(PanelSpec::paper_fig4())
        .build()
        .expect("build");
    let dedicated = PlatformBuilder::new(PanelSpec::paper_fig4())
        .with_sharing(ReadoutSharing::Dedicated)
        .build()
        .expect("build");
    assert!(
        dedicated.schedule().total_duration().value() < shared.schedule().total_duration().value()
    );
    assert!(dedicated.cost().power.value() > shared.cost().power.value());
    assert!(dedicated.cost().total_area_mm2() > shared.cost().total_area_mm2());
    // And both still measure correctly.
    let r = dedicated.run_session(&fig4_sample(), 3).expect("session");
    assert!(
        r.reading_for(Analyte::Glucose)
            .expect("on panel")
            .identified
    );
}

#[test]
fn chamber_separation_when_crosstalk_demands_it() {
    let mut panel = PanelSpec::new();
    panel.push(TargetSpec::typical(Analyte::Glucose));
    panel.push(TargetSpec::typical(Analyte::Lactate));
    panel.push(TargetSpec::typical(Analyte::Glutamate));
    let tight = PlatformBuilder::new(panel.clone())
        .with_pitch(advdiag::units::Centimeters::from_millimeters(0.1))
        .with_chrono_protocol(advdiag::instrument::ChronoProtocol {
            settle: Seconds::new(10.0),
            measure: Seconds::new(600.0),
            dt: Seconds::new(1.0),
        })
        .build()
        .expect("build");
    assert!(matches!(
        tight.structure(),
        SensorStructure::MultiChamber { chambers: 3 }
    ));
    let roomy = PlatformBuilder::new(panel).build().expect("build");
    assert!(matches!(
        roomy.structure(),
        SensorStructure::MultiElectrode { working: 3 }
    ));
}

#[test]
fn prelude_covers_the_quickstart_path() {
    use advdiag::prelude::*;
    let platform = PlatformBuilder::new(PanelSpec::paper_fig4())
        .build()
        .expect("build");
    let sample = [(Analyte::Glucose, Molar::from_millimolar(3.0))];
    let report: SessionReport = platform.run_session(&sample, 1).expect("session");
    assert!(
        report
            .reading_for(Analyte::Glucose)
            .expect("on panel")
            .identified
    );
}
