//! Serde round-trip tests for the workspace's data structures (C-SERDE):
//! panels, programs, records and registries survive serialization.

use advdiag::biochem::{Analyte, CypSensor, Membrane, OxidaseSensor};
use advdiag::electrochem::{PotentialProgram, RedoxCouple, Transient, Voltammogram};
use advdiag::platform::{PanelSpec, SensorStructure, TargetSpec};
use advdiag::units::{Amps, Molar, QRange, Seconds, Volts, VoltsPerSecond};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn quantities_round_trip_as_bare_numbers() {
    let v = Volts::from_millivolts(-625.0);
    assert_eq!(round_trip(&v), v);
    // Transparent representation: the wire format is the raw f64.
    assert_eq!(serde_json::to_string(&v).expect("serialize"), "-0.625");
    let r = QRange::new(Molar::from_millimolar(0.5), Molar::from_millimolar(4.0)).expect("range");
    assert_eq!(round_trip(&r), r);
}

#[test]
fn potential_programs_round_trip() {
    let programs = [
        PotentialProgram::Hold {
            potential: Volts::new(0.65),
            duration: Seconds::new(60.0),
        },
        PotentialProgram::cyclic_single(
            Volts::new(0.1),
            Volts::new(-0.8),
            VoltsPerSecond::from_millivolts_per_second(20.0),
        ),
        PotentialProgram::Staircase {
            from: Volts::ZERO,
            to: Volts::new(-0.5),
            step_height: Volts::from_millivolts(5.0),
            step_duration: Seconds::new(0.25),
        },
    ];
    for p in &programs {
        assert_eq!(&round_trip(p), p);
    }
}

#[test]
fn records_round_trip() {
    let mut t = Transient::new();
    t.push(Seconds::new(0.0), Amps::from_nanoamps(1.0));
    t.push(Seconds::new(1.0), Amps::from_nanoamps(2.0));
    assert_eq!(round_trip(&t), t);
    let mut v = Voltammogram::new();
    v.push(
        Seconds::new(0.0),
        Volts::new(-0.2),
        Amps::from_nanoamps(-1.0),
    );
    assert_eq!(round_trip(&v), v);
}

#[test]
fn sensors_and_registries_round_trip() {
    let couple = RedoxCouple::hydrogen_peroxide();
    assert_eq!(round_trip(&couple), couple);
    let oxidase =
        OxidaseSensor::from_registry(advdiag::biochem::Oxidase::Glucose).expect("registry");
    assert_eq!(round_trip(&oxidase), oxidase);
    let cyp = CypSensor::from_registry(advdiag::biochem::CypIsoform::Cyp2B4).expect("registry");
    assert_eq!(round_trip(&cyp), cyp);
    let membrane = Membrane::paper_glucose_membrane();
    assert_eq!(round_trip(&membrane), membrane);
}

#[test]
fn panels_and_structures_round_trip() {
    let panel = PanelSpec::paper_fig4();
    assert_eq!(round_trip(&panel), panel);
    let spec = TargetSpec::typical(Analyte::Glucose).with_lod(Molar::from_micromolar(100.0));
    assert_eq!(round_trip(&spec), spec);
    let s = SensorStructure::MultiElectrode { working: 5 };
    assert_eq!(round_trip(&s), s);
}
