//! Determinism suite for the execution engine and the prefactorized
//! solver: parallel execution must be *bit-identical* to sequential for
//! any seed and thread count, and the cached tridiagonal factorization
//! must match an independently written reference solve to 0 ULP.

use std::sync::OnceLock;

use advdiag::afe::FaultPlan;
use advdiag::biochem::Analyte;
use advdiag::electrochem::Tridiagonal;
use advdiag::instrument::QcGate;
use advdiag::platform::{
    explore_with, DesignSpace, ExecPolicy, PanelSpec, Platform, PlatformBuilder, SessionOptions,
};
use advdiag::units::Molar;
use proptest::prelude::*;

/// An independent Thomas-algorithm solve written directly from the
/// textbook recurrence, in the same operation order as `Tridiagonal`'s
/// factorization + `solve_in_place`. Any refactoring of the production
/// solver (iterator rewrites, bounds-check elision, caching) must keep
/// every intermediate rounding step, so the outputs agree exactly.
fn reference_solve(lower: &[f64], main: &[f64], upper: &[f64], d: &[f64]) -> Vec<f64> {
    let n = main.len();
    let mut fm = main.to_vec();
    let mut x = d.to_vec();
    for i in 1..n {
        let m = lower[i - 1] / fm[i - 1];
        fm[i] = main[i] - m * upper[i - 1];
        x[i] -= m * x[i - 1];
    }
    x[n - 1] /= fm[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = (x[i] - upper[i] * x[i + 1]) / fm[i];
    }
    x
}

fn fig4_platform() -> &'static Platform {
    static PLATFORM: OnceLock<Platform> = OnceLock::new();
    PLATFORM.get_or_init(|| {
        PlatformBuilder::new(PanelSpec::paper_fig4())
            .build()
            .expect("build")
    })
}

fn fig4_sample() -> Vec<(Analyte, Molar)> {
    vec![
        (Analyte::Glucose, Molar::from_millimolar(3.0)),
        (Analyte::Lactate, Molar::from_millimolar(1.5)),
        (Analyte::Glutamate, Molar::from_millimolar(3.0)),
        (Analyte::Benzphetamine, Molar::from_millimolar(0.8)),
        (Analyte::Aminopyrine, Molar::from_millimolar(4.0)),
        (Analyte::Cholesterol, Molar::from_micromolar(50.0)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Random diagonally-dominant systems: the production solver (with its
    /// shared prefactorization cache) matches the reference to 0 ULP.
    fn prefactorized_solver_matches_reference_to_zero_ulp(
        rows in prop::collection::vec(
            (-1.0f64..1.0, -1.0f64..1.0, 2.5f64..6.0, -10.0f64..10.0),
            2..14,
        ),
    ) {
        let n = rows.len();
        // Row i: (lower, upper, main, rhs); main ≥ 2.5 dominates the
        // off-diagonals (each in (-1, 1)), so no pivot can vanish.
        let lower: Vec<f64> = rows[..n - 1].iter().map(|r| r.0).collect();
        let upper: Vec<f64> = rows[..n - 1].iter().map(|r| r.1).collect();
        let main: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let d: Vec<f64> = rows.iter().map(|r| r.3).collect();

        let sys = Tridiagonal::new(lower.clone(), main.clone(), upper.clone())
            .expect("diagonally dominant");
        let got = sys.solve(&d).expect("matching length");
        let expected = reference_solve(&lower, &main, &upper, &d);
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            prop_assert_eq!(
                g.to_bits(), e.to_bits(),
                "x[{}]: {} vs {} (n = {})", i, g, e, n
            );
        }
        // And the factorization is a genuine inverse: A·x ≈ d.
        let back = sys.apply(&got);
        for (b, orig) in back.iter().zip(&d) {
            prop_assert!((b - orig).abs() < 1e-9, "residual {}", b - orig);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    /// Random session seeds and thread counts: parallel
    /// `run_session_with` is bit-identical to sequential, with faults and
    /// retries in play.
    fn parallel_session_matches_sequential(
        seed in 0u64..1_000_000,
        threads in 2usize..9,
    ) {
        let platform = fig4_platform();
        let sample = fig4_sample();
        let base = SessionOptions::default()
            .with_fault_plan(FaultPlan::randomized(seed ^ 0x5eed, 5))
            .with_qc(QcGate::default());
        let seq = platform
            .run_session_with(&sample, seed, &base.clone().with_exec(ExecPolicy::Sequential))
            .expect("sequential");
        let par = platform
            .run_session_with(
                &sample,
                seed,
                &base.with_exec(ExecPolicy::Threads(threads)),
            )
            .expect("parallel");
        prop_assert_eq!(
            format!("{seq:?}"), format!("{par:?}"),
            "seed {} threads {}", seed, threads
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Random thread counts: parallel `explore` is bit-identical to
    /// sequential (the explorer is deterministic, so only the fan-out can
    /// vary).
    fn parallel_explore_matches_sequential(threads in 2usize..9) {
        let panel = PanelSpec::paper_fig4();
        let space = DesignSpace::paper_default();
        let seq = explore_with(&panel, &space, ExecPolicy::Sequential).expect("sequential");
        let par = explore_with(&panel, &space, ExecPolicy::Threads(threads)).expect("parallel");
        prop_assert_eq!(&par, &seq, "threads {}", threads);
    }
}

/// `ADVDIAG_THREADS`-style forcing through the options API: a
/// `Threads(1)` policy takes the sequential code path and still matches
/// `Auto`.
#[test]
fn one_thread_policy_equals_auto() {
    let platform = fig4_platform();
    let sample = fig4_sample();
    let auto = platform
        .run_session_with(&sample, 7, &SessionOptions::default())
        .expect("auto");
    let one = platform
        .run_session_with(
            &sample,
            7,
            &SessionOptions::default().with_exec(ExecPolicy::Threads(1)),
        )
        .expect("one thread");
    assert_eq!(auto, one);
}
