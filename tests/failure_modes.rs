//! Failure-injection tests: the stack must degrade gracefully — saturate,
//! report, or return typed errors — never panic or silently lie.

use advdiag::afe::{Adc, ChainConfig, CurrentRange, ReadoutChain, Tia};
use advdiag::biochem::{Analyte, Oxidase, OxidaseSensor};
use advdiag::electrochem::{Cell, Electrode, PotentialProgram, RedoxCouple};
use advdiag::instrument::{run_chrono, ChronoProtocol};
use advdiag::platform::{PanelSpec, PlatformBuilder, TargetSpec};
use advdiag::units::{Amps, Hertz, Molar, Ohms, Seconds, Volts};

#[test]
fn sensor_saturation_reports_none_not_nonsense() {
    // 100× above the linear range: the MM inversion must refuse.
    let mut panel = PanelSpec::new();
    panel.push(TargetSpec::typical(Analyte::Glucose));
    let platform = PlatformBuilder::new(panel).build().expect("build");
    let sample = [(Analyte::Glucose, Molar::new(0.4))]; // 400 mM (!)
    let report = platform.run_session(&sample, 1).expect("session");
    let r = report.reading_for(Analyte::Glucose).expect("on panel");
    // It detects *something* but refuses to quantify deep saturation.
    assert!(r.identified);
    match r.estimated {
        None => {}
        Some(c) => {
            // If it does return an estimate, it must at least flag the top
            // of the quantifiable regime, not echo garbage.
            assert!(
                c.as_millimolar() > 4.0,
                "estimate {c} is inside the linear range"
            );
        }
    }
}

#[test]
fn adc_clipping_is_clamped_not_wrapped() {
    let adc = Adc::new(12, Volts::new(1.65), Hertz::new(100.0)).expect("adc");
    assert_eq!(adc.quantize(Volts::new(1e9)), 2047);
    assert_eq!(adc.quantize(Volts::new(-1e9)), -2048);
    // NaN should not produce a valid-looking mid-range code... it clamps
    // deterministically (round of NaN → 0 after clamp handling).
    let nan_code = adc.quantize(Volts::new(f64::NAN));
    assert!((-2048..=2047).contains(&nan_code));
}

#[test]
fn tia_saturation_marks_and_clips() {
    let tia = Tia::new(Ohms::from_megaohms(10.0), Hertz::new(1e3), Volts::new(1.65)).expect("tia");
    let huge = Amps::from_milliamps(1.0);
    assert!(tia.saturates(huge));
    assert_eq!(tia.convert_static(huge).value().abs(), 1.65);
}

#[test]
fn zero_concentration_everywhere_is_fine() {
    let platform = PlatformBuilder::new(PanelSpec::paper_fig4())
        .build()
        .expect("build");
    let report = platform.run_session(&[], 7).expect("session");
    for r in report.readings() {
        assert!(
            !r.identified || r.response.value() < 1e-7,
            "{} hallucinated a detection",
            r.analyte
        );
    }
}

#[test]
fn chain_rejects_out_of_range_programs_with_typed_errors() {
    let chain = ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase()).expect("range"));
    let bad = PotentialProgram::Hold {
        potential: Volts::new(5.0), // outside the ±1 V DAC
        duration: Seconds::new(1.0),
    };
    let err = chain
        .acquire(
            &bad,
            Seconds::from_millis(10.0),
            1,
            |_, _| Amps::ZERO,
            |_, _| Amps::ZERO,
        )
        .unwrap_err();
    assert!(err.to_string().contains("range"), "{err}");
}

#[test]
fn degenerate_protocols_are_rejected_before_any_simulation() {
    let sensor = OxidaseSensor::from_registry(Oxidase::Glucose).expect("registry");
    let chain = ReadoutChain::new(ChainConfig::for_range(CurrentRange::oxidase()).expect("range"));
    let bad = ChronoProtocol {
        settle: Seconds::ZERO,
        measure: Seconds::new(60.0),
        dt: Seconds::new(0.25),
    };
    assert!(run_chrono(
        &sensor,
        &Electrode::paper_gold_we(),
        &chain,
        Molar::from_millimolar(1.0),
        &bad,
        1
    )
    .is_err());
}

#[test]
fn solver_survives_extreme_rate_constants() {
    // A couple with absurd kinetics must not produce NaN currents.
    let cell = Cell::builder(Electrode::paper_gold_we())
        .build()
        .expect("cell");
    let couple = RedoxCouple::builder("extreme")
        .rate_constant(1e6)
        .diffusion(1e-5)
        .formal_potential(Volts::ZERO)
        .build()
        .expect("couple");
    let program = PotentialProgram::Step {
        initial: Volts::new(0.5),
        stepped: Volts::new(-0.5),
        at: Seconds::ZERO,
        duration: Seconds::new(1.0),
    };
    let tr = advdiag::electrochem::simulate_chrono(
        &cell,
        &couple,
        Molar::from_millimolar(1.0),
        Molar::ZERO,
        &program,
    )
    .expect("simulation");
    for (_, i) in tr.iter() {
        assert!(i.value().is_finite(), "non-finite current");
    }
}

#[test]
fn empty_and_conflicting_panels_fail_loudly() {
    assert!(PlatformBuilder::new(PanelSpec::new()).build().is_err());
    let mut dopamine_panel = PanelSpec::new();
    dopamine_panel.push(TargetSpec::typical(Analyte::Dopamine));
    let err = PlatformBuilder::new(dopamine_panel).build().unwrap_err();
    assert!(err.to_string().contains("dopamine"), "{err}");
}

#[test]
fn seeds_isolate_runs_completely() {
    // Two sessions with different seeds share no sample values, but the
    // same platform and inputs — statistical isolation check.
    let platform = PlatformBuilder::new(PanelSpec::paper_fig4())
        .build()
        .expect("build");
    let sample = [(Analyte::Glucose, Molar::from_millimolar(3.0))];
    let a = platform.run_session(&sample, 1).expect("session");
    let b = platform.run_session(&sample, 2).expect("session");
    let ra = a.reading_for(Analyte::Glucose).expect("on panel").response;
    let rb = b.reading_for(Analyte::Glucose).expect("on panel").response;
    assert_ne!(ra, rb, "different seeds must differ");
    // But both land near the same truth.
    assert!((ra.value() - rb.value()).abs() < 0.3 * ra.value().abs());
}

#[test]
fn faulted_sessions_are_bit_deterministic_per_seed() {
    // Acceptance: the same seed yields the same fault schedule and the
    // same SessionReport, bit for bit — including retries, quarantines
    // and degradation bookkeeping under an adversarial fault plan.
    use advdiag::afe::FaultPlan;
    use advdiag::instrument::QcGate;
    use advdiag::platform::SessionOptions;

    let platform = PlatformBuilder::new(PanelSpec::paper_fig4())
        .build()
        .expect("build");
    let sample = [
        (Analyte::Glucose, Molar::from_millimolar(4.0)),
        (Analyte::Lactate, Molar::from_millimolar(1.0)),
    ];
    let plan = FaultPlan::randomized(314, platform.assignments().len());
    let opts = SessionOptions::default()
        .with_fault_plan(plan)
        .with_qc(QcGate::default());
    let a = platform
        .run_session_with(&sample, 2011, &opts)
        .expect("session");
    let b = platform
        .run_session_with(&sample, 2011, &opts)
        .expect("session");
    assert_eq!(a.schedule(), b.schedule(), "fault schedules must match");
    assert_eq!(a, b, "same seed must reproduce the report bit for bit");
    // A fresh seed reseeds the measurement noise: the reports diverge at
    // f64 precision even though the platform and plan are unchanged.
    let c = platform
        .run_session_with(&sample, 2012, &opts)
        .expect("session");
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn quarantined_sessions_suspend_and_resume_bit_identically() {
    // A session driven into retries and quarantine by a dead electrode is
    // suspended mid-retry (right at a backoff), its checkpoint shipped
    // through serde, and resumed in a fresh machine: the final report
    // must be bit-identical to the uninterrupted blocking run.
    use advdiag::afe::{Fault, FaultKind, FaultPlan};
    use advdiag::instrument::QcGate;
    use advdiag::platform::{SessionOptions, StepEvent};

    let platform = PlatformBuilder::new(PanelSpec::paper_fig4())
        .build()
        .expect("build");
    let sample = [
        (Analyte::Glucose, Molar::from_millimolar(3.0)),
        (Analyte::Lactate, Molar::from_millimolar(1.0)),
    ];
    let we = platform
        .assignments()
        .iter()
        .find(|a| a.targets().contains(&Analyte::Glucose))
        .expect("glucose on panel")
        .index();
    let plan = FaultPlan::new(77).with_fault(
        we,
        Fault::immediate(FaultKind::ElectrodeOpen, 1.0).expect("valid fault"),
    );
    let opts = SessionOptions::default()
        .with_fault_plan(plan)
        .with_qc(QcGate::default());

    let blocking = platform
        .run_session_with(&sample, 2011, &opts)
        .expect("session");
    assert!(
        blocking.degradation().quarantined.contains(&we),
        "a dead electrode must exhaust its retries into quarantine"
    );

    let mut machine = platform.session_machine(&sample, 2011, &opts);
    loop {
        match machine.step(&platform).expect("step") {
            StepEvent::BackedOff { .. } => break,
            StepEvent::SessionDone => panic!("session finished without ever backing off"),
            _ => {}
        }
    }
    // Suspend exactly here — mid-retry, attempt pending — and round-trip
    // the checkpoint the way a crashed host would.
    let frozen = serde_json::to_string(&machine.checkpoint()).expect("serialize checkpoint");
    drop(machine);

    let checkpoint = serde_json::from_str(&frozen).expect("deserialize checkpoint");
    let mut resumed = platform.resume_session(&sample, 2011, &opts, checkpoint);
    while !resumed.is_done() {
        resumed.step(&platform).expect("step");
    }
    let report = resumed.finish(&platform).expect("finish");
    assert_eq!(
        report, blocking,
        "suspend/serialize/resume must replay the session bit for bit"
    );
}
