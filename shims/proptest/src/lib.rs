//! Hermetic stand-in for `proptest`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest it uses: the [`proptest!`] macro, numeric range
//! strategies, `prop::num::f64::NORMAL`, `prop::collection::vec`,
//! `prop_map`/`prop_filter`, and the `prop_assert*` macros. Cases are
//! generated from a seed derived from the test name, so every run is
//! deterministic; there is no shrinking — the failing inputs are printed
//! instead.

#![forbid(unsafe_code)]

use rand::{rngs::StdRng, SeedableRng};

pub mod strategy;

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, TestCaseError,
    };
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed or rejected property case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (kept for upstream API parity).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Stable FNV-1a hash of the test name: the per-test seed.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives `cases` iterations of a property body. Called by [`proptest!`];
/// panics (failing the enclosing `#[test]`) on the first failed case.
pub fn run_cases<F>(name: &str, cases: u32, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    for case in 0..cases {
        match body(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed at case {case}/{cases}: {msg}");
            }
        }
    }
}

/// Declares property-based tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// Doubling is monotone.
///     fn doubling_monotone(x in 0.0f64..1.0) {
///         prop_assert!(2.0 * x >= x);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), __config.cases, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    let mut __case = || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?} == {:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?} == {:?}`: {}",
            __l,
            __r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts two values are not equal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, "assertion failed: `{:?} != {:?}`", __l, __r);
    }};
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Numeric strategies.
    pub mod num {
        /// `f64` strategies.
        pub mod f64 {
            /// Strategy over all normal (finite, non-subnormal, non-zero)
            /// `f64` values of either sign.
            pub const NORMAL: crate::strategy::NormalF64 = crate::strategy::NormalF64;
            /// Strategy over arbitrary `f64` values, including zero,
            /// subnormals, infinities and NaN.
            pub const ANY: crate::strategy::AnyF64 = crate::strategy::AnyF64;
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};

        /// A strategy for `Vec`s of `element` with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Range strategies stay within bounds.
        fn ranges_in_bounds(x in 0.0f64..1.0, n in 3u8..9) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        /// Filters and maps compose.
        fn filter_map_compose(v in (1usize..10).prop_map(|n| n * 2).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!((2..20).contains(&v));
        }

        /// NORMAL yields only normal floats.
        fn normal_is_normal(x in prop::num::f64::NORMAL) {
            prop_assert!(x.is_normal());
        }

        /// Vec strategy honours the length range.
        fn vec_lengths(v in prop::collection::vec(0.0f64..1.0, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }
    }

    #[test]
    fn same_name_same_cases() {
        let mut first = Vec::new();
        crate::run_cases("determinism-probe", 16, |rng| {
            first.push(crate::strategy::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases("determinism-probe", 16, |rng| {
            second.push(crate::strategy::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
